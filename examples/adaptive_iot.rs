//! Simulates an IoT device with a time-varying harvested-energy budget that
//! switches the deployed SP-Net's bit-width on the fly — the motivating
//! scenario of the paper's introduction — and compares switching policies.
//!
//! ```sh
//! cargo run --release -p instantnet --example adaptive_iot
//! ```

use instantnet::runtime::{simulate, EnergyTrace, Policy};
use instantnet::{Pipeline, PipelineConfig};
use instantnet_data::{Dataset, DatasetSpec};
use instantnet_quant::BitWidthSet;

fn main() {
    let ds = Dataset::generate(&DatasetSpec::tiny());
    let mut cfg = PipelineConfig::quick();
    cfg.bits = BitWidthSet::new(vec![4, 8, 32]).expect("valid set");
    let report = Pipeline::new(cfg).run(&ds);

    println!("deployed {} with operating points:", report.arch());
    for p in report.points() {
        println!(
            "  {:<7} acc {:>5.1}%  energy {:.3e} pJ",
            p.bits.to_string(),
            100.0 * p.accuracy,
            p.energy_pj
        );
    }

    // Two days of solar harvest: budget swings from below the cheapest
    // point to above the most expensive one.
    let e_lo = report.points()[0].energy_pj;
    let e_hi = report.points().last().expect("non-empty").energy_pj;
    let trace = EnergyTrace::sinusoidal(0.8 * e_lo, 1.3 * e_hi, 48, 2.0);

    println!(
        "\n{:<12} {:>10} {:>9} {:>9} {:>14}",
        "policy", "mean acc", "switches", "dropped", "energy (pJ)"
    );
    for (name, policy) in [
        ("greedy", Policy::Greedy),
        ("hysteresis", Policy::Hysteresis { margin: 0.05 }),
    ] {
        let stats = simulate(&report, &trace, policy);
        println!(
            "{name:<12} {:>9.1}% {:>9} {:>9} {:>14.3e}",
            100.0 * stats.mean_accuracy,
            stats.switches,
            stats.dropped,
            stats.energy_pj
        );
    }

    let stats = simulate(&report, &trace, Policy::Greedy);
    println!("\nhourly schedule (greedy):");
    for (hour, slot) in stats.schedule.iter().enumerate() {
        let label = slot.map_or("sleep".to_string(), |b| format!("{b}-bit"));
        println!(
            "  t={hour:<3} budget {:>12.3e} pJ -> {label}",
            trace.budgets()[hour]
        );
    }
}
