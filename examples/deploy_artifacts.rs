//! Produces the deployment artifacts a real IoT toolchain would consume:
//! a trained SP-Net weight checkpoint, and the searched dataflow for each
//! bit-width rendered as a nested-loop listing (the paper's Fig. 3 view)
//! with its energy breakdown.
//!
//! ```sh
//! cargo run --release -p instantnet --example deploy_artifacts
//! ```

use instantnet_automapper::{allocate_bits, evolve_layer, MapperConfig};
use instantnet_data::{Dataset, DatasetSpec};
use instantnet_dataflow::emit_loop_nest;
use instantnet_hwmodel::{format_breakdown, workloads_from_specs, Device};
use instantnet_nn::{checkpoint, models, Module};
use instantnet_quant::BitWidthSet;
use instantnet_train::{PrecisionLadder, Strategy, TrainConfig, Trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = Dataset::generate(&DatasetSpec::tiny());
    let bits = BitWidthSet::new(vec![4, 32])?;
    let net = models::small_cnn(6, ds.num_classes(), (ds.hw(), ds.hw()), bits.len(), 3);
    let ladder = PrecisionLadder::uniform(&bits);

    println!("training a 2-rung SP-Net with CDT...");
    let report = Trainer::new(TrainConfig {
        epochs: 4,
        ..TrainConfig::default()
    })
    .train(&net, &ds, &ladder, Strategy::cdt());
    for (i, acc) in report.accuracy_per_rung.iter().enumerate() {
        println!("  {}: {:.1}%", bits.at(i), 100.0 * acc);
    }

    // Artifact 1: the weight checkpoint.
    let ckpt = std::env::temp_dir().join("instantnet-demo.ckpt");
    checkpoint::save(&net, &ckpt)?;
    println!(
        "\nsaved checkpoint to {} ({} parameters)",
        ckpt.display(),
        net.params().len()
    );
    let restored = models::small_cnn(6, ds.num_classes(), (ds.hw(), ds.hw()), bits.len(), 99);
    checkpoint::load(&restored, &ckpt)?;
    println!("restored into a freshly built network (matched by name)");

    // Artifact 2: per-bit-width dataflows for the heaviest layer.
    let device = Device::eyeriss_like();
    let workloads = workloads_from_specs(&net.specs(), 1);
    let heaviest = workloads
        .iter()
        .max_by_key(|w| w.macs())
        .expect("network has layers");
    for hw_bits in [4u8, 16] {
        let found = evolve_layer(
            &heaviest.dims,
            &device,
            hw_bits,
            &MapperConfig {
                max_evals: 300,
                ..MapperConfig::default()
            },
        );
        println!("\n--- dataflow for {hw_bits}-bit execution ---");
        print!("{}", emit_loop_nest(&heaviest.dims, &found.mapping));
        println!("\nenergy breakdown:\n{}", format_breakdown(&found.cost));
    }

    // Artifact 3: a mixed-precision layer assignment under a mean-bits
    // budget (deployment-side HAQ-style allocation).
    let alloc = allocate_bits(
        &workloads,
        &device,
        &[4, 8, 16],
        6.0,
        &MapperConfig {
            max_evals: 150,
            ..MapperConfig::default()
        },
    );
    println!(
        "--- mixed-precision allocation (mean bits {:.2}, total EDP {:.3e}) ---",
        alloc.mean_bits, alloc.total_edp
    );
    for (i, layer) in alloc.layers.iter().enumerate() {
        println!("  layer {i}: {} bits, EDP {:.3e}", layer.bits, layer.edp);
    }
    Ok(())
}
