//! Compares switchable-precision training strategies — CDT vs the SP and
//! AdaBits baselines vs independently trained per-bit models — on a
//! MobileNetV2-style network, a miniature of the paper's Table I.
//!
//! ```sh
//! cargo run --release -p instantnet --example switchable_training
//! ```

use instantnet_data::{Dataset, DatasetSpec};
use instantnet_nn::models;
use instantnet_quant::BitWidthSet;
use instantnet_train::{train_independent, PrecisionLadder, Strategy, TrainConfig, Trainer};

fn main() {
    let ds = Dataset::generate(&DatasetSpec::cifar100_like());
    let bits = BitWidthSet::new(vec![4, 8, 32]).expect("valid set");
    let ladder = PrecisionLadder::uniform(&bits);
    let cfg = TrainConfig {
        epochs: 8,
        ..TrainConfig::default()
    };
    let build = |n_bits: usize, seed: u64| {
        models::mobilenet_v2(0.12, 4, ds.num_classes(), (ds.hw(), ds.hw()), n_bits, seed)
    };

    println!(
        "training four strategies on {} (bit set 4/8/32)...",
        ds.spec().name
    );
    let mut rows: Vec<(String, Vec<f32>)> = Vec::new();
    for strategy in [Strategy::cdt(), Strategy::sp_net(), Strategy::AdaBits] {
        let net = build(bits.len(), 7);
        let report = Trainer::new(cfg).train(&net, &ds, &ladder, strategy);
        rows.push((strategy.label().to_string(), report.accuracy_per_rung));
        println!("  {} done", strategy.label());
    }
    let independent = train_independent(|i| build(1, 1000 + i as u64), &ds, &ladder, cfg);
    rows.push(("SBM-indep".to_string(), independent));
    println!("  SBM-indep done");

    println!("\n{:<12}", "strategy");
    print!("{:<12}", "");
    for b in bits.widths() {
        print!("{:>10}", b.to_string());
    }
    println!();
    for (name, accs) in &rows {
        print!("{name:<12}");
        for a in accs {
            print!("{:>9.1}%", 100.0 * a);
        }
        println!();
    }
    println!("\nexpected shape (paper Table I): CDT >= SP/AdaBits, largest gap at 4-bit.");
}
