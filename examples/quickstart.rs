//! Quickstart: generate, train and deploy a switchable-precision network
//! end-to-end on a synthetic dataset, then print its operating points.
//!
//! ```sh
//! cargo run --release -p instantnet --example quickstart
//! ```

use instantnet::{Pipeline, PipelineConfig};
use instantnet_data::{Dataset, DatasetSpec};

fn main() {
    let ds = Dataset::generate(&DatasetSpec::tiny());
    println!(
        "dataset: {} ({} classes, {} train / {} test samples)",
        ds.spec().name,
        ds.num_classes(),
        ds.train().len(),
        ds.test().len()
    );

    let pipeline = Pipeline::new(PipelineConfig::quick());
    println!(
        "running InstantNet: SP-NAS -> CDT -> AutoMapper on {} ...",
        pipeline.config().device.name
    );
    let report = pipeline.run(&ds);

    println!("\nderived architecture: {}", report.arch());
    println!("FLOPs/sample: {}", report.flops());
    println!(
        "\n{:<8} {:>9} {:>14} {:>12} {:>14}",
        "bits", "accuracy", "energy (pJ)", "latency (s)", "EDP (pJ*s)"
    );
    for p in report.points() {
        println!(
            "{:<8} {:>8.1}% {:>14.3e} {:>12.3e} {:>14.3e}",
            p.bits.to_string(),
            100.0 * p.accuracy,
            p.energy_pj,
            p.latency_s,
            p.edp
        );
    }

    // Instantaneous switching: pick the best point under an energy budget.
    let budget = report.points()[0].energy_pj * 1.5;
    if let Some(p) = report.select(budget) {
        println!(
            "\nunder a {budget:.3e} pJ budget the runtime would switch to {} ({:.1}% accuracy)",
            p.bits,
            100.0 * p.accuracy
        );
    }
}
