//! Hardware-energy-aware architecture search: Eq. 2's efficiency loss with
//! *device energy* per candidate operator instead of FLOPs.
//!
//! Builds the per-slot/per-candidate energy table for the Eyeriss-like
//! ASIC at the bottleneck bit-width, runs SP-NAS under both cost bases,
//! and compares the derived architectures' FLOPs and modeled energy.
//!
//! ```sh
//! cargo run --release -p instantnet --example energy_aware_nas
//! ```

use instantnet_automapper::{map_network, MapperConfig};
use instantnet_data::{Dataset, DatasetSpec};
use instantnet_hwmodel::{workloads_from_specs, Device};
use instantnet_nas::{
    energy_table, search, search_with_cost, EfficiencyCost, NasConfig, SearchMode, SearchSpace,
};
use instantnet_quant::BitWidthSet;

fn main() {
    let ds = Dataset::generate(&DatasetSpec::tiny());
    let space = SearchSpace::cifar_tiny(3);
    let bits = BitWidthSet::new(vec![4, 32]).expect("valid set");
    let device = Device::eyeriss_like();
    let cfg = NasConfig {
        epochs: 3,
        lambda: 1.0,
        ..NasConfig::default()
    };

    println!(
        "building per-candidate energy table on {} at 4-bit...",
        device.name
    );
    let table = energy_table(&space, &device, 4);
    for (slot, row) in table.iter().enumerate() {
        let labels = &space.layers()[slot].candidates;
        let cells: Vec<String> = row
            .iter()
            .zip(labels)
            .map(|(e, c)| format!("{}={:.2e}pJ", c.label(), e))
            .collect();
        println!("  slot {slot}: {}", cells.join("  "));
    }

    println!("\nsearching with FLOPs efficiency loss...");
    let flops_based = search(&space, &ds, &bits, SearchMode::SpNas, cfg);
    println!("searching with device-energy efficiency loss...");
    let energy_based = search_with_cost(
        &space,
        &ds,
        &bits,
        SearchMode::SpNas,
        cfg,
        EfficiencyCost::Table(table),
    );

    let mapper = MapperConfig {
        max_evals: 200,
        ..MapperConfig::default()
    };
    for (name, outcome) in [
        ("FLOPs-aware", &flops_based),
        ("energy-aware", &energy_based),
    ] {
        let net = outcome.arch.build_network(ds.num_classes(), 1, 0);
        let workloads = workloads_from_specs(&net.specs(), 1);
        let (_, cost) = map_network(&workloads, &device, 4, &mapper);
        println!(
            "\n{name}: arch {}  FLOPs {}  modeled 4-bit energy {:.3e} pJ",
            outcome.arch.describe(),
            outcome.derived_flops,
            cost.energy_pj
        );
    }
    println!("\nwith equal lambda, the energy table penalizes operators by their true device cost (DRAM-heavy 5x5 depthwise vs cheap 1x1), not just arithmetic count.");
}
