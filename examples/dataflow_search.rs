//! Searches dataflows for AlexNet's conv layers with the evolutionary
//! AutoMapper and compares against the Eyeriss row-stationary and MAGNet
//! template baselines — a miniature of the paper's Fig. 5 (ASIC side).
//!
//! ```sh
//! cargo run --release -p instantnet --example dataflow_search
//! ```

use instantnet_automapper::{evolve_layer, MapperConfig};
use instantnet_dataflow::ConvDims;
use instantnet_hwmodel::{baselines, evaluate_layer, Device};
use instantnet_nn::shapes;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let device = Device::eyeriss_like();
    let bits = 16u8;
    let cfg = MapperConfig {
        max_evals: 800,
        ..MapperConfig::default()
    };
    println!(
        "searching AlexNet conv dataflows on {} at {bits}-bit\n",
        device.name
    );
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>10}",
        "layer", "eyeriss EDP", "magnet EDP", "automap EDP", "saving"
    );
    let mut total_eyeriss = 0.0;
    let mut total_auto = 0.0;
    for (li, spec) in shapes::alexnet_convs().iter().enumerate() {
        let (oh, ow) = spec.out_hw();
        let dims = ConvDims::new(
            1,
            spec.out_c,
            spec.in_c,
            oh,
            ow,
            spec.kernel,
            spec.kernel,
            spec.stride,
        );
        let eyeriss = baselines::eyeriss_row_stationary(&dims, &device, bits);
        let edp_eyeriss = evaluate_layer(&dims, &eyeriss, &device, bits)
            .expect("legalized")
            .edp();
        let mut rng = StdRng::seed_from_u64(li as u64);
        let magnet = baselines::magnet_search(&dims, &device, bits, 400, &mut rng);
        let edp_magnet = evaluate_layer(&dims, &magnet, &device, bits)
            .expect("magnet best is legal")
            .edp();
        let auto = evolve_layer(
            &dims,
            &device,
            bits,
            &MapperConfig {
                seed: li as u64,
                ..cfg
            },
        );
        let edp_auto = auto.cost.edp();
        total_eyeriss += edp_eyeriss;
        total_auto += edp_auto;
        println!(
            "conv{:<4} {:>14.3e} {:>14.3e} {:>14.3e} {:>9.1}%",
            li + 1,
            edp_eyeriss,
            edp_magnet,
            edp_auto,
            100.0 * (1.0 - edp_auto / edp_eyeriss)
        );
    }
    println!(
        "\ntotal EDP reduction vs Eyeriss: {:.1}% (paper Fig. 5 reports 65.76% on AlexNet)",
        100.0 * (1.0 - total_auto / total_eyeriss)
    );
}
