//! Plain-text serialization of mappings, so searched dataflows can be
//! stored next to experiment results and reloaded for deployment.
//!
//! The format is line-oriented and human-editable:
//!
//! ```text
//! dram N1 K4 C2 Y1 X1 R1 S1 order NKCYXRS
//! gbuf N1 K2 C4 Y2 X1 R1 S1 order KCYXNRS
//! spat N1 K8 C1 Y4 X1 R1 S1
//! rf   N1 K1 C2 Y2 X8 R3 S3
//! mode multi-cycle
//! ```

use crate::{Dim, LoopOrder, Mapping, Tiling};
use std::error::Error;
use std::fmt;

/// Error parsing a textual mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseMappingError {
    /// A required line (`dram`/`gbuf`/`spat`/`rf`/`mode`) is missing.
    MissingSection(&'static str),
    /// A tiling entry was malformed (expected e.g. `K4`).
    BadFactor(String),
    /// A loop order was not a permutation of `NKCYXRS`.
    BadOrder(String),
    /// The mode line was neither `pipeline` nor `multi-cycle`.
    BadMode(String),
}

impl fmt::Display for ParseMappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseMappingError::MissingSection(s) => write!(f, "missing '{s}' line"),
            ParseMappingError::BadFactor(t) => write!(f, "malformed tiling factor '{t}'"),
            ParseMappingError::BadOrder(t) => write!(f, "malformed loop order '{t}'"),
            ParseMappingError::BadMode(t) => write!(f, "unknown execution mode '{t}'"),
        }
    }
}

impl Error for ParseMappingError {}

fn dim_char(d: Dim) -> char {
    match d {
        Dim::N => 'N',
        Dim::K => 'K',
        Dim::C => 'C',
        Dim::Y => 'Y',
        Dim::X => 'X',
        Dim::R => 'R',
        Dim::S => 'S',
    }
}

fn dim_from_char(c: char) -> Option<Dim> {
    Some(match c {
        'N' => Dim::N,
        'K' => Dim::K,
        'C' => Dim::C,
        'Y' => Dim::Y,
        'X' => Dim::X,
        'R' => Dim::R,
        'S' => Dim::S,
        _ => return None,
    })
}

fn tiling_to_text(t: &Tiling) -> String {
    Dim::ALL
        .iter()
        .map(|&d| format!("{}{}", dim_char(d), t.factor(d)))
        .collect::<Vec<_>>()
        .join(" ")
}

fn order_to_text(o: &LoopOrder) -> String {
    o.dims().iter().map(|&d| dim_char(d)).collect()
}

/// Serializes a mapping to the line-oriented text format.
pub fn mapping_to_text(m: &Mapping) -> String {
    format!(
        "dram {} order {}\ngbuf {} order {}\nspat {}\nrf   {}\nmode {}\n",
        tiling_to_text(&m.dram),
        order_to_text(&m.order_dram),
        tiling_to_text(&m.gbuf),
        order_to_text(&m.order_gbuf),
        tiling_to_text(&m.spatial),
        tiling_to_text(&m.rf),
        if m.pipelined {
            "pipeline"
        } else {
            "multi-cycle"
        }
    )
}

fn parse_tiling(tokens: &[&str]) -> Result<Tiling, ParseMappingError> {
    let mut t = Tiling::unit();
    for tok in tokens {
        let mut chars = tok.chars();
        let d = chars
            .next()
            .and_then(dim_from_char)
            .ok_or_else(|| ParseMappingError::BadFactor(tok.to_string()))?;
        let f: usize = chars
            .as_str()
            .parse()
            .map_err(|_| ParseMappingError::BadFactor(tok.to_string()))?;
        if f == 0 {
            return Err(ParseMappingError::BadFactor(tok.to_string()));
        }
        t.set(d, f);
    }
    Ok(t)
}

fn parse_order(text: &str) -> Result<LoopOrder, ParseMappingError> {
    if text.len() != 7 {
        return Err(ParseMappingError::BadOrder(text.to_string()));
    }
    let mut dims = [Dim::N; 7];
    let mut seen = [false; 7];
    for (i, c) in text.chars().enumerate() {
        let d = dim_from_char(c).ok_or_else(|| ParseMappingError::BadOrder(text.to_string()))?;
        if seen[d.index()] {
            return Err(ParseMappingError::BadOrder(text.to_string()));
        }
        seen[d.index()] = true;
        dims[i] = d;
    }
    Ok(LoopOrder::new(dims))
}

/// Parses the text format produced by [`mapping_to_text`].
///
/// # Errors
///
/// Returns a [`ParseMappingError`] describing the first malformed line.
pub fn mapping_from_text(text: &str) -> Result<Mapping, ParseMappingError> {
    let mut dram: Option<(Tiling, LoopOrder)> = None;
    let mut gbuf: Option<(Tiling, LoopOrder)> = None;
    let mut spat: Option<Tiling> = None;
    let mut rf: Option<Tiling> = None;
    let mut mode: Option<bool> = None;
    for line in text.lines() {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.split_first() {
            Some((&"dram", rest)) | Some((&"gbuf", rest)) => {
                let split = rest
                    .iter()
                    .position(|&t| t == "order")
                    .ok_or(ParseMappingError::MissingSection("order"))?;
                let tiling = parse_tiling(&rest[..split])?;
                let order = parse_order(rest.get(split + 1).copied().unwrap_or(""))?;
                if tokens[0] == "dram" {
                    dram = Some((tiling, order));
                } else {
                    gbuf = Some((tiling, order));
                }
            }
            Some((&"spat", rest)) => spat = Some(parse_tiling(rest)?),
            Some((&"rf", rest)) => rf = Some(parse_tiling(rest)?),
            Some((&"mode", rest)) => {
                mode = Some(match rest.first().copied() {
                    Some("pipeline") => true,
                    Some("multi-cycle") => false,
                    other => {
                        return Err(ParseMappingError::BadMode(other.unwrap_or("").to_string()))
                    }
                })
            }
            _ => {} // blank or comment lines are ignored
        }
    }
    let (dram, order_dram) = dram.ok_or(ParseMappingError::MissingSection("dram"))?;
    let (gbuf, order_gbuf) = gbuf.ok_or(ParseMappingError::MissingSection("gbuf"))?;
    Ok(Mapping {
        dram,
        gbuf,
        spatial: spat.ok_or(ParseMappingError::MissingSection("spat"))?,
        rf: rf.ok_or(ParseMappingError::MissingSection("rf"))?,
        order_dram,
        order_gbuf,
        pipelined: mode.ok_or(ParseMappingError::MissingSection("mode"))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConvDims;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_random_mappings() {
        let dims = ConvDims::new(2, 16, 8, 10, 10, 3, 3, 1);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            let m = Mapping::random(&dims, &mut rng);
            let text = mapping_to_text(&m);
            let back = mapping_from_text(&text).expect("roundtrip parses");
            assert_eq!(back, m, "text was:\n{text}");
        }
    }

    #[test]
    fn parse_rejects_bad_factor() {
        let text = "dram N1 Kx C1 Y1 X1 R1 S1 order NKCYXRS\ngbuf N1 K1 C1 Y1 X1 R1 S1 order NKCYXRS\nspat N1 K1 C1 Y1 X1 R1 S1\nrf N1 K1 C1 Y1 X1 R1 S1\nmode pipeline\n";
        assert!(matches!(
            mapping_from_text(text),
            Err(ParseMappingError::BadFactor(_))
        ));
    }

    #[test]
    fn parse_rejects_non_permutation_order() {
        let text = "dram N1 K1 C1 Y1 X1 R1 S1 order NNCYXRS\ngbuf N1 K1 C1 Y1 X1 R1 S1 order NKCYXRS\nspat N1 K1 C1 Y1 X1 R1 S1\nrf N1 K1 C1 Y1 X1 R1 S1\nmode pipeline\n";
        assert!(matches!(
            mapping_from_text(text),
            Err(ParseMappingError::BadOrder(_))
        ));
    }

    #[test]
    fn parse_rejects_missing_sections_and_bad_mode() {
        assert!(matches!(
            mapping_from_text(""),
            Err(ParseMappingError::MissingSection("dram"))
        ));
        let text = "dram N1 K1 C1 Y1 X1 R1 S1 order NKCYXRS\ngbuf N1 K1 C1 Y1 X1 R1 S1 order NKCYXRS\nspat N1 K1 C1 Y1 X1 R1 S1\nrf N1 K1 C1 Y1 X1 R1 S1\nmode warp-speed\n";
        assert!(matches!(
            mapping_from_text(text),
            Err(ParseMappingError::BadMode(_))
        ));
    }

    #[test]
    fn blank_lines_and_unknown_lines_ignored() {
        let dims = ConvDims::new(1, 4, 4, 4, 4, 3, 3, 1);
        let m = Mapping::random(&dims, &mut StdRng::seed_from_u64(1));
        let text = format!("# a comment\n\n{}", mapping_to_text(&m));
        assert_eq!(mapping_from_text(&text).unwrap(), m);
    }
}
