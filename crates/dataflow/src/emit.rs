//! Emission of mappings as human-readable nested-loop listings — the
//! "commonly used nested for-loop descriptions" the paper builds its
//! design space on (Fig. 3).

use crate::{ConvDims, Dim, LoopOrder, Mapping, Tiling};
use std::fmt::Write as _;

/// Emits one memory level's loops, outermost first, skipping unit factors.
fn emit_level(
    out: &mut String,
    label: &str,
    tiling: &Tiling,
    order: &LoopOrder,
    indent: &mut usize,
) {
    let mut wrote_header = false;
    for &d in order.dims() {
        let f = tiling.factor(d);
        if f == 1 {
            continue;
        }
        if !wrote_header {
            let _ = writeln!(out, "{}// --- {label} ---", "  ".repeat(*indent));
            wrote_header = true;
        }
        let _ = writeln!(
            out,
            "{}for {}{} in 0..{} {{",
            "  ".repeat(*indent),
            d.to_string().to_lowercase(),
            indent,
            f
        );
        *indent += 1;
    }
}

/// Renders a [`Mapping`] as a nested `for`-loop pseudocode listing with one
/// section per memory level plus the spatial (`parallel_for`) unrolling,
/// ending in the MAC statement.
///
/// # Example
///
/// ```
/// use instantnet_dataflow::{emit_loop_nest, ConvDims, Mapping};
/// use rand::{rngs::StdRng, SeedableRng};
/// let dims = ConvDims::new(1, 8, 4, 4, 4, 3, 3, 1);
/// let mapping = Mapping::random(&dims, &mut StdRng::seed_from_u64(0));
/// let listing = emit_loop_nest(&dims, &mapping);
/// assert!(listing.contains("MAC"));
/// ```
pub fn emit_loop_nest(dims: &ConvDims, mapping: &Mapping) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// layer {dims}  ({} mode)",
        if mapping.pipelined {
            "pipeline"
        } else {
            "multi-cycle"
        }
    );
    let mut indent = 0usize;
    emit_level(
        &mut out,
        "DRAM",
        &mapping.dram,
        &mapping.order_dram,
        &mut indent,
    );
    emit_level(
        &mut out,
        "global buffer",
        &mapping.gbuf,
        &mapping.order_gbuf,
        &mut indent,
    );
    // Spatial level: parallel_for over the PE array.
    let mut wrote = false;
    for d in Dim::ALL {
        let f = mapping.spatial.factor(d);
        if f == 1 {
            continue;
        }
        if !wrote {
            let _ = writeln!(out, "{}// --- PE array (spatial) ---", "  ".repeat(indent));
            wrote = true;
        }
        let _ = writeln!(
            out,
            "{}parallel_for {}_pe in 0..{} {{",
            "  ".repeat(indent),
            d.to_string().to_lowercase(),
            f
        );
        indent += 1;
    }
    // RF level in canonical order (order has no cost effect at this level).
    emit_level(
        &mut out,
        "register file",
        &mapping.rf,
        &LoopOrder::canonical(),
        &mut indent,
    );
    let _ = writeln!(
        out,
        "{}O[n][k][y][x] += W[k][c][r][s] * I[n][c][y*{}+r][x*{}+s]; // MAC",
        "  ".repeat(indent),
        dims.stride,
        dims.stride
    );
    for i in (0..indent).rev() {
        let _ = writeln!(out, "{}}}", "  ".repeat(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> (ConvDims, Mapping) {
        let dims = ConvDims::new(1, 8, 4, 6, 6, 3, 3, 1);
        let mapping = Mapping::random(&dims, &mut StdRng::seed_from_u64(1));
        (dims, mapping)
    }

    #[test]
    fn listing_is_balanced() {
        let (dims, mapping) = sample();
        let s = emit_loop_nest(&dims, &mapping);
        let opens = s.matches('{').count();
        let closes = s.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces in:\n{s}");
    }

    #[test]
    fn listing_contains_mac_and_mode() {
        let (dims, mut mapping) = sample();
        mapping.pipelined = true;
        let s = emit_loop_nest(&dims, &mapping);
        assert!(s.contains("MAC"));
        assert!(s.contains("pipeline"));
    }

    #[test]
    fn unit_factors_are_skipped() {
        let dims = ConvDims::new(1, 1, 1, 1, 1, 1, 1, 1);
        let mapping = crate::Mapping {
            dram: Tiling::unit(),
            gbuf: Tiling::unit(),
            spatial: Tiling::unit(),
            rf: Tiling::unit(),
            order_dram: LoopOrder::canonical(),
            order_gbuf: LoopOrder::canonical(),
            pipelined: false,
        };
        let s = emit_loop_nest(&dims, &mapping);
        assert!(!s.contains("for "), "no loops expected:\n{s}");
        assert!(s.contains("MAC"));
    }

    #[test]
    fn loop_count_matches_nonunit_factors() {
        let (dims, mapping) = sample();
        let s = emit_loop_nest(&dims, &mapping);
        let expected = Dim::ALL
            .iter()
            .map(|&d| {
                [
                    mapping.dram.factor(d),
                    mapping.gbuf.factor(d),
                    mapping.spatial.factor(d),
                    mapping.rf.factor(d),
                ]
                .iter()
                .filter(|&&f| f > 1)
                .count()
            })
            .sum::<usize>();
        let actual = s.matches("for ").count(); // includes parallel_for
        assert_eq!(actual, expected);
    }
}
