//! Mappings: per-level tilings, loop orders, spatial unrolling, and the
//! reuse analysis they induce.

use crate::{ConvDims, Dim, TensorKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// Per-dimension tiling factors at one memory level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tiling([usize; 7]);

impl Tiling {
    /// All-ones tiling (the level contributes no iteration).
    pub fn unit() -> Self {
        Tiling([1; 7])
    }

    /// Creates a tiling from factors in [`Dim::ALL`] order.
    ///
    /// # Panics
    ///
    /// Panics if any factor is zero.
    pub fn new(factors: [usize; 7]) -> Self {
        assert!(
            factors.iter().all(|&f| f > 0),
            "tiling factors must be positive"
        );
        Tiling(factors)
    }

    /// Factor for `dim`.
    pub fn factor(&self, dim: Dim) -> usize {
        self.0[dim.index()]
    }

    /// Sets the factor for `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `f == 0`.
    pub fn set(&mut self, dim: Dim, f: usize) {
        assert!(f > 0, "tiling factors must be positive");
        self.0[dim.index()] = f;
    }

    /// Product of all factors.
    pub fn product(&self) -> u64 {
        self.0.iter().map(|&f| f as u64).product()
    }

    /// Product of factors over dims relevant to `tensor`.
    pub fn relevant_product(&self, tensor: TensorKind) -> u64 {
        Dim::ALL
            .iter()
            .filter(|&&d| tensor.relevant(d))
            .map(|&d| self.factor(d) as u64)
            .product()
    }
}

impl fmt::Display for Tiling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in Dim::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{d}{}", self.0[i])?;
        }
        Ok(())
    }
}

/// A processing order of the seven dimensions at one memory level
/// (outermost first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopOrder([Dim; 7]);

impl LoopOrder {
    /// Canonical `N K C Y X R S` order.
    pub fn canonical() -> Self {
        LoopOrder(Dim::ALL)
    }

    /// Creates an order, validating that it is a permutation.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is not a permutation of all seven dimensions.
    pub fn new(dims: [Dim; 7]) -> Self {
        let mut seen = [false; 7];
        for d in dims {
            assert!(!seen[d.index()], "loop order repeats {d}");
            seen[d.index()] = true;
        }
        LoopOrder(dims)
    }

    /// A uniformly random permutation.
    pub fn random(rng: &mut StdRng) -> Self {
        let mut dims = Dim::ALL;
        dims.shuffle(rng);
        LoopOrder(dims)
    }

    /// The order, outermost first.
    pub fn dims(&self) -> &[Dim; 7] {
        &self.0
    }

    /// Position of `dim` (0 = outermost).
    pub fn position(&self, dim: Dim) -> usize {
        self.0.iter().position(|&d| d == dim).expect("permutation")
    }

    /// Swaps the loops at positions `a` and `b`.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.0.swap(a, b);
    }
}

impl fmt::Display for LoopOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ">")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// The temporal memory levels of the modeled hierarchy, outermost first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Off-chip DRAM.
    Dram,
    /// On-chip global buffer.
    GlobalBuffer,
    /// Per-PE register file (innermost temporal loops).
    RegisterFile,
}

impl Level {
    /// Outer-to-inner order.
    pub const ALL: [Level; 3] = [Level::Dram, Level::GlobalBuffer, Level::RegisterFile];
}

/// A complete algorithm-to-device mapping for one layer.
///
/// Invariant (checked by [`Mapping::covers`]): for every dimension, the
/// product of the four per-level factors is at least the loop bound
/// (over-provisioned iterations model tool padding).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mapping {
    /// DRAM-level (outermost) temporal tiling.
    pub dram: Tiling,
    /// Global-buffer-level temporal tiling.
    pub gbuf: Tiling,
    /// Spatial unrolling across the PE array (between buffer and RF).
    pub spatial: Tiling,
    /// Register-file-level (innermost) temporal tiling.
    pub rf: Tiling,
    /// Loop order of the DRAM-level loops.
    pub order_dram: LoopOrder,
    /// Loop order of the global-buffer-level loops.
    pub order_gbuf: LoopOrder,
    /// Pipeline (`true`) vs multi-cycle (`false`) layer execution.
    pub pipelined: bool,
}

impl Mapping {
    /// Samples a random legal-coverage mapping for `dims`.
    ///
    /// Factors are drawn divisor-style per level so the per-dim product
    /// covers the bound with modest padding; spatial unrolling favors `K`,
    /// `Y` and `C` (the dims real arrays unroll).
    pub fn random(dims: &ConvDims, rng: &mut StdRng) -> Self {
        let mut dram = Tiling::unit();
        let mut gbuf = Tiling::unit();
        let mut spatial = Tiling::unit();
        let mut rf = Tiling::unit();
        for d in Dim::ALL {
            let bound = dims.bound(d);
            // Split `bound` into per-level factors via successive draws.
            let f1 = sample_factor(rng, bound);
            let rem1 = bound.div_ceil(f1);
            let f2 = sample_factor(rng, rem1);
            let rem2 = rem1.div_ceil(f2);
            dram.set(d, f1);
            gbuf.set(d, f2);
            // Keep spatial unrolling on hardware-plausible dims.
            if matches!(d, Dim::K | Dim::C | Dim::Y) {
                let f3 = sample_factor(rng, rem2);
                spatial.set(d, f3);
                rf.set(d, rem2.div_ceil(f3));
            } else {
                spatial.set(d, 1);
                rf.set(d, rem2);
            }
        }
        Mapping {
            dram,
            gbuf,
            spatial,
            rf,
            order_dram: LoopOrder::random(rng),
            order_gbuf: LoopOrder::random(rng),
            pipelined: rng.gen_bool(0.5),
        }
    }

    /// Whether the per-dimension factor products cover every loop bound.
    pub fn covers(&self, dims: &ConvDims) -> bool {
        Dim::ALL.iter().all(|&d| {
            let prod = self.dram.factor(d) as u64
                * self.gbuf.factor(d) as u64
                * self.spatial.factor(d) as u64
                * self.rf.factor(d) as u64;
            prod >= dims.bound(d) as u64
        })
    }

    /// Number of PEs the spatial unrolling occupies.
    pub fn pes_used(&self) -> u64 {
        self.spatial.product()
    }

    /// Padded iteration count (≥ `dims.macs()` when factors over-cover).
    pub fn padded_macs(&self) -> u64 {
        self.dram.product() * self.gbuf.product() * self.spatial.product() * self.rf.product()
    }

    /// Per-PE register-file tile size (elements) of `tensor`.
    pub fn rf_tile(&self, tensor: TensorKind, dims: &ConvDims) -> u64 {
        tile_elems(tensor, dims, |d| self.rf.factor(d))
    }

    /// Global-buffer tile size (elements) of `tensor` — the RF tile scaled
    /// by the spatial and buffer-level temporal factors.
    pub fn gbuf_tile(&self, tensor: TensorKind, dims: &ConvDims) -> u64 {
        tile_elems(tensor, dims, |d| {
            self.rf.factor(d) * self.spatial.factor(d) * self.gbuf.factor(d)
        })
    }

    /// Times the global-buffer tile of `tensor` is (re)filled from DRAM.
    pub fn gbuf_fills(&self, tensor: TensorKind) -> u64 {
        level_multiplier(tensor, &self.dram, &self.order_dram)
    }

    /// Times the per-PE RF tile of `tensor` is (re)filled from the buffer.
    pub fn rf_fills(&self, tensor: TensorKind) -> u64 {
        self.gbuf_fills(tensor) * level_multiplier(tensor, &self.gbuf, &self.order_gbuf)
    }

    /// Uniform crossover with another mapping: each per-dimension tiling
    /// column and each loop order is inherited from one parent at random.
    /// Coverage is preserved because every column comes intact from a
    /// covering parent.
    pub fn crossover(&self, other: &Mapping, rng: &mut StdRng) -> Mapping {
        let mut child = self.clone();
        for d in Dim::ALL {
            if rng.gen_bool(0.5) {
                child.dram.set(d, other.dram.factor(d));
                child.gbuf.set(d, other.gbuf.factor(d));
                child.spatial.set(d, other.spatial.factor(d));
                child.rf.set(d, other.rf.factor(d));
            }
        }
        if rng.gen_bool(0.5) {
            child.order_dram = other.order_dram;
        }
        if rng.gen_bool(0.5) {
            child.order_gbuf = other.order_gbuf;
        }
        if rng.gen_bool(0.5) {
            child.pipelined = other.pipelined;
        }
        child
    }

    /// Randomly perturbs `k` features (tiling factors, loop positions, or
    /// the pipeline flag), preserving coverage of `dims` by rebalancing the
    /// RF factor.
    pub fn perturb(&self, dims: &ConvDims, rng: &mut StdRng, k: usize) -> Mapping {
        let mut m = self.clone();
        for _ in 0..k {
            match rng.gen_range(0..4) {
                0 => {
                    // Re-tile one dimension from scratch.
                    let d = Dim::ALL[rng.gen_range(0..7usize)];
                    let bound = dims.bound(d);
                    let f1 = sample_factor(rng, bound);
                    let rem1 = bound.div_ceil(f1);
                    let f2 = sample_factor(rng, rem1);
                    let rem2 = rem1.div_ceil(f2);
                    m.dram.set(d, f1);
                    m.gbuf.set(d, f2);
                    if matches!(d, Dim::K | Dim::C | Dim::Y) {
                        let f3 = sample_factor(rng, rem2);
                        m.spatial.set(d, f3);
                        m.rf.set(d, rem2.div_ceil(f3));
                    } else {
                        m.spatial.set(d, 1);
                        m.rf.set(d, rem2);
                    }
                }
                1 => {
                    let (a, b) = (rng.gen_range(0..7), rng.gen_range(0..7));
                    m.order_dram.swap(a, b);
                }
                2 => {
                    let (a, b) = (rng.gen_range(0..7), rng.gen_range(0..7));
                    m.order_gbuf.swap(a, b);
                }
                _ => m.pipelined = !m.pipelined,
            }
        }
        debug_assert!(m.covers(dims));
        m
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dram  [{}] order {}", self.dram, self.order_dram)?;
        writeln!(f, "gbuf  [{}] order {}", self.gbuf, self.order_gbuf)?;
        writeln!(f, "spat  [{}]", self.spatial)?;
        writeln!(f, "rf    [{}]", self.rf)?;
        write!(
            f,
            "mode  {}",
            if self.pipelined {
                "pipeline"
            } else {
                "multi-cycle"
            }
        )
    }
}

/// Draws a factor in `1..=bound` biased toward small values and exact
/// divisors (what practical tilings look like).
fn sample_factor(rng: &mut StdRng, bound: usize) -> usize {
    if bound <= 1 {
        return 1;
    }
    if rng.gen_bool(0.5) {
        // Prefer an exact divisor.
        let divs: Vec<usize> = (1..=bound).filter(|d| bound.is_multiple_of(*d)).collect();
        divs[rng.gen_range(0..divs.len())]
    } else {
        rng.gen_range(1..=bound)
    }
}

/// Elements of `tensor`'s tile when each dim's local extent is
/// `extent(dim)` (inputs grow by the stride/kernel halo).
fn tile_elems(tensor: TensorKind, dims: &ConvDims, extent: impl Fn(Dim) -> usize) -> u64 {
    match tensor {
        TensorKind::Weight => {
            (extent(Dim::K) * extent(Dim::C) * extent(Dim::R) * extent(Dim::S)) as u64
        }
        TensorKind::Output => {
            (extent(Dim::N) * extent(Dim::K) * extent(Dim::Y) * extent(Dim::X)) as u64
        }
        TensorKind::Input => {
            let ih = (extent(Dim::Y) - 1) * dims.stride + extent(Dim::R);
            let iw = (extent(Dim::X) - 1) * dims.stride + extent(Dim::S);
            (extent(Dim::N) * extent(Dim::C) * ih * iw) as u64
        }
    }
}

/// How many times one level's loops force the tensor's tile below to be
/// refetched: the product of the tensor-relevant factors times every
/// irrelevant factor whose loop sits *outside* the innermost relevant loop
/// (an irrelevant loop nested inside all relevant loops reuses the resident
/// tile).
fn level_multiplier(tensor: TensorKind, tiling: &Tiling, order: &LoopOrder) -> u64 {
    let innermost_relevant = order
        .dims()
        .iter()
        .rposition(|&d| tensor.relevant(d) && tiling.factor(d) > 1);
    let mut mult = 1u64;
    for (pos, &d) in order.dims().iter().enumerate() {
        let f = tiling.factor(d) as u64;
        if tensor.relevant(d) {
            mult *= f;
        } else if let Some(ir) = innermost_relevant {
            if pos < ir {
                mult *= f;
            }
        }
    }
    mult
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn dims() -> ConvDims {
        ConvDims::new(1, 16, 8, 8, 8, 3, 3, 1)
    }

    #[test]
    fn random_mapping_always_covers() {
        let d = dims();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let m = Mapping::random(&d, &mut rng);
            assert!(m.covers(&d));
            assert!(m.padded_macs() >= d.macs());
        }
    }

    #[test]
    fn perturb_preserves_coverage() {
        let d = dims();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = Mapping::random(&d, &mut rng);
        for _ in 0..30 {
            m = m.perturb(&d, &mut rng, 3);
            assert!(m.covers(&d));
        }
    }

    #[test]
    fn crossover_preserves_coverage_and_mixes_parents() {
        let d = dims();
        let mut rng = StdRng::seed_from_u64(5);
        let a = Mapping::random(&d, &mut rng);
        let b = Mapping::random(&d, &mut rng);
        let mut saw_a = false;
        let mut saw_b = false;
        for _ in 0..20 {
            let c = a.crossover(&b, &mut rng);
            assert!(c.covers(&d));
            if c.order_dram == a.order_dram {
                saw_a = true;
            }
            if c.order_dram == b.order_dram {
                saw_b = true;
            }
        }
        assert!(saw_a && saw_b, "crossover must inherit from both parents");
    }

    #[test]
    fn loop_order_is_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let o = LoopOrder::random(&mut rng);
            let mut idx: Vec<usize> = o.dims().iter().map(|d| d.index()).collect();
            idx.sort_unstable();
            assert_eq!(idx, (0..7).collect::<Vec<_>>());
        }
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn duplicate_loop_order_rejected() {
        let _ = LoopOrder::new([Dim::N, Dim::N, Dim::C, Dim::Y, Dim::X, Dim::R, Dim::S]);
    }

    #[test]
    fn weight_stationary_order_avoids_weight_refetch() {
        // All K,C,R,S loops innermost at DRAM level: irrelevant loops (N,Y,X)
        // outside relevant ones force refetches; relevant-inner order avoids
        // them for weights.
        let mut t = Tiling::unit();
        t.set(Dim::K, 4);
        t.set(Dim::Y, 8);
        // Order 1: Y outside K → weights refetched per Y iteration.
        let outer_y = LoopOrder::new([Dim::Y, Dim::K, Dim::N, Dim::C, Dim::X, Dim::R, Dim::S]);
        // Order 2: Y inside K → weight tile stays during Y.
        let inner_y = LoopOrder::new([Dim::K, Dim::Y, Dim::N, Dim::C, Dim::X, Dim::R, Dim::S]);
        let m_bad = level_multiplier(TensorKind::Weight, &t, &outer_y);
        let m_good = level_multiplier(TensorKind::Weight, &t, &inner_y);
        assert_eq!(m_good, 4);
        assert_eq!(m_bad, 32);
    }

    #[test]
    fn output_multiplier_ignores_inner_irrelevant_loops() {
        let mut t = Tiling::unit();
        t.set(Dim::C, 4); // irrelevant to outputs
        t.set(Dim::K, 2);
        let c_inner = LoopOrder::new([Dim::K, Dim::C, Dim::N, Dim::Y, Dim::X, Dim::R, Dim::S]);
        assert_eq!(level_multiplier(TensorKind::Output, &t, &c_inner), 2);
        let c_outer = LoopOrder::new([Dim::C, Dim::K, Dim::N, Dim::Y, Dim::X, Dim::R, Dim::S]);
        assert_eq!(level_multiplier(TensorKind::Output, &t, &c_outer), 8);
    }

    #[test]
    fn input_tile_includes_halo() {
        let d = ConvDims::new(1, 1, 2, 8, 8, 3, 3, 1);
        let mut m = Mapping {
            dram: Tiling::unit(),
            gbuf: Tiling::unit(),
            spatial: Tiling::unit(),
            rf: Tiling::unit(),
            order_dram: LoopOrder::canonical(),
            order_gbuf: LoopOrder::canonical(),
            pipelined: false,
        };
        m.rf.set(Dim::Y, 4);
        m.rf.set(Dim::X, 4);
        m.rf.set(Dim::R, 3);
        m.rf.set(Dim::S, 3);
        m.rf.set(Dim::C, 2);
        // Input tile: C=2, (4-1)*1+3 = 6 per side.
        assert_eq!(m.rf_tile(TensorKind::Input, &d), 2 * 36);
        assert_eq!(m.rf_tile(TensorKind::Weight, &d), 2 * 9);
        assert_eq!(m.rf_tile(TensorKind::Output, &d), 16);
    }

    #[test]
    fn rf_fills_compose_dram_and_gbuf_multipliers() {
        let mut m = Mapping {
            dram: Tiling::unit(),
            gbuf: Tiling::unit(),
            spatial: Tiling::unit(),
            rf: Tiling::unit(),
            order_dram: LoopOrder::canonical(),
            order_gbuf: LoopOrder::canonical(),
            pipelined: false,
        };
        m.dram.set(Dim::K, 2);
        m.gbuf.set(Dim::K, 4);
        // K relevant to weights at both levels.
        assert_eq!(m.gbuf_fills(TensorKind::Weight), 2);
        assert_eq!(m.rf_fills(TensorKind::Weight), 8);
        // K irrelevant to inputs; with canonical order (K before C/Y/X, which
        // all have factor 1) there is no relevant loop with factor > 1, so
        // inputs are fetched once.
        assert_eq!(m.rf_fills(TensorKind::Input), 1);
    }

    #[test]
    fn display_renders_all_sections() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Mapping::random(&dims(), &mut rng);
        let s = m.to_string();
        assert!(s.contains("dram"));
        assert!(s.contains("mode"));
    }
}
