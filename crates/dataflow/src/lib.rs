//! The generic dataflow design space of InstantNet's AutoMapper (§III-D).
//!
//! A convolution is a 7-deep loop nest over
//! `(N, K, C, Y, X, R, S)`. Executing it on a tiled accelerator
//! (DRAM → global buffer → PE-array register files → MACs) requires choosing,
//! per memory level:
//!
//! * **loop-size** — the tiling factor of each dimension at that level
//!   ([`Tiling`]);
//! * **loop-order** — the processing order of the dimensions
//!   ([`LoopOrder`]), which determines temporal reuse (an irrelevant loop
//!   nested *inside* all of a tensor's relevant loops lets its tile stay
//!   resident);
//! * **spatial unrolling** — which dimensions are spread across the PE
//!   array;
//! * **pipeline vs multi-cycle** — whether layers share the fabric in a
//!   pipeline or execute sequentially ([`Mapping::pipelined`]).
//!
//! The space is deliberately free of device parameters; costing lives in
//! `instantnet-hwmodel`.
//!
//! # Example
//!
//! ```
//! use instantnet_dataflow::{ConvDims, Mapping};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let dims = ConvDims::new(1, 64, 32, 16, 16, 3, 3, 1);
//! let mut rng = StdRng::seed_from_u64(0);
//! let m = Mapping::random(&dims, &mut rng);
//! assert!(m.covers(&dims));
//! ```

pub mod emit;
pub mod mapping;
pub mod serialize;
pub mod space;

pub use emit::emit_loop_nest;
pub use mapping::{LoopOrder, Mapping, Tiling};
pub use serialize::{mapping_from_text, mapping_to_text, ParseMappingError};
pub use space::{log10_space_size, PerturbKind};

use std::fmt;

/// The seven dimensions of a convolutional loop nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    /// Batch.
    N,
    /// Output channels (filters).
    K,
    /// Input channels.
    C,
    /// Output rows.
    Y,
    /// Output columns.
    X,
    /// Kernel rows.
    R,
    /// Kernel columns.
    S,
}

impl Dim {
    /// All seven dimensions in canonical order.
    pub const ALL: [Dim; 7] = [Dim::N, Dim::K, Dim::C, Dim::Y, Dim::X, Dim::R, Dim::S];

    /// Canonical index (position in [`Dim::ALL`]).
    pub fn index(&self) -> usize {
        Dim::ALL.iter().position(|d| d == self).expect("member")
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dim::N => "N",
            Dim::K => "K",
            Dim::C => "C",
            Dim::Y => "Y",
            Dim::X => "X",
            Dim::R => "R",
            Dim::S => "S",
        };
        write!(f, "{s}")
    }
}

/// The three operand tensors of a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorKind {
    /// Filter weights, indexed by `(K, C, R, S)`.
    Weight,
    /// Input activations, indexed by `(N, C, Y±R, X±S)`.
    Input,
    /// Output activations / partial sums, indexed by `(N, K, Y, X)`.
    Output,
}

impl TensorKind {
    /// All three operands.
    pub const ALL: [TensorKind; 3] = [TensorKind::Weight, TensorKind::Input, TensorKind::Output];

    /// Whether iterating `dim` changes which elements of this tensor are
    /// touched.
    pub fn relevant(&self, dim: Dim) -> bool {
        match self {
            TensorKind::Weight => matches!(dim, Dim::K | Dim::C | Dim::R | Dim::S),
            TensorKind::Input => !matches!(dim, Dim::K),
            TensorKind::Output => matches!(dim, Dim::N | Dim::K | Dim::Y | Dim::X),
        }
    }
}

/// The loop bounds of one convolution layer.
///
/// `y`/`x` are *output* spatial extents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvDims {
    /// Batch size.
    pub n: usize,
    /// Output channels.
    pub k: usize,
    /// Input channels (per group; grouped convs pass `c / groups`).
    pub c: usize,
    /// Output rows.
    pub y: usize,
    /// Output columns.
    pub x: usize,
    /// Kernel rows.
    pub r: usize,
    /// Kernel columns.
    pub s: usize,
    /// Spatial stride.
    pub stride: usize,
}

impl ConvDims {
    /// Creates loop bounds.
    ///
    /// # Panics
    ///
    /// Panics if any bound or the stride is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        k: usize,
        c: usize,
        y: usize,
        x: usize,
        r: usize,
        s: usize,
        stride: usize,
    ) -> Self {
        assert!(
            [n, k, c, y, x, r, s, stride].iter().all(|&v| v > 0),
            "all conv dims must be positive"
        );
        ConvDims {
            n,
            k,
            c,
            y,
            x,
            r,
            s,
            stride,
        }
    }

    /// Loop bound of a dimension.
    pub fn bound(&self, dim: Dim) -> usize {
        match dim {
            Dim::N => self.n,
            Dim::K => self.k,
            Dim::C => self.c,
            Dim::Y => self.y,
            Dim::X => self.x,
            Dim::R => self.r,
            Dim::S => self.s,
        }
    }

    /// Total multiply-accumulates.
    pub fn macs(&self) -> u64 {
        (self.n * self.k * self.c * self.y * self.x * self.r * self.s) as u64
    }

    /// Full-tensor element counts `(weights, inputs, outputs)`.
    pub fn tensor_sizes(&self) -> (u64, u64, u64) {
        let w = (self.k * self.c * self.r * self.s) as u64;
        let ih = (self.y - 1) * self.stride + self.r;
        let iw = (self.x - 1) * self.stride + self.s;
        let i = (self.n * self.c * ih * iw) as u64;
        let o = (self.n * self.k * self.y * self.x) as u64;
        (w, i, o)
    }
}

impl fmt::Display for ConvDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N{} K{} C{} Y{} X{} R{} S{} /{}",
            self.n, self.k, self.c, self.y, self.x, self.r, self.s, self.stride
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relevance_table_matches_conv_semantics() {
        use Dim::*;
        assert!(TensorKind::Weight.relevant(K));
        assert!(!TensorKind::Weight.relevant(N));
        assert!(!TensorKind::Weight.relevant(Y));
        assert!(TensorKind::Input.relevant(C));
        assert!(TensorKind::Input.relevant(R));
        assert!(!TensorKind::Input.relevant(K));
        assert!(TensorKind::Output.relevant(K));
        assert!(!TensorKind::Output.relevant(C));
        assert!(!TensorKind::Output.relevant(R));
    }

    #[test]
    fn macs_and_sizes() {
        let d = ConvDims::new(1, 4, 3, 8, 8, 3, 3, 1);
        assert_eq!(d.macs(), 4 * 3 * 64 * 9);
        let (w, i, o) = d.tensor_sizes();
        assert_eq!(w, 4 * 3 * 9);
        assert_eq!(i, 3 * 10 * 10);
        assert_eq!(o, 4 * 64);
    }

    #[test]
    fn strided_input_halo() {
        let d = ConvDims::new(1, 1, 1, 4, 4, 3, 3, 2);
        let (_, i, _) = d.tensor_sizes();
        // (4-1)*2+3 = 9 per side.
        assert_eq!(i, 81);
    }

    #[test]
    fn dim_index_roundtrip() {
        for (i, d) in Dim::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = ConvDims::new(0, 1, 1, 1, 1, 1, 1, 1);
    }
}
