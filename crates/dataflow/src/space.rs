//! Design-space cardinality accounting and perturbation taxonomy.

use crate::{ConvDims, Dim};

/// The kinds of features the evolutionary search can perturb — one per
/// design factor called out in the paper's generic dataflow space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PerturbKind {
    /// Re-draw one dimension's per-level tiling factors (loop-size).
    Retile,
    /// Swap two loops in the DRAM-level order.
    SwapDramOrder,
    /// Swap two loops in the buffer-level order.
    SwapBufferOrder,
    /// Toggle pipeline vs multi-cycle execution.
    TogglePipeline,
}

impl PerturbKind {
    /// All perturbation kinds.
    pub const ALL: [PerturbKind; 4] = [
        PerturbKind::Retile,
        PerturbKind::SwapDramOrder,
        PerturbKind::SwapBufferOrder,
        PerturbKind::TogglePipeline,
    ];
}

/// Number of ordered factorizations of `v` into `parts` factors
/// (with exact products; the sampled space also allows padded covers, so
/// this is a lower bound on loop-size choices).
fn ordered_factorizations(v: usize, parts: usize) -> f64 {
    if parts == 1 {
        return 1.0;
    }
    let mut total = 0.0;
    for d in 1..=v {
        if v.is_multiple_of(d) {
            total += ordered_factorizations(v / d, parts - 1);
        }
    }
    total
}

/// `log10` of a lower bound on the number of distinct mappings for one
/// layer: exact 4-level factorizations per dimension × two free loop
/// orders × the pipeline bit.
///
/// For AlexNet-scale layers this exceeds the paper's quoted `10^27`
/// aggregate, confirming the need for guided search.
pub fn log10_space_size(dims: &ConvDims) -> f64 {
    let mut log = 0.0;
    for d in Dim::ALL {
        log += ordered_factorizations(dims.bound(d), 4).log10();
    }
    // Two independent 7-loop orders (7!)^2 and the pipeline choice.
    let fact7 = 5040.0f64;
    log + 2.0 * fact7.log10() + 2.0f64.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorization_counts_small_cases() {
        assert_eq!(ordered_factorizations(1, 4) as u64, 1);
        // 2 into 4 ordered factors: choose which slot holds the 2 -> 4.
        assert_eq!(ordered_factorizations(2, 4) as u64, 4);
        // 4 = 2*2: slots for (4) -> 4 ways, (2,2) -> C(4,2)*1... enumerate: 10.
        assert_eq!(ordered_factorizations(4, 4) as u64, 10);
    }

    #[test]
    fn alexnet_conv2_space_is_astronomical() {
        // AlexNet conv2: N1 K256 C96 Y27 X27 R5 S5.
        let d = ConvDims::new(1, 256, 96, 27, 27, 5, 5, 1);
        let log = log10_space_size(&d);
        assert!(log > 15.0, "log10 space {log}");
    }

    #[test]
    fn space_grows_with_layer_size() {
        let small = ConvDims::new(1, 8, 8, 8, 8, 3, 3, 1);
        let large = ConvDims::new(1, 256, 256, 28, 28, 3, 3, 1);
        assert!(log10_space_size(&large) > log10_space_size(&small));
    }

    #[test]
    fn perturb_kinds_cover_all_design_factors() {
        assert_eq!(PerturbKind::ALL.len(), 4);
    }
}
