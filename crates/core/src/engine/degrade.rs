//! The hysteresis precision-downshift controller, shared by the simulated
//! resilient path and the wall-clock loop.
//!
//! The controller watches queue depth (the leading indicator of tail
//! latency) against a hysteresis band and holds the serving point a number
//! of operating-point *levels* below the policy's pick, moving at most one
//! level per recovery window. It is parameterized over an abstract
//! monotone `u64` tick so both drivers run the identical state machine:
//! the simulated path feeds step indices with a window in steps, the
//! wall-clock loop feeds elapsed microseconds with a window as a duration.

/// Hysteresis state machine over `(tick, depth, policy_idx)` observations.
pub(crate) struct HysteresisController {
    backlog_high: usize,
    backlog_low: usize,
    recovery_window: u64,
    levels: usize,
    last_transition: Option<u64>,
}

impl HysteresisController {
    /// `recovery_window` is in the caller's tick unit and must be ≥ 1
    /// (validated by each driver's config check).
    pub(crate) fn new(backlog_high: usize, backlog_low: usize, recovery_window: u64) -> Self {
        HysteresisController {
            backlog_high,
            backlog_low,
            recovery_window,
            levels: 0,
            last_transition: None,
        }
    }

    /// How many operating points below the policy's pick the model is
    /// currently held (0 = not degraded).
    pub(crate) fn levels(&self) -> usize {
        self.levels
    }

    /// Whether an [`HysteresisController::observe`] call at this depth
    /// would *downshift* (as opposed to hold or recover). Drivers that
    /// layer a dynamic batch controller on top use this to enforce the
    /// batch-before-bits priority: while the batch cap can still shrink,
    /// a would-be downshift observation is withheld entirely — depth
    /// pressure must first exhaust the output-invariant lever. Recovery
    /// observations are never withheld.
    pub(crate) fn would_downshift(&self, depth: usize, policy_idx: usize) -> bool {
        depth >= self.backlog_high && self.levels < policy_idx
    }

    /// Observes queue depth `depth` at tick `now` with the policy's pick at
    /// report index `policy_idx`. Downshifts one level when the depth
    /// reaches the high mark (never past index 0), recovers one level when
    /// it falls to the low mark, at most one move per recovery window.
    /// Returns the new level when a transition happened.
    pub(crate) fn observe(&mut self, now: u64, depth: usize, policy_idx: usize) -> Option<usize> {
        let window_open = self
            .last_transition
            .is_none_or(|lt| now - lt >= self.recovery_window);
        if !window_open {
            return None;
        }
        if depth >= self.backlog_high && self.levels < policy_idx {
            self.levels += 1;
        } else if depth <= self.backlog_low && self.levels > 0 {
            self.levels -= 1;
        } else {
            return None;
        }
        self.last_transition = Some(now);
        Some(self.levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_move_per_window_and_bounded_by_policy_index() {
        let mut c = HysteresisController::new(4, 1, 2);
        assert_eq!(c.observe(0, 10, 2), Some(1), "depth over high downshifts");
        assert_eq!(c.observe(1, 10, 2), None, "window still closed");
        assert_eq!(c.observe(2, 10, 2), Some(2));
        assert_eq!(c.observe(4, 10, 2), None, "cannot degrade past index 0");
        assert_eq!(c.levels(), 2);
        assert_eq!(c.observe(6, 0, 2), Some(1), "drain recovers one level");
        assert_eq!(c.observe(8, 0, 2), Some(0));
        assert_eq!(c.observe(10, 0, 2), None, "already recovered");
    }

    #[test]
    fn band_interior_never_moves() {
        let mut c = HysteresisController::new(8, 2, 1);
        assert_eq!(c.observe(0, 5, 3), None);
        assert_eq!(c.levels(), 0);
    }

    #[test]
    fn would_downshift_tracks_high_mark_and_floor() {
        let mut c = HysteresisController::new(4, 1, 1);
        assert!(c.would_downshift(4, 2), "at the high mark with room");
        assert!(!c.would_downshift(3, 2), "below the high mark");
        assert!(!c.would_downshift(10, 0), "already at index 0");
        c.observe(0, 10, 2);
        c.observe(1, 10, 2);
        assert_eq!(c.levels(), 2);
        assert!(
            !c.would_downshift(10, 2),
            "fully degraded: further pressure is a hold, not a downshift"
        );
    }
}
