//! The wall-clock run clock: monotone microseconds since serving start.
//!
//! This is the wall-clock half of the clock abstraction the engine
//! modules are parameterized over. The simulated paths' "clock" is the
//! step index `t`; the wall-clock loop measures an `Instant` anchor and
//! maps elapsed microseconds back onto trace steps with
//! [`RunClock::step_of`], so the same per-step budget schedule drives
//! both drivers.

use std::time::Instant;

/// Cheap copyable anchor shared by the ingress and worker threads.
#[derive(Clone, Copy)]
pub(crate) struct RunClock {
    start: Instant,
}

impl RunClock {
    pub(crate) fn start() -> Self {
        RunClock {
            start: Instant::now(),
        }
    }

    /// Microseconds elapsed since the run started.
    pub(crate) fn now_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// The trace step a wall-clock instant falls in, with `len` steps
    /// paced at `step_us` each; past the end of the trace the final step's
    /// budget persists (the drain phase).
    pub(crate) fn step_of(now_us: u64, step_us: u64, len: usize) -> usize {
        ((now_us / step_us.max(1)) as usize).min(len - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_mapping_clamps_to_the_final_step() {
        assert_eq!(RunClock::step_of(0, 1000, 4), 0);
        assert_eq!(RunClock::step_of(999, 1000, 4), 0);
        assert_eq!(RunClock::step_of(1000, 1000, 4), 1);
        assert_eq!(RunClock::step_of(3999, 1000, 4), 3);
        assert_eq!(RunClock::step_of(1_000_000, 1000, 4), 3, "drain phase");
    }

    #[test]
    fn clock_is_monotone() {
        let c = RunClock::start();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }
}
