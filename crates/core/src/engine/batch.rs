//! Batch tensor assembly, per-request output scatter, and the dynamic
//! batch controller, shared by every serving path.
//!
//! The contract all paths inherit: request `id` reuses
//! `inputs[id % inputs.len()]`, batches are built by concatenating the
//! chosen samples along dim 0, and the batch output is sliced back into
//! `[1, …]` per-request tensors in batch order. Because the packed engine
//! quantizes activations per sample, each scattered output is
//! bit-identical to a batch-of-one forward of the same input at the same
//! bit-width — which is what lets every higher serving layer claim
//! bit-identity with the layer below. [`BatchController`] sizes batches
//! from observed latency instead of the static `max_batch` knob; because
//! of the same per-sample quantization, a changing batch cap never
//! changes any request's output — only the timing statistics.

use crate::engine::stats::wait_summary;
use instantnet_tensor::Tensor;

/// Validates a request-input set: non-empty, every tensor `[1, …]`, all
/// one shape. Returns `(sample_dims, sample_len)` on success and the
/// human-readable config complaint otherwise (the simulated batched path
/// asserts on it; the fallible paths wrap it in a config error).
pub(crate) fn validate_inputs(inputs: &[Tensor]) -> Result<(Vec<usize>, usize), String> {
    let Some(first) = inputs.first() else {
        return Err("at least one request input is required".to_string());
    };
    if first.dims().first() != Some(&1) {
        return Err("request inputs must be single-sample [1, …] tensors".to_string());
    }
    if inputs.iter().any(|x| x.dims() != first.dims()) {
        return Err("request inputs must share one shape".to_string());
    }
    Ok((first.dims().to_vec(), first.len()))
}

/// Concatenates the requests' samples (`inputs[id % inputs.len()]` each)
/// into one `[ids.len(), …]` batch tensor.
pub(crate) fn gather_batch(
    inputs: &[Tensor],
    sample_dims: &[usize],
    sample_len: usize,
    ids: &[usize],
) -> Tensor {
    let mut data = Vec::with_capacity(ids.len() * sample_len);
    for &id in ids {
        data.extend_from_slice(inputs[id % inputs.len()].data());
    }
    let mut dims = sample_dims.to_vec();
    dims[0] = ids.len();
    Tensor::from_vec(dims, data)
}

/// Splits a batch output back into `n` per-request `[1, …]` tensors, in
/// batch order.
pub(crate) fn scatter_outputs(y: &Tensor, n: usize) -> Vec<Tensor> {
    let mut out_dims = y.dims().to_vec();
    out_dims[0] = 1;
    let out_len = y.len() / n;
    (0..n)
        .map(|j| {
            Tensor::from_vec(
                out_dims.clone(),
                y.data()[j * out_len..(j + 1) * out_len].to_vec(),
            )
        })
        .collect()
}

/// SLO-driven batch sizing: grow the batch cap while the measured p99
/// batch latency leaves slack against the deadline target, shrink it on a
/// breach.
///
/// The state machine is AIMD-shaped with a hysteresis dead band. Each
/// completed batch feeds its dequeue→completion latency; every `window`
/// observations the controller takes the nearest-rank p99 (the same
/// percentile definition as [`crate::engine::stats::wait_summary`]) and
/// decides once:
///
/// * p99 **above** `target_us` — breach: halve the cap (floor 1);
/// * p99 **at or below** `grow_below_us` (= headroom × target) — slack:
///   double the cap (hard ceiling `max`);
/// * in between — the dead band: hold. This is the hysteresis that keeps
///   the cap from oscillating when p99 hovers near the target.
///
/// Priority against the precision-downshift controller is decided by the
/// driver, not here: the wall-clock loop suppresses bit downshifts while
/// `current() > 1` — batch shrinks before bits drop — so the cheap,
/// output-invariant lever (smaller batches) is exhausted before the
/// accuracy-visible one (lower precision) engages.
pub(crate) struct BatchController {
    target_us: u64,
    grow_below_us: u64,
    window: usize,
    max: usize,
    cur: usize,
    sample: Vec<usize>,
    events: Vec<(usize, usize)>,
}

impl BatchController {
    /// `headroom_pct` ∈ (0, 100): grow only while the window p99 is at or
    /// below that percentage of the target. Bounds are validated by the
    /// driver's config check; `initial` is the starting cap.
    pub(crate) fn new(
        target_us: u64,
        headroom_pct: u32,
        window: usize,
        initial: usize,
        max: usize,
    ) -> Self {
        BatchController {
            target_us,
            grow_below_us: target_us * u64::from(headroom_pct) / 100,
            window,
            max,
            cur: initial.clamp(1, max),
            sample: Vec::with_capacity(window),
            events: Vec::new(),
        }
    }

    /// The batch cap currently in force.
    pub(crate) fn current(&self) -> usize {
        self.cur
    }

    /// Feeds one completed batch's dequeue→completion latency (µs);
    /// returns the new cap when this observation closed a window with a
    /// transition. `step` labels the transition in the event log.
    pub(crate) fn observe(&mut self, step: usize, latency_us: u64) -> Option<usize> {
        self.sample
            .push(usize::try_from(latency_us).unwrap_or(usize::MAX));
        if self.sample.len() < self.window {
            return None;
        }
        let p99 = wait_summary(&self.sample).p99;
        self.sample.clear();
        let next = if p99 > self.target_us as f64 {
            (self.cur / 2).max(1)
        } else if p99 <= self.grow_below_us as f64 {
            (self.cur * 2).min(self.max)
        } else {
            self.cur
        };
        if next == self.cur {
            return None;
        }
        self.cur = next;
        self.events.push((step, next));
        Some(next)
    }

    /// The transition log as `(step, new_cap)`, consuming the controller.
    pub(crate) fn into_events(self) -> Vec<(usize, usize)> {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_grows_under_slack_shrinks_on_breach() {
        // Target 1000µs, grow below 500µs, window 2, start at 1, cap 8.
        let mut c = BatchController::new(1000, 50, 2, 1, 8);
        assert_eq!(c.current(), 1);
        assert_eq!(c.observe(0, 100), None, "window not closed yet");
        assert_eq!(c.observe(0, 100), Some(2), "slack doubles the cap");
        c.observe(1, 100);
        assert_eq!(c.observe(1, 100), Some(4));
        c.observe(2, 100);
        assert_eq!(c.observe(2, 100), Some(8));
        c.observe(3, 100);
        assert_eq!(c.observe(3, 100), None, "hard max_batch ceiling");
        c.observe(4, 2000);
        assert_eq!(c.observe(4, 2000), Some(4), "breach halves the cap");
        c.observe(5, 2000);
        c.observe(5, 2000);
        c.observe(6, 2000);
        assert_eq!(c.observe(6, 2000), Some(1));
        c.observe(7, 2000);
        assert_eq!(c.observe(7, 2000), None, "floor at 1");
        assert_eq!(
            c.into_events(),
            vec![(0, 2), (1, 4), (2, 8), (4, 4), (5, 2), (6, 1)]
        );
    }

    #[test]
    fn controller_dead_band_holds_the_cap() {
        // Between grow_below (500) and target (1000): hold.
        let mut c = BatchController::new(1000, 50, 3, 4, 8);
        for _ in 0..12 {
            assert_eq!(c.observe(0, 700), None);
        }
        assert_eq!(c.current(), 4);
        assert!(c.into_events().is_empty());
    }

    #[test]
    fn controller_decides_on_window_p99_not_mean() {
        // 9 fast + 1 catastrophically slow: the p99 (nearest-rank = the
        // slow one) breaches even though the mean is comfortably inside.
        let mut c = BatchController::new(1000, 50, 10, 8, 8);
        for _ in 0..9 {
            assert_eq!(c.observe(0, 10), None);
        }
        assert_eq!(c.observe(0, 50_000), Some(4));
    }

    #[test]
    fn gather_wraps_ids_modulo_inputs() {
        let inputs = vec![
            Tensor::from_vec(vec![1, 2], vec![1.0, 2.0]),
            Tensor::from_vec(vec![1, 2], vec![3.0, 4.0]),
        ];
        let batch = gather_batch(&inputs, &[1, 2], 2, &[0, 1, 2]);
        assert_eq!(batch.dims(), &[3, 2]);
        assert_eq!(batch.data(), &[1.0, 2.0, 3.0, 4.0, 1.0, 2.0]);
    }

    #[test]
    fn scatter_splits_rows_in_batch_order() {
        let y = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let outs = scatter_outputs(&y, 2);
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].dims(), &[1, 3]);
        assert_eq!(outs[0].data(), &[1.0, 2.0, 3.0]);
        assert_eq!(outs[1].data(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn validate_rejects_shape_mismatches() {
        assert!(validate_inputs(&[]).is_err());
        let two = Tensor::zeros(&[2, 3]);
        assert!(validate_inputs(std::slice::from_ref(&two)).is_err());
        let a = Tensor::zeros(&[1, 3]);
        let b = Tensor::zeros(&[1, 4]);
        assert!(validate_inputs(&[a.clone(), b]).is_err());
        let (dims, len) = validate_inputs(&[a]).unwrap();
        assert_eq!(dims, vec![1, 3]);
        assert_eq!(len, 3);
    }
}
