//! Batch tensor assembly and per-request output scatter, shared by every
//! serving path.
//!
//! The contract all paths inherit: request `id` reuses
//! `inputs[id % inputs.len()]`, batches are built by concatenating the
//! chosen samples along dim 0, and the batch output is sliced back into
//! `[1, …]` per-request tensors in batch order. Because the packed engine
//! quantizes activations per sample, each scattered output is
//! bit-identical to a batch-of-one forward of the same input at the same
//! bit-width — which is what lets every higher serving layer claim
//! bit-identity with the layer below.

use instantnet_tensor::Tensor;

/// Validates a request-input set: non-empty, every tensor `[1, …]`, all
/// one shape. Returns `(sample_dims, sample_len)` on success and the
/// human-readable config complaint otherwise (the simulated batched path
/// asserts on it; the fallible paths wrap it in a config error).
pub(crate) fn validate_inputs(inputs: &[Tensor]) -> Result<(Vec<usize>, usize), String> {
    let Some(first) = inputs.first() else {
        return Err("at least one request input is required".to_string());
    };
    if first.dims().first() != Some(&1) {
        return Err("request inputs must be single-sample [1, …] tensors".to_string());
    }
    if inputs.iter().any(|x| x.dims() != first.dims()) {
        return Err("request inputs must share one shape".to_string());
    }
    Ok((first.dims().to_vec(), first.len()))
}

/// Concatenates the requests' samples (`inputs[id % inputs.len()]` each)
/// into one `[ids.len(), …]` batch tensor.
pub(crate) fn gather_batch(
    inputs: &[Tensor],
    sample_dims: &[usize],
    sample_len: usize,
    ids: &[usize],
) -> Tensor {
    let mut data = Vec::with_capacity(ids.len() * sample_len);
    for &id in ids {
        data.extend_from_slice(inputs[id % inputs.len()].data());
    }
    let mut dims = sample_dims.to_vec();
    dims[0] = ids.len();
    Tensor::from_vec(dims, data)
}

/// Splits a batch output back into `n` per-request `[1, …]` tensors, in
/// batch order.
pub(crate) fn scatter_outputs(y: &Tensor, n: usize) -> Vec<Tensor> {
    let mut out_dims = y.dims().to_vec();
    out_dims[0] = 1;
    let out_len = y.len() / n;
    (0..n)
        .map(|j| {
            Tensor::from_vec(
                out_dims.clone(),
                y.data()[j * out_len..(j + 1) * out_len].to_vec(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_wraps_ids_modulo_inputs() {
        let inputs = vec![
            Tensor::from_vec(vec![1, 2], vec![1.0, 2.0]),
            Tensor::from_vec(vec![1, 2], vec![3.0, 4.0]),
        ];
        let batch = gather_batch(&inputs, &[1, 2], 2, &[0, 1, 2]);
        assert_eq!(batch.dims(), &[3, 2]);
        assert_eq!(batch.data(), &[1.0, 2.0, 3.0, 4.0, 1.0, 2.0]);
    }

    #[test]
    fn scatter_splits_rows_in_batch_order() {
        let y = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let outs = scatter_outputs(&y, 2);
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].dims(), &[1, 3]);
        assert_eq!(outs[0].data(), &[1.0, 2.0, 3.0]);
        assert_eq!(outs[1].data(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn validate_rejects_shape_mismatches() {
        assert!(validate_inputs(&[]).is_err());
        let two = Tensor::zeros(&[2, 3]);
        assert!(validate_inputs(std::slice::from_ref(&two)).is_err());
        let a = Tensor::zeros(&[1, 3]);
        let b = Tensor::zeros(&[1, 4]);
        assert!(validate_inputs(&[a.clone(), b]).is_err());
        let (dims, len) = validate_inputs(&[a]).unwrap();
        assert_eq!(dims, vec![1, 3]);
        assert_eq!(len, 3);
    }
}
