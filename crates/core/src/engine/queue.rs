//! Ingress queues for the wall-clock serving loop: one shared MPMC queue
//! ([`SharedQueue`]) and a per-consumer sharded variant with work
//! stealing ([`ShardedQueues`]).
//!
//! Both are `Mutex<VecDeque>` + `Condvar` constructions — no external
//! crates, no tokio. The capacity bound *is* the admission cap: a full
//! queue rejects the push and the ingress thread records the request as
//! shed, exactly like the simulated paths' `max_queue_depth`. Re-queues
//! (retries, budget-infeasible batches handed back) go to the head and
//! bypass the cap — those requests were already admitted once.
//!
//! Shutdown protocol (identical for both): the last producer calls
//! `close` after the final arrival; consumers keep draining until the
//! queue is empty *and* closed, at which point `pop_batch` returns
//! [`Popped::Closed`] and the worker exits its loop. No request can be
//! stranded: every admitted item is either popped by a worker or still in
//! a deque — and every deque is provably empty when `Closed` is returned.
//!
//! **Why shard?** Under a hot burst, every push, pop, and length probe of
//! [`SharedQueue`] serializes on one mutex and one condvar — the
//! scheduling bottleneck the sharded mode removes. [`ShardedQueues`]
//! gives each consumer its own deque (uncontended in the steady state),
//! dispatches at ingress to the least-loaded shard, and lets an idle
//! consumer steal **half the chosen victim's backlog from the head** —
//! the same steal-half-of-deepest semantics as the simulated sharded
//! path's `ShardConfig::work_stealing`, refined by deadline slack: a peer
//! whose head request expires soonest is preferred over the merely
//! deepest one.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

struct Inner<T> {
    deque: VecDeque<T>,
    closed: bool,
    max_depth: usize,
}

/// What a consumer got from [`SharedQueue::pop_batch`].
pub(crate) enum Popped<T> {
    /// 1..=max items, FIFO from the head.
    Batch(Vec<T>),
    /// The queue is closed and fully drained; the consumer should exit.
    Closed,
}

/// The shared ingress queue: any number of producers and consumers.
pub(crate) struct SharedQueue<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
    capacity: usize,
}

impl<T> SharedQueue<T> {
    /// `capacity` of `None` = unbounded.
    pub(crate) fn new(capacity: Option<usize>) -> Self {
        SharedQueue {
            inner: Mutex::new(Inner {
                deque: VecDeque::new(),
                closed: false,
                max_depth: 0,
            }),
            nonempty: Condvar::new(),
            capacity: capacity.unwrap_or(usize::MAX),
        }
    }

    /// Admits one item at the tail; `Err(item)` when the queue is at
    /// capacity (the caller sheds it).
    pub(crate) fn try_push(&self, item: T) -> Result<(), T> {
        let mut g = self.inner.lock().expect("queue mutex poisoned");
        if g.deque.len() >= self.capacity {
            return Err(item);
        }
        g.deque.push_back(item);
        g.max_depth = g.max_depth.max(g.deque.len());
        drop(g);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Re-queues already-admitted items at the head, preserving their
    /// order (`items[0]` becomes the new front). Bypasses the capacity
    /// bound — shedding happens at admission only.
    pub(crate) fn push_front(&self, items: Vec<T>) {
        if items.is_empty() {
            return;
        }
        let mut g = self.inner.lock().expect("queue mutex poisoned");
        for item in items.into_iter().rev() {
            g.deque.push_front(item);
        }
        g.max_depth = g.max_depth.max(g.deque.len());
        drop(g);
        self.nonempty.notify_all();
    }

    /// Blocks until items are available or the queue is closed and
    /// drained; takes up to `max` items from the head.
    pub(crate) fn pop_batch(&self, max: usize) -> Popped<T> {
        let mut g = self.inner.lock().expect("queue mutex poisoned");
        loop {
            if !g.deque.is_empty() {
                let take = g.deque.len().min(max);
                return Popped::Batch(g.deque.drain(..take).collect());
            }
            if g.closed {
                return Popped::Closed;
            }
            g = self.nonempty.wait(g).expect("queue mutex poisoned");
        }
    }

    /// Current depth (racy by nature — used for admission heuristics and
    /// the degradation controller's backlog signal).
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().expect("queue mutex poisoned").deque.len()
    }

    /// Deepest the queue has been.
    pub(crate) fn max_depth(&self) -> usize {
        self.inner.lock().expect("queue mutex poisoned").max_depth
    }

    /// Whether ingress has ended (items may still be draining).
    pub(crate) fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue mutex poisoned").closed
    }

    /// Ends ingress and wakes every blocked consumer.
    pub(crate) fn close(&self) {
        self.inner.lock().expect("queue mutex poisoned").closed = true;
        self.nonempty.notify_all();
    }
}

/// Per-consumer sharded ingress queues with work stealing.
///
/// Hot path: a consumer locks only its own shard's mutex; producers lock
/// only the chosen shard's. The cross-shard machinery is all atomics — a
/// length mirror per shard for lock-free victim/dispatch scans, one
/// global total for the admission cap and the drained-and-closed exit
/// test, and an eventcount (`seq` + `waiters` + one `Condvar`) so
/// consumers park only when provably nothing changed since they scanned.
/// A short `wait_timeout` backstops the parking protocol; correctness
/// never depends on it.
///
/// Accounting invariant: `total` counts exactly the items sitting in some
/// deque. Items a consumer holds (an in-flight batch, a half-stolen run
/// being re-homed) are its responsibility until re-queued or resolved —
/// the same holder-liability rule [`SharedQueue`] relies on — so
/// `closed && total == 0` is a safe exit test: any later re-queue comes
/// from a still-live consumer that will drain its own shard first.
pub(crate) struct ShardedQueues<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
    /// Lock-free mirrors of each shard's depth, maintained under that
    /// shard's lock; read without it for dispatch and victim scans.
    lens: Vec<AtomicUsize>,
    shard_max: Vec<AtomicUsize>,
    total: AtomicUsize,
    max_total: AtomicUsize,
    steals: AtomicUsize,
    /// Eventcount generation: bumped after every state change a parked
    /// consumer could care about (push, re-queue, steal, close, drain-to-
    /// empty-while-closed).
    seq: AtomicU64,
    waiters: AtomicUsize,
    closed: AtomicBool,
    signal: Mutex<()>,
    wakeup: Condvar,
    capacity: usize,
}

impl<T> ShardedQueues<T> {
    /// `capacity` of `None` = unbounded; the bound is global across all
    /// shards (it is the run's admission cap, not a per-worker limit).
    pub(crate) fn new(shards: usize, capacity: Option<usize>) -> Self {
        assert!(shards >= 1, "at least one shard is required");
        ShardedQueues {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            lens: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            shard_max: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            total: AtomicUsize::new(0),
            max_total: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            waiters: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            signal: Mutex::new(()),
            wakeup: Condvar::new(),
            capacity: capacity.unwrap_or(usize::MAX),
        }
    }

    /// Wakes parked consumers after a state change. The seq bump makes
    /// the change visible to a consumer about to park (it re-checks seq
    /// under the signal lock); the notify catches those already parked.
    fn bump_and_notify(&self) {
        self.seq.fetch_add(1, Ordering::Release);
        if self.waiters.load(Ordering::Acquire) > 0 {
            let _g = self.signal.lock().expect("signal mutex poisoned");
            self.wakeup.notify_all();
        }
    }

    /// Removes `n` items from the global count; if that drained the last
    /// item of a closed queue, wakes everyone so they can observe
    /// `Closed` (pops don't otherwise signal).
    fn note_removed(&self, n: usize) {
        let before = self.total.fetch_sub(n, Ordering::AcqRel);
        if before == n && self.closed.load(Ordering::Acquire) {
            self.bump_and_notify();
        }
    }

    /// Admits one item onto the least-loaded shard (ties to the lowest
    /// index); `Err(item)` when the global capacity is reached (the
    /// caller sheds it). Returns the chosen shard on success.
    pub(crate) fn try_push(&self, item: T) -> Result<usize, T> {
        // Optimistic reservation keeps the cap exact under concurrent
        // producers: whoever pushes past it reverts and sheds.
        let prev = self.total.fetch_add(1, Ordering::AcqRel);
        if prev >= self.capacity {
            self.total.fetch_sub(1, Ordering::AcqRel);
            return Err(item);
        }
        self.max_total.fetch_max(prev + 1, Ordering::AcqRel);
        let mut shard = 0;
        let mut best = usize::MAX;
        for (i, l) in self.lens.iter().enumerate() {
            let n = l.load(Ordering::Relaxed);
            if n < best {
                best = n;
                shard = i;
            }
        }
        {
            let mut g = self.shards[shard].lock().expect("shard mutex poisoned");
            g.push_back(item);
            let len = g.len();
            self.lens[shard].store(len, Ordering::Release);
            self.shard_max[shard].fetch_max(len, Ordering::AcqRel);
        }
        self.bump_and_notify();
        Ok(shard)
    }

    /// Re-queues already-admitted items at the head of `shard`,
    /// preserving their order (`items[0]` becomes the new front).
    /// Bypasses the capacity bound — shedding happens at admission only.
    pub(crate) fn push_front(&self, shard: usize, items: Vec<T>) {
        if items.is_empty() {
            return;
        }
        let n = items.len();
        {
            let mut g = self.shards[shard].lock().expect("shard mutex poisoned");
            for item in items.into_iter().rev() {
                g.push_front(item);
            }
            let len = g.len();
            self.lens[shard].store(len, Ordering::Release);
            self.shard_max[shard].fetch_max(len, Ordering::AcqRel);
        }
        let t = self.total.fetch_add(n, Ordering::AcqRel) + n;
        self.max_total.fetch_max(t, Ordering::AcqRel);
        self.bump_and_notify();
    }

    /// One steal attempt for consumer `thief`. Victim selection is
    /// deadline-slack-aware: among non-empty peers (probed with
    /// `try_lock` — a peer busy under its own lock is being drained
    /// already), prefer the one whose **head** item is most urgent per
    /// `urgency` (smallest value, e.g. an absolute deadline), falling
    /// back to the deepest backlog; ties go to the lower index. Takes
    /// half the victim's backlog (rounded up) from the head — oldest
    /// first, preserving FIFO order — serves up to `max` of it now, and
    /// adopts the remainder onto its own shard. Never holds two shard
    /// locks at once, so steals cannot deadlock against each other.
    fn try_steal<F: Fn(&T) -> Option<u64>>(
        &self,
        thief: usize,
        max: usize,
        urgency: &F,
    ) -> Option<Vec<T>> {
        let mut victim: Option<(usize, Option<u64>, usize)> = None;
        for i in 0..self.shards.len() {
            if i == thief || self.lens[i].load(Ordering::Acquire) == 0 {
                continue;
            }
            let Ok(g) = self.shards[i].try_lock() else {
                continue;
            };
            let len = g.len();
            if len == 0 {
                continue;
            }
            let head = g.front().and_then(urgency);
            drop(g);
            let better = match &victim {
                None => true,
                Some((_, best_head, best_len)) => match (head, *best_head) {
                    (Some(a), Some(b)) => a < b || (a == b && len > *best_len),
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => len > *best_len,
                },
            };
            if better {
                victim = Some((i, head, len));
            }
        }
        let (v, _, _) = victim?;
        let mut taken: Vec<T> = {
            let mut g = self.shards[v].lock().expect("shard mutex poisoned");
            let len = g.len();
            if len == 0 {
                // Emptied between the scan and the re-lock; the outer
                // loop rescans.
                return None;
            }
            let take = len.div_ceil(2);
            let items = g.drain(..take).collect();
            self.lens[v].store(g.len(), Ordering::Release);
            items
        };
        self.steals.fetch_add(1, Ordering::Relaxed);
        let serve = taken.len().min(max);
        let rest = taken.split_off(serve);
        if !rest.is_empty() {
            let mut g = self.shards[thief].lock().expect("shard mutex poisoned");
            for item in rest {
                g.push_back(item);
            }
            let len = g.len();
            self.lens[thief].store(len, Ordering::Release);
            self.shard_max[thief].fetch_max(len, Ordering::AcqRel);
        }
        // Only the served prefix leaves the structure; the adopted
        // remainder stays queued (and visible to other stealers).
        self.note_removed(serve);
        self.bump_and_notify();
        Some(taken)
    }

    /// Blocks until consumer `shard` can take work or the whole structure
    /// is closed and drained. Drains up to `max` items from its own shard
    /// first; when that is empty and `steal` is set, attempts one steal
    /// (see [`ShardedQueues::try_steal`]); otherwise parks on the
    /// eventcount.
    pub(crate) fn pop_batch<F: Fn(&T) -> Option<u64>>(
        &self,
        shard: usize,
        max: usize,
        steal: bool,
        urgency: &F,
    ) -> Popped<T> {
        loop {
            let s0 = self.seq.load(Ordering::Acquire);
            {
                let mut g = self.shards[shard].lock().expect("shard mutex poisoned");
                if !g.is_empty() {
                    let take = g.len().min(max);
                    let items: Vec<T> = g.drain(..take).collect();
                    self.lens[shard].store(g.len(), Ordering::Release);
                    drop(g);
                    self.note_removed(take);
                    return Popped::Batch(items);
                }
            }
            if steal {
                if let Some(items) = self.try_steal(shard, max, urgency) {
                    return Popped::Batch(items);
                }
            }
            self.waiters.fetch_add(1, Ordering::AcqRel);
            let g = self.signal.lock().expect("signal mutex poisoned");
            if self.seq.load(Ordering::Acquire) != s0 {
                drop(g);
                self.waiters.fetch_sub(1, Ordering::AcqRel);
                continue;
            }
            if self.closed.load(Ordering::Acquire) && self.total.load(Ordering::Acquire) == 0 {
                drop(g);
                self.waiters.fetch_sub(1, Ordering::AcqRel);
                return Popped::Closed;
            }
            // Backstop only: the seq re-check above already closes the
            // lost-wakeup window.
            let _ = self
                .wakeup
                .wait_timeout(g, Duration::from_millis(2))
                .expect("signal mutex poisoned");
            self.waiters.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Total queued across all shards (racy by nature — used for
    /// admission heuristics and the degradation controller's backlog
    /// signal).
    pub(crate) fn len(&self) -> usize {
        self.total.load(Ordering::Acquire)
    }

    /// Deepest the whole structure has been (sum over shards).
    pub(crate) fn max_depth(&self) -> usize {
        self.max_total.load(Ordering::Acquire)
    }

    /// Deepest `shard`'s own deque has been.
    pub(crate) fn shard_max_depth(&self, shard: usize) -> usize {
        self.shard_max[shard].load(Ordering::Acquire)
    }

    /// Completed steal operations (each moves half a victim's backlog).
    pub(crate) fn steals(&self) -> usize {
        self.steals.load(Ordering::Relaxed)
    }

    /// Whether ingress has ended (items may still be draining).
    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Ends ingress and wakes every parked consumer.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.seq.fetch_add(1, Ordering::Release);
        let _g = self.signal.lock().expect("signal mutex poisoned");
        self.wakeup.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn capacity_bound_sheds_at_admission_but_not_on_requeue() {
        let q: SharedQueue<u32> = SharedQueue::new(Some(2));
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "full queue rejects the push");
        q.push_front(vec![0]);
        assert_eq!(q.len(), 3, "re-queues bypass the cap");
        assert_eq!(q.max_depth(), 3);
        match q.pop_batch(10) {
            Popped::Batch(items) => assert_eq!(items, vec![0, 1, 2]),
            Popped::Closed => panic!("queue is not closed"),
        }
    }

    #[test]
    fn close_drains_then_signals_consumers() {
        let q: Arc<SharedQueue<u32>> = Arc::new(SharedQueue::new(None));
        for v in 0..5 {
            q.try_push(v).unwrap();
        }
        q.close();
        // A blocked consumer on another thread must still drain the
        // remainder before seeing Closed.
        let qc = Arc::clone(&q);
        let drained = std::thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                match qc.pop_batch(2) {
                    Popped::Batch(items) => got.extend(items),
                    Popped::Closed => return got,
                }
            }
        })
        .join()
        .unwrap();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert!(q.is_closed());
    }

    const NO_URGENCY: fn(&u32) -> Option<u64> = |_| None;

    #[test]
    fn sharded_least_loaded_dispatch_balances_with_ties_to_lowest_index() {
        let q: ShardedQueues<u32> = ShardedQueues::new(3, None);
        let shards: Vec<usize> = (0..6).map(|v| q.try_push(v).unwrap()).collect();
        assert_eq!(shards, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(q.len(), 6);
        for i in 0..3 {
            assert_eq!(q.shard_max_depth(i), 2);
        }
    }

    #[test]
    fn sharded_capacity_is_global_and_requeues_bypass_it() {
        let q: ShardedQueues<u32> = ShardedQueues::new(2, Some(3));
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.try_push(4), Err(4), "global cap rejects the push");
        q.push_front(0, vec![0]);
        assert_eq!(q.len(), 4, "re-queues bypass the cap");
        assert_eq!(q.max_depth(), 4);
    }

    #[test]
    fn sharded_close_drains_own_shard_then_signals_closed() {
        let q: ShardedQueues<u32> = ShardedQueues::new(2, None);
        q.push_front(1, vec![7, 8]);
        q.close();
        match q.pop_batch(1, 10, false, &NO_URGENCY) {
            Popped::Batch(items) => assert_eq!(items, vec![7, 8]),
            Popped::Closed => panic!("shard 1 still holds items"),
        }
        assert!(matches!(
            q.pop_batch(1, 10, false, &NO_URGENCY),
            Popped::Closed
        ));
        assert!(matches!(
            q.pop_batch(0, 10, true, &NO_URGENCY),
            Popped::Closed
        ));
    }

    /// The skewed-producer claim from the sharded design: with the whole
    /// burst landed on one shard, stealing (a) halves the deepest
    /// observable backlog as soon as the idle consumer arrives, and (b)
    /// drains the burst in fewer consumer rounds than the no-steal twin,
    /// where the loaded consumer is on its own. Fully deterministic —
    /// single thread, closed queue, so no pop ever parks.
    #[test]
    fn sharded_steal_halves_skewed_backlog_and_drains_in_fewer_rounds() {
        let burst: Vec<u32> = (0..32).collect();
        let per_round = 2;

        // Steal ON: two consumers alternate rounds.
        let q: ShardedQueues<u32> = ShardedQueues::new(2, None);
        q.push_front(0, burst.clone());
        q.close();
        assert_eq!(q.shard_max_depth(0), 32);
        // The idle consumer's first pop steals half of shard 0's backlog.
        let first = match q.pop_batch(1, per_round, true, &NO_URGENCY) {
            Popped::Batch(items) => items,
            Popped::Closed => panic!("shard 0 holds the burst"),
        };
        assert_eq!(first, vec![0, 1], "steals from the head, oldest first");
        assert_eq!(q.steals(), 1);
        let deepest_after_steal = (0..2).map(|i| q.lens[i].load(Ordering::Relaxed)).max();
        assert_eq!(
            deepest_after_steal,
            Some(16),
            "one steal halves the deepest backlog (16 kept, 2 served + 14 adopted)"
        );
        let mut got: Vec<u32> = first;
        let mut steal_rounds = 1usize;
        'outer: loop {
            for w in 0..2 {
                match q.pop_batch(w, per_round, true, &NO_URGENCY) {
                    Popped::Batch(items) => got.extend(items),
                    Popped::Closed => break 'outer,
                }
            }
            steal_rounds += 1;
        }
        got.sort_unstable();
        assert_eq!(got, burst, "every item drained exactly once");

        // Steal OFF: the idle consumer cannot help; only consumer 0
        // drains (calling consumer 1 would park until close-and-empty).
        let q: ShardedQueues<u32> = ShardedQueues::new(2, None);
        q.push_front(0, burst.clone());
        q.close();
        let mut solo_rounds = 0usize;
        let mut got: Vec<u32> = Vec::new();
        while let Popped::Batch(items) = q.pop_batch(0, per_round, false, &NO_URGENCY) {
            got.extend(items);
            solo_rounds += 1;
        }
        assert_eq!(q.steals(), 0, "stealing off never steals");
        assert_eq!(got, burst, "FIFO drain without stealing");
        assert_eq!(solo_rounds, 16);
        assert!(
            steal_rounds * 2 <= solo_rounds + 2,
            "two stealing consumers drain in about half the rounds \
             ({steal_rounds} vs {solo_rounds})"
        );
    }

    #[test]
    fn sharded_steal_prefers_most_urgent_head_over_deepest_backlog() {
        // Urgency = the item's value (an absolute deadline). Shard 1 is
        // deeper, but shard 2's head expires sooner — the thief must take
        // from shard 2.
        let q: ShardedQueues<u32> = ShardedQueues::new(3, None);
        q.push_front(1, vec![50, 51, 52, 53]);
        q.push_front(2, vec![10, 11]);
        q.close();
        let urgency = |v: &u32| Some(u64::from(*v));
        match q.pop_batch(0, 4, true, &urgency) {
            Popped::Batch(items) => assert_eq!(items, vec![10], "half of shard 2's backlog"),
            Popped::Closed => panic!("peers hold items"),
        }
        // With no deadlines anywhere, depth decides: shard 1 is deepest.
        let q: ShardedQueues<u32> = ShardedQueues::new(3, None);
        q.push_front(1, vec![50, 51, 52, 53]);
        q.push_front(2, vec![10, 11]);
        q.close();
        match q.pop_batch(0, 4, true, &NO_URGENCY) {
            Popped::Batch(items) => assert_eq!(items, vec![50, 51], "half of the deepest"),
            Popped::Closed => panic!("peers hold items"),
        }
    }

    #[test]
    fn sharded_concurrent_producers_and_stealing_consumers_drain_exactly_once() {
        let q: Arc<ShardedQueues<u32>> = Arc::new(ShardedQueues::new(4, None));
        let total = 400u32;
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for v in (p * 100)..(p * 100 + 100) {
                        q.try_push(v).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|w| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match q.pop_batch(w, 3, true, &NO_URGENCY) {
                            Popped::Batch(items) => got.extend(items),
                            Popped::Closed => return got,
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut got: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..total).collect::<Vec<_>>());
        assert_eq!(q.len(), 0);
    }
}
