//! Bounded MPMC ingress queue for the wall-clock serving loop.
//!
//! A `Mutex<VecDeque>` + `Condvar` channel — no external crates, no
//! tokio. The capacity bound *is* the admission cap: a full queue rejects
//! the push and the ingress thread records the request as shed, exactly
//! like the simulated paths' `max_queue_depth`. Re-queues (retries,
//! budget-infeasible batches handed back) go to the head and bypass the
//! cap — those requests were already admitted once.
//!
//! Shutdown protocol: the producer calls [`SharedQueue::close`] after the
//! last arrival; consumers keep draining until the queue is empty *and*
//! closed, at which point [`SharedQueue::pop_batch`] returns
//! [`Popped::Closed`] and the worker exits its loop. No request can be
//! stranded: every admitted item is either popped by a worker or still in
//! the deque — and the deque is provably empty when `Closed` is returned.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    deque: VecDeque<T>,
    closed: bool,
    max_depth: usize,
}

/// What a consumer got from [`SharedQueue::pop_batch`].
pub(crate) enum Popped<T> {
    /// 1..=max items, FIFO from the head.
    Batch(Vec<T>),
    /// The queue is closed and fully drained; the consumer should exit.
    Closed,
}

/// The shared ingress queue: any number of producers and consumers.
pub(crate) struct SharedQueue<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
    capacity: usize,
}

impl<T> SharedQueue<T> {
    /// `capacity` of `None` = unbounded.
    pub(crate) fn new(capacity: Option<usize>) -> Self {
        SharedQueue {
            inner: Mutex::new(Inner {
                deque: VecDeque::new(),
                closed: false,
                max_depth: 0,
            }),
            nonempty: Condvar::new(),
            capacity: capacity.unwrap_or(usize::MAX),
        }
    }

    /// Admits one item at the tail; `Err(item)` when the queue is at
    /// capacity (the caller sheds it).
    pub(crate) fn try_push(&self, item: T) -> Result<(), T> {
        let mut g = self.inner.lock().expect("queue mutex poisoned");
        if g.deque.len() >= self.capacity {
            return Err(item);
        }
        g.deque.push_back(item);
        g.max_depth = g.max_depth.max(g.deque.len());
        drop(g);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Re-queues already-admitted items at the head, preserving their
    /// order (`items[0]` becomes the new front). Bypasses the capacity
    /// bound — shedding happens at admission only.
    pub(crate) fn push_front(&self, items: Vec<T>) {
        if items.is_empty() {
            return;
        }
        let mut g = self.inner.lock().expect("queue mutex poisoned");
        for item in items.into_iter().rev() {
            g.deque.push_front(item);
        }
        g.max_depth = g.max_depth.max(g.deque.len());
        drop(g);
        self.nonempty.notify_all();
    }

    /// Blocks until items are available or the queue is closed and
    /// drained; takes up to `max` items from the head.
    pub(crate) fn pop_batch(&self, max: usize) -> Popped<T> {
        let mut g = self.inner.lock().expect("queue mutex poisoned");
        loop {
            if !g.deque.is_empty() {
                let take = g.deque.len().min(max);
                return Popped::Batch(g.deque.drain(..take).collect());
            }
            if g.closed {
                return Popped::Closed;
            }
            g = self.nonempty.wait(g).expect("queue mutex poisoned");
        }
    }

    /// Current depth (racy by nature — used for admission heuristics and
    /// the degradation controller's backlog signal).
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().expect("queue mutex poisoned").deque.len()
    }

    /// Deepest the queue has been.
    pub(crate) fn max_depth(&self) -> usize {
        self.inner.lock().expect("queue mutex poisoned").max_depth
    }

    /// Whether ingress has ended (items may still be draining).
    pub(crate) fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue mutex poisoned").closed
    }

    /// Ends ingress and wakes every blocked consumer.
    pub(crate) fn close(&self) {
        self.inner.lock().expect("queue mutex poisoned").closed = true;
        self.nonempty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn capacity_bound_sheds_at_admission_but_not_on_requeue() {
        let q: SharedQueue<u32> = SharedQueue::new(Some(2));
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "full queue rejects the push");
        q.push_front(vec![0]);
        assert_eq!(q.len(), 3, "re-queues bypass the cap");
        assert_eq!(q.max_depth(), 3);
        match q.pop_batch(10) {
            Popped::Batch(items) => assert_eq!(items, vec![0, 1, 2]),
            Popped::Closed => panic!("queue is not closed"),
        }
    }

    #[test]
    fn close_drains_then_signals_consumers() {
        let q: Arc<SharedQueue<u32>> = Arc::new(SharedQueue::new(None));
        for v in 0..5 {
            q.try_push(v).unwrap();
        }
        q.close();
        // A blocked consumer on another thread must still drain the
        // remainder before seeing Closed.
        let qc = Arc::clone(&q);
        let drained = std::thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                match qc.pop_batch(2) {
                    Popped::Batch(items) => got.extend(items),
                    Popped::Closed => return got,
                }
            }
        })
        .join()
        .unwrap();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert!(q.is_closed());
    }
}
