//! The single wait-time summary every serving path reports.

use crate::runtime::RuntimeStats;

/// Nearest-rank percentile summary of a wait sample; all zeros when the
/// sample is empty.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct WaitSummary {
    pub mean: f64,
    pub p50: f64,
    pub p99: f64,
    pub p999: f64,
}

/// Summarizes a wait sample with the nearest-rank percentile definition
/// (`sorted[ceil(p·n) - 1]`) shared by the global wait summary, the
/// per-replica breakdown, and the wall-clock loop — so every path reports
/// the same statistic.
pub(crate) fn wait_summary(waits: &[usize]) -> WaitSummary {
    if waits.is_empty() {
        return WaitSummary::default();
    }
    let mut sorted = waits.to_vec();
    sorted.sort_unstable();
    let pct = |p: f64| sorted[((p * sorted.len() as f64).ceil() as usize).max(1) - 1] as f64;
    WaitSummary {
        mean: waits.iter().sum::<usize>() as f64 / waits.len() as f64,
        p50: pct(0.50),
        p99: pct(0.99),
        p999: pct(0.999),
    }
}

/// Fills the mean/p50/p99/p99.9 wait fields of `stats` and stores the raw
/// waits.
pub(crate) fn finish_wait_stats(stats: &mut RuntimeStats, waits: Vec<usize>) {
    let s = wait_summary(&waits);
    stats.mean_wait_steps = s.mean;
    stats.p50_wait_steps = s.p50;
    stats.p99_wait_steps = s.p99;
    stats.p999_wait_steps = s.p999;
    stats.wait_steps = waits;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_all_zero() {
        assert_eq!(wait_summary(&[]), WaitSummary::default());
    }

    #[test]
    fn nearest_rank_percentiles() {
        // 1000 samples 0..=999: nearest-rank p50 = sorted[499], p99 =
        // sorted[989], p99.9 = sorted[998].
        let waits: Vec<usize> = (0..1000).rev().collect();
        let s = wait_summary(&waits);
        assert_eq!(s.p50, 499.0);
        assert_eq!(s.p99, 989.0);
        assert_eq!(s.p999, 998.0);
        assert_eq!(s.mean, 499.5);
    }

    #[test]
    fn tiny_sample_clamps_to_first_element() {
        let s = wait_summary(&[7]);
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p99, 7.0);
        assert_eq!(s.p999, 7.0);
    }
}
