//! The exact-key LRU content cache in front of dispatch (moved here from
//! the sharded path so future front-ends share one implementation).

use instantnet_quant::BitWidth;
use instantnet_tensor::Tensor;
use std::collections::HashMap;

/// Content-cache key: the pinned model generation, the serving
/// bit-width, and the sample's exact f32 bit patterns.
pub(crate) type CacheKey = (u64, u8, Vec<u32>);

/// Exact content key of one request served by one model generation at one
/// bit-width: the sample's f32 bit patterns. Keying on the full pattern
/// (not a digest) means a cache hit is *provably* the same input, so the
/// cached output is bit-identical to recomputing — no collision can serve
/// the wrong tensor. The generation component makes the key
/// version-aware: a hot reload changes the pinned
/// [`crate::registry::ModelVersion`]'s generation, so entries computed by
/// superseded weights can never answer post-reload traffic — they simply
/// stop being probed and age out of the LRU.
pub(crate) fn cache_key(generation: u64, bits: BitWidth, sample: &Tensor) -> CacheKey {
    (
        generation,
        bits.get(),
        sample.data().iter().map(|v| v.to_bits()).collect(),
    )
}

/// Capacity-bounded content cache with least-recently-used eviction.
///
/// Recency is a monotone tick stamped on every hit and insert; eviction
/// scans for the minimum tick. Ticks are unique, so the victim is
/// deterministic — independent of `HashMap` iteration order — keeping
/// sharded runs reproducible. The O(capacity) victim scan only runs on
/// insertions past the cap, which a duplicate-heavy trace (the workload
/// the cache exists for) makes rare.
pub(crate) struct LruCache {
    capacity: usize,
    tick: u64,
    map: HashMap<CacheKey, (Tensor, u64)>,
    evictions: usize,
}

impl LruCache {
    pub(crate) fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
            evictions: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub(crate) fn get(&mut self, key: &CacheKey) -> Option<&Tensor> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(y, at)| {
            *at = tick;
            &*y
        })
    }

    /// Inserts `key → out` if absent, evicting the least-recently-used
    /// entry when at capacity; refreshes recency (and keeps the existing
    /// tensor) if present. Clones `out` only when actually inserting.
    pub(crate) fn insert(&mut self, key: CacheKey, out: &Tensor) {
        self.tick += 1;
        if let Some((_, at)) = self.map.get_mut(&key) {
            *at = self.tick;
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, (_, at))| *at)
                .map(|(k, _)| k.clone())
                .expect("cache at capacity ≥ 1 is non-empty");
            self.map.remove(&victim);
            self.evictions += 1;
        }
        self.map.insert(key, (out.clone(), self.tick));
    }

    /// Entries evicted so far to stay within capacity.
    pub(crate) fn evictions(&self) -> usize {
        self.evictions
    }
}
