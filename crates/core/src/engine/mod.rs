//! Shared serving-engine internals.
//!
//! Every serving front-end in this crate — the simulated paths
//! ([`crate::runtime::simulate_serving_batched`],
//! [`crate::resilience::simulate_serving_resilient`],
//! [`crate::sharding::simulate_serving_sharded`]) and the wall-clock loop
//! ([`crate::wallclock::serve_wallclock`]) — is a different *driver* over
//! the same policy machinery. This module holds that machinery once:
//!
//! * [`stats`] — the single nearest-rank wait-percentile definition
//!   (mean/p50/p99/p99.9) every path reports;
//! * [`batch`] — request-input validation, batch tensor assembly, and
//!   per-request output scatter;
//! * [`degrade`] — the hysteresis precision-downshift controller,
//!   parameterized over an abstract monotone tick so simulated steps and
//!   wall-clock microseconds drive the same state machine;
//! * [`cache`] — the exact-key LRU content cache;
//! * [`queue`] — the bounded MPMC ingress queue the wall-clock loop's
//!   threads share;
//! * [`clock`] — the wall-clock run clock mapping `Instant`s onto trace
//!   steps.
//!
//! The twin guarantee rests on this layout: because both the simulated
//! and wall-clock drivers call the same selection, degradation, batching,
//! and accounting code, a fault-free wall-clock run over a frozen trace
//! completes the same request set with bit-identical outputs as its
//! simulated twin — only the timing-derived statistics differ.

pub(crate) mod batch;
pub(crate) mod cache;
pub(crate) mod clock;
pub(crate) mod degrade;
pub(crate) mod queue;
pub(crate) mod stats;
