//! Sharded serving: one request stream fanned out over N `PackedModel`
//! replicas, with a content-keyed output cache in front of dispatch.
//!
//! [`simulate_serving_sharded`] scales the batched queue of
//! [`crate::runtime::simulate_serving_batched`] past a single engine.
//! Replica clones are free — [`PackedModel::clone`] shares the immutable
//! packed weight tables behind an `Arc`, so N replicas cost N cursors,
//! not N repacks — and each step every replica drains up to
//! [`ServingConfig::max_batch`] requests from its own queue into its own
//! packed forward, the forwards running concurrently on
//! [`instantnet_parallel`] scoped threads. Per-sample activation
//! quantization keeps every output bit-identical to serving that request
//! alone, so *which* replica serves a request is invisible to the caller;
//! what sharding changes is drain rate, and the per-replica
//! [`ReplicaStats`] embedded in [`RuntimeStats`] measure exactly that.
//!
//! Three dispatchers are provided: round-robin, join-shortest-queue
//! ([`DispatchPolicy::LeastLoaded`]), and — the InstantNet twist — a
//! bit-width-specialized mode ([`ShardConfig::pinned`]) where each
//! replica is pinned to one operating point of the report and arrivals
//! route on their projected deadline slack: requests that can still
//! afford the accurate replica's queue go there, urgent ones divert to
//! the fastest replica. The global budget policy is still the single
//! [`crate::runtime::Policy`] selector shared with every other serving
//! path; a pinned replica only serves on steps where its point fits the
//! step's budget.
//!
//! Faults compose per replica: a [`FaultPlan`] targets
//! [`ShardConfig::fault_replica`] alone, its forwards are isolated with
//! `catch_unwind`, and the other replicas keep serving — the sharded
//! answer to the resilient path's single-worker fault story.
//!
//! Hot reload composes at step boundaries:
//! [`simulate_serving_sharded_versioned`] serves the whole fleet out of a
//! [`crate::registry::ModelRegistry`], observing it exactly once per
//! timestep (before any batch is drained) so all replicas adopt a publish
//! together and no in-flight batch straddles a swap; a per-step hook
//! gives tests a deterministic place to publish mid-traffic, and canary
//! batches shadow-compare through the candidate exactly as in the
//! wall-clock path. [`simulate_serving_sharded`] is the degenerate
//! wrapper over a single-version registry.
//!
//! With 1 replica, round-robin dispatch, the cache off, and no faults,
//! this path reproduces `simulate_serving_batched` bit-for-bit — same
//! outputs, schedule, switches, energy, and queue stats — at every
//! bit-width and thread count. Sharding is strictly additive.

use crate::engine::batch::{gather_batch, scatter_outputs, validate_inputs};
use crate::engine::cache::{cache_key, LruCache};
use crate::engine::stats::{finish_wait_stats, wait_summary};
use crate::faults::{FaultKind, FaultPlan};
use crate::registry::ModelRegistry;
use crate::resilience::{config_err, RequestStatus, ServingError};
use crate::runtime::{
    EnergyTrace, Policy, PolicySelector, RequestTrace, RuntimeStats, ServingConfig,
    SimulationConfig,
};
use crate::{DeploymentReport, OperatingPoint};
use instantnet_infer::{InferError, PackedModel};
use instantnet_parallel::par_chunks_mut;
use instantnet_quant::BitWidth;
use instantnet_tensor::Tensor;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How arrivals are spread across replica queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchPolicy {
    /// Cycle through replicas in index order, one request per turn.
    #[default]
    RoundRobin,
    /// Join the shortest queue (ties to the lowest replica index).
    LeastLoaded,
}

/// Bit-width specialization: pin each replica to one operating point and
/// route arrivals by deadline slack instead of queue shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinnedConfig {
    /// `point_indices[r]` = index into [`DeploymentReport::points`] that
    /// replica `r` serves at. Must have one entry per replica.
    pub point_indices: Vec<usize>,
    /// An arrival whose projected slack at the most accurate replica —
    /// deadline minus its best-case service step behind that replica's
    /// queue — is at or below this diverts to the lowest-latency replica.
    pub urgent_slack: usize,
}

/// Knobs of the sharded serving fan-out. The default — one replica,
/// round-robin, cache off, nothing pinned, fully permissive queue — makes
/// [`simulate_serving_sharded`] behave exactly like
/// [`crate::runtime::simulate_serving_batched`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardConfig {
    /// Number of `PackedModel` replicas (each an O(1) clone).
    pub replicas: usize,
    /// How arrivals pick a replica queue (ignored when `pinned` is set —
    /// pinned mode routes by deadline slack).
    pub dispatch: DispatchPolicy,
    /// Enable the content-keyed output cache in front of dispatch: a
    /// request whose `(bit-width, input bytes)` was already computed this
    /// run completes instantly from the cached tensor, charging no energy
    /// and consuming no batch slot.
    pub cache: bool,
    /// Maximum entries the content cache holds; the least-recently-used
    /// entry is evicted to admit a new one past the cap (evictions are
    /// counted in [`RuntimeStats::cache_evictions`]). Eviction only costs
    /// recompute — outputs stay bit-identical because every miss reruns
    /// the same exact forward. Must be ≥ 1 when `cache` is on; the
    /// generous default keeps prior unbounded-cache behavior for any
    /// realistic trace.
    pub cache_capacity: usize,
    /// Bit-width specialization; requires `deadline_steps` (slack routing
    /// needs deadlines to measure slack against).
    pub pinned: Option<PinnedConfig>,
    /// Relative deadline: a request arriving at step `t` expires if still
    /// queued after step `t + deadline_steps`. `None` = no deadlines.
    pub deadline_steps: Option<usize>,
    /// Admission cap on the *total* queued across all replicas; arrivals
    /// over the cap are shed. `None` = unbounded.
    pub max_queue_depth: Option<usize>,
    /// How many times a fault-hit request re-queues before it is failed.
    /// With more than one replica, a retry re-dispatches to the
    /// least-loaded *other* replica — never back onto the replica whose
    /// fault just failed it.
    pub max_retries: usize,
    /// Which replica the [`FaultPlan`] targets; the others never fault.
    pub fault_replica: usize,
    /// Work stealing between replica queues: a replica that would serve
    /// this step but drained nothing from its own queue takes up to
    /// `max_batch` eligible requests from the head of the deepest other
    /// queue (ties to the lowest index) and serves them at its own point.
    /// Off by default; with stealing off the dispatch is bit-identical to
    /// the pre-stealing path.
    pub work_stealing: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            replicas: 1,
            dispatch: DispatchPolicy::RoundRobin,
            cache: false,
            cache_capacity: 65_536,
            pinned: None,
            deadline_steps: None,
            max_queue_depth: None,
            max_retries: 0,
            fault_replica: 0,
            work_stealing: false,
        }
    }
}

/// Per-replica slice of a sharded run, embedded in
/// [`RuntimeStats::replicas`] (indexed by replica id).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReplicaStats {
    /// Requests this replica completed, including its cache hits.
    pub served: usize,
    /// Non-empty packed forwards this replica ran (successful or faulted).
    pub batches: usize,
    /// Forwards that faulted (injected or genuine) on this replica.
    pub faulted_batches: usize,
    /// Requests still in this replica's queue when the trace ended.
    pub backlog: usize,
    /// Deepest this replica's own queue got, after each step's arrivals.
    pub max_queue_depth: usize,
    /// Requests this replica answered from the output cache.
    pub cache_hits: usize,
    /// Mean queueing delay of the requests this replica served.
    pub mean_wait_steps: f64,
    /// Nearest-rank p99 queueing delay of this replica's requests —
    /// same percentile definition as the global
    /// [`RuntimeStats::p99_wait_steps`].
    pub p99_wait_steps: f64,
    /// Steps this replica spent configured at each serving bit-width,
    /// ascending by bits (stalled and budget-excluded steps don't count).
    pub time_in_bits: Vec<(u8, usize)>,
    /// Model generation this replica was pinned to when the run ended.
    /// The registry-free entry points run over a degenerate single-version
    /// registry, so they always report generation 1.
    pub generation: u64,
}

/// Per-request record of a sharded run, index-aligned with arrival order.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedOutcome {
    /// Timestep the request arrived.
    pub arrived_at: usize,
    /// Timestep it was served, if it was.
    pub served_at: Option<usize>,
    /// Bit-width of the forward (or cached result) that served it.
    pub bits: Option<u8>,
    /// The output — bit-identical to a batch-of-one forward at `bits`
    /// whether it came from a replica forward or the cache.
    pub output: Option<Tensor>,
    /// How the request ended (sharding never degrades, so
    /// [`RequestStatus::CompletedDegraded`] does not occur here).
    pub status: RequestStatus,
    /// Replica that served (or would have served) it; `None` until
    /// dispatched, and kept at the serving replica afterwards.
    pub replica: Option<usize>,
    /// Whether the output came from the content cache.
    pub cached: bool,
    /// Absolute deadline step, when deadlines are configured.
    pub deadline: Option<usize>,
    /// Forward attempts that included this request (cache hits run no
    /// forward and leave this at 0).
    pub attempts: usize,
}

/// One queued request: outcome index plus first step it may batch again.
struct QEntry {
    id: usize,
    eligible_at: usize,
}

/// One replica's drained batch for the current step, with the operating
/// point it will serve at.
struct PlannedBatch {
    taken: Vec<QEntry>,
    bits: BitWidth,
    accuracy: f32,
    energy_pj: f64,
}

/// Per-replica accumulators carried across steps.
#[derive(Default)]
struct ReplicaAcc {
    served: usize,
    batches: usize,
    faulted_batches: usize,
    max_queue_depth: usize,
    cache_hits: usize,
    waits: Vec<usize>,
    time_in_bits: BTreeMap<u8, usize>,
}

/// Per-step, per-replica work slot handed to the scoped-thread fan-out.
/// The model reference is the replica's own clone, so slots are disjoint.
struct StepSlot<'m> {
    model: &'m mut PackedModel,
    bits: BitWidth,
    batch: Option<Tensor>,
    fault: Option<FaultKind>,
    /// `Some(Ok)` = forward output; `Some(Err)` = fault description
    /// (injected, typed engine error, or isolated panic).
    result: Option<Result<Tensor, String>>,
}

fn validate(
    report: &DeploymentReport,
    trace: &EnergyTrace,
    requests: &RequestTrace,
    serving: &ServingConfig,
    shard: &ShardConfig,
    model: &PackedModel,
    inputs: &[Tensor],
) -> Result<(), ServingError> {
    if requests.len() != trace.len() {
        return config_err(format!(
            "request trace covers {} steps but energy trace covers {}",
            requests.len(),
            trace.len()
        ));
    }
    if serving.max_batch < 1 {
        return config_err("max_batch must be at least 1");
    }
    if shard.replicas < 1 {
        return config_err("at least one replica is required");
    }
    if shard.fault_replica >= shard.replicas {
        return config_err(format!(
            "fault_replica {} out of range for {} replicas",
            shard.fault_replica, shard.replicas
        ));
    }
    if shard.cache && shard.cache_capacity == 0 {
        return config_err("cache_capacity must be at least 1 when the cache is enabled");
    }
    if let Err(msg) = validate_inputs(inputs) {
        return config_err(msg);
    }
    if let Some(pc) = &shard.pinned {
        if pc.point_indices.len() != shard.replicas {
            return config_err(format!(
                "pinned point_indices has {} entries for {} replicas",
                pc.point_indices.len(),
                shard.replicas
            ));
        }
        if let Some(&bad) = pc
            .point_indices
            .iter()
            .find(|&&i| i >= report.points().len())
        {
            return config_err(format!(
                "pinned point index {bad} out of range for {} operating points",
                report.points().len()
            ));
        }
        if shard.deadline_steps.is_none() {
            return config_err("pinned routing requires deadline_steps (it routes on slack)");
        }
    }
    // Every operating point must be switchable up front, so a bad
    // report/model pairing fails fast instead of mid-trace on a worker.
    for p in report.points() {
        if model.bit_widths().index_of(p.bits).is_none() {
            return Err(ServingError::Infer(InferError::BitWidth(p.bits)));
        }
    }
    Ok(())
}

/// Pulls up to `max_take` backoff-eligible requests from the head of
/// `queue`, FIFO, leaving ineligible ones in place — completing cache
/// hits on the spot (free, and without consuming a batch slot) when the
/// cache is on. Shared by a replica's own drain and the work-stealing
/// pass, so stolen requests get the identical cache/accounting treatment;
/// `acc_r` is the *serving* replica's accumulator either way.
/// `generation` is the pinned stable version's — cache probes are
/// version-aware, so entries computed by superseded weights never answer
/// post-reload traffic.
#[allow(clippy::too_many_arguments)]
fn drain_eligible(
    queue: &mut VecDeque<QEntry>,
    t: usize,
    max_take: usize,
    point: &OperatingPoint,
    use_cache: bool,
    generation: u64,
    cache: &mut LruCache,
    inputs: &[Tensor],
    outcomes: &mut [ShardedOutcome],
    stats: &mut RuntimeStats,
    acc_r: &mut ReplicaAcc,
    acc_sum: &mut f32,
) -> Vec<QEntry> {
    let mut taken: Vec<QEntry> = Vec::new();
    let mut kept: VecDeque<QEntry> = VecDeque::with_capacity(queue.len());
    while let Some(e) = queue.pop_front() {
        if taken.len() >= max_take {
            kept.push_back(e);
            continue;
        }
        if e.eligible_at > t {
            kept.push_back(e);
            continue;
        }
        if use_cache {
            let key = cache_key(generation, point.bits, &inputs[e.id % inputs.len()]);
            if let Some(y) = cache.get(&key) {
                let rec = &mut outcomes[e.id];
                rec.served_at = Some(t);
                rec.bits = Some(point.bits.get());
                rec.output = Some(y.clone());
                rec.status = RequestStatus::Completed;
                rec.cached = true;
                stats.completed += 1;
                stats.cache_hits += 1;
                acc_r.cache_hits += 1;
                acc_r.served += 1;
                acc_r.waits.push(t - rec.arrived_at);
                *acc_sum += point.accuracy;
                continue;
            }
            stats.cache_misses += 1;
        }
        taken.push(e);
    }
    *queue = kept;
    taken
}

/// Batched serving over N packed replicas with content caching and
/// per-replica fault isolation.
///
/// Each timestep, in order: arrivals are admitted (or shed over
/// [`ShardConfig::max_queue_depth`], counted on the *total* backlog) and
/// dispatched to a replica queue — round-robin, join-shortest-queue, or
/// slack-routed when pinned; queued requests past their deadline expire;
/// the shared budget policy selects the step's operating point (`None`
/// drops the step for every replica); then each serving replica drains up
/// to `max_batch` cache-missing requests — cache hits complete instantly,
/// free, and without consuming batch slots — and the non-empty batches
/// run as one packed forward per replica, concurrently on scoped threads.
/// A fault at this step hits only [`ShardConfig::fault_replica`]:
/// [`FaultKind::Stall`] idles that replica for the step (the global
/// selector is *not* reset — the other replicas still serve, so the
/// budget anchor legitimately survives, unlike the single-worker
/// resilient path), while transient errors and panics (isolated with
/// `catch_unwind`) fail that replica's batch alone; its requests retry up
/// to [`ShardConfig::max_retries`] times, re-dispatched to the head of
/// the least-loaded *other* replica's queue (back onto the same queue
/// only when it is the sole replica). [`ShardConfig::work_stealing`] lets
/// otherwise-idle replicas drain the deepest queue's backlog.
///
/// Global [`RuntimeStats`] aggregate exactly as in the batched path
/// (plus cache counters), `stats.replicas[r]` carries each replica's
/// share, and `arrivals == completed + shed + expired + failed + backlog`
/// always holds. Energy is charged per forward-served request at its
/// serving point; cache hits charge nothing.
///
/// The model is taken by `&` and cloned once per replica — O(1) each, the
/// packed tables are shared, never re-packed.
///
/// # Errors
///
/// [`ServingError::Config`] for inconsistent traces, shapes, or shard
/// knobs; [`ServingError::Infer`] if any report point's bit-width is
/// missing from the packed set (checked up front).
#[allow(clippy::too_many_arguments)]
pub fn simulate_serving_sharded(
    report: &DeploymentReport,
    trace: &EnergyTrace,
    requests: &RequestTrace,
    policy: Policy,
    cfg: &SimulationConfig,
    serving: &ServingConfig,
    shard: &ShardConfig,
    faults: &FaultPlan,
    model: &PackedModel,
    inputs: &[Tensor],
) -> Result<(RuntimeStats, Vec<ShardedOutcome>), ServingError> {
    // The degenerate registry: one pinned version, canary off, no
    // publishes. Bit-identical to the historical frozen-model loop —
    // enforced in `tests/hot_reload.rs`.
    let registry = ModelRegistry::new(model.clone(), "pinned");
    simulate_serving_sharded_versioned(
        report,
        trace,
        requests,
        policy,
        cfg,
        serving,
        shard,
        faults,
        &registry,
        &mut |_, _| {},
        inputs,
    )
}

/// [`simulate_serving_sharded`] over a live [`ModelRegistry`]: every
/// replica serves out of the registry's stable version, and the fleet
/// observes the registry once per timestep — at the step boundary,
/// before any batch is drained — so all batches of a step are served by
/// one consistent (stable, canary) pair and no in-flight batch ever
/// straddles a publish. `on_step(t, registry)` runs first at each step,
/// which is where deterministic tests (and simulated publisher threads)
/// inject mid-traffic publishes: a publish made inside the hook at step
/// `t` is adopted by every replica for step `t`'s batches.
///
/// When a canary is in flight, its configured fraction of successful
/// batches is shadow-forwarded through the candidate at the same
/// bit-width and compared bit-exactly (requests are always answered from
/// stable); divergences and candidate faults feed the registry's
/// auto-rollback state machine exactly as in the wall-clock path. The
/// simulated clock has no wall time, so both forwards report equal
/// latency and the latency band never trips here.
///
/// Registry activity lands in [`RuntimeStats::reloads`], `rollbacks`,
/// `rejected_publishes`, `canary_served`, `divergences`, and
/// `time_per_generation` (timesteps per generation);
/// `stats.replicas[r].generation` records the generation in force when
/// the run ended.
///
/// # Errors
///
/// As [`simulate_serving_sharded`], validated against the registry's
/// stable model (published candidates are guaranteed compatible by the
/// registry).
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
pub fn simulate_serving_sharded_versioned(
    report: &DeploymentReport,
    trace: &EnergyTrace,
    requests: &RequestTrace,
    policy: Policy,
    cfg: &SimulationConfig,
    serving: &ServingConfig,
    shard: &ShardConfig,
    faults: &FaultPlan,
    registry: &ModelRegistry,
    on_step: &mut dyn FnMut(usize, &ModelRegistry),
    inputs: &[Tensor],
) -> Result<(RuntimeStats, Vec<ShardedOutcome>), ServingError> {
    let mut pin = registry.snapshot();
    validate(
        report,
        trace,
        requests,
        serving,
        shard,
        pin.stable.model(),
        inputs,
    )?;
    let metrics0 = registry.metrics();
    let n = shard.replicas;
    let points = report.points();
    let sample_dims = inputs[0].dims().to_vec();
    let sample_len = inputs[0].len();

    let mut models: Vec<PackedModel> = (0..n).map(|_| pin.stable.model().clone()).collect();
    let mut shadow: Option<PackedModel> = pin.canary.as_ref().map(|v| v.model().clone());
    let mut gen_steps: BTreeMap<u64, usize> = BTreeMap::new();
    let mut queues: Vec<VecDeque<QEntry>> = (0..n).map(|_| VecDeque::new()).collect();
    let mut acc: Vec<ReplicaAcc> = (0..n).map(|_| ReplicaAcc::default()).collect();
    let mut outcomes: Vec<ShardedOutcome> = Vec::with_capacity(requests.total());
    let mut cache = LruCache::new(shard.cache_capacity);
    let mut wait_steps: Vec<usize> = Vec::new();
    let mut histogram = vec![0usize; serving.max_batch + 1];
    let mut max_depth = 0usize;
    let mut rr_cursor = 0usize;

    let mut selector = PolicySelector::new(report, policy);
    let mut prev_bits: Option<BitWidth> = None;
    let mut stats = RuntimeStats::default();
    let mut acc_sum = 0.0f32;
    let mut schedule: Vec<Option<u8>> = Vec::with_capacity(trace.len());

    // Pinned routing targets: the replica whose point is most accurate
    // (where slack-rich requests go) and the one with the lowest latency
    // (where urgent requests divert), ties to the lower index.
    let routing = shard.pinned.as_ref().map(|pc| {
        let by = |f: &dyn Fn(&OperatingPoint) -> f64, best_is_max: bool| {
            let mut best = 0usize;
            for r in 1..n {
                let (cand, cur) = (
                    f(&points[pc.point_indices[r]]),
                    f(&points[pc.point_indices[best]]),
                );
                if (best_is_max && cand > cur) || (!best_is_max && cand < cur) {
                    best = r;
                }
            }
            best
        };
        let quality = by(&|p| f64::from(p.accuracy), true);
        let fast = by(&|p| p.latency_s, false);
        (quality, fast)
    });

    for (t, &budget) in trace.budgets().iter().enumerate() {
        // 0. Version pinning: the hook may publish, then the fleet
        // observes the registry — once, at the step boundary, before any
        // batch is drained. Every batch of this step is served by one
        // consistent (stable, canary) pair; re-pinning is O(1) Arc-shared
        // clones per replica.
        on_step(t, registry);
        if registry.epoch() != pin.epoch {
            pin = registry.snapshot();
            for m in &mut models {
                *m = pin.stable.model().clone();
            }
            shadow = pin.canary.as_ref().map(|v| v.model().clone());
        }
        *gen_steps.entry(pin.stable.generation()).or_insert(0) += 1;
        let fault = faults.at(t);

        // 1. Arrivals: admission against the total backlog, then dispatch.
        for _ in 0..requests.arrivals()[t] {
            let id = outcomes.len();
            let mut rec = ShardedOutcome {
                arrived_at: t,
                served_at: None,
                bits: None,
                output: None,
                status: RequestStatus::Pending,
                replica: None,
                cached: false,
                deadline: shard.deadline_steps.map(|d| t + d),
                attempts: 0,
            };
            let total: usize = queues.iter().map(VecDeque::len).sum();
            if shard.max_queue_depth.is_some_and(|cap| total >= cap) {
                rec.status = RequestStatus::Shed;
                stats.shed += 1;
                outcomes.push(rec);
                continue;
            }
            let target = match (&shard.pinned, routing) {
                (Some(pc), Some((quality, fast))) => {
                    // Best case the quality replica drains max_batch per
                    // step, so this request's service step is at earliest
                    // t + queue/max_batch; route by the slack left then.
                    let wait = queues[quality].len() / serving.max_batch;
                    let slack = rec
                        .deadline
                        .expect("validated: pinned requires deadlines")
                        .saturating_sub(t + wait);
                    if slack <= pc.urgent_slack {
                        fast
                    } else {
                        quality
                    }
                }
                _ => match shard.dispatch {
                    DispatchPolicy::RoundRobin => {
                        let r = rr_cursor;
                        rr_cursor = (rr_cursor + 1) % n;
                        r
                    }
                    DispatchPolicy::LeastLoaded => (0..n)
                        .min_by_key(|&r| queues[r].len())
                        .expect("at least one replica"),
                },
            };
            rec.replica = Some(target);
            queues[target].push_back(QEntry { id, eligible_at: t });
            outcomes.push(rec);
        }
        let total_after: usize = queues.iter().map(VecDeque::len).sum();
        max_depth = max_depth.max(total_after);
        for r in 0..n {
            acc[r].max_queue_depth = acc[r].max_queue_depth.max(queues[r].len());
        }

        // 2. Expire requests whose deadline has passed.
        if shard.deadline_steps.is_some() {
            for q in &mut queues {
                q.retain(|e| {
                    let live = outcomes[e.id].deadline.is_none_or(|d| d >= t);
                    if !live {
                        outcomes[e.id].status = RequestStatus::Expired;
                        stats.expired += 1;
                    }
                    live
                });
            }
        }

        // 3. The shared budget policy selects once for the whole fleet.
        let Some(p) = selector.select(budget) else {
            stats.dropped += 1;
            prev_bits = None;
            schedule.push(None);
            continue;
        };
        if prev_bits != Some(p.bits) {
            stats.switches += 1;
        }
        prev_bits = Some(p.bits);
        schedule.push(Some(p.bits.get()));

        // 4. Plan each replica's serving point for the step. A pinned
        // replica serves at its own point, but only on steps where that
        // point fits the budget the selector just cleared; a stall idles
        // the faulted replica.
        let mut serve_points: Vec<Option<&OperatingPoint>> = Vec::with_capacity(n);
        for r in 0..n {
            let point = match &shard.pinned {
                Some(pc) => {
                    let q = &points[pc.point_indices[r]];
                    if q.energy_pj > budget {
                        serve_points.push(None);
                        continue;
                    }
                    q
                }
                None => p,
            };
            if fault == Some(FaultKind::Stall) && r == shard.fault_replica {
                stats.stalled_steps += 1;
                serve_points.push(None);
                continue;
            }
            *acc[r].time_in_bits.entry(point.bits.get()).or_insert(0) += 1;
            serve_points.push(Some(point));
        }

        // Drain each serving replica's own queue, cache hits first-class:
        // a hit completes on the spot and frees its batch slot for the
        // next miss, so one step can clear hits + a full batch.
        let mut takes: Vec<Vec<QEntry>> = Vec::with_capacity(n);
        for r in 0..n {
            let taken = match serve_points[r] {
                Some(point) => drain_eligible(
                    &mut queues[r],
                    t,
                    serving.max_batch,
                    point,
                    shard.cache,
                    pin.generation(),
                    &mut cache,
                    inputs,
                    &mut outcomes,
                    &mut stats,
                    &mut acc[r],
                    &mut acc_sum,
                ),
                None => Vec::new(),
            };
            takes.push(taken);
        }

        // 4b. Work stealing: a serving replica whose own drain came up
        // empty takes from the head of the deepest other queue (strictly
        // deeper wins, ties to the lowest index) and serves the steal at
        // its own point. Runs after every own-queue drain so steals only
        // target genuinely leftover backlog.
        if shard.work_stealing {
            for r in 0..n {
                let Some(point) = serve_points[r] else {
                    continue;
                };
                if !takes[r].is_empty() {
                    continue;
                }
                let mut victim: Option<(usize, usize)> = None;
                for (v, q) in queues.iter().enumerate() {
                    if v == r {
                        continue;
                    }
                    let len = q.len();
                    if len > 0 && victim.is_none_or(|(_, best)| len > best) {
                        victim = Some((v, len));
                    }
                }
                let Some((v, _)) = victim else { continue };
                let stolen = drain_eligible(
                    &mut queues[v],
                    t,
                    serving.max_batch,
                    point,
                    shard.cache,
                    pin.generation(),
                    &mut cache,
                    inputs,
                    &mut outcomes,
                    &mut stats,
                    &mut acc[r],
                    &mut acc_sum,
                );
                for e in &stolen {
                    outcomes[e.id].replica = Some(r);
                }
                takes[r] = stolen;
            }
        }

        // Freeze the step's batches; the histogram counts post-steal takes.
        let mut batches: Vec<Option<PlannedBatch>> = Vec::with_capacity(n);
        for (r, taken) in takes.into_iter().enumerate() {
            let Some(point) = serve_points[r] else {
                batches.push(None);
                continue;
            };
            histogram[taken.len()] += 1;
            if taken.is_empty() {
                batches.push(None);
            } else {
                batches.push(Some(PlannedBatch {
                    taken,
                    bits: point.bits,
                    accuracy: point.accuracy,
                    energy_pj: point.energy_pj,
                }));
            }
        }

        // 5. Run the non-empty batches, one scoped thread per replica.
        // Slots borrow each replica's own model, so the packed tables are
        // shared read-only while the cursors stay disjoint.
        let mut slots: Vec<StepSlot<'_>> = Vec::with_capacity(n);
        for (r, m) in models.iter_mut().enumerate() {
            let (batch, bits) = match &batches[r] {
                Some(pb) => {
                    let ids: Vec<usize> = pb.taken.iter().map(|e| e.id).collect();
                    (
                        Some(gather_batch(inputs, &sample_dims, sample_len, &ids)),
                        pb.bits,
                    )
                }
                None => (None, p.bits),
            };
            slots.push(StepSlot {
                model: m,
                bits,
                batch,
                fault: if r == shard.fault_replica {
                    fault
                } else {
                    None
                },
                result: None,
            });
        }
        par_chunks_mut(&mut slots, 1, |_, chunk| {
            let s = &mut chunk[0];
            let Some(batch) = &s.batch else { return };
            let run = || -> Result<Tensor, String> {
                match s.fault {
                    Some(FaultKind::TransientError) => {
                        return Err(format!("injected transient fault at step {t}"))
                    }
                    Some(FaultKind::ForwardPanic) => panic!("injected forward panic at step {t}"),
                    _ => {}
                }
                s.model
                    .try_switch_to_bits(s.bits)
                    .and_then(|()| s.model.try_forward_batch(batch))
                    .map_err(|e| e.to_string())
            };
            s.result = Some(
                catch_unwind(AssertUnwindSafe(run))
                    .unwrap_or_else(|_| Err(format!("isolated forward panic at step {t}"))),
            );
        });

        // 6. Join in replica order; a faulted batch fails or retries only
        // its own replica's requests.
        for (r, slot) in slots.into_iter().enumerate() {
            let Some(PlannedBatch {
                taken,
                bits,
                accuracy,
                energy_pj,
            }) = batches[r].take()
            else {
                continue;
            };
            acc[r].batches += 1;
            let StepSlot { batch, result, .. } = slot;
            match result.expect("non-empty batch always executes") {
                Ok(y) => {
                    let take = taken.len();
                    let outs = scatter_outputs(&y, take);

                    // 6a. Canary shadow: a ticketed fraction of successful
                    // batches additionally runs through the candidate at
                    // the same bit-width and is compared bit-exactly; the
                    // requests below are still answered from the stable
                    // outputs, so a divergent canary never reaches a
                    // client. Both forwards report equal latency — the
                    // simulated clock has no wall time.
                    if let Some(cand) = shadow.as_mut() {
                        if registry.canary_ticket(pin.epoch) {
                            let b = batch.as_ref().expect("non-empty batch has inputs");
                            let shadowed = catch_unwind(AssertUnwindSafe(|| {
                                cand.try_switch_to_bits(bits)
                                    .and_then(|()| cand.try_forward_batch(b))
                            }));
                            match shadowed {
                                Ok(Ok(cy)) => {
                                    let cand_outs = scatter_outputs(&cy, take);
                                    let diverged = outs
                                        .iter()
                                        .zip(&cand_outs)
                                        .filter(|(a, b)| a.data() != b.data())
                                        .count();
                                    registry.report_shadow(pin.epoch, take, diverged, 1, 1);
                                }
                                _ => {
                                    registry.report_candidate_fault(pin.epoch);
                                }
                            }
                        }
                    }
                    for (e, out) in taken.iter().zip(outs) {
                        let rec = &mut outcomes[e.id];
                        rec.served_at = Some(t);
                        rec.bits = Some(bits.get());
                        rec.attempts += 1;
                        if shard.cache {
                            cache.insert(
                                cache_key(pin.generation(), bits, &inputs[e.id % inputs.len()]),
                                &out,
                            );
                        }
                        rec.output = Some(out);
                        rec.status = RequestStatus::Completed;
                        stats.completed += 1;
                        acc[r].served += 1;
                        acc[r].waits.push(t - rec.arrived_at);
                        wait_steps.push(t - rec.arrived_at);
                    }
                    acc_sum += accuracy * take as f32;
                    stats.energy_pj += energy_pj * take as f64;
                }
                Err(_) => {
                    acc[r].faulted_batches += 1;
                    // Retries re-dispatch away from the replica whose
                    // fault just failed them: the least-loaded *other*
                    // replica (ties to the lowest index). With a single
                    // replica there is nowhere else to go.
                    let retry_target = if n > 1 {
                        let mut best = usize::from(r == 0);
                        for v in 0..n {
                            if v != r && queues[v].len() < queues[best].len() {
                                best = v;
                            }
                        }
                        best
                    } else {
                        r
                    };
                    for e in taken.iter().rev() {
                        let rec = &mut outcomes[e.id];
                        rec.attempts += 1;
                        if rec.attempts > shard.max_retries {
                            rec.status = RequestStatus::Failed;
                            stats.failed += 1;
                        } else {
                            stats.retried += 1;
                            rec.replica = Some(retry_target);
                            queues[retry_target].push_front(QEntry {
                                id: e.id,
                                eligible_at: t + 1,
                            });
                        }
                    }
                }
            }
        }
    }

    // Cache hits complete requests but run no forward, so they join the
    // global wait list after the per-forward waits — in replica order,
    // matching the per-replica lists (degenerate runs have none, keeping
    // the batched wait order intact).
    if shard.cache {
        let mut hit_waits: Vec<usize> = outcomes
            .iter()
            .filter(|o| o.cached)
            .map(|o| o.served_at.expect("cached implies served") - o.arrived_at)
            .collect();
        wait_steps.append(&mut hit_waits);
    }

    stats.served_requests = stats.completed;
    stats.mean_accuracy = if stats.served_requests > 0 {
        acc_sum / stats.served_requests as f32
    } else {
        0.0
    };
    stats.switch_energy_pj = stats.switches as f64 * cfg.switch_cost_pj;
    stats.energy_pj += stats.switch_energy_pj;
    stats.schedule = schedule;
    stats.backlog = queues.iter().map(VecDeque::len).sum();
    stats.max_queue_depth = max_depth;
    stats.batch_histogram = histogram;
    stats.cache_evictions = cache.evictions();
    stats.faults_injected = faults.count_before(trace.len());
    stats.replicas = acc
        .into_iter()
        .zip(&queues)
        .map(|(a, q)| {
            let w = wait_summary(&a.waits);
            ReplicaStats {
                served: a.served,
                batches: a.batches,
                faulted_batches: a.faulted_batches,
                backlog: q.len(),
                max_queue_depth: a.max_queue_depth,
                cache_hits: a.cache_hits,
                mean_wait_steps: w.mean,
                p99_wait_steps: w.p99,
                time_in_bits: a.time_in_bits.into_iter().collect(),
                generation: pin.stable.generation(),
            }
        })
        .collect();
    stats.time_per_generation = gen_steps.into_iter().collect();
    // Registry activity attributable to this run: the counters are
    // monotone, so the delta over the run's span is exact.
    let metrics1 = registry.metrics();
    stats.reloads = metrics1.reloads - metrics0.reloads;
    stats.rollbacks = metrics1.rollbacks - metrics0.rollbacks;
    stats.rejected_publishes = metrics1.rejected_publishes - metrics0.rejected_publishes;
    stats.canary_served = metrics1.canary_served - metrics0.canary_served;
    stats.divergences = metrics1.divergences - metrics0.divergences;
    finish_wait_stats(&mut stats, wait_steps);
    Ok((stats, outcomes))
}
