//! Resilient batched serving: deadlines, load shedding, retry-with-backoff,
//! precision-downshift degradation, and fault isolation.
//!
//! [`simulate_serving_resilient`] is [`crate::runtime::simulate_serving_batched`]
//! hardened for the paper's deployment story: when traffic outruns the
//! engine, the cheapest lever an SP-Net has is the one InstantNet makes
//! free — *switch to fewer bits*. A hysteresis [`DegradationConfig`]
//! controller watches the queue (depth is the leading indicator of p99
//! wait: with bounded service rate, every queued request is future tail
//! latency) and downshifts the [`PackedModel`] one operating point at a
//! time, recovering once the backlog drains. Deadlines, an admission cap,
//! and retry budgets turn overload and injected faults
//! ([`crate::faults::FaultPlan`]) into *accounted* outcomes — shed,
//! expired, failed — instead of unbounded queues or a dead process;
//! worker panics are isolated per batch with `catch_unwind`.
//!
//! With every knob at its [`ResilienceConfig::default`] and an empty
//! fault plan, this path reproduces `simulate_serving_batched`
//! bit-for-bit — same outputs, same schedule, same queueing stats — at
//! every bit-width and thread count. Resilience is strictly additive.

use crate::engine::batch::{gather_batch, scatter_outputs, validate_inputs};
use crate::engine::degrade::HysteresisController;
use crate::engine::stats::finish_wait_stats;
use crate::faults::{FaultKind, FaultPlan};
use crate::runtime::{
    EnergyTrace, Policy, PolicySelector, RequestTrace, RuntimeStats, ServingConfig,
    SimulationConfig,
};
use crate::DeploymentReport;
use instantnet_infer::{InferError, PackedModel};
use instantnet_quant::BitWidth;
use instantnet_tensor::Tensor;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Hysteresis thresholds for the precision-downshift controller, in queue
/// depth after each step's arrivals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationConfig {
    /// Downshift one operating point when the depth reaches this.
    pub backlog_high: usize,
    /// Recover one operating point when the depth falls to this or below.
    /// Must be strictly below [`DegradationConfig::backlog_high`] — the
    /// gap is the hysteresis band that prevents flapping.
    pub backlog_low: usize,
    /// Minimum steps between controller transitions (≥ 1). Bounds the
    /// oscillation rate: at most one bit-width move per window.
    pub recovery_window: usize,
}

/// Knobs of the resilient serving queue. The default is fully permissive —
/// no deadlines, no cap, no retries, no degradation — and makes
/// [`simulate_serving_resilient`] behave exactly like
/// [`crate::runtime::simulate_serving_batched`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilienceConfig {
    /// Relative deadline: a request arriving at step `t` must be served by
    /// step `t + deadline_steps` or it expires. `None` = no deadlines.
    pub deadline_steps: Option<usize>,
    /// Admission cap: arrivals finding this many requests queued are shed.
    /// `None` = unbounded queue.
    pub max_queue_depth: Option<usize>,
    /// How many times a fault-hit request re-queues before it is failed.
    pub max_retries: usize,
    /// Extra steps a retried request waits before becoming eligible again.
    pub retry_backoff_steps: usize,
    /// Wall-clock length of one simulated step, in seconds. When set, a
    /// step's batch capacity becomes
    /// `min(max_batch, floor(step_time_s / point.latency_s))`, so
    /// downshifting to a lower-latency operating point genuinely raises
    /// throughput — the mechanism degradation trades accuracy for.
    /// `None` keeps capacity at `max_batch` regardless of bit-width.
    pub step_time_s: Option<f64>,
    /// The precision-downshift controller. `None` = policy picks alone.
    pub degradation: Option<DegradationConfig>,
}

/// Terminal (or end-of-trace) state of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStatus {
    /// Still queued when the trace ended (counts toward
    /// [`RuntimeStats::backlog`]).
    Pending,
    /// Served within deadline at the policy-selected bit-width.
    Completed,
    /// Served within deadline, but at a bit-width the degradation
    /// controller downshifted below the policy's pick.
    CompletedDegraded,
    /// Rejected at admission: queue cap reached, or the deadline was
    /// unmeetable even if every following step served a full batch.
    Shed,
    /// Deadline passed while queued.
    Expired,
    /// Abandoned after exhausting the retry budget on faulted batches.
    Failed,
}

/// Per-request record of a resilient run, index-aligned with arrival
/// order — [`crate::runtime::RequestOutcome`] plus status, retry count,
/// and deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientOutcome {
    /// Timestep the request arrived.
    pub arrived_at: usize,
    /// Timestep it was served, if it was.
    pub served_at: Option<usize>,
    /// Bit-width of the batch that served it.
    pub bits: Option<u8>,
    /// The packed forward's output — still bit-identical to a batch-of-one
    /// forward at the same bit-width.
    pub output: Option<Tensor>,
    /// How the request ended.
    pub status: RequestStatus,
    /// Forward attempts that included this request (0 if never batched).
    pub attempts: usize,
    /// Absolute deadline step, when deadlines are configured.
    pub deadline: Option<usize>,
}

/// Why a resilient run could not start (or continue).
#[derive(Debug)]
pub enum ServingError {
    /// Inconsistent traces, shapes, or resilience knobs.
    Config(String),
    /// The packed engine rejected an operation (e.g. the selected
    /// bit-width is not in the model's set).
    Infer(InferError),
}

impl std::fmt::Display for ServingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServingError::Config(msg) => write!(f, "invalid serving configuration: {msg}"),
            ServingError::Infer(e) => write!(f, "inference engine error: {e}"),
        }
    }
}

impl std::error::Error for ServingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServingError::Config(_) => None,
            ServingError::Infer(e) => Some(e),
        }
    }
}

impl From<InferError> for ServingError {
    fn from(e: InferError) -> Self {
        ServingError::Infer(e)
    }
}

/// One queued request: its outcome index plus the first step it may be
/// batched again after a retry backoff.
struct QEntry {
    id: usize,
    eligible_at: usize,
}

/// Shorthand for a [`ServingError::Config`] — shared with the sharded
/// path so both report configuration problems through one type.
pub(crate) fn config_err<T>(msg: impl Into<String>) -> Result<T, ServingError> {
    Err(ServingError::Config(msg.into()))
}

#[allow(clippy::too_many_lines)]
fn validate(
    trace: &EnergyTrace,
    requests: &RequestTrace,
    serving: &ServingConfig,
    resilience: &ResilienceConfig,
    inputs: &[Tensor],
) -> Result<(), ServingError> {
    if requests.len() != trace.len() {
        return config_err(format!(
            "request trace covers {} steps but energy trace covers {}",
            requests.len(),
            trace.len()
        ));
    }
    if serving.max_batch < 1 {
        return config_err("max_batch must be at least 1");
    }
    if let Err(msg) = validate_inputs(inputs) {
        return config_err(msg);
    }
    if let Some(st) = resilience.step_time_s {
        if !st.is_finite() || st <= 0.0 {
            return config_err(format!("step_time_s must be finite and positive, got {st}"));
        }
    }
    if let Some(dc) = &resilience.degradation {
        if dc.backlog_low >= dc.backlog_high {
            return config_err(format!(
                "degradation backlog_low {} must be below backlog_high {}",
                dc.backlog_low, dc.backlog_high
            ));
        }
        if dc.recovery_window < 1 {
            return config_err("degradation recovery_window must be at least 1");
        }
    }
    Ok(())
}

/// Batched serving with deadlines, shedding, retries, precision-downshift
/// degradation, and deterministic fault injection.
///
/// Each timestep, in order: the energy policy selects an operating point
/// ([`FaultKind::Stall`] skips the step entirely); arrivals are admitted,
/// shed over the queue cap, or shed when their deadline is unmeetable;
/// requests whose deadline has passed expire; the degradation controller
/// compares the queue depth against its hysteresis band and moves the
/// serving point at most one step per recovery window; then up to the
/// step's capacity of backoff-eligible requests run as **one** packed
/// batch at the (possibly downshifted) bit-width. A batch that faults —
/// injected transient error, injected panic (isolated via
/// `catch_unwind`; the model is immutable during a forward, so its state
/// stays consistent), or a genuine [`InferError`] — fails only its own
/// requests, which re-queue at the head with
/// [`ResilienceConfig::retry_backoff_steps`] until their retry budget is
/// spent. Energy and accuracy are charged per *successful* inference at
/// the serving point.
///
/// Every request is accounted exactly once — `arrivals == completed +
/// completed_degraded + shed + expired + failed + backlog` — and no
/// completed request ever exceeds its deadline (late requests expire
/// before they can be served).
///
/// # Errors
///
/// [`ServingError::Config`] for inconsistent traces, input shapes, or
/// resilience knobs; [`ServingError::Infer`] if the model cannot switch
/// to a selected bit-width (report and model built from different sets).
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
pub fn simulate_serving_resilient(
    report: &DeploymentReport,
    trace: &EnergyTrace,
    requests: &RequestTrace,
    policy: Policy,
    cfg: &SimulationConfig,
    serving: &ServingConfig,
    resilience: &ResilienceConfig,
    faults: &FaultPlan,
    model: &mut PackedModel,
    inputs: &[Tensor],
) -> Result<(RuntimeStats, Vec<ResilientOutcome>), ServingError> {
    validate(trace, requests, serving, resilience, inputs)?;
    let sample_dims = inputs[0].dims().to_vec();
    let sample_len = inputs[0].len();
    let points = report.points();

    let mut outcomes: Vec<ResilientOutcome> = Vec::with_capacity(requests.total());
    let mut queue: VecDeque<QEntry> = VecDeque::new();
    let mut wait_steps: Vec<usize> = Vec::new();
    let mut histogram = vec![0usize; serving.max_batch + 1];
    let mut max_depth = 0usize;
    let mut time_in_bits: BTreeMap<u8, usize> = BTreeMap::new();
    let mut degradation_events: Vec<(usize, usize)> = Vec::new();

    let mut selector = PolicySelector::new(report, policy);
    let mut prev_bits: Option<BitWidth> = None;
    let mut stats = RuntimeStats::default();
    let mut acc_sum = 0.0f32;
    let mut schedule: Vec<Option<u8>> = Vec::with_capacity(trace.len());

    // Degradation controller: how many operating points below the
    // policy's pick the model is held. Simulated driver, so its tick is
    // the step index (the wall-clock loop feeds the same state machine
    // microseconds instead).
    let mut controller = resilience.degradation.as_ref().map(|dc| {
        HysteresisController::new(dc.backlog_high, dc.backlog_low, dc.recovery_window as u64)
    });

    for (t, &budget) in trace.budgets().iter().enumerate() {
        let fault = faults.at(t);

        // 1. Bit-width selection (stalls skip it, like an infeasible step).
        let policy_point = if fault == Some(FaultKind::Stall) {
            stats.stalled_steps += 1;
            selector.reset();
            None
        } else {
            match selector.select(budget) {
                Some(p) => Some(p),
                None => {
                    stats.dropped += 1;
                    None
                }
            }
        };

        // 2. Arrivals with admission control.
        let deadline = |arrived: usize| resilience.deadline_steps.map(|d| arrived + d);
        for _ in 0..requests.arrivals()[t] {
            let id = outcomes.len();
            let mut rec = ResilientOutcome {
                arrived_at: t,
                served_at: None,
                bits: None,
                output: None,
                status: RequestStatus::Pending,
                attempts: 0,
                deadline: deadline(t),
            };
            let over_cap = resilience
                .max_queue_depth
                .is_some_and(|cap| queue.len() >= cap);
            // Best case the queue drains `max_batch` per step, so a request
            // behind `pos` others waits at least `pos / max_batch` steps.
            let hopeless = resilience
                .deadline_steps
                .is_some_and(|d| queue.len() / serving.max_batch > d);
            if over_cap || hopeless {
                rec.status = RequestStatus::Shed;
                stats.shed += 1;
            } else {
                queue.push_back(QEntry { id, eligible_at: t });
            }
            outcomes.push(rec);
        }
        max_depth = max_depth.max(queue.len());

        // 3. Expire requests that can no longer meet their deadline.
        if resilience.deadline_steps.is_some() {
            queue.retain(|e| {
                let live = outcomes[e.id].deadline.is_none_or(|d| d >= t);
                if !live {
                    outcomes[e.id].status = RequestStatus::Expired;
                    stats.expired += 1;
                }
                live
            });
        }

        // 4. Degradation controller: one move per recovery window, driven
        // by queue depth against the hysteresis band.
        if let (Some(c), Some(p)) = (controller.as_mut(), policy_point) {
            let idx = points
                .iter()
                .position(|q| q.bits == p.bits)
                .expect("selected point comes from the report");
            if let Some(levels) = c.observe(t as u64, queue.len(), idx) {
                degradation_events.push((t, levels));
            }
        }

        // 5. Serve one batch at the (possibly downshifted) bit-width.
        let Some(p) = policy_point else {
            prev_bits = None;
            schedule.push(None);
            continue;
        };
        let idx = points
            .iter()
            .position(|q| q.bits == p.bits)
            .expect("selected point comes from the report");
        let degrade_levels = controller.as_ref().map_or(0, HysteresisController::levels);
        let serve_idx = idx - degrade_levels.min(idx);
        let point = &points[serve_idx];
        let degraded = serve_idx < idx;

        if prev_bits != Some(point.bits) {
            stats.switches += 1;
        }
        prev_bits = Some(point.bits);
        schedule.push(Some(point.bits.get()));
        *time_in_bits.entry(point.bits.get()).or_insert(0) += 1;

        let capacity = match resilience.step_time_s {
            None => serving.max_batch,
            Some(st) => (st / point.latency_s).floor().max(0.0) as usize,
        }
        .min(serving.max_batch);

        // Pull the first `capacity` backoff-eligible requests, FIFO,
        // leaving ineligible ones in place.
        let mut taken: Vec<QEntry> = Vec::new();
        let mut kept: VecDeque<QEntry> = VecDeque::with_capacity(queue.len());
        while let Some(e) = queue.pop_front() {
            if taken.len() < capacity && e.eligible_at <= t {
                taken.push(e);
            } else {
                kept.push_back(e);
            }
        }
        queue = kept;
        histogram[taken.len()] += 1;
        if taken.is_empty() {
            continue;
        }

        model.try_switch_to_bits(point.bits)?;
        let ids: Vec<usize> = taken.iter().map(|e| e.id).collect();
        let batch = gather_batch(inputs, &sample_dims, sample_len, &ids);

        // The forward is immutable on the model, so an isolated panic
        // cannot leave the engine in a torn state.
        let forward = || -> Result<Tensor, InferError> {
            match fault {
                Some(FaultKind::TransientError) => Err(InferError::Input(format!(
                    "injected transient fault at step {t}"
                ))),
                Some(FaultKind::ForwardPanic) => panic!("injected forward panic at step {t}"),
                _ => model.try_forward_batch(&batch),
            }
        };
        match catch_unwind(AssertUnwindSafe(forward)) {
            Ok(Ok(y)) => {
                let take = taken.len();
                let outs = scatter_outputs(&y, take);
                for (e, out) in taken.iter().zip(outs) {
                    let rec = &mut outcomes[e.id];
                    rec.served_at = Some(t);
                    rec.bits = Some(point.bits.get());
                    rec.attempts += 1;
                    rec.output = Some(out);
                    rec.status = if degraded {
                        stats.completed_degraded += 1;
                        RequestStatus::CompletedDegraded
                    } else {
                        stats.completed += 1;
                        RequestStatus::Completed
                    };
                    wait_steps.push(t - rec.arrived_at);
                }
                acc_sum += point.accuracy * take as f32;
                stats.energy_pj += point.energy_pj * take as f64;
            }
            // A typed forward error or an isolated panic fails this batch
            // alone: its requests retry (with backoff) or are abandoned.
            Ok(Err(_)) | Err(_) => {
                for e in taken.iter().rev() {
                    let rec = &mut outcomes[e.id];
                    rec.attempts += 1;
                    if rec.attempts > resilience.max_retries {
                        rec.status = RequestStatus::Failed;
                        stats.failed += 1;
                    } else {
                        stats.retried += 1;
                        queue.push_front(QEntry {
                            id: e.id,
                            eligible_at: t + 1 + resilience.retry_backoff_steps,
                        });
                    }
                }
            }
        }
    }

    stats.served_requests = stats.completed + stats.completed_degraded;
    stats.mean_accuracy = if stats.served_requests > 0 {
        acc_sum / stats.served_requests as f32
    } else {
        0.0
    };
    stats.switch_energy_pj = stats.switches as f64 * cfg.switch_cost_pj;
    stats.energy_pj += stats.switch_energy_pj;
    stats.schedule = schedule;
    stats.backlog = queue.len();
    stats.max_queue_depth = max_depth;
    stats.batch_histogram = histogram;
    stats.faults_injected = faults.count_before(trace.len());
    stats.time_in_bits = time_in_bits.into_iter().collect();
    stats.degradation_events = degradation_events;
    finish_wait_stats(&mut stats, wait_steps);
    Ok((stats, outcomes))
}
