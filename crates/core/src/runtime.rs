//! IoT runtime simulation: switching a deployed SP-Net's bit-width under a
//! time-varying energy budget.
//!
//! The paper's motivation is that "IoT applications often have dynamic
//! time/energy constraints over time"; an SP-Net lets the runtime allocate
//! bit-widths on the fly. This module provides synthetic harvested-energy
//! traces and switching policies over a [`crate::DeploymentReport`], so the
//! end-to-end benefit of instantaneous switching can be quantified.

use crate::{DeploymentReport, OperatingPoint};
use instantnet_infer::PackedModel;
use instantnet_quant::BitWidth;
use instantnet_tensor::Tensor;

/// A per-timestep energy budget trace (pJ available per inference).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyTrace {
    budgets: Vec<f64>,
}

impl EnergyTrace {
    /// Wraps an explicit budget sequence.
    ///
    /// # Panics
    ///
    /// Panics if `budgets` is empty or contains a non-finite value.
    pub fn new(budgets: Vec<f64>) -> Self {
        assert!(!budgets.is_empty(), "trace must not be empty");
        assert!(
            budgets.iter().all(|b| b.is_finite() && *b >= 0.0),
            "budgets must be finite and non-negative"
        );
        EnergyTrace { budgets }
    }

    /// A sinusoidal harvest profile oscillating between `lo` and `hi`
    /// over `steps` steps with `cycles` full periods — a day/night solar
    /// pattern.
    pub fn sinusoidal(lo: f64, hi: f64, steps: usize, cycles: f64) -> Self {
        assert!(steps > 0 && hi >= lo, "invalid trace parameters");
        let budgets = (0..steps)
            .map(|t| {
                let phase = cycles * std::f64::consts::TAU * t as f64 / steps as f64;
                lo + (hi - lo) * 0.5 * (1.0 - phase.cos())
            })
            .collect();
        EnergyTrace { budgets }
    }

    /// The budget sequence.
    pub fn budgets(&self) -> &[f64] {
        &self.budgets
    }

    /// Number of timesteps.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.budgets.len()
    }
}

/// Bit-width switching policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Always pick the most accurate point that fits the instantaneous
    /// budget.
    Greedy,
    /// Like greedy, but only switch when the current point violates the
    /// budget or a point better by at least `margin` (accuracy fraction)
    /// becomes affordable — trades accuracy for reconfiguration stability.
    Hysteresis {
        /// Minimum accuracy improvement to justify an upward switch.
        margin: f32,
    },
}

/// Simulation knobs beyond the switching policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationConfig {
    /// Energy charged per bit-width reconfiguration (pJ). The paper's
    /// engine switches by pointer swap, so the physical cost is ~0 — the
    /// default; set non-zero to model re-quantizing deployments. Affects
    /// accounting only, never point selection.
    pub switch_cost_pj: f64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            switch_cost_pj: 0.0,
        }
    }
}

/// Outcome of a runtime simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeStats {
    /// Mean accuracy over served timesteps.
    pub mean_accuracy: f32,
    /// Number of bit-width reconfigurations performed.
    pub switches: usize,
    /// Timesteps where no operating point fit the budget (inference
    /// skipped).
    pub dropped: usize,
    /// Total energy consumed (pJ), inference plus reconfiguration.
    pub energy_pj: f64,
    /// Energy spent on reconfigurations alone
    /// (`switches × switch_cost_pj`).
    pub switch_energy_pj: f64,
    /// Chosen bit-width per timestep (`None` = dropped).
    pub schedule: Vec<Option<u8>>,
}

/// Simulates running `report`'s operating points over `trace` with the
/// given policy and zero switching cost.
pub fn simulate(report: &DeploymentReport, trace: &EnergyTrace, policy: Policy) -> RuntimeStats {
    simulate_with_config(report, trace, policy, &SimulationConfig::default())
}

/// [`simulate`] with explicit [`SimulationConfig`].
pub fn simulate_with_config(
    report: &DeploymentReport,
    trace: &EnergyTrace,
    policy: Policy,
    cfg: &SimulationConfig,
) -> RuntimeStats {
    run_simulation(report, trace, policy, cfg, |_| {})
}

/// Simulates the trace while actually serving inferences: every served
/// timestep switches `model` to the selected bit-width (a pointer swap)
/// and runs `input` through the packed engine. Returns the stats plus one
/// output tensor per timestep (`None` where the budget dropped the step).
///
/// # Panics
///
/// Panics if a selected operating point's bit-width is not in the packed
/// model's set — the report and the model must come from the same
/// [`instantnet_quant::BitWidthSet`].
pub fn simulate_serving(
    report: &DeploymentReport,
    trace: &EnergyTrace,
    policy: Policy,
    cfg: &SimulationConfig,
    model: &mut PackedModel,
    input: &Tensor,
) -> (RuntimeStats, Vec<Option<Tensor>>) {
    let mut outputs: Vec<Option<Tensor>> = Vec::with_capacity(trace.len());
    let stats = run_simulation(report, trace, policy, cfg, |bits| match bits {
        Some(b) => {
            assert!(
                model.switch_to_bits(b),
                "operating point {b} is not in the packed model's bit-width set"
            );
            outputs.push(Some(model.forward(input)));
        }
        None => outputs.push(None),
    });
    (stats, outputs)
}

/// Shared policy loop; `on_step` observes every timestep's selection.
fn run_simulation(
    report: &DeploymentReport,
    trace: &EnergyTrace,
    policy: Policy,
    cfg: &SimulationConfig,
    mut on_step: impl FnMut(Option<BitWidth>),
) -> RuntimeStats {
    let mut current: Option<&OperatingPoint> = None;
    let mut switches = 0usize;
    let mut dropped = 0usize;
    let mut acc_sum = 0.0f32;
    let mut served = 0usize;
    let mut energy = 0.0f64;
    let mut schedule = Vec::with_capacity(trace.len());
    for &budget in trace.budgets() {
        let best = report.select(budget);
        let next = match (policy, current, best) {
            (_, _, None) => None,
            (Policy::Greedy, _, Some(b)) => Some(b),
            (Policy::Hysteresis { .. }, None, Some(b)) => Some(b),
            (Policy::Hysteresis { margin }, Some(cur), Some(b)) => {
                // Switch when forced downward (over budget) or when the
                // upward move is worth more than the hysteresis margin.
                if cur.energy_pj > budget || b.accuracy > cur.accuracy + margin {
                    Some(b)
                } else {
                    Some(cur)
                }
            }
        };
        match next {
            Some(p) => {
                if current.map(|c| c.bits) != Some(p.bits) {
                    switches += 1;
                }
                current = Some(p);
                acc_sum += p.accuracy;
                served += 1;
                energy += p.energy_pj;
                schedule.push(Some(p.bits.get()));
                on_step(Some(p.bits));
            }
            None => {
                dropped += 1;
                current = None;
                schedule.push(None);
                on_step(None);
            }
        }
    }
    let switch_energy = switches as f64 * cfg.switch_cost_pj;
    RuntimeStats {
        mean_accuracy: if served > 0 {
            acc_sum / served as f32
        } else {
            0.0
        },
        switches,
        dropped,
        energy_pj: energy + switch_energy,
        switch_energy_pj: switch_energy,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeploymentReport;
    use instantnet_quant::BitWidth;

    fn demo_report() -> DeploymentReport {
        let mk = |bits: u8, acc: f32, e: f64| OperatingPoint {
            bits: BitWidth::new(bits),
            accuracy: acc,
            energy_pj: e,
            latency_s: 1e-3,
            edp: e * 1e-3,
            fps: 1000.0,
        };
        DeploymentReport::new(
            "demo",
            1,
            vec![mk(4, 0.60, 10.0), mk(8, 0.70, 30.0), mk(32, 0.75, 100.0)],
        )
    }

    #[test]
    fn sinusoidal_trace_spans_range() {
        let t = EnergyTrace::sinusoidal(10.0, 100.0, 48, 2.0);
        let min = t.budgets().iter().cloned().fold(f64::INFINITY, f64::min);
        let max = t.budgets().iter().cloned().fold(0.0, f64::max);
        assert!(min < 12.0);
        assert!(max > 98.0);
        assert_eq!(t.len(), 48);
    }

    #[test]
    fn greedy_tracks_the_budget() {
        let report = demo_report();
        let trace = EnergyTrace::new(vec![5.0, 15.0, 50.0, 200.0]);
        let stats = simulate(&report, &trace, Policy::Greedy);
        assert_eq!(
            stats.schedule,
            vec![None, Some(4), Some(8), Some(32)],
            "one step per affordability tier"
        );
        assert_eq!(stats.dropped, 1);
    }

    #[test]
    fn hysteresis_switches_less_than_greedy() {
        let report = demo_report();
        // Budget oscillates across the 8/32 boundary every step.
        let trace = EnergyTrace::new(
            (0..40)
                .map(|t| if t % 2 == 0 { 35.0 } else { 120.0 })
                .collect(),
        );
        let greedy = simulate(&report, &trace, Policy::Greedy);
        let lazy = simulate(&report, &trace, Policy::Hysteresis { margin: 0.2 });
        assert!(
            lazy.switches < greedy.switches,
            "hysteresis {} vs greedy {}",
            lazy.switches,
            greedy.switches
        );
        assert!(lazy.mean_accuracy <= greedy.mean_accuracy + 1e-6);
    }

    #[test]
    fn hysteresis_still_respects_budget() {
        let report = demo_report();
        let trace = EnergyTrace::new(vec![120.0, 120.0, 12.0, 12.0]);
        let stats = simulate(&report, &trace, Policy::Hysteresis { margin: 0.5 });
        // Forced downward switch when 32-bit stops fitting.
        assert_eq!(stats.schedule[2], Some(4));
        for (b, s) in trace.budgets().iter().zip(&stats.schedule) {
            if let Some(bits) = s {
                let p = report
                    .points()
                    .iter()
                    .find(|p| p.bits.get() == *bits)
                    .unwrap();
                assert!(p.energy_pj <= *b);
            }
        }
    }

    #[test]
    fn energy_accounting_sums_served_points() {
        let report = demo_report();
        let trace = EnergyTrace::new(vec![15.0, 15.0]);
        let stats = simulate(&report, &trace, Policy::Greedy);
        assert_eq!(stats.energy_pj, 20.0);
        assert_eq!(stats.switches, 1, "initial selection counts once");
        assert_eq!(stats.switch_energy_pj, 0.0, "default switching is free");
    }

    #[test]
    fn switch_cost_charges_accounting_without_changing_selection() {
        let report = demo_report();
        // 4 -> 8 -> 4 -> 8: three reconfigurations after the initial pick.
        let trace = EnergyTrace::new(vec![15.0, 35.0, 15.0, 35.0]);
        let free = simulate(&report, &trace, Policy::Greedy);
        let cfg = SimulationConfig {
            switch_cost_pj: 5.0,
        };
        let costed = simulate_with_config(&report, &trace, Policy::Greedy, &cfg);
        assert_eq!(costed.schedule, free.schedule, "selection must not change");
        assert_eq!(costed.switches, 4);
        assert_eq!(costed.switch_energy_pj, 20.0);
        assert_eq!(costed.energy_pj, free.energy_pj + 20.0);
    }

    #[test]
    fn serving_runs_packed_inference_per_served_step() {
        use instantnet_infer::PackedModel;
        use instantnet_nn::models;
        use instantnet_quant::{BitWidthSet, Quantizer};

        let bits = BitWidthSet::new(vec![4, 8, 32]).unwrap();
        let net = models::small_cnn(4, 6, (8, 8), bits.len(), 5);
        let mut model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
        let report = demo_report(); // points at 4/8/32 bits, matching `bits`
        let trace = EnergyTrace::new(vec![5.0, 15.0, 50.0, 200.0]);
        let x = Tensor::from_vec(
            vec![1, 3, 8, 8],
            (0..3 * 8 * 8)
                .map(|i| (i % 13) as f32 / 13.0 - 0.5)
                .collect(),
        );
        let (stats, outputs) = simulate_serving(
            &report,
            &trace,
            Policy::Greedy,
            &SimulationConfig::default(),
            &mut model,
            &x,
        );
        assert_eq!(outputs.len(), trace.len());
        for (step, out) in stats.schedule.iter().zip(&outputs) {
            match (step, out) {
                (Some(b), Some(y)) => {
                    assert_eq!(y.dims(), &[1, 6]);
                    // The serving path produces exactly what a direct
                    // forward at that bit-width produces.
                    let i = bits.index_of(instantnet_quant::BitWidth::new(*b)).unwrap();
                    assert_eq!(y.data(), model.forward_at(i, &x).data());
                }
                (None, None) => {}
                _ => panic!("schedule and outputs disagree"),
            }
        }
        assert_eq!(stats.dropped, 1);
        assert_eq!(model.active_bits().get(), 32, "last served point sticks");
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_trace_rejected() {
        let _ = EnergyTrace::new(vec![]);
    }
}
