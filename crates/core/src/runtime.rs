//! IoT runtime simulation: switching a deployed SP-Net's bit-width under a
//! time-varying energy budget.
//!
//! The paper's motivation is that "IoT applications often have dynamic
//! time/energy constraints over time"; an SP-Net lets the runtime allocate
//! bit-widths on the fly. This module provides synthetic harvested-energy
//! traces and switching policies over a [`crate::DeploymentReport`], so the
//! end-to-end benefit of instantaneous switching can be quantified.

use crate::engine::stats::finish_wait_stats;
use crate::{DeploymentReport, OperatingPoint};
use instantnet_infer::PackedModel;
use instantnet_quant::BitWidth;
use instantnet_tensor::Tensor;
use std::collections::VecDeque;

/// A per-timestep energy budget trace (pJ available per inference).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyTrace {
    budgets: Vec<f64>,
}

impl EnergyTrace {
    /// Wraps an explicit budget sequence.
    ///
    /// # Panics
    ///
    /// Panics if `budgets` is empty or contains a non-finite value.
    pub fn new(budgets: Vec<f64>) -> Self {
        assert!(!budgets.is_empty(), "trace must not be empty");
        assert!(
            budgets.iter().all(|b| b.is_finite() && *b >= 0.0),
            "budgets must be finite and non-negative"
        );
        EnergyTrace { budgets }
    }

    /// A sinusoidal harvest profile oscillating between `lo` and `hi`
    /// over `steps` steps with `cycles` full periods — a day/night solar
    /// pattern.
    pub fn sinusoidal(lo: f64, hi: f64, steps: usize, cycles: f64) -> Self {
        assert!(steps > 0 && hi >= lo, "invalid trace parameters");
        let budgets = (0..steps)
            .map(|t| {
                let phase = cycles * std::f64::consts::TAU * t as f64 / steps as f64;
                lo + (hi - lo) * 0.5 * (1.0 - phase.cos())
            })
            .collect();
        EnergyTrace { budgets }
    }

    /// The budget sequence.
    pub fn budgets(&self) -> &[f64] {
        &self.budgets
    }

    /// Number of timesteps.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.budgets.len()
    }
}

/// Per-timestep request arrival counts for the batched serving queue —
/// the traffic-side companion of [`EnergyTrace`] (which is the
/// supply side). Step `t` of a simulation enqueues `arrivals()[t]` new
/// requests before the runtime decides how many to serve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    arrivals: Vec<usize>,
}

impl RequestTrace {
    /// Wraps an explicit arrival sequence.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` is empty.
    pub fn new(arrivals: Vec<usize>) -> Self {
        assert!(!arrivals.is_empty(), "request trace must not be empty");
        RequestTrace { arrivals }
    }

    /// `per_step` arrivals at every one of `steps` timesteps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn uniform(per_step: usize, steps: usize) -> Self {
        assert!(steps > 0, "request trace must not be empty");
        RequestTrace {
            arrivals: vec![per_step; steps],
        }
    }

    /// Arrival count per timestep.
    pub fn arrivals(&self) -> &[usize] {
        &self.arrivals
    }

    /// Total number of requests over the whole trace.
    pub fn total(&self) -> usize {
        self.arrivals.iter().sum()
    }

    /// Number of timesteps.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }
}

/// Knobs of the batched serving queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServingConfig {
    /// Largest number of queued requests aggregated into one packed
    /// forward per timestep. 1 reproduces per-request serving exactly.
    pub max_batch: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig { max_batch: 16 }
    }
}

/// Per-request record of a batched serving run, index-aligned with
/// arrival order (request ids are assigned FIFO as arrivals enqueue).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// Timestep the request entered the queue.
    pub arrived_at: usize,
    /// Timestep it was served, or `None` if it was still queued when the
    /// trace ended (counted in [`RuntimeStats::backlog`]).
    pub served_at: Option<usize>,
    /// Bit-width of the batch that served it.
    pub bits: Option<u8>,
    /// The packed forward's output for this request — bit-identical to a
    /// batch-of-one forward of the same input at the same bit-width, no
    /// matter which batch-mates it shared the GEMM with.
    pub output: Option<Tensor>,
}

/// Bit-width switching policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Always pick the most accurate point that fits the instantaneous
    /// budget.
    Greedy,
    /// Like greedy, but only switch when the current point violates the
    /// budget or a point better by at least `margin` (accuracy fraction)
    /// becomes affordable — trades accuracy for reconfiguration stability.
    Hysteresis {
        /// Minimum accuracy improvement to justify an upward switch.
        margin: f32,
    },
}

/// Simulation knobs beyond the switching policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationConfig {
    /// Energy charged per bit-width reconfiguration (pJ). The paper's
    /// engine switches by pointer swap, so the physical cost is ~0 — the
    /// default; set non-zero to model re-quantizing deployments. Affects
    /// accounting only, never point selection.
    pub switch_cost_pj: f64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            switch_cost_pj: 0.0,
        }
    }
}

/// Outcome of a runtime simulation.
///
/// The queueing fields (`served_requests` through `p99_wait_steps`) are
/// populated by [`simulate_serving_batched`]; the per-timestep paths
/// leave them at their empty defaults except `served_requests`, which
/// counts one inference per served timestep. The per-outcome resilience
/// fields (`completed` through `degradation_events`) are populated by
/// [`crate::resilience::simulate_serving_resilient`];
/// [`crate::sharding::simulate_serving_sharded`] fills the outcome
/// counters too (it never degrades, and tracks bit-width dwell per
/// replica instead of globally), and alone fills the cache counters and
/// the per-replica breakdown.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RuntimeStats {
    /// Mean accuracy over served inferences (one per served timestep in
    /// the per-timestep paths, one per request in the batched path).
    pub mean_accuracy: f32,
    /// Number of bit-width reconfigurations performed.
    pub switches: usize,
    /// Timesteps where no operating point fit the budget (inference
    /// skipped).
    pub dropped: usize,
    /// Total energy consumed (pJ): one inference charge per served
    /// request, plus reconfiguration.
    pub energy_pj: f64,
    /// Energy spent on reconfigurations alone
    /// (`switches × switch_cost_pj`).
    pub switch_energy_pj: f64,
    /// Chosen bit-width per timestep (`None` = dropped).
    pub schedule: Vec<Option<u8>>,
    /// Inferences actually run (requests served, in the batched path).
    pub served_requests: usize,
    /// Requests still queued when the trace ended.
    pub backlog: usize,
    /// Deepest the queue got, measured after each step's arrivals.
    pub max_queue_depth: usize,
    /// `batch_histogram[b]` = number of budget-served timesteps that
    /// aggregated exactly `b` requests (index 0 = idle steps); length
    /// `max_batch + 1`. Empty for the per-timestep paths.
    pub batch_histogram: Vec<usize>,
    /// Queueing delay (serve step − arrival step) per served request, in
    /// serve order.
    pub wait_steps: Vec<usize>,
    /// Mean of [`RuntimeStats::wait_steps`] (0 when nothing was served).
    pub mean_wait_steps: f64,
    /// Nearest-rank 50th percentile of the per-request queueing delay.
    pub p50_wait_steps: f64,
    /// Nearest-rank 99th percentile of the per-request queueing delay —
    /// the tail-latency figure switch policies are judged against.
    pub p99_wait_steps: f64,
    /// Nearest-rank 99.9th percentile of the per-request queueing delay —
    /// the deep tail a wall-clock deployment answers for.
    pub p999_wait_steps: f64,
    /// Requests served within deadline at the policy-selected bit-width.
    pub completed: usize,
    /// Requests served within deadline at a bit-width the degradation
    /// controller downshifted below the policy's pick.
    pub completed_degraded: usize,
    /// Requests rejected at admission (queue cap reached, or the deadline
    /// was unmeetable even under best-case service).
    pub shed: usize,
    /// Requests whose deadline passed while they were still queued.
    pub expired: usize,
    /// Requests abandoned after exhausting their retry budget on faulted
    /// batches.
    pub failed: usize,
    /// Total re-queues of fault-hit requests (a request retried twice
    /// counts twice).
    pub retried: usize,
    /// Timesteps lost to injected stalls (the worker served nothing).
    pub stalled_steps: usize,
    /// Injected faults that landed inside the trace.
    pub faults_injected: usize,
    /// Steps the engine spent configured at each serving bit-width,
    /// ascending by bits — makes degradation dwell time observable.
    pub time_in_bits: Vec<(u8, usize)>,
    /// Degradation-controller transitions as `(step, levels)` where
    /// `levels` is how many operating points below the policy's pick the
    /// controller holds the model after the transition (0 = recovered).
    pub degradation_events: Vec<(usize, usize)>,
    /// Work-steal operations between per-worker queues (each moves half
    /// a victim's backlog to an idle worker). Zero unless the wall-clock
    /// loop runs `QueueMode::Sharded` with stealing on.
    pub steals: usize,
    /// Dynamic-batch-controller transitions as `(step, new_cap)` — the
    /// batch cap in force after each grow/shrink decision. Empty unless
    /// the wall-clock loop runs with
    /// [`crate::wallclock::WallclockConfig::batch_control`] set.
    pub batch_limit_events: Vec<(usize, usize)>,
    /// Requests answered straight from the content-keyed output cache
    /// (no forward ran). Zero unless the sharded path runs with its
    /// cache enabled.
    pub cache_hits: usize,
    /// Cache probes that missed and fell through to a packed forward.
    /// Zero unless the sharded path runs with its cache enabled.
    pub cache_misses: usize,
    /// Entries evicted from the content cache to stay within
    /// [`crate::sharding::ShardConfig::cache_capacity`]. Zero unless the
    /// sharded path runs with its cache enabled and overflows the cap.
    pub cache_evictions: usize,
    /// Per-replica breakdown, indexed by replica id. Populated by
    /// [`crate::sharding::simulate_serving_sharded`] (one entry per
    /// replica) and [`crate::wallclock::serve_wallclock`] (one entry per
    /// worker); empty elsewhere.
    pub replicas: Vec<crate::sharding::ReplicaStats>,
    /// Wall-clock duration of the run in microseconds. Populated only by
    /// [`crate::wallclock::serve_wallclock`]; zero for the simulated
    /// paths, whose time is the step index.
    pub elapsed_us: u64,
    /// Sustained completed requests per second over the whole run —
    /// `served_requests / elapsed`. Populated only by
    /// [`crate::wallclock::serve_wallclock`].
    pub requests_per_sec: f64,
    /// Stable-version swaps (direct publishes plus canary promotions)
    /// the [`crate::registry::ModelRegistry`] applied during the run.
    /// Zero for non-registry paths.
    pub reloads: usize,
    /// Canary candidates auto-rolled back during the run (divergence,
    /// latency band, or candidate fault).
    pub rollbacks: usize,
    /// Candidate publishes the registry refused before they reached
    /// traffic (CRC-corrupt checkpoints, incompatible packs).
    pub rejected_publishes: usize,
    /// Requests shadow-routed through a canary candidate. Shadow traffic
    /// is always *also* served by the stable version, so this never
    /// changes a client-visible output.
    pub canary_served: usize,
    /// Shadow-compared samples whose candidate output differed bit-wise
    /// from the stable version's at the same bit-width.
    pub divergences: usize,
    /// Work done on each model generation, ascending by generation id:
    /// batches per generation in [`crate::wallclock::serve_wallclock_registry`],
    /// timesteps per generation in
    /// [`crate::sharding::simulate_serving_sharded_versioned`]. Empty for
    /// non-registry paths.
    pub time_per_generation: Vec<(u64, usize)>,
}

/// The per-timestep bit-width selection shared by every simulation path:
/// budget-constrained greedy / hysteresis choice over a report's operating
/// points, carrying the hysteresis state between steps. Extracted from the
/// policy loop so the resilient path selects *identically* to
/// [`simulate_serving_batched`] — the fault-free bit-identity contract.
pub(crate) struct PolicySelector<'r> {
    report: &'r DeploymentReport,
    policy: Policy,
    current: Option<&'r OperatingPoint>,
}

impl<'r> PolicySelector<'r> {
    pub(crate) fn new(report: &'r DeploymentReport, policy: Policy) -> Self {
        PolicySelector {
            report,
            policy,
            current: None,
        }
    }

    /// Selects this timestep's operating point, or `None` when nothing
    /// fits the budget (which also resets the hysteresis anchor, so the
    /// next affordable step re-selects greedily).
    pub(crate) fn select(&mut self, budget: f64) -> Option<&'r OperatingPoint> {
        let best = self.report.select(budget);
        let next = match (self.policy, self.current, best) {
            (_, _, None) => None,
            (Policy::Greedy, _, Some(b)) => Some(b),
            (Policy::Hysteresis { .. }, None, Some(b)) => Some(b),
            (Policy::Hysteresis { margin }, Some(cur), Some(b)) => {
                // Switch when forced downward (over budget) or when the
                // upward move is worth more than the hysteresis margin.
                if cur.energy_pj > budget || b.accuracy > cur.accuracy + margin {
                    Some(b)
                } else {
                    Some(cur)
                }
            }
        };
        self.current = next;
        next
    }

    /// Drops the hysteresis anchor, as a budget-infeasible step does —
    /// used by the resilient path when an injected stall skips selection.
    pub(crate) fn reset(&mut self) {
        self.current = None;
    }
}

/// Simulates running `report`'s operating points over `trace` with the
/// given policy and zero switching cost.
pub fn simulate(report: &DeploymentReport, trace: &EnergyTrace, policy: Policy) -> RuntimeStats {
    simulate_with_config(report, trace, policy, &SimulationConfig::default())
}

/// [`simulate`] with explicit [`SimulationConfig`].
pub fn simulate_with_config(
    report: &DeploymentReport,
    trace: &EnergyTrace,
    policy: Policy,
    cfg: &SimulationConfig,
) -> RuntimeStats {
    run_simulation(report, trace, policy, cfg, |b| usize::from(b.is_some()))
}

/// Simulates the trace while actually serving inferences: every served
/// timestep switches `model` to the selected bit-width (a pointer swap)
/// and runs `input` through the packed engine. Returns the stats plus one
/// output tensor per timestep (`None` where the budget dropped the step).
///
/// # Panics
///
/// Panics if a selected operating point's bit-width is not in the packed
/// model's set — the report and the model must come from the same
/// [`instantnet_quant::BitWidthSet`].
pub fn simulate_serving(
    report: &DeploymentReport,
    trace: &EnergyTrace,
    policy: Policy,
    cfg: &SimulationConfig,
    model: &mut PackedModel,
    input: &Tensor,
) -> (RuntimeStats, Vec<Option<Tensor>>) {
    let mut outputs: Vec<Option<Tensor>> = Vec::with_capacity(trace.len());
    let stats = run_simulation(report, trace, policy, cfg, |bits| match bits {
        Some(b) => {
            assert!(
                model.switch_to_bits(b),
                "operating point {b} is not in the packed model's bit-width set"
            );
            outputs.push(Some(model.forward(input)));
            1
        }
        None => {
            outputs.push(None);
            0
        }
    });
    (stats, outputs)
}

/// Batched serving: requests arrive per [`RequestTrace`] step, queue FIFO,
/// and every budget-served timestep aggregates up to
/// [`ServingConfig::max_batch`] pending requests into **one** packed
/// multi-sample forward at the policy-selected bit-width. Request `r`
/// reuses `inputs[r % inputs.len()]` (each a `[1, …]` tensor).
///
/// Aggregation is invisible to individual requests: the batched forward
/// quantizes activations per sample ([`PackedModel::forward_batch`]), so
/// every [`RequestOutcome::output`] is bit-identical to serving that
/// request alone at the same bit-width — at every bit-width, both
/// quantizers, and any thread count. What batching changes is throughput
/// and latency, which the returned [`RuntimeStats`] now measures:
/// per-request wait times, batch-size histogram, p50/p99 queueing delay,
/// and end-of-trace backlog. Energy and accuracy are charged per request
/// served (an idle served step charges nothing).
///
/// # Panics
///
/// Panics if the traces' lengths differ, `inputs` is empty or holds
/// differently-shaped non-`[1, …]` tensors, `max_batch` is zero, or a
/// selected bit-width is missing from the packed model's set.
#[allow(clippy::too_many_arguments)]
pub fn simulate_serving_batched(
    report: &DeploymentReport,
    trace: &EnergyTrace,
    requests: &RequestTrace,
    policy: Policy,
    cfg: &SimulationConfig,
    serving: &ServingConfig,
    model: &mut PackedModel,
    inputs: &[Tensor],
) -> (RuntimeStats, Vec<RequestOutcome>) {
    assert_eq!(
        requests.len(),
        trace.len(),
        "request trace and energy trace must cover the same timesteps"
    );
    assert!(serving.max_batch >= 1, "max_batch must be at least 1");
    let (sample_dims, sample_len) = match crate::engine::batch::validate_inputs(inputs) {
        Ok(v) => v,
        Err(msg) => panic!("{msg}"),
    };

    let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(requests.total());
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut wait_steps: Vec<usize> = Vec::new();
    let mut histogram = vec![0usize; serving.max_batch + 1];
    let mut max_depth = 0usize;
    let mut t = 0usize;
    let mut stats = run_simulation(report, trace, policy, cfg, |bits| {
        for _ in 0..requests.arrivals()[t] {
            queue.push_back(outcomes.len());
            outcomes.push(RequestOutcome {
                arrived_at: t,
                served_at: None,
                bits: None,
                output: None,
            });
        }
        max_depth = max_depth.max(queue.len());
        let served = match bits {
            Some(b) => {
                let take = queue.len().min(serving.max_batch);
                histogram[take] += 1;
                if take > 0 {
                    assert!(
                        model.switch_to_bits(b),
                        "operating point {b} is not in the packed model's bit-width set"
                    );
                    let ids: Vec<usize> = queue.drain(..take).collect();
                    let batch =
                        crate::engine::batch::gather_batch(inputs, &sample_dims, sample_len, &ids);
                    let y = model.forward_batch(&batch);
                    let outs = crate::engine::batch::scatter_outputs(&y, take);
                    for (&rid, out) in ids.iter().zip(outs) {
                        let rec = &mut outcomes[rid];
                        rec.served_at = Some(t);
                        rec.bits = Some(b.get());
                        rec.output = Some(out);
                        wait_steps.push(t - rec.arrived_at);
                    }
                }
                take
            }
            None => 0,
        };
        t += 1;
        served
    });
    stats.backlog = queue.len();
    stats.max_queue_depth = max_depth;
    stats.batch_histogram = histogram;
    finish_wait_stats(&mut stats, wait_steps);
    (stats, outcomes)
}

/// Shared policy loop; `on_step` observes every timestep's selection and
/// returns how many inferences it ran under that selection (the
/// per-timestep paths return 1 per served step; the batched path returns
/// the aggregated batch size). Accuracy and inference energy are charged
/// per inference.
fn run_simulation(
    report: &DeploymentReport,
    trace: &EnergyTrace,
    policy: Policy,
    cfg: &SimulationConfig,
    mut on_step: impl FnMut(Option<BitWidth>) -> usize,
) -> RuntimeStats {
    let mut selector = PolicySelector::new(report, policy);
    let mut prev_bits: Option<BitWidth> = None;
    let mut switches = 0usize;
    let mut dropped = 0usize;
    let mut acc_sum = 0.0f32;
    let mut served = 0usize;
    let mut energy = 0.0f64;
    let mut schedule = Vec::with_capacity(trace.len());
    for &budget in trace.budgets() {
        match selector.select(budget) {
            Some(p) => {
                if prev_bits != Some(p.bits) {
                    switches += 1;
                }
                prev_bits = Some(p.bits);
                schedule.push(Some(p.bits.get()));
                let inferences = on_step(Some(p.bits));
                acc_sum += p.accuracy * inferences as f32;
                served += inferences;
                energy += p.energy_pj * inferences as f64;
            }
            None => {
                dropped += 1;
                prev_bits = None;
                schedule.push(None);
                on_step(None);
            }
        }
    }
    let switch_energy = switches as f64 * cfg.switch_cost_pj;
    RuntimeStats {
        mean_accuracy: if served > 0 {
            acc_sum / served as f32
        } else {
            0.0
        },
        switches,
        dropped,
        energy_pj: energy + switch_energy,
        switch_energy_pj: switch_energy,
        schedule,
        served_requests: served,
        ..RuntimeStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeploymentReport;
    use instantnet_quant::BitWidth;

    fn demo_report() -> DeploymentReport {
        let mk = |bits: u8, acc: f32, e: f64| OperatingPoint {
            bits: BitWidth::new(bits),
            accuracy: acc,
            energy_pj: e,
            latency_s: 1e-3,
            edp: e * 1e-3,
            fps: 1000.0,
        };
        DeploymentReport::new(
            "demo",
            1,
            vec![mk(4, 0.60, 10.0), mk(8, 0.70, 30.0), mk(32, 0.75, 100.0)],
        )
    }

    #[test]
    fn sinusoidal_trace_spans_range() {
        let t = EnergyTrace::sinusoidal(10.0, 100.0, 48, 2.0);
        let min = t.budgets().iter().cloned().fold(f64::INFINITY, f64::min);
        let max = t.budgets().iter().cloned().fold(0.0, f64::max);
        assert!(min < 12.0);
        assert!(max > 98.0);
        assert_eq!(t.len(), 48);
    }

    #[test]
    fn greedy_tracks_the_budget() {
        let report = demo_report();
        let trace = EnergyTrace::new(vec![5.0, 15.0, 50.0, 200.0]);
        let stats = simulate(&report, &trace, Policy::Greedy);
        assert_eq!(
            stats.schedule,
            vec![None, Some(4), Some(8), Some(32)],
            "one step per affordability tier"
        );
        assert_eq!(stats.dropped, 1);
    }

    #[test]
    fn hysteresis_switches_less_than_greedy() {
        let report = demo_report();
        // Budget oscillates across the 8/32 boundary every step.
        let trace = EnergyTrace::new(
            (0..40)
                .map(|t| if t % 2 == 0 { 35.0 } else { 120.0 })
                .collect(),
        );
        let greedy = simulate(&report, &trace, Policy::Greedy);
        let lazy = simulate(&report, &trace, Policy::Hysteresis { margin: 0.2 });
        assert!(
            lazy.switches < greedy.switches,
            "hysteresis {} vs greedy {}",
            lazy.switches,
            greedy.switches
        );
        assert!(lazy.mean_accuracy <= greedy.mean_accuracy + 1e-6);
    }

    #[test]
    fn hysteresis_still_respects_budget() {
        let report = demo_report();
        let trace = EnergyTrace::new(vec![120.0, 120.0, 12.0, 12.0]);
        let stats = simulate(&report, &trace, Policy::Hysteresis { margin: 0.5 });
        // Forced downward switch when 32-bit stops fitting.
        assert_eq!(stats.schedule[2], Some(4));
        for (b, s) in trace.budgets().iter().zip(&stats.schedule) {
            if let Some(bits) = s {
                let p = report
                    .points()
                    .iter()
                    .find(|p| p.bits.get() == *bits)
                    .unwrap();
                assert!(p.energy_pj <= *b);
            }
        }
    }

    #[test]
    fn energy_accounting_sums_served_points() {
        let report = demo_report();
        let trace = EnergyTrace::new(vec![15.0, 15.0]);
        let stats = simulate(&report, &trace, Policy::Greedy);
        assert_eq!(stats.energy_pj, 20.0);
        assert_eq!(stats.switches, 1, "initial selection counts once");
        assert_eq!(stats.switch_energy_pj, 0.0, "default switching is free");
    }

    #[test]
    fn switch_cost_charges_accounting_without_changing_selection() {
        let report = demo_report();
        // 4 -> 8 -> 4 -> 8: three reconfigurations after the initial pick.
        let trace = EnergyTrace::new(vec![15.0, 35.0, 15.0, 35.0]);
        let free = simulate(&report, &trace, Policy::Greedy);
        let cfg = SimulationConfig {
            switch_cost_pj: 5.0,
        };
        let costed = simulate_with_config(&report, &trace, Policy::Greedy, &cfg);
        assert_eq!(costed.schedule, free.schedule, "selection must not change");
        assert_eq!(costed.switches, 4);
        assert_eq!(costed.switch_energy_pj, 20.0);
        assert_eq!(costed.energy_pj, free.energy_pj + 20.0);
    }

    #[test]
    fn serving_runs_packed_inference_per_served_step() {
        use instantnet_infer::PackedModel;
        use instantnet_nn::models;
        use instantnet_quant::{BitWidthSet, Quantizer};

        let bits = BitWidthSet::new(vec![4, 8, 32]).unwrap();
        let net = models::small_cnn(4, 6, (8, 8), bits.len(), 5);
        let mut model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
        let report = demo_report(); // points at 4/8/32 bits, matching `bits`
        let trace = EnergyTrace::new(vec![5.0, 15.0, 50.0, 200.0]);
        let x = Tensor::from_vec(
            vec![1, 3, 8, 8],
            (0..3 * 8 * 8)
                .map(|i| (i % 13) as f32 / 13.0 - 0.5)
                .collect(),
        );
        let (stats, outputs) = simulate_serving(
            &report,
            &trace,
            Policy::Greedy,
            &SimulationConfig::default(),
            &mut model,
            &x,
        );
        assert_eq!(outputs.len(), trace.len());
        for (step, out) in stats.schedule.iter().zip(&outputs) {
            match (step, out) {
                (Some(b), Some(y)) => {
                    assert_eq!(y.dims(), &[1, 6]);
                    // The serving path produces exactly what a direct
                    // forward at that bit-width produces.
                    let i = bits.index_of(instantnet_quant::BitWidth::new(*b)).unwrap();
                    assert_eq!(y.data(), model.forward_at(i, &x).data());
                }
                (None, None) => {}
                _ => panic!("schedule and outputs disagree"),
            }
        }
        assert_eq!(stats.dropped, 1);
        assert_eq!(model.active_bits().get(), 32, "last served point sticks");
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_trace_rejected() {
        let _ = EnergyTrace::new(vec![]);
    }

    #[test]
    fn per_timestep_paths_leave_queue_fields_empty() {
        let report = demo_report();
        let trace = EnergyTrace::new(vec![5.0, 15.0, 50.0]);
        let stats = simulate(&report, &trace, Policy::Greedy);
        assert_eq!(stats.served_requests, 2, "one inference per served step");
        assert_eq!(stats.backlog, 0);
        assert!(stats.batch_histogram.is_empty());
        assert!(stats.wait_steps.is_empty());
        assert_eq!(stats.mean_wait_steps, 0.0);
    }

    #[test]
    fn batched_serving_aggregates_fifo_and_accounts_per_request() {
        use instantnet_infer::PackedModel;
        use instantnet_nn::models;
        use instantnet_quant::{BitWidthSet, Quantizer};

        let bits = BitWidthSet::new(vec![4, 8, 32]).unwrap();
        let net = models::small_cnn(4, 6, (8, 8), bits.len(), 5);
        let mut model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
        let report = demo_report();
        // Budget 15 affords only the 4-bit point (10 pJ) at every step.
        let trace = EnergyTrace::new(vec![15.0, 15.0, 15.0]);
        let requests = RequestTrace::new(vec![3, 0, 2]);
        let inputs: Vec<Tensor> = (0..2)
            .map(|v| {
                Tensor::from_vec(
                    vec![1, 3, 8, 8],
                    (0..3 * 8 * 8)
                        .map(|i| ((i + v * 31) % 13) as f32 / 13.0 - 0.5)
                        .collect(),
                )
            })
            .collect();
        let (stats, outcomes) = simulate_serving_batched(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &SimulationConfig::default(),
            &ServingConfig { max_batch: 2 },
            &mut model,
            &inputs,
        );
        assert_eq!(outcomes.len(), 5, "no request lost");
        // t0 serves [0, 1]; t1 drains [2]; t2 serves the new [3, 4].
        let served_at: Vec<_> = outcomes.iter().map(|o| o.served_at).collect();
        assert_eq!(served_at, vec![Some(0), Some(0), Some(1), Some(2), Some(2)]);
        assert_eq!(stats.served_requests, 5);
        assert_eq!(stats.backlog, 0);
        assert_eq!(stats.max_queue_depth, 3);
        assert_eq!(stats.batch_histogram, vec![0, 1, 2]);
        assert_eq!(stats.wait_steps, vec![0, 0, 1, 0, 0]);
        assert_eq!(stats.p50_wait_steps, 0.0);
        assert_eq!(stats.p99_wait_steps, 1.0);
        // Energy and accuracy are charged per request at the 4-bit point.
        assert_eq!(stats.energy_pj, 5.0 * 10.0);
        assert!((stats.mean_accuracy - 0.60).abs() < 1e-6);
        // Every output is bit-identical to serving that request alone.
        let i4 = bits.index_of(BitWidth::new(4)).unwrap();
        for (r, o) in outcomes.iter().enumerate() {
            let alone = model.forward_at(i4, &inputs[r % inputs.len()]);
            assert_eq!(
                o.output.as_ref().unwrap().data(),
                alone.data(),
                "request {r}"
            );
            assert_eq!(o.bits, Some(4));
        }
    }

    #[test]
    fn batched_serving_queues_through_dropped_steps() {
        use instantnet_infer::PackedModel;
        use instantnet_nn::models;
        use instantnet_quant::{BitWidthSet, Quantizer};

        let bits = BitWidthSet::new(vec![4, 8, 32]).unwrap();
        let net = models::small_cnn(4, 6, (8, 8), bits.len(), 5);
        let mut model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
        let report = demo_report();
        // Step 1 affords nothing: its arrivals wait; step 2 catches up.
        let trace = EnergyTrace::new(vec![15.0, 5.0, 15.0]);
        let requests = RequestTrace::new(vec![1, 1, 0]);
        let input = Tensor::from_vec(
            vec![1, 3, 8, 8],
            (0..3 * 8 * 8).map(|i| (i % 7) as f32 / 7.0 - 0.5).collect(),
        );
        let (stats, outcomes) = simulate_serving_batched(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &SimulationConfig::default(),
            &ServingConfig::default(),
            &mut model,
            std::slice::from_ref(&input),
        );
        assert_eq!(stats.dropped, 1);
        assert_eq!(outcomes[1].arrived_at, 1);
        assert_eq!(outcomes[1].served_at, Some(2), "waits out the dropped step");
        assert_eq!(stats.wait_steps, vec![0, 1]);
        assert_eq!(stats.backlog, 0);
    }

    #[test]
    #[should_panic(expected = "same timesteps")]
    fn mismatched_trace_lengths_rejected() {
        use instantnet_infer::PackedModel;
        use instantnet_nn::models;
        use instantnet_quant::{BitWidthSet, Quantizer};
        let bits = BitWidthSet::new(vec![4, 8, 32]).unwrap();
        let net = models::small_cnn(4, 6, (8, 8), bits.len(), 5);
        let mut model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
        let _ = simulate_serving_batched(
            &demo_report(),
            &EnergyTrace::new(vec![15.0, 15.0]),
            &RequestTrace::uniform(1, 3),
            Policy::Greedy,
            &SimulationConfig::default(),
            &ServingConfig::default(),
            &mut model,
            &[Tensor::zeros(&[1, 3, 8, 8])],
        );
    }
}
