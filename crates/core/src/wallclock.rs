//! Wall-clock threaded serving: a continuously running front-end over
//! real threads, real queues, and real time — no tokio, no simulation.
//!
//! [`serve_wallclock`] is the deployment-shaped face of the serving
//! stack. Producer threads — one per [`IngressSource`] — push requests
//! into the ingress queue; `workers` worker threads — each holding an
//! O(1) [`PackedModel`] clone over the shared packed tables — block on
//! the queue and drain batches of up to `max_batch` requests into packed
//! forwards. The frozen-trace entry points wrap a single producer, a
//! [`TraceIngress`] that plays a [`RequestTrace`]'s arrival schedule in
//! real time (step `t`'s arrivals are pushed at `t × step_time` on the
//! wall clock); [`serve_wallclock_streaming`] accepts any producer set,
//! e.g. a [`ChannelIngress`] fed live from another thread through a
//! [`StreamSender`]. All of PR 4's resilience machinery runs here on
//! `Instant`-derived time instead of step indices: the bounded queue
//! *is* the admission cap, deadline-hopeless arrivals are shed at
//! ingress, late requests expire at dequeue, and the hysteresis
//! degradation controller ([`crate::engine::degrade`]) downshifts the
//! fleet one operating point per recovery window as wall-clock backlog
//! builds. The per-step energy budget still gates selection: a batch
//! popped at elapsed time `e` is served under budget
//! `budgets[min(e / step_time, len - 1)]` — the final step's budget
//! persists through the drain phase — via the same shared
//! [`PolicySelector`] every simulated path uses.
//!
//! **Queue modes.** [`QueueMode::Shared`] — the bit-identity reference —
//! funnels every request through one MPMC queue
//! ([`crate::engine::queue::SharedQueue`]): simple, provably fair, but
//! every push and pop serializes on one mutex. [`QueueMode::Sharded`]
//! gives each worker its own bounded queue
//! ([`crate::engine::queue::ShardedQueues`]): ingress dispatches to the
//! least-loaded shard, the hot pop path touches only the worker's own
//! lock, and — with `stealing` on — an idle worker takes half the backlog
//! of the peer whose head request has the least deadline slack (falling
//! back to the deepest peer), mirroring the simulated sharded path's
//! steal-half-of-deepest semantics. Because the packed engine quantizes
//! activations per sample, the queue topology can never change a
//! request's output — only which worker serves it, and when.
//!
//! **Dynamic batching.** With [`WallclockConfig::batch_control`] set, a
//! [`crate::engine::batch::BatchController`] behind one mutex sizes the
//! batch cap from the observed per-batch p99 latency: grow under slack
//! against the target, halve on breach, hold in the hysteresis dead band
//! between. Its priority against the precision controller is explicit —
//! **batch shrinks before bits drop**: while the cap is above 1, would-be
//! downshift observations are withheld from the degradation controller,
//! so the output-invariant lever is exhausted before accuracy is touched.
//!
//! **Shutdown protocol:** each producer thread runs its source to
//! exhaustion; the last one out closes the queue — every producer drains
//! exactly once, no matter how many there are. Workers keep draining
//! until the queue is empty *and* closed, then exit, and the scoped join
//! returns every worker's accounting to be merged into one
//! [`RuntimeStats`]. Every admitted request is at all times either in the
//! queue or held by a live worker, so each is recorded exactly once and
//! `arrivals == completed + completed_degraded + shed + expired +
//! failed + backlog` holds for every run (backlog = requests the trace's
//! final budget could never afford).
//!
//! **The twin guarantee.** This loop and
//! [`crate::runtime::simulate_serving_batched`] are two drivers over the
//! same engine modules (selection, batching, scatter, accounting — see
//! [`crate::engine`]), and the packed engine quantizes activations per
//! sample, so a request's output depends only on its input and the
//! serving bit-width — never on batch-mates, timing, or worker count. A
//! fault-free wall-clock run whose budget affords one fixed operating
//! point therefore completes the exact same request set with
//! bit-identical outputs as its simulated twin on the frozen trace; only
//! the timing-derived statistics differ (and those are tolerance-checked
//! in tests, not pinned). `tests/wallclock_serving.rs` enforces this at
//! every `large_range()` bit-width.
//!
//! **Hot reload and faults.** [`serve_wallclock_registry`] is the full
//! entry point: workers serve out of a [`ModelRegistry`] instead of one
//! frozen model, observing it at batch-dequeue boundaries only (one
//! atomic epoch load per batch; a changed epoch re-pins the worker's
//! Arc-shared version clones), so an in-flight batch never straddles a
//! publish — and a [`FaultPlan`] injects stalls, transient errors, and
//! panics (isolated per batch with `catch_unwind`) into the worker loop,
//! with faulted batches retried at the head per the existing policy.
//! Canary-routed batches are additionally shadow-forwarded through the
//! candidate version and compared bit-exactly; the registry's state
//! machine promotes or auto-rolls back (see [`crate::registry`]).
//! [`serve_wallclock`] is the degenerate wrapper — a single-version
//! registry, canary off, no faults — and stays bit-identical to the
//! registry path in that configuration.
//!
//! **Threads:** worker count composes with the `INSTANTNET_THREADS`
//! kernel knob: each worker runs its forwards at
//! `max(1, ambient_threads / workers)` kernel threads (ambient = the
//! caller's [`instantnet_parallel::max_threads`]), so one worker keeps
//! full kernel parallelism while a 4-worker fleet on 8 ambient threads
//! runs 2 kernel threads per forward instead of oversubscribing 32.

use crate::engine::batch::{gather_batch, scatter_outputs, validate_inputs, BatchController};
use crate::engine::clock::RunClock;
use crate::engine::degrade::HysteresisController;
use crate::engine::queue::{Popped, ShardedQueues, SharedQueue};
use crate::engine::stats::{finish_wait_stats, wait_summary};
use crate::faults::{FaultKind, FaultPlan};
use crate::registry::ModelRegistry;
use crate::resilience::{config_err, RequestStatus, ServingError};
use crate::runtime::{
    EnergyTrace, Policy, PolicySelector, RequestTrace, RuntimeStats, SimulationConfig,
};
use crate::sharding::ReplicaStats;
use crate::DeploymentReport;
use instantnet_infer::{InferError, PackedModel};
use instantnet_parallel::{max_threads, set_threads};
use instantnet_quant::BitWidth;
use instantnet_tensor::Tensor;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;
use std::time::Duration;

/// Which ingress queue the wall-clock workers drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueMode {
    /// One shared MPMC queue every worker pops — the bit-identity
    /// reference configuration (and the default).
    Shared,
    /// Per-worker bounded queues: ingress dispatches each arrival to the
    /// least-loaded shard, workers pop their own shard uncontended.
    Sharded {
        /// Whether an idle worker steals half the backlog of the peer
        /// whose head request is most urgent (least deadline slack, then
        /// deepest backlog). Off = a skewed shard drains alone.
        stealing: bool,
    },
}

/// Knobs of the SLO-driven dynamic batch controller
/// ([`crate::engine::batch::BatchController`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchControl {
    /// Per-batch latency target (dequeue → completion) the p99 is held
    /// against — the deadline the batch sizing answers to.
    pub target: Duration,
    /// Grow the cap only while the window p99 is at or below this
    /// percentage of `target` (0 < pct < 100). The band between
    /// `headroom_pct` and 100% of target is the hysteresis dead zone
    /// where the cap holds.
    pub headroom_pct: u32,
    /// Completed batches per decision window (≥ 1).
    pub window: usize,
    /// Starting batch cap (clamped to `[1, max_batch]`).
    pub initial: usize,
}

impl Default for BatchControl {
    fn default() -> Self {
        BatchControl {
            target: Duration::from_millis(5),
            headroom_pct: 50,
            window: 8,
            initial: 1,
        }
    }
}

/// Hysteresis thresholds for the wall-clock degradation controller —
/// [`crate::resilience::DegradationConfig`] with the recovery window in
/// wall-clock time instead of steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WallclockDegradation {
    /// Downshift one operating point when the queue depth reaches this.
    pub backlog_high: usize,
    /// Recover one operating point when the depth falls to this or below.
    /// Must be strictly below `backlog_high`.
    pub backlog_low: usize,
    /// Minimum wall-clock time between controller transitions (> 0).
    pub recovery_window: Duration,
}

/// Knobs of the wall-clock serving loop. The default — one worker,
/// shared queue, unbounded, no deadlines, no retries, no degradation, no
/// batch controller — is the fully permissive configuration the
/// twin-identity tests run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WallclockConfig {
    /// Worker threads, each draining the ingress queue with its own O(1)
    /// [`PackedModel`] clone.
    pub workers: usize,
    /// Largest number of queued requests one worker aggregates into one
    /// packed forward. Aggregation is opportunistic: a worker takes
    /// whatever is queued up to this, it never waits for a batch to fill.
    /// With [`WallclockConfig::batch_control`] set this is the hard
    /// ceiling the dynamic cap can never exceed.
    pub max_batch: usize,
    /// Wall-clock length of one trace step: arrivals of step `t` are
    /// pushed at `t × step_time`, and the energy budget in force at
    /// elapsed time `e` is `budgets[min(e / step_time, len - 1)]`.
    pub step_time: Duration,
    /// Bounded-queue capacity — the admission cap (global across shards
    /// in [`QueueMode::Sharded`]). Arrivals that find the queue full are
    /// shed. `None` = unbounded.
    pub queue_capacity: Option<usize>,
    /// Relative wall-clock deadline per request. An arrival whose
    /// deadline is hopeless even at best-case service is shed at ingress;
    /// a queued request past its deadline expires at dequeue, before it
    /// can be served. `None` = no deadlines.
    pub deadline: Option<Duration>,
    /// How many times a request whose forward failed re-queues (at the
    /// head) before it is failed.
    pub max_retries: usize,
    /// The precision-downshift controller. `None` = policy picks alone.
    pub degradation: Option<WallclockDegradation>,
    /// Ingress queue topology. [`QueueMode::Shared`] is the bit-identity
    /// reference; [`QueueMode::Sharded`] is the contention-free fast
    /// path. Outputs are identical either way — only timing differs.
    pub queue: QueueMode,
    /// The dynamic batch controller. `None` = the batch cap is the
    /// static `max_batch` (the bit-identity reference configuration).
    pub batch_control: Option<BatchControl>,
}

impl Default for WallclockConfig {
    fn default() -> Self {
        WallclockConfig {
            workers: 1,
            max_batch: 16,
            step_time: Duration::from_millis(1),
            queue_capacity: None,
            deadline: None,
            max_retries: 0,
            degradation: None,
            queue: QueueMode::Shared,
            batch_control: None,
        }
    }
}

/// One live request handed to [`IngressSink::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamRequest {
    /// Index into the run's request inputs (taken modulo their count).
    /// `None` follows the frozen-trace convention: the request reuses
    /// `inputs[id % inputs.len()]` where `id` is its arrival order —
    /// which is what keeps a trace replay bit-identical to the simulated
    /// twin.
    pub input: Option<usize>,
    /// Relative deadline override for this request; `None` inherits
    /// [`WallclockConfig::deadline`].
    pub deadline: Option<Duration>,
}

/// The serving loop's ingress surface, handed to every
/// [`IngressSource`]: submit requests, read the run clock. One sink is
/// shared by all producer threads; submissions from different sources
/// interleave in arrival-id order.
pub trait IngressSink: Sync {
    /// Submits one request. Returns `Ok(id)` when it was admitted to the
    /// queue and `Err(id)` when it was shed at admission (hopeless
    /// deadline, or the bounded queue is full) — either way `id` is the
    /// arrival id its [`WallclockOutcome`] lands at.
    fn submit(&self, req: StreamRequest) -> Result<usize, usize>;
    /// Microseconds since the run started, for producers that pace
    /// themselves.
    fn now_us(&self) -> u64;
}

/// One request producer. The serving loop spawns a thread per source and
/// calls [`IngressSource::run`] once; the source pushes requests through
/// the sink — pacing itself however it likes — and returns when
/// exhausted. When the *last* source returns, the queue closes and the
/// workers drain what remains: every producer is drained exactly once.
pub trait IngressSource: Send {
    /// Plays this producer's arrivals into the serving loop; blocks as
    /// needed to pace them.
    fn run(&mut self, sink: &dyn IngressSink);
}

/// The frozen-trace producer: replays a [`RequestTrace`]'s arrival
/// schedule in real time, step `t`'s arrivals at `t × step_time`, each
/// with the trace convention's input selection and the config deadline.
/// [`serve_wallclock_registry`] is exactly [`serve_wallclock_streaming`]
/// with one of these.
pub struct TraceIngress {
    arrivals: Vec<usize>,
    step_us: u64,
}

impl TraceIngress {
    pub fn new(requests: &RequestTrace, step_time: Duration) -> Self {
        TraceIngress {
            arrivals: requests.arrivals().to_vec(),
            step_us: u64::try_from(step_time.as_micros())
                .unwrap_or(u64::MAX)
                .max(1),
        }
    }
}

impl IngressSource for TraceIngress {
    fn run(&mut self, sink: &dyn IngressSink) {
        for (t, &count) in self.arrivals.iter().enumerate() {
            // Pace the schedule: step t's arrivals land at t × step_time.
            let target_us = t as u64 * self.step_us;
            loop {
                let now = sink.now_us();
                if now >= target_us {
                    break;
                }
                thread::sleep(Duration::from_micros(target_us - now));
            }
            for _ in 0..count {
                let _ = sink.submit(StreamRequest::default());
            }
        }
    }
}

/// The push half of [`stream_channel`]: a cloneable handle external
/// threads use to push live requests into a running serve loop. Dropping
/// every clone ends the stream — the serving loop cannot finish while a
/// sender is still alive.
#[derive(Clone)]
pub struct StreamSender {
    tx: mpsc::Sender<StreamRequest>,
}

impl StreamSender {
    /// Pushes one request; `false` once the serving loop is gone.
    pub fn push(&self, req: StreamRequest) -> bool {
        self.tx.send(req).is_ok()
    }
}

/// The source half of [`stream_channel`]: forwards every pushed request
/// into the sink until all [`StreamSender`] clones are dropped.
pub struct ChannelIngress {
    rx: mpsc::Receiver<StreamRequest>,
}

impl IngressSource for ChannelIngress {
    fn run(&mut self, sink: &dyn IngressSink) {
        while let Ok(req) = self.rx.recv() {
            let _ = sink.submit(req);
        }
    }
}

/// Creates a live-ingress channel: hand the [`ChannelIngress`] to
/// [`serve_wallclock_streaming`], keep the [`StreamSender`] (clone it
/// freely across threads), and push requests while the loop runs. Drop
/// the last sender to let the run shut down.
pub fn stream_channel() -> (StreamSender, ChannelIngress) {
    let (tx, rx) = mpsc::channel();
    (StreamSender { tx }, ChannelIngress { rx })
}

/// Per-request record of a wall-clock run, index-aligned with arrival
/// order (ids are assigned by the ingress thread as arrivals push).
#[derive(Debug, Clone, PartialEq)]
pub struct WallclockOutcome {
    /// Microseconds after run start the request entered (or was shed at)
    /// the queue.
    pub arrived_us: u64,
    /// Microseconds after run start its forward completed, if it was
    /// served.
    pub served_us: Option<u64>,
    /// Bit-width of the batch that served it.
    pub bits: Option<u8>,
    /// The packed forward's output — bit-identical to a batch-of-one
    /// forward of the same input at the same bit-width, regardless of
    /// batch-mates, timing, or which worker ran it.
    pub output: Option<Tensor>,
    /// How the request ended. [`RequestStatus::Pending`] = still
    /// unservable when the trace ended (counted in
    /// [`RuntimeStats::backlog`]).
    pub status: RequestStatus,
    /// Worker whose forward completed or failed the request; `None` for
    /// requests that never reached a forward (shed, expired, backlog).
    pub worker: Option<usize>,
    /// Forward attempts that included this request.
    pub attempts: usize,
    /// Absolute deadline in run-microseconds, when deadlines are
    /// configured.
    pub deadline_us: Option<u64>,
    /// Index of the input tensor this request carried (already reduced
    /// modulo the input count). Trace replays follow the `id % inputs`
    /// convention; streaming producers may pick any input per request.
    pub input: usize,
}

/// One queued request as carried through the ingress queue.
struct Request {
    id: usize,
    input: usize,
    arrived_us: u64,
    deadline_us: Option<u64>,
    attempts: usize,
}

/// What ingress recorded about one arrival.
struct Arrival {
    arrived_us: u64,
    deadline_us: Option<u64>,
    shed: bool,
    input: usize,
}

/// One terminal decision a worker made about one request.
struct Record {
    id: usize,
    status: RequestStatus,
    served_us: Option<u64>,
    bits: Option<u8>,
    output: Option<Tensor>,
    attempts: usize,
}

/// Everything one worker accumulated over its lifetime; merged into the
/// global [`RuntimeStats`] after the join.
struct WorkerAcc {
    records: Vec<Record>,
    waits_us: Vec<usize>,
    completed: usize,
    completed_degraded: usize,
    expired: usize,
    failed: usize,
    retried: usize,
    dropped: usize,
    batches: usize,
    faulted_batches: usize,
    stalled: usize,
    injected: usize,
    switches: usize,
    energy_pj: f64,
    acc_sum: f32,
    histogram: Vec<usize>,
    time_in_bits: BTreeMap<u8, usize>,
    /// Batches this worker ran per model generation it was pinned to.
    generations: BTreeMap<u64, usize>,
    /// Generation the worker was pinned to when it exited.
    generation: u64,
}

impl WorkerAcc {
    fn new(max_batch: usize) -> Self {
        WorkerAcc {
            records: Vec::new(),
            waits_us: Vec::new(),
            completed: 0,
            completed_degraded: 0,
            expired: 0,
            failed: 0,
            retried: 0,
            dropped: 0,
            batches: 0,
            faulted_batches: 0,
            stalled: 0,
            injected: 0,
            switches: 0,
            energy_pj: 0.0,
            acc_sum: 0.0,
            histogram: vec![0; max_batch + 1],
            time_in_bits: BTreeMap::new(),
            generations: BTreeMap::new(),
            generation: 0,
        }
    }
}

/// Degradation state shared by the workers behind one mutex, so the
/// controller sees one serialized observation stream like the simulated
/// driver does.
struct DegradeShared {
    controller: Option<HysteresisController>,
    events: Vec<(usize, usize)>,
}

/// Uniform front over the two queue topologies so the ingress sink and
/// the worker loop are written once. `Shared` ignores the worker index;
/// `Sharded` dispatches pushes least-loaded and pops/requeues against
/// the worker's own shard.
enum IngressQueue {
    Shared(SharedQueue<Request>),
    Sharded {
        q: ShardedQueues<Request>,
        stealing: bool,
    },
}

impl IngressQueue {
    fn new(mode: QueueMode, workers: usize, capacity: Option<usize>) -> Self {
        match mode {
            QueueMode::Shared => IngressQueue::Shared(SharedQueue::new(capacity)),
            QueueMode::Sharded { stealing } => IngressQueue::Sharded {
                q: ShardedQueues::new(workers, capacity),
                stealing,
            },
        }
    }

    fn try_push(&self, item: Request) -> Result<(), Request> {
        match self {
            IngressQueue::Shared(q) => q.try_push(item),
            IngressQueue::Sharded { q, .. } => q.try_push(item).map(|_| ()),
        }
    }

    fn pop_batch(&self, worker: usize, max: usize) -> Popped<Request> {
        match self {
            IngressQueue::Shared(q) => q.pop_batch(max),
            IngressQueue::Sharded { q, stealing } => {
                // Steal-victim urgency: the head request's absolute
                // deadline — least slack first, `None` (no deadline)
                // falls back to deepest-backlog selection.
                q.pop_batch(worker, max, *stealing, &|r: &Request| r.deadline_us)
            }
        }
    }

    fn push_front(&self, worker: usize, items: Vec<Request>) {
        match self {
            IngressQueue::Shared(q) => q.push_front(items),
            IngressQueue::Sharded { q, .. } => q.push_front(worker, items),
        }
    }

    fn len(&self) -> usize {
        match self {
            IngressQueue::Shared(q) => q.len(),
            IngressQueue::Sharded { q, .. } => q.len(),
        }
    }

    fn max_depth(&self) -> usize {
        match self {
            IngressQueue::Shared(q) => q.max_depth(),
            IngressQueue::Sharded { q, .. } => q.max_depth(),
        }
    }

    /// Per-worker shard high-water mark; 0 under `Shared`, whose single
    /// queue has no per-worker depth (the global `max_depth` covers it).
    fn worker_max_depth(&self, worker: usize) -> usize {
        match self {
            IngressQueue::Shared(_) => 0,
            IngressQueue::Sharded { q, .. } => q.shard_max_depth(worker),
        }
    }

    fn steals(&self) -> usize {
        match self {
            IngressQueue::Shared(_) => 0,
            IngressQueue::Sharded { q, .. } => q.steals(),
        }
    }

    fn is_closed(&self) -> bool {
        match self {
            IngressQueue::Shared(q) => q.is_closed(),
            IngressQueue::Sharded { q, .. } => q.is_closed(),
        }
    }

    fn close(&self) {
        match self {
            IngressQueue::Shared(q) => q.close(),
            IngressQueue::Sharded { q, .. } => q.close(),
        }
    }
}

/// The concrete [`IngressSink`] behind every producer thread: assigns
/// arrival ids, applies the hopeless-deadline and capacity admission
/// checks, and appends to the arrival log. Serializing submissions under
/// the log mutex keeps id order equal to queue order, which is what
/// makes a single-trace replay bit-identical to the simulated twin.
struct SinkImpl<'a> {
    queue: &'a IngressQueue,
    log: &'a Mutex<Vec<Arrival>>,
    clock: RunClock,
    deadline_us_rel: Option<u64>,
    min_latency_us: f64,
    /// `workers × max_batch` — in-flight slots the backlog divides over
    /// for the best-case-service admission estimate.
    slots: usize,
    inputs_len: usize,
}

impl IngressSink for SinkImpl<'_> {
    fn submit(&self, req: StreamRequest) -> Result<usize, usize> {
        let mut log = self.log.lock().expect("arrival log mutex poisoned");
        let id = log.len();
        let arrived_us = self.clock.now_us();
        let deadline_us = req
            .deadline
            .map(|d| arrived_us + u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
            .or_else(|| self.deadline_us_rel.map(|d| arrived_us + d));
        let input = req.input.unwrap_or(id) % self.inputs_len;
        // Admission: shed deadline-hopeless arrivals (even best-case
        // service behind the current backlog would finish past the
        // deadline), then let the bounded queue shed over-capacity ones.
        let hopeless = deadline_us.is_some_and(|d| {
            let batches_ahead = (self.queue.len() / self.slots) as f64;
            arrived_us.saturating_add((batches_ahead * self.min_latency_us) as u64) > d
        });
        let shed = hopeless
            || self
                .queue
                .try_push(Request {
                    id,
                    input,
                    arrived_us,
                    deadline_us,
                    attempts: 0,
                })
                .is_err();
        log.push(Arrival {
            arrived_us,
            deadline_us,
            shed,
            input,
        });
        if shed {
            Err(id)
        } else {
            Ok(id)
        }
    }

    fn now_us(&self) -> u64 {
        self.clock.now_us()
    }
}

/// Dynamic-batch state shared by the workers: the controller itself
/// behind a mutex (it sees one serialized latency stream), plus the
/// current cap in an atomic so workers read it before every dequeue
/// without contending on the lock.
struct BatchShared {
    ctl: Mutex<BatchController>,
    cur: AtomicUsize,
}

impl BatchShared {
    fn new(bc: &BatchControl, max_batch: usize) -> Self {
        let target_us = u64::try_from(bc.target.as_micros())
            .unwrap_or(u64::MAX)
            .max(1);
        let ctl =
            BatchController::new(target_us, bc.headroom_pct, bc.window, bc.initial, max_batch);
        let cur = AtomicUsize::new(ctl.current());
        BatchShared {
            ctl: Mutex::new(ctl),
            cur,
        }
    }
}

fn validate(
    report: &DeploymentReport,
    wall: &WallclockConfig,
    model: &PackedModel,
    inputs: &[Tensor],
) -> Result<(), ServingError> {
    if wall.workers < 1 {
        return config_err("at least one worker is required");
    }
    if wall.max_batch < 1 {
        return config_err("max_batch must be at least 1");
    }
    if wall.step_time.is_zero() {
        return config_err("step_time must be positive");
    }
    if wall.queue_capacity == Some(0) {
        return config_err("queue_capacity must be at least 1 when bounded");
    }
    if let Some(dc) = &wall.degradation {
        if dc.backlog_low >= dc.backlog_high {
            return config_err(format!(
                "degradation backlog_low {} must be below backlog_high {}",
                dc.backlog_low, dc.backlog_high
            ));
        }
        if dc.recovery_window.is_zero() {
            return config_err("degradation recovery_window must be positive");
        }
    }
    if let Some(bc) = &wall.batch_control {
        if bc.target.is_zero() {
            return config_err("batch_control target must be positive");
        }
        if bc.headroom_pct == 0 || bc.headroom_pct >= 100 {
            return config_err(format!(
                "batch_control headroom_pct {} must be in 1..=99",
                bc.headroom_pct
            ));
        }
        if bc.window < 1 {
            return config_err("batch_control window must be at least 1");
        }
        if bc.initial < 1 || bc.initial > wall.max_batch {
            return config_err(format!(
                "batch_control initial {} must be in 1..=max_batch ({})",
                bc.initial, wall.max_batch
            ));
        }
    }
    if let Err(msg) = validate_inputs(inputs) {
        return config_err(msg);
    }
    // Every operating point must be switchable up front, so a bad
    // report/model pairing fails fast instead of mid-run on a worker.
    for p in report.points() {
        if model.bit_widths().index_of(p.bits).is_none() {
            return Err(ServingError::Infer(InferError::BitWidth(p.bits)));
        }
    }
    Ok(())
}

/// Serves a [`RequestTrace`] in real time over `workers` threads; blocks
/// until the trace has been fully played *and* drained, then returns the
/// merged [`RuntimeStats`] and one [`WallclockOutcome`] per request.
///
/// Compared to the simulated paths, the returned stats differ only where
/// time itself is the unit: `wait_steps` (and the mean/p50/p99/p99.9
/// summary over it) is measured in **microseconds** of queueing +
/// service delay, `elapsed_us`/`requests_per_sec` report the sustained
/// wall-clock throughput the run achieved, `schedule` is left empty (no
/// global step loop exists to record one — per-request bit-widths live
/// in the outcomes), `dropped` counts budget-infeasible batch attempts,
/// and `stats.replicas[w]` carries worker `w`'s share with
/// `max_queue_depth` at 0 under [`QueueMode::Shared`] (workers share one
/// queue; its high-water mark is the global `max_queue_depth`) and at
/// worker `w`'s own shard high-water mark under [`QueueMode::Sharded`].
///
/// # Errors
///
/// [`ServingError::Config`] for inconsistent traces, shapes, or knobs;
/// [`ServingError::Infer`] if any report point's bit-width is missing
/// from the packed set (checked up front).
#[allow(clippy::too_many_arguments)]
pub fn serve_wallclock(
    report: &DeploymentReport,
    trace: &EnergyTrace,
    requests: &RequestTrace,
    policy: Policy,
    cfg: &SimulationConfig,
    wall: &WallclockConfig,
    model: &PackedModel,
    inputs: &[Tensor],
) -> Result<(RuntimeStats, Vec<WallclockOutcome>), ServingError> {
    // The degenerate registry: one pinned version, canary off, no
    // faults. The registry path in this configuration is bit-identical
    // to the historical frozen-model loop — enforced in
    // `tests/hot_reload.rs` at every `large_range()` bit-width.
    let registry = ModelRegistry::new(model.clone(), "pinned");
    serve_wallclock_registry(
        report,
        trace,
        requests,
        policy,
        cfg,
        wall,
        &registry,
        &FaultPlan::none(),
        inputs,
    )
}

/// [`serve_wallclock`] with live model versioning and fault injection:
/// workers serve out of `registry`'s stable version, re-pinning their
/// O(1) version clones only at batch-dequeue boundaries (per-request
/// version pinning — an in-flight batch never straddles a publish), and
/// `faults` injects at most one fault per trace step into whichever
/// worker first dequeues a batch inside it: a stall idles the batch to
/// the step boundary, transient errors and panics (isolated per batch
/// with `catch_unwind`) fail the batch, whose requests retry at the head
/// per `max_retries`.
///
/// When the registry has a canary in flight, its configured fraction of
/// batches is shadow-routed: the batch is answered from the stable
/// version as always, additionally forwarded through the candidate at
/// the same bit-width, and the two outputs compared bit-exactly. The
/// registry's state machine rolls the candidate back after
/// `max_divergences` divergent samples, a latency regression beyond the
/// band, or any candidate fault, and promotes it to stable after a clean
/// window (see [`crate::registry`]); either transition is a pointer swap
/// workers adopt at their next dequeue.
///
/// On top of [`serve_wallclock`]'s stats, the run's registry activity
/// lands in [`RuntimeStats::reloads`], `rollbacks`, `rejected_publishes`,
/// `canary_served`, `divergences`, and `time_per_generation` (batches
/// per generation); `stats.replicas[w].generation` records the
/// generation each worker ended the run pinned to, and injected faults
/// land in `faults_injected` / `stalled_steps` / `faulted_batches`.
///
/// # Errors
///
/// [`ServingError::Config`] for inconsistent traces, shapes, or knobs;
/// [`ServingError::Infer`] if any report point's bit-width is missing
/// from the registry's stable packed set (checked up front; published
/// candidates are guaranteed compatible by the registry).
#[allow(clippy::too_many_arguments)]
pub fn serve_wallclock_registry(
    report: &DeploymentReport,
    trace: &EnergyTrace,
    requests: &RequestTrace,
    policy: Policy,
    cfg: &SimulationConfig,
    wall: &WallclockConfig,
    registry: &ModelRegistry,
    faults: &FaultPlan,
    inputs: &[Tensor],
) -> Result<(RuntimeStats, Vec<WallclockOutcome>), ServingError> {
    if requests.len() != trace.len() {
        return config_err(format!(
            "request trace covers {} steps but energy trace covers {}",
            requests.len(),
            trace.len()
        ));
    }
    serve_wallclock_streaming(
        report,
        trace,
        policy,
        cfg,
        wall,
        registry,
        faults,
        vec![Box::new(TraceIngress::new(requests, wall.step_time))],
        inputs,
    )
}

/// [`serve_wallclock_registry`] with the frozen-trace producer replaced
/// by an arbitrary set of [`IngressSource`]s: one producer thread runs
/// per source, all submitting through one shared [`IngressSink`], and
/// the run ends when every source has returned (the last one out closes
/// the queue) and the workers have drained what was admitted — each
/// producer's requests are consumed exactly once. With
/// `vec![Box::new(TraceIngress::new(..))]` this *is* the trace path;
/// with [`stream_channel`] external threads push requests live while
/// the loop runs.
///
/// Outcomes are indexed by arrival id — the id [`IngressSink::submit`]
/// returned to the producer — so a streaming caller can correlate its
/// pushes with results. The energy trace still paces the budget
/// schedule: the budget in force at elapsed time `e` is
/// `budgets[min(e / step_time, len - 1)]`, and the run holds that final
/// budget for as long as producers keep it alive.
///
/// # Panics
///
/// A panicking source is isolated (`catch_unwind`) long enough to count
/// it out of the shutdown protocol — workers still drain and the queue
/// still closes — then the panic is re-raised out of this call.
///
/// # Errors
///
/// As [`serve_wallclock_registry`].
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
pub fn serve_wallclock_streaming(
    report: &DeploymentReport,
    trace: &EnergyTrace,
    policy: Policy,
    cfg: &SimulationConfig,
    wall: &WallclockConfig,
    registry: &ModelRegistry,
    faults: &FaultPlan,
    sources: Vec<Box<dyn IngressSource + '_>>,
    inputs: &[Tensor],
) -> Result<(RuntimeStats, Vec<WallclockOutcome>), ServingError> {
    let stable0 = registry.current();
    validate(report, wall, stable0.model(), inputs)?;
    let metrics0 = registry.metrics();
    let (sample_dims, sample_len) = validate_inputs(inputs).expect("validated above");
    let points = report.points();
    let budgets = trace.budgets();
    let steps = budgets.len();
    let step_us = u64::try_from(wall.step_time.as_micros())
        .unwrap_or(u64::MAX)
        .max(1);
    let deadline_us_rel = wall
        .deadline
        .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    // Best-case per-batch service time, for the hopeless-deadline
    // admission check (the wall-clock analog of the resilient path's
    // `queue / max_batch > deadline_steps`).
    let min_latency_us = points
        .iter()
        .map(|p| p.latency_s)
        .fold(f64::INFINITY, f64::min)
        * 1e6;

    let queue = IngressQueue::new(wall.queue, wall.workers, wall.queue_capacity);
    let batch_shared = wall
        .batch_control
        .as_ref()
        .map(|bc| BatchShared::new(bc, wall.max_batch));
    let selector = Mutex::new(PolicySelector::new(report, policy));
    let degrade = Mutex::new(DegradeShared {
        controller: wall.degradation.as_ref().map(|dc| {
            HysteresisController::new(
                dc.backlog_high,
                dc.backlog_low,
                u64::try_from(dc.recovery_window.as_micros())
                    .unwrap_or(u64::MAX)
                    .max(1),
            )
        }),
        events: Vec::new(),
    });
    // Split the caller's kernel-thread allowance across the workers.
    let inner_threads = (max_threads() / wall.workers).max(1);
    let clock = RunClock::start();
    // At most one injected fault per trace step across all workers — the
    // wall-clock analog of the simulated paths' one-fault-per-timestep
    // plan. `insert` returning true claims the step's fault.
    let consumed_faults: Mutex<BTreeSet<usize>> = Mutex::new(BTreeSet::new());

    let arrivals: Mutex<Vec<Arrival>> = Mutex::new(Vec::new());
    let sink = SinkImpl {
        queue: &queue,
        log: &arrivals,
        clock,
        deadline_us_rel,
        min_latency_us,
        slots: wall.workers * wall.max_batch,
        inputs_len: inputs.len(),
    };
    // Exactly-once shutdown: the last producer to finish (even by
    // panicking) closes the queue, so workers drain everything every
    // producer admitted and then exit.
    let remaining = AtomicUsize::new(sources.len());

    let queue_ref = &queue;
    let selector_ref = &selector;
    let degrade_ref = &degrade;
    let batch_ref = batch_shared.as_ref();
    let sample_dims_ref = &sample_dims;
    let consumed_ref = &consumed_faults;
    let sink_ref: &dyn IngressSink = &sink;
    let remaining_ref = &remaining;

    let worker_accs: Vec<WorkerAcc> = thread::scope(|s| {
        if sources.is_empty() {
            queue.close();
        }
        for mut src in sources {
            s.spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| src.run(sink_ref)));
                if remaining_ref.fetch_sub(1, Ordering::AcqRel) == 1 {
                    queue_ref.close();
                }
                if let Err(panic) = result {
                    resume_unwind(panic);
                }
            });
        }

        let workers: Vec<_> = (0..wall.workers)
            .map(|w| {
                let mut pin = registry.snapshot();
                let mut model = pin.stable.model().clone();
                let mut shadow: Option<PackedModel> =
                    pin.canary.as_ref().map(|v| v.model().clone());
                s.spawn(move || {
                    set_threads(inner_threads);
                    let mut acc = WorkerAcc::new(wall.max_batch);
                    let mut prev_bits: Option<BitWidth> = None;
                    loop {
                        // The dynamic cap is read fresh before every
                        // dequeue; without a controller it is the static
                        // `max_batch`.
                        let cap =
                            batch_ref.map_or(wall.max_batch, |b| b.cur.load(Ordering::Acquire));
                        let popped = match queue_ref.pop_batch(w, cap) {
                            Popped::Closed => break,
                            Popped::Batch(items) => items,
                        };
                        let now = clock.now_us();

                        // 0. Version pinning: the registry is observed only
                        // here, at the batch-dequeue boundary. One relaxed
                        // epoch load when nothing changed; on a new epoch,
                        // re-pin the snapshot (O(1) Arc-shared clones) so
                        // the whole batch is served by one consistent
                        // (stable, canary) pair and never straddles a swap.
                        if registry.epoch() != pin.epoch {
                            pin = registry.snapshot();
                            model = pin.stable.model().clone();
                            shadow = pin.canary.as_ref().map(|v| v.model().clone());
                            prev_bits = None;
                        }

                        // 1. Late requests expire before they can be served.
                        let mut live: Vec<Request> = Vec::with_capacity(popped.len());
                        for req in popped {
                            if req.deadline_us.is_some_and(|d| now > d) {
                                acc.expired += 1;
                                acc.records.push(Record {
                                    id: req.id,
                                    status: RequestStatus::Expired,
                                    served_us: None,
                                    bits: None,
                                    output: None,
                                    attempts: req.attempts,
                                });
                            } else {
                                live.push(req);
                            }
                        }
                        if live.is_empty() {
                            continue;
                        }

                        // 2. The shared policy selects under the budget in
                        // force at this wall-clock instant.
                        let step = RunClock::step_of(now, step_us, steps);

                        // 2a. An injected stall idles this batch out to the
                        // step boundary: hand it back, sleep, let whoever
                        // dequeues it next serve it. Nothing is selected,
                        // forwarded, or lost.
                        if faults.at(step) == Some(FaultKind::Stall)
                            && consumed_ref
                                .lock()
                                .expect("fault mutex poisoned")
                                .insert(step)
                        {
                            acc.stalled += 1;
                            acc.injected += 1;
                            queue_ref.push_front(w, live);
                            let boundary = (step as u64 + 1) * step_us;
                            let wait = boundary.saturating_sub(clock.now_us()).max(50);
                            thread::sleep(Duration::from_micros(wait));
                            continue;
                        }
                        let selected = selector_ref
                            .lock()
                            .expect("selector mutex poisoned")
                            .select(budgets[step]);
                        let Some(p) = selected else {
                            acc.dropped += 1;
                            if queue_ref.is_closed() && step + 1 == steps {
                                // The trace ended on an infeasible budget
                                // that now persists forever: these
                                // requests are the run's backlog.
                                for req in live {
                                    acc.records.push(Record {
                                        id: req.id,
                                        status: RequestStatus::Pending,
                                        served_us: None,
                                        bits: None,
                                        output: None,
                                        attempts: req.attempts,
                                    });
                                }
                            } else {
                                // Hand the batch back and wait out the
                                // infeasible step.
                                queue_ref.push_front(w, live);
                                let boundary = (step as u64 + 1) * step_us;
                                let wait = boundary.saturating_sub(clock.now_us()).max(50);
                                thread::sleep(Duration::from_micros(wait));
                            }
                            continue;
                        };

                        // 3. Degradation: observe wall-clock backlog, then
                        // serve `levels` operating points below the pick.
                        // Batch-before-bits priority: while the dynamic
                        // batch cap still has room to shrink, a
                        // would-downshift observation is withheld from the
                        // precision controller — latency pressure is
                        // answered by smaller batches first, and accuracy
                        // only drops once the cap is floored at 1.
                        // Recovery observations are never withheld.
                        let idx = points
                            .iter()
                            .position(|q| q.bits == p.bits)
                            .expect("selected point comes from the report");
                        let levels = if wall.degradation.is_none() {
                            0
                        } else {
                            let batch_can_shrink =
                                batch_ref.is_some_and(|b| b.cur.load(Ordering::Acquire) > 1);
                            let mut d = degrade_ref.lock().expect("degrade mutex poisoned");
                            let DegradeShared { controller, events } = &mut *d;
                            match controller.as_mut() {
                                Some(c) => {
                                    let depth = queue_ref.len() + live.len();
                                    if batch_can_shrink && c.would_downshift(depth, idx) {
                                        // Held back: the batch controller
                                        // still has headroom to give.
                                    } else if let Some(lv) = c.observe(now, depth, idx) {
                                        events.push((step, lv));
                                    }
                                    c.levels()
                                }
                                None => 0,
                            }
                        };
                        let serve_idx = idx - levels.min(idx);
                        let point = &points[serve_idx];
                        let degraded = serve_idx < idx;

                        // 4. One packed forward for the whole batch —
                        // wrapped in `catch_unwind` so a panicking forward
                        // (injected or genuine) fails only this batch.
                        if prev_bits != Some(point.bits) {
                            acc.switches += 1;
                            prev_bits = Some(point.bits);
                        }
                        model
                            .try_switch_to_bits(point.bits)
                            .expect("validated: every report point is packed");
                        let ids: Vec<usize> = live.iter().map(|r| r.input).collect();
                        let batch = gather_batch(inputs, sample_dims_ref, sample_len, &ids);
                        // Counted at freeze time, faulted or not — the
                        // same semantics as the sharded path's histogram.
                        acc.batches += 1;
                        acc.histogram[live.len()] += 1;
                        *acc.generations.entry(pin.stable.generation()).or_insert(0) += 1;
                        let injected = match faults.at(step) {
                            Some(k @ (FaultKind::TransientError | FaultKind::ForwardPanic))
                                if consumed_ref
                                    .lock()
                                    .expect("fault mutex poisoned")
                                    .insert(step) =>
                            {
                                acc.injected += 1;
                                Some(k)
                            }
                            _ => None,
                        };
                        let forward_start = clock.now_us();
                        let forwarded = catch_unwind(AssertUnwindSafe(|| match injected {
                            Some(FaultKind::TransientError) => Err(InferError::Input(format!(
                                "injected transient fault at step {step}"
                            ))),
                            Some(FaultKind::ForwardPanic) => {
                                panic!("injected forward panic at step {step}")
                            }
                            _ => model.try_forward_batch(&batch),
                        }))
                        .unwrap_or_else(|_| {
                            Err(InferError::Input(format!(
                                "isolated forward panic at step {step}"
                            )))
                        });
                        match forwarded {
                            Ok(y) => {
                                let take = live.len();
                                *acc.time_in_bits.entry(point.bits.get()).or_insert(0) += 1;
                                let served_us = clock.now_us();
                                // Feed the batch controller the
                                // dequeue→completion latency of this batch;
                                // on a decision, publish the new cap for
                                // every worker's next dequeue.
                                if let Some(b) = batch_ref {
                                    let latency_us = served_us.saturating_sub(now);
                                    let mut c =
                                        b.ctl.lock().expect("batch controller mutex poisoned");
                                    if let Some(next) = c.observe(step, latency_us) {
                                        b.cur.store(next, Ordering::Release);
                                    }
                                }
                                let outs = scatter_outputs(&y, take);

                                // 4a. Canary shadow: a ticketed fraction of
                                // batches additionally runs through the
                                // candidate at the same bit-width and is
                                // compared bit-exactly. The request is
                                // always answered from the stable output,
                                // so a divergent canary never reaches a
                                // client.
                                if let Some(cand) = shadow.as_mut() {
                                    if registry.canary_ticket(pin.epoch) {
                                        shadow_compare(
                                            registry,
                                            pin.epoch,
                                            cand,
                                            point.bits,
                                            &batch,
                                            &outs,
                                            served_us.saturating_sub(forward_start),
                                            clock,
                                        );
                                    }
                                }
                                for (req, out) in live.iter().zip(outs) {
                                    let status = if degraded {
                                        acc.completed_degraded += 1;
                                        RequestStatus::CompletedDegraded
                                    } else {
                                        acc.completed += 1;
                                        RequestStatus::Completed
                                    };
                                    acc.waits_us.push((served_us - req.arrived_us) as usize);
                                    acc.records.push(Record {
                                        id: req.id,
                                        status,
                                        served_us: Some(served_us),
                                        bits: Some(point.bits.get()),
                                        output: Some(out),
                                        attempts: req.attempts + 1,
                                    });
                                }
                                acc.energy_pj += point.energy_pj * take as f64;
                                acc.acc_sum += point.accuracy * take as f32;
                            }
                            Err(_) => {
                                // A genuine engine error fails only this
                                // batch: its requests retry at the head
                                // until their budget is spent.
                                acc.faulted_batches += 1;
                                let mut requeue: Vec<Request> = Vec::new();
                                for mut req in live {
                                    req.attempts += 1;
                                    if req.attempts > wall.max_retries {
                                        acc.failed += 1;
                                        acc.records.push(Record {
                                            id: req.id,
                                            status: RequestStatus::Failed,
                                            served_us: None,
                                            bits: None,
                                            output: None,
                                            attempts: req.attempts,
                                        });
                                    } else {
                                        acc.retried += 1;
                                        requeue.push(req);
                                    }
                                }
                                queue_ref.push_front(w, requeue);
                            }
                        }
                    }
                    acc.generation = pin.stable.generation();
                    acc
                })
            })
            .collect();

        // Workers exit only after the queue closed and drained, which in
        // turn means every producer already returned; the producer
        // handles are joined implicitly at scope end (re-raising any
        // producer panic after the drain).
        workers
            .into_iter()
            .map(|h| h.join().expect("worker thread never panics"))
            .collect()
    });
    let arrivals_log = arrivals.into_inner().expect("arrival log mutex poisoned");
    let elapsed_us = clock.now_us().max(1);

    // Merge: ingress seeds every outcome, worker records overwrite their
    // terminal states, per-worker accumulators sum into the global stats.
    let mut outcomes: Vec<WallclockOutcome> = arrivals_log
        .iter()
        .map(|a| WallclockOutcome {
            arrived_us: a.arrived_us,
            served_us: None,
            bits: None,
            output: None,
            status: if a.shed {
                RequestStatus::Shed
            } else {
                RequestStatus::Pending
            },
            worker: None,
            attempts: 0,
            deadline_us: a.deadline_us,
            input: a.input,
        })
        .collect();

    let mut stats = RuntimeStats {
        shed: arrivals_log.iter().filter(|a| a.shed).count(),
        ..RuntimeStats::default()
    };
    let mut wait_us: Vec<usize> = Vec::new();
    let mut histogram = vec![0usize; wall.max_batch + 1];
    let mut time_in_bits: BTreeMap<u8, usize> = BTreeMap::new();
    let mut generations: BTreeMap<u64, usize> = BTreeMap::new();
    let mut replicas: Vec<ReplicaStats> = Vec::with_capacity(wall.workers);
    let mut acc_sum = 0.0f32;
    for (w, acc) in worker_accs.into_iter().enumerate() {
        for rec in acc.records {
            let o = &mut outcomes[rec.id];
            o.status = rec.status;
            o.served_us = rec.served_us;
            o.bits = rec.bits;
            o.output = rec.output;
            o.attempts = rec.attempts;
            if matches!(
                rec.status,
                RequestStatus::Completed | RequestStatus::CompletedDegraded | RequestStatus::Failed
            ) {
                o.worker = Some(w);
            }
        }
        stats.completed += acc.completed;
        stats.completed_degraded += acc.completed_degraded;
        stats.expired += acc.expired;
        stats.failed += acc.failed;
        stats.retried += acc.retried;
        stats.dropped += acc.dropped;
        stats.switches += acc.switches;
        stats.energy_pj += acc.energy_pj;
        stats.stalled_steps += acc.stalled;
        stats.faults_injected += acc.injected;
        acc_sum += acc.acc_sum;
        for (i, h) in acc.histogram.iter().enumerate() {
            histogram[i] += h;
        }
        for (&b, &n) in &acc.time_in_bits {
            *time_in_bits.entry(b).or_insert(0) += n;
        }
        for (&g, &n) in &acc.generations {
            *generations.entry(g).or_insert(0) += n;
        }
        let w_summary = wait_summary(&acc.waits_us);
        replicas.push(ReplicaStats {
            served: acc.completed + acc.completed_degraded,
            batches: acc.batches,
            faulted_batches: acc.faulted_batches,
            backlog: 0,
            max_queue_depth: queue.worker_max_depth(w),
            cache_hits: 0,
            mean_wait_steps: w_summary.mean,
            p99_wait_steps: w_summary.p99,
            time_in_bits: acc.time_in_bits.into_iter().collect(),
            generation: acc.generation,
        });
        wait_us.extend(acc.waits_us);
    }

    stats.served_requests = stats.completed + stats.completed_degraded;
    stats.backlog = outcomes
        .iter()
        .filter(|o| o.status == RequestStatus::Pending)
        .count();
    stats.max_queue_depth = queue.max_depth();
    stats.steals = queue.steals();
    stats.batch_histogram = histogram;
    stats.time_in_bits = time_in_bits.into_iter().collect();
    stats.degradation_events = degrade.into_inner().expect("degrade mutex poisoned").events;
    stats.batch_limit_events = batch_shared.map_or_else(Vec::new, |b| {
        b.ctl
            .into_inner()
            .expect("batch controller mutex poisoned")
            .into_events()
    });
    stats.switch_energy_pj = stats.switches as f64 * cfg.switch_cost_pj;
    stats.energy_pj += stats.switch_energy_pj;
    stats.mean_accuracy = if stats.served_requests > 0 {
        acc_sum / stats.served_requests as f32
    } else {
        0.0
    };
    stats.elapsed_us = elapsed_us;
    stats.requests_per_sec = stats.served_requests as f64 / (elapsed_us as f64 * 1e-6);
    stats.replicas = replicas;
    stats.time_per_generation = generations.into_iter().collect();
    // Registry activity attributable to this run: the counters are
    // monotone, so the delta over the run's span is exact even when the
    // caller reuses one registry across runs.
    let metrics1 = registry.metrics();
    stats.reloads = metrics1.reloads - metrics0.reloads;
    stats.rollbacks = metrics1.rollbacks - metrics0.rollbacks;
    stats.rejected_publishes = metrics1.rejected_publishes - metrics0.rejected_publishes;
    stats.canary_served = metrics1.canary_served - metrics0.canary_served;
    stats.divergences = metrics1.divergences - metrics0.divergences;
    finish_wait_stats(&mut stats, wait_us);
    Ok((stats, outcomes))
}

/// Runs the canary candidate over the same batch at the same bit-width,
/// compares per-sample outputs bit-exactly against the stable outputs,
/// and reports the result (or a candidate fault) to the registry. The
/// candidate's forward is isolated with `catch_unwind`: a crashing
/// candidate rolls itself back without touching the batch, which was
/// already answered by the stable version.
#[allow(clippy::too_many_arguments)]
fn shadow_compare(
    registry: &ModelRegistry,
    pinned_epoch: u64,
    cand: &mut PackedModel,
    bits: BitWidth,
    batch: &Tensor,
    stable_outs: &[Tensor],
    stable_us: u64,
    clock: RunClock,
) {
    let start = clock.now_us();
    let result = catch_unwind(AssertUnwindSafe(|| {
        cand.try_switch_to_bits(bits)
            .and_then(|()| cand.try_forward_batch(batch))
    }));
    let candidate_us = clock.now_us().saturating_sub(start);
    match result {
        Ok(Ok(y)) => {
            let cand_outs = scatter_outputs(&y, stable_outs.len());
            let diverged = stable_outs
                .iter()
                .zip(&cand_outs)
                .filter(|(a, b)| a.data() != b.data())
                .count();
            registry.report_shadow(
                pinned_epoch,
                stable_outs.len(),
                diverged,
                stable_us,
                candidate_us,
            );
        }
        _ => {
            registry.report_candidate_fault(pinned_epoch);
        }
    }
}
