//! Versioned model registry: zero-downtime hot reload with canary
//! routing and divergence auto-rollback.
//!
//! A [`ModelRegistry`] holds immutable [`ModelVersion`]s — an Arc-shared
//! [`PackedModel`] plus the checkpoint-v3 CRC it was loaded from and a
//! monotone generation id — and publishes them atomically to every
//! wall-clock worker and shard replica mid-traffic. Publication is a
//! pointer swap: `PackedModel::clone` shares the packed weight tables
//! behind an `Arc`, so adopting a new version costs a refcount bump and a
//! cursor copy, never a repack.
//!
//! **Version lifecycle.** A candidate enters through [`ModelRegistry::
//! publish`] (in-memory) or [`ModelRegistry::publish_checkpoint`] (loads
//! a checkpoint-v3 file, whose CRC sections reject bit-flipped bytes with
//! [`CheckpointError::Corrupt`] *before* the candidate ever reaches
//! traffic — the stable version keeps serving untouched). An accepted
//! candidate either replaces the stable version immediately (canary
//! `None`) or serves a **canary**: workers shadow-route a configurable
//! fraction of batches through the candidate while still answering every
//! request from the stable version, comparing the two outputs bit-exactly
//! at the same bit-width. The candidate is **promoted** to stable after
//! [`CanaryConfig::clean_window`] consecutive divergence-free shadow
//! batches, and **auto-rolled back** — again a pointer swap — after
//! [`CanaryConfig::max_divergences`] divergent samples, a latency
//! regression beyond [`CanaryConfig::latency_band`] for
//! [`CanaryConfig::latency_strikes`] consecutive shadow batches, or any
//! candidate fault (a forward error or isolated panic).
//!
//! **Pinning rule.** Serving loops observe the registry only at batch
//! boundaries: a worker reads [`ModelRegistry::epoch`] (one atomic load)
//! when it dequeues a batch and refreshes its [`RegistrySnapshot`] only
//! on a change, so an in-flight batch is served entirely by the versions
//! pinned at its dequeue — it can never straddle a swap. Because shadow
//! traffic answers from the stable version, client-visible outputs are
//! unchanged by a canary in progress, divergent or not.
//!
//! **Atomicity argument.** All lifecycle transitions happen under one
//! mutex and bump the epoch counter before releasing it; a snapshot is
//! taken under the same mutex, so the `(stable, canary, epoch)` triple a
//! worker pins is always one the registry actually passed through.
//! Workers that report shadow results from a stale epoch are ignored —
//! a rollback can therefore never be triggered by a candidate that is no
//! longer in flight.

use instantnet_infer::{InferError, PackedModel};
use instantnet_nn::checkpoint::{crc32, CheckpointError};
use instantnet_nn::Module;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One immutable published model: the Arc-shared packed engine, the CRC
/// of the checkpoint bytes it came from (0 for in-memory publishes), and
/// its place in the registry's monotone generation sequence.
pub struct ModelVersion {
    generation: u64,
    label: String,
    model: PackedModel,
    source_crc: u32,
}

impl ModelVersion {
    /// Monotone generation id; higher = published later.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The label the publisher gave this version.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The packed engine. Cloning it is O(1) — the packed tables are
    /// shared behind an `Arc`, which is what makes adoption a pointer
    /// swap.
    pub fn model(&self) -> &PackedModel {
        &self.model
    }

    /// CRC32 (checkpoint-v3 polynomial) of the checkpoint file this
    /// version was loaded from; 0 for in-memory publishes.
    pub fn source_crc(&self) -> u32 {
        self.source_crc
    }
}

/// Knobs of a canary rollout. `Some(config)` on publish shadow-routes
/// traffic; `None` swaps the stable pointer immediately.
#[derive(Debug, Clone, PartialEq)]
pub struct CanaryConfig {
    /// Fraction of batches shadow-routed through the candidate, in
    /// `(0, 1]`. Routing is deterministic thresholding on the batch
    /// sequence number, not random — the same traffic shadows the same
    /// batches.
    pub fraction: f64,
    /// Divergent samples (candidate output ≠ stable output, bit-wise, at
    /// the same bit-width) that trigger auto-rollback. Must be ≥ 1.
    pub max_divergences: usize,
    /// Latency band: roll back when the candidate's shadow forward takes
    /// more than `band ×` the stable forward's wall time for
    /// [`CanaryConfig::latency_strikes`] consecutive shadow batches.
    /// Must be > 1 when set; `None` disables the latency gate.
    pub latency_band: Option<f64>,
    /// Consecutive over-band shadow batches before the latency gate
    /// rolls back (wall time is noisy; one slow batch is not a verdict).
    /// Must be ≥ 1.
    pub latency_strikes: usize,
    /// Consecutive divergence-free shadow batches required to promote
    /// the candidate to stable. A divergent batch resets the window.
    /// Must be ≥ 1.
    pub clean_window: usize,
}

impl Default for CanaryConfig {
    fn default() -> Self {
        CanaryConfig {
            fraction: 0.25,
            max_divergences: 3,
            latency_band: None,
            latency_strikes: 3,
            clean_window: 8,
        }
    }
}

impl CanaryConfig {
    fn validate(&self) -> Result<(), String> {
        if !(self.fraction > 0.0 && self.fraction <= 1.0) {
            return Err(format!(
                "canary fraction {} must be in (0, 1]",
                self.fraction
            ));
        }
        if self.max_divergences < 1 {
            return Err("max_divergences must be at least 1".into());
        }
        if self.clean_window < 1 {
            return Err("clean_window must be at least 1".into());
        }
        if self.latency_strikes < 1 {
            return Err("latency_strikes must be at least 1".into());
        }
        if let Some(band) = self.latency_band {
            if band.is_nan() || band <= 1.0 {
                return Err(format!("latency_band {band} must be above 1"));
            }
        }
        Ok(())
    }
}

/// Why a publish was refused. Refusals never touch the stable version.
#[derive(Debug)]
pub enum PublishError {
    /// The candidate checkpoint failed to load or prepack — including
    /// [`CheckpointError::Corrupt`] for CRC-mismatched bytes.
    Load(InferError),
    /// The candidate packs a different bit-width set or quantizer than
    /// the stable version, so workers could not serve report points on
    /// it interchangeably.
    Incompatible(String),
    /// A canary is already in flight; roll it back or let it resolve
    /// before publishing the next candidate.
    CanaryInFlight,
    /// The canary knobs themselves are inconsistent.
    Config(String),
}

impl fmt::Display for PublishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PublishError::Load(e) => write!(f, "candidate rejected: {e}"),
            PublishError::Incompatible(msg) => write!(f, "candidate incompatible: {msg}"),
            PublishError::CanaryInFlight => write!(f, "a canary candidate is already in flight"),
            PublishError::Config(msg) => write!(f, "invalid canary config: {msg}"),
        }
    }
}

impl std::error::Error for PublishError {}

impl PublishError {
    /// The checkpoint-level error, when the refusal was a load failure —
    /// the hook tests use to pin `CheckpointError::Corrupt`.
    pub fn checkpoint_error(&self) -> Option<&CheckpointError> {
        match self {
            PublishError::Load(InferError::Checkpoint(e)) => Some(e),
            _ => None,
        }
    }
}

/// What a shadow report did to the canary in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowVerdict {
    /// The canary continues (or the report was stale and ignored).
    Continue,
    /// The candidate was rolled back; the stable version keeps serving.
    RolledBack(RollbackReason),
    /// The candidate was promoted to stable.
    Promoted,
}

/// Why a candidate was rolled back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollbackReason {
    /// Accumulated divergent samples reached
    /// [`CanaryConfig::max_divergences`].
    Divergence,
    /// The candidate exceeded the latency band for
    /// [`CanaryConfig::latency_strikes`] consecutive shadow batches.
    Latency,
    /// A shadow forward on the candidate errored or panicked.
    CandidateFault,
    /// [`ModelRegistry::rollback`] was called.
    Manual,
}

/// Monotone counters of everything the registry did. Serving loops
/// snapshot these at run start and end; the delta lands in
/// [`crate::runtime::RuntimeStats`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegistryMetrics {
    /// Candidates accepted (direct swaps + canary starts).
    pub publishes: usize,
    /// Candidates refused before reaching traffic (corrupt checkpoints,
    /// incompatible packs).
    pub rejected_publishes: usize,
    /// Stable-pointer swaps: direct publishes plus promotions.
    pub reloads: usize,
    /// Canary candidates promoted to stable.
    pub promotions: usize,
    /// Canary candidates rolled back (auto or manual).
    pub rollbacks: usize,
    /// Shadow-compared samples whose candidate output differed bit-wise
    /// from the stable output at the same bit-width.
    pub divergences: usize,
    /// Samples shadow-routed through a candidate (always *also* served
    /// by the stable version — shadow traffic is never client-visible).
    pub canary_served: usize,
}

/// The `(stable, canary, epoch)` triple a worker pins at a batch
/// boundary. Both versions are `Arc`s into the registry's history, so a
/// snapshot stays valid — and its outputs stay reproducible — however
/// the registry moves on.
pub struct RegistrySnapshot {
    /// The epoch this snapshot was taken at; compare with
    /// [`ModelRegistry::epoch`] to decide whether to re-pin.
    pub epoch: u64,
    /// The serving version: every request is answered by this model.
    pub stable: Arc<ModelVersion>,
    /// The canary candidate in flight, if any — shadow traffic only.
    pub canary: Option<Arc<ModelVersion>>,
}

impl RegistrySnapshot {
    /// Generation of the pinned stable version — the version component
    /// of content-cache keys, so a hot reload can never answer from
    /// outputs a superseded generation computed.
    pub fn generation(&self) -> u64 {
        self.stable.generation()
    }
}

struct CanaryState {
    version: Arc<ModelVersion>,
    cfg: CanaryConfig,
    divergences: usize,
    clean_batches: usize,
    latency_strikes: usize,
    batches_seen: u64,
    batches_routed: u64,
}

struct Inner {
    stable: Arc<ModelVersion>,
    canary: Option<CanaryState>,
    next_generation: u64,
    metrics: RegistryMetrics,
}

/// The registry: one stable serving version, at most one canary
/// candidate, and the epoch counter workers poll. `Sync` — the publisher
/// thread and every worker share it by reference.
pub struct ModelRegistry {
    inner: Mutex<Inner>,
    epoch: AtomicU64,
}

impl ModelRegistry {
    /// Seeds the registry with generation 1 as the stable version.
    pub fn new(model: PackedModel, label: impl Into<String>) -> Self {
        ModelRegistry {
            inner: Mutex::new(Inner {
                stable: Arc::new(ModelVersion {
                    generation: 1,
                    label: label.into(),
                    model,
                    source_crc: 0,
                }),
                canary: None,
                next_generation: 2,
                metrics: RegistryMetrics::default(),
            }),
            epoch: AtomicU64::new(1),
        }
    }

    /// The epoch counter: bumps on every visible transition (publish,
    /// promote, rollback). One atomic load — the only cost a worker pays
    /// per batch when nothing changed.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The stable serving version.
    pub fn current(&self) -> Arc<ModelVersion> {
        self.lock().stable.clone()
    }

    /// The canary candidate in flight, if any.
    pub fn candidate(&self) -> Option<Arc<ModelVersion>> {
        self.lock().canary.as_ref().map(|c| c.version.clone())
    }

    /// Everything the registry has done so far.
    pub fn metrics(&self) -> RegistryMetrics {
        self.lock().metrics.clone()
    }

    /// Pins the `(stable, canary, epoch)` triple under one lock — the
    /// snapshot a worker serves a batch from.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let g = self.lock();
        RegistrySnapshot {
            epoch: self.epoch.load(Ordering::Acquire),
            stable: g.stable.clone(),
            canary: g.canary.as_ref().map(|c| c.version.clone()),
        }
    }

    /// Publishes an in-memory candidate. With `canary: None` the stable
    /// pointer swaps immediately; with `Some(cfg)` the candidate starts
    /// a canary. Returns the candidate's generation id.
    ///
    /// # Errors
    ///
    /// [`PublishError::Incompatible`] when the candidate's bit-width set
    /// or quantizer differs from the stable version's (counted as a
    /// rejected publish); [`PublishError::CanaryInFlight`] /
    /// [`PublishError::Config`] for caller errors (not counted).
    pub fn publish(
        &self,
        model: PackedModel,
        label: impl Into<String>,
        canary: Option<CanaryConfig>,
    ) -> Result<u64, PublishError> {
        self.publish_version(model, label.into(), 0, canary)
    }

    /// Loads a checkpoint-v3 candidate and publishes it at the stable
    /// version's bit-width set and quantizer. The checkpoint's CRC
    /// sections are verified during the load: a bit-flipped file fails
    /// with [`CheckpointError::Corrupt`] *before* any version changes —
    /// the stable version keeps serving and the refusal is counted in
    /// [`RegistryMetrics::rejected_publishes`].
    ///
    /// `module` is the topology the checkpoint's tensors load into; its
    /// parameters are overwritten by the load.
    ///
    /// # Errors
    ///
    /// [`PublishError::Load`] for corrupt/unreadable/mismatched
    /// checkpoints, plus everything [`ModelRegistry::publish`] refuses.
    pub fn publish_checkpoint(
        &self,
        module: &dyn Module,
        path: impl AsRef<Path>,
        label: impl Into<String>,
        canary: Option<CanaryConfig>,
    ) -> Result<u64, PublishError> {
        let path = path.as_ref();
        let (set, quantizer) = {
            let g = self.lock();
            (
                g.stable.model.bit_widths().clone(),
                g.stable.model.quantizer(),
            )
        };
        let crc = std::fs::read(path).map(|bytes| crc32(&bytes)).unwrap_or(0);
        let model = match PackedModel::from_checkpoint(module, path, &set, quantizer) {
            Ok(m) => m,
            Err(e) => {
                self.lock().metrics.rejected_publishes += 1;
                return Err(PublishError::Load(e));
            }
        };
        self.publish_version(model, label.into(), crc, canary)
    }

    fn publish_version(
        &self,
        model: PackedModel,
        label: String,
        source_crc: u32,
        canary: Option<CanaryConfig>,
    ) -> Result<u64, PublishError> {
        if let Some(cfg) = &canary {
            cfg.validate().map_err(PublishError::Config)?;
        }
        let mut g = self.lock();
        if g.canary.is_some() {
            return Err(PublishError::CanaryInFlight);
        }
        let stable_widths = g.stable.model.bit_widths().widths().to_vec();
        let stable_quantizer = g.stable.model.quantizer();
        if model.bit_widths().widths() != stable_widths || model.quantizer() != stable_quantizer {
            g.metrics.rejected_publishes += 1;
            return Err(PublishError::Incompatible(format!(
                "candidate packs {:?}/{:?} but stable serves {:?}/{:?}",
                model.bit_widths().widths(),
                model.quantizer(),
                stable_widths,
                stable_quantizer,
            )));
        }
        let generation = g.next_generation;
        g.next_generation += 1;
        let version = Arc::new(ModelVersion {
            generation,
            label,
            model,
            source_crc,
        });
        g.metrics.publishes += 1;
        match canary {
            None => {
                g.stable = version;
                g.metrics.reloads += 1;
            }
            Some(cfg) => {
                g.canary = Some(CanaryState {
                    version,
                    cfg,
                    divergences: 0,
                    clean_batches: 0,
                    latency_strikes: 0,
                    batches_seen: 0,
                    batches_routed: 0,
                });
            }
        }
        self.bump(&mut g);
        Ok(generation)
    }

    /// Manually rolls back the canary in flight. Returns `false` when no
    /// canary was active.
    pub fn rollback(&self) -> bool {
        let mut g = self.lock();
        if g.canary.is_none() {
            return false;
        }
        self.rollback_locked(&mut g);
        true
    }

    /// Deterministic fraction routing: whether the batch a worker is
    /// about to serve should also shadow through the candidate. Counts
    /// the batch either way, so the routed share tracks
    /// [`CanaryConfig::fraction`] exactly; `false` for stale pins and
    /// when no canary is in flight.
    pub fn canary_ticket(&self, pinned_epoch: u64) -> bool {
        let mut g = self.lock();
        if self.epoch.load(Ordering::Acquire) != pinned_epoch {
            return false;
        }
        let Some(state) = g.canary.as_mut() else {
            return false;
        };
        state.batches_seen += 1;
        let route = (state.batches_routed as f64) < state.batches_seen as f64 * state.cfg.fraction;
        if route {
            state.batches_routed += 1;
        }
        route
    }

    /// A worker's shadow-compare result for one canary-routed batch:
    /// `samples` requests were shadowed, `diverged` of them produced a
    /// candidate output bit-different from the stable output, and the
    /// two forwards took `stable_us` / `candidate_us` of wall time.
    /// Applies the canary state machine; stale reports return
    /// [`ShadowVerdict::Continue`] without touching it.
    pub fn report_shadow(
        &self,
        pinned_epoch: u64,
        samples: usize,
        diverged: usize,
        stable_us: u64,
        candidate_us: u64,
    ) -> ShadowVerdict {
        let mut g = self.lock();
        if self.epoch.load(Ordering::Acquire) != pinned_epoch || g.canary.is_none() {
            return ShadowVerdict::Continue;
        }
        g.metrics.canary_served += samples;
        g.metrics.divergences += diverged;
        let state = g.canary.as_mut().expect("checked above");
        if diverged > 0 {
            state.divergences += diverged;
            state.clean_batches = 0;
        } else {
            state.clean_batches += 1;
        }
        if let Some(band) = state.cfg.latency_band {
            if candidate_us as f64 > band * stable_us.max(1) as f64 {
                state.latency_strikes += 1;
            } else {
                state.latency_strikes = 0;
            }
        }
        if state.divergences >= state.cfg.max_divergences {
            self.rollback_locked(&mut g);
            return ShadowVerdict::RolledBack(RollbackReason::Divergence);
        }
        let state = g.canary.as_mut().expect("not rolled back");
        if state.cfg.latency_band.is_some() && state.latency_strikes >= state.cfg.latency_strikes {
            self.rollback_locked(&mut g);
            return ShadowVerdict::RolledBack(RollbackReason::Latency);
        }
        let state = g.canary.as_mut().expect("not rolled back");
        if state.clean_batches >= state.cfg.clean_window {
            let version = state.version.clone();
            g.stable = version;
            g.canary = None;
            g.metrics.promotions += 1;
            g.metrics.reloads += 1;
            self.bump(&mut g);
            return ShadowVerdict::Promoted;
        }
        ShadowVerdict::Continue
    }

    /// A shadow forward on the candidate errored or panicked: any
    /// candidate fault rolls back immediately. The batch itself was
    /// served by the stable version, so no request is lost.
    pub fn report_candidate_fault(&self, pinned_epoch: u64) -> ShadowVerdict {
        let mut g = self.lock();
        if self.epoch.load(Ordering::Acquire) != pinned_epoch || g.canary.is_none() {
            return ShadowVerdict::Continue;
        }
        self.rollback_locked(&mut g);
        ShadowVerdict::RolledBack(RollbackReason::CandidateFault)
    }

    fn rollback_locked(&self, g: &mut Inner) {
        g.canary = None;
        g.metrics.rollbacks += 1;
        self.bump(g);
    }

    /// Epoch bumps happen while the inner lock is held, so snapshots
    /// (also taken under the lock) always pair a consistent triple.
    fn bump(&self, _g: &mut Inner) {
        self.epoch.fetch_add(1, Ordering::Release);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("registry mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantnet_nn::{checkpoint, models};
    use instantnet_quant::{BitWidthSet, Quantizer};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("instantnet-registry-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn packed(seed: u64, bits: &BitWidthSet) -> PackedModel {
        let net = models::small_cnn(2, 3, (6, 6), bits.len(), seed);
        PackedModel::prepack(&net, bits, Quantizer::Sbm).unwrap()
    }

    #[test]
    fn direct_publish_swaps_stable_and_bumps_epoch() {
        let bits = BitWidthSet::new(vec![4, 8]).unwrap();
        let reg = ModelRegistry::new(packed(1, &bits), "seed");
        let e0 = reg.epoch();
        assert_eq!(reg.current().generation(), 1);
        let gen = reg.publish(packed(2, &bits), "v2", None).unwrap();
        assert_eq!(gen, 2);
        assert_eq!(reg.current().generation(), 2);
        assert_eq!(reg.current().label(), "v2");
        assert!(reg.epoch() > e0);
        let m = reg.metrics();
        assert_eq!((m.publishes, m.reloads, m.rollbacks), (1, 1, 0));
        assert!(reg.candidate().is_none());
    }

    #[test]
    fn snapshot_pins_arc_shared_versions() {
        let bits = BitWidthSet::new(vec![4]).unwrap();
        let reg = ModelRegistry::new(packed(3, &bits), "seed");
        let pin = reg.snapshot();
        assert!(pin
            .stable
            .model()
            .shares_packed_tables(reg.current().model()));
        reg.publish(packed(4, &bits), "v2", None).unwrap();
        // The old pin survives the swap — in-flight batches keep their
        // version; new pins observe the new stable.
        assert_eq!(pin.stable.generation(), 1);
        assert_eq!(reg.snapshot().stable.generation(), 2);
        assert_ne!(pin.epoch, reg.epoch());
    }

    #[test]
    fn incompatible_candidate_is_rejected_without_touching_stable() {
        let bits = BitWidthSet::new(vec![4, 8]).unwrap();
        let other = BitWidthSet::new(vec![4, 16]).unwrap();
        let reg = ModelRegistry::new(packed(5, &bits), "seed");
        let err = reg.publish(packed(6, &other), "bad", None).unwrap_err();
        assert!(matches!(err, PublishError::Incompatible(_)));
        assert_eq!(reg.current().generation(), 1);
        assert_eq!(reg.metrics().rejected_publishes, 1);
        assert_eq!(reg.metrics().publishes, 0);
    }

    #[test]
    fn corrupt_checkpoint_is_rejected_and_counted() {
        let bits = BitWidthSet::new(vec![4, 8]).unwrap();
        let net = models::small_cnn(2, 3, (6, 6), bits.len(), 7);
        let path = tmp("corrupt-candidate.bin");
        checkpoint::save(&net, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 6] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let reg = ModelRegistry::new(packed(7, &bits), "seed");
        let e0 = reg.epoch();
        let err = reg
            .publish_checkpoint(&net, &path, "corrupt", None)
            .unwrap_err();
        assert!(
            matches!(err.checkpoint_error(), Some(CheckpointError::Corrupt(_))),
            "bit flip must surface as Corrupt, got {err}"
        );
        assert_eq!(reg.current().generation(), 1, "stable keeps serving");
        assert_eq!(reg.epoch(), e0, "no visible transition");
        assert_eq!(reg.metrics().rejected_publishes, 1);
    }

    #[test]
    fn checkpoint_publish_records_source_crc() {
        let bits = BitWidthSet::new(vec![4, 8]).unwrap();
        let net = models::small_cnn(2, 3, (6, 6), bits.len(), 9);
        let path = tmp("clean-candidate.bin");
        checkpoint::save(&net, &path).unwrap();
        let expected = crc32(&std::fs::read(&path).unwrap());

        let reg = ModelRegistry::new(packed(9, &bits), "seed");
        reg.publish_checkpoint(&net, &path, "v2", None).unwrap();
        assert_eq!(reg.current().source_crc(), expected);
        assert_ne!(expected, 0);
    }

    #[test]
    fn canary_ticket_honours_fraction_deterministically() {
        let bits = BitWidthSet::new(vec![4]).unwrap();
        let reg = ModelRegistry::new(packed(11, &bits), "seed");
        let cfg = CanaryConfig {
            fraction: 0.25,
            clean_window: 1_000_000,
            ..CanaryConfig::default()
        };
        reg.publish(packed(12, &bits), "v2", Some(cfg)).unwrap();
        let epoch = reg.epoch();
        let routed = (0..100).filter(|_| reg.canary_ticket(epoch)).count();
        assert_eq!(routed, 25, "deterministic thresholding, not sampling");
        assert!(!reg.canary_ticket(epoch + 1), "stale pins never route");
    }

    #[test]
    fn k_divergences_roll_back_and_clean_window_promotes() {
        let bits = BitWidthSet::new(vec![4]).unwrap();
        let cfg = CanaryConfig {
            fraction: 1.0,
            max_divergences: 2,
            clean_window: 3,
            ..CanaryConfig::default()
        };

        // Divergences accumulate across batches; the 2nd rolls back.
        let reg = ModelRegistry::new(packed(13, &bits), "seed");
        reg.publish(packed(14, &bits), "bad", Some(cfg.clone()))
            .unwrap();
        let epoch = reg.epoch();
        assert_eq!(
            reg.report_shadow(epoch, 4, 1, 10, 10),
            ShadowVerdict::Continue
        );
        assert_eq!(
            reg.report_shadow(epoch, 4, 1, 10, 10),
            ShadowVerdict::RolledBack(RollbackReason::Divergence)
        );
        assert_eq!(reg.current().generation(), 1, "stable untouched");
        assert!(reg.candidate().is_none());
        let m = reg.metrics();
        assert_eq!((m.rollbacks, m.divergences, m.canary_served), (1, 2, 8));

        // A clean window promotes; a divergent batch resets it.
        let reg = ModelRegistry::new(packed(15, &bits), "seed");
        reg.publish(packed(16, &bits), "good", Some(cfg)).unwrap();
        let epoch = reg.epoch();
        reg.report_shadow(epoch, 2, 0, 10, 10);
        reg.report_shadow(epoch, 2, 1, 10, 10); // resets the window
        reg.report_shadow(epoch, 2, 0, 10, 10);
        reg.report_shadow(epoch, 2, 0, 10, 10);
        assert_eq!(
            reg.report_shadow(epoch, 2, 0, 10, 10),
            ShadowVerdict::Promoted
        );
        assert_eq!(reg.current().generation(), 2);
        assert_eq!(reg.current().label(), "good");
        let m = reg.metrics();
        assert_eq!((m.promotions, m.reloads, m.rollbacks), (1, 1, 0));
    }

    #[test]
    fn latency_band_rolls_back_after_consecutive_strikes() {
        let bits = BitWidthSet::new(vec![4]).unwrap();
        let reg = ModelRegistry::new(packed(17, &bits), "seed");
        let cfg = CanaryConfig {
            fraction: 1.0,
            latency_band: Some(2.0),
            latency_strikes: 2,
            clean_window: 100,
            ..CanaryConfig::default()
        };
        reg.publish(packed(18, &bits), "slow", Some(cfg)).unwrap();
        let epoch = reg.epoch();
        assert_eq!(
            reg.report_shadow(epoch, 1, 0, 10, 30),
            ShadowVerdict::Continue
        );
        // An in-band batch resets the strike counter.
        assert_eq!(
            reg.report_shadow(epoch, 1, 0, 10, 15),
            ShadowVerdict::Continue
        );
        assert_eq!(
            reg.report_shadow(epoch, 1, 0, 10, 30),
            ShadowVerdict::Continue
        );
        assert_eq!(
            reg.report_shadow(epoch, 1, 0, 10, 30),
            ShadowVerdict::RolledBack(RollbackReason::Latency)
        );
    }

    #[test]
    fn candidate_fault_rolls_back_immediately() {
        let bits = BitWidthSet::new(vec![4]).unwrap();
        let reg = ModelRegistry::new(packed(19, &bits), "seed");
        reg.publish(packed(20, &bits), "crashy", Some(CanaryConfig::default()))
            .unwrap();
        let epoch = reg.epoch();
        assert_eq!(
            reg.report_candidate_fault(epoch),
            ShadowVerdict::RolledBack(RollbackReason::CandidateFault)
        );
        assert_eq!(reg.metrics().rollbacks, 1);
        // Stale fault reports after the rollback are ignored.
        assert_eq!(reg.report_candidate_fault(epoch), ShadowVerdict::Continue);
        assert_eq!(reg.metrics().rollbacks, 1);
    }

    #[test]
    fn publish_while_canary_in_flight_is_refused() {
        let bits = BitWidthSet::new(vec![4]).unwrap();
        let reg = ModelRegistry::new(packed(21, &bits), "seed");
        reg.publish(packed(22, &bits), "v2", Some(CanaryConfig::default()))
            .unwrap();
        let err = reg.publish(packed(23, &bits), "v3", None).unwrap_err();
        assert!(matches!(err, PublishError::CanaryInFlight));
        assert!(reg.rollback(), "manual rollback clears the canary");
        assert!(!reg.rollback(), "no canary left to roll back");
        reg.publish(packed(23, &bits), "v3", None).unwrap();
        assert_eq!(reg.current().label(), "v3");
    }

    #[test]
    fn invalid_canary_config_is_a_typed_error() {
        let bits = BitWidthSet::new(vec![4]).unwrap();
        let reg = ModelRegistry::new(packed(25, &bits), "seed");
        for cfg in [
            CanaryConfig {
                fraction: 0.0,
                ..CanaryConfig::default()
            },
            CanaryConfig {
                fraction: 1.5,
                ..CanaryConfig::default()
            },
            CanaryConfig {
                max_divergences: 0,
                ..CanaryConfig::default()
            },
            CanaryConfig {
                clean_window: 0,
                ..CanaryConfig::default()
            },
            CanaryConfig {
                latency_strikes: 0,
                ..CanaryConfig::default()
            },
            CanaryConfig {
                latency_band: Some(0.5),
                ..CanaryConfig::default()
            },
        ] {
            let err = reg
                .publish(packed(26, &bits), "bad-cfg", Some(cfg))
                .unwrap_err();
            assert!(matches!(err, PublishError::Config(_)));
        }
    }
}
