//! Deterministic fault injection for the resilient serving simulator.
//!
//! A [`FaultPlan`] pins down *exactly* which timesteps misbehave and how,
//! either from an explicit schedule or expanded from a seed — so a chaos
//! scenario that shakes out a bug replays bit-for-bit in CI. The plan is
//! pure data; [`crate::resilience::simulate_serving_resilient`] interprets
//! it (stalls skip the step, transient errors and panics fail the batch
//! and trigger retry accounting).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// What goes wrong at one timestep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker is unavailable for the whole step: nothing is selected
    /// or served, arrivals still queue.
    Stall,
    /// The batch forward reports a transient error; its requests re-queue
    /// for retry (with backoff) up to their retry budget.
    TransientError,
    /// The batch forward panics. The simulator isolates the panic with
    /// `catch_unwind`, fails only that batch, and keeps serving.
    ForwardPanic,
}

/// Per-step fault probabilities for [`FaultPlan::seeded`]. Each step draws
/// once; the three rates partition the unit interval, so they must sum to
/// at most 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability of a [`FaultKind::Stall`].
    pub stall: f64,
    /// Probability of a [`FaultKind::TransientError`].
    pub transient: f64,
    /// Probability of a [`FaultKind::ForwardPanic`].
    pub panic: f64,
}

impl FaultRates {
    fn validate(&self) {
        let ok = |r: f64| r.is_finite() && (0.0..=1.0).contains(&r);
        assert!(
            ok(self.stall) && ok(self.transient) && ok(self.panic),
            "fault rates must be probabilities"
        );
        assert!(
            self.stall + self.transient + self.panic <= 1.0,
            "fault rates must sum to at most 1"
        );
    }
}

/// A deterministic timestep → fault schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    schedule: BTreeMap<usize, FaultKind>,
}

impl FaultPlan {
    /// The empty plan: nothing ever fails.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An explicit schedule. Later entries for the same step win.
    pub fn from_schedule(faults: impl IntoIterator<Item = (usize, FaultKind)>) -> Self {
        FaultPlan {
            schedule: faults.into_iter().collect(),
        }
    }

    /// Expands `seed` into a schedule over `steps` timesteps: each step
    /// draws one uniform sample and the `rates` partition the unit
    /// interval (`[0, stall)` stalls, the next `transient`-wide band
    /// errors, the next `panic`-wide band panics, the rest is healthy).
    /// The same `(seed, steps, rates)` always yields the same plan.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]` or the rates sum past 1.
    pub fn seeded(seed: u64, steps: usize, rates: FaultRates) -> Self {
        rates.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut schedule = BTreeMap::new();
        for t in 0..steps {
            let r = rng.gen_range(0.0..1.0f64);
            let kind = if r < rates.stall {
                Some(FaultKind::Stall)
            } else if r < rates.stall + rates.transient {
                Some(FaultKind::TransientError)
            } else if r < rates.stall + rates.transient + rates.panic {
                Some(FaultKind::ForwardPanic)
            } else {
                None
            };
            if let Some(k) = kind {
                schedule.insert(t, k);
            }
        }
        FaultPlan { schedule }
    }

    /// The fault injected at step `t`, if any.
    pub fn at(&self, t: usize) -> Option<FaultKind> {
        self.schedule.get(&t).copied()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// Faults scheduled strictly before step `steps` — what a trace of
    /// that length will actually encounter.
    pub fn count_before(&self, steps: usize) -> usize {
        self.schedule.range(..steps).count()
    }

    /// Faults of one kind scheduled strictly before step `steps` — e.g.
    /// how many stall steps a sharded run's target replica will lose, or
    /// how many batch-failing faults its retry accounting must absorb.
    pub fn count_kind_before(&self, steps: usize, kind: FaultKind) -> usize {
        self.schedule
            .range(..steps)
            .filter(|&(_, &k)| k == kind)
            .count()
    }

    /// Iterates the schedule in step order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, FaultKind)> + '_ {
        self.schedule.iter().map(|(&t, &k)| (t, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_schedule_reports_faults() {
        let plan = FaultPlan::from_schedule([(3, FaultKind::Stall), (7, FaultKind::ForwardPanic)]);
        assert_eq!(plan.at(3), Some(FaultKind::Stall));
        assert_eq!(plan.at(7), Some(FaultKind::ForwardPanic));
        assert_eq!(plan.at(4), None);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.count_before(7), 1);
        assert_eq!(plan.count_kind_before(8, FaultKind::Stall), 1);
        assert_eq!(plan.count_kind_before(8, FaultKind::ForwardPanic), 1);
        assert_eq!(plan.count_kind_before(7, FaultKind::ForwardPanic), 0);
        assert_eq!(plan.count_kind_before(8, FaultKind::TransientError), 0);
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn seeded_plan_is_deterministic() {
        let rates = FaultRates {
            stall: 0.1,
            transient: 0.2,
            panic: 0.05,
        };
        let a = FaultPlan::seeded(42, 500, rates);
        let b = FaultPlan::seeded(42, 500, rates);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43, 500, rates);
        assert_ne!(a, c, "different seeds give different plans");
    }

    #[test]
    fn seeded_rates_are_roughly_honoured() {
        let rates = FaultRates {
            stall: 0.2,
            transient: 0.1,
            panic: 0.0,
        };
        let plan = FaultPlan::seeded(7, 10_000, rates);
        let stalls = plan.iter().filter(|&(_, k)| k == FaultKind::Stall).count();
        let transients = plan
            .iter()
            .filter(|&(_, k)| k == FaultKind::TransientError)
            .count();
        assert!((1600..2400).contains(&stalls), "stalls {stalls}");
        assert!((700..1300).contains(&transients), "transients {transients}");
        assert!(!plan.iter().any(|(_, k)| k == FaultKind::ForwardPanic));
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn oversubscribed_rates_rejected() {
        let _ = FaultPlan::seeded(
            0,
            10,
            FaultRates {
                stall: 0.6,
                transient: 0.5,
                panic: 0.0,
            },
        );
    }
}
