//! End-to-end InstantNet: automated generation **and** deployment of
//! instantaneously switchable-precision networks.
//!
//! Given a dataset, a bit-width set and a target device, the
//! [`Pipeline`] runs the three enablers of the paper in order:
//!
//! 1. **SP-NAS** ([`instantnet_nas`]) searches for an architecture that
//!    natively tolerates every candidate bit-width (Eq. 2);
//! 2. **CDT** ([`instantnet_train`]) trains the derived network once, with
//!    cascade distillation across the whole bit-width set (Eq. 1);
//! 3. **AutoMapper** ([`instantnet_automapper`]) searches an optimal
//!    dataflow *per bit-width* on the target device (Alg. 1).
//!
//! The result is a [`DeploymentReport`]: one accuracy/energy/latency/EDP
//! operating point per bit-width, which an IoT runtime can switch between
//! instantaneously ([`DeploymentReport::select`]).
//!
//! # Example
//!
//! ```no_run
//! use instantnet::{Pipeline, PipelineConfig};
//! use instantnet_data::{Dataset, DatasetSpec};
//!
//! let ds = Dataset::generate(&DatasetSpec::tiny());
//! let report = Pipeline::new(PipelineConfig::quick()).run(&ds);
//! for p in report.points() {
//!     println!("{}: acc {:.1}% edp {:.3e}", p.bits, 100.0 * p.accuracy, p.edp);
//! }
//! ```

mod engine;
pub mod faults;
pub mod registry;
pub mod resilience;
pub mod runtime;
pub mod sharding;
pub mod wallclock;

use instantnet_automapper::{map_network, MapperConfig};
use instantnet_data::Dataset;
use instantnet_hwmodel::{workloads_from_specs, Device};
use instantnet_nas::{search, NasConfig, SearchMode, SearchSpace};
use instantnet_nn::models::Network;
use instantnet_quant::{BitWidth, BitWidthSet, Quantizer};
use instantnet_train::{evaluate, PrecisionLadder, Strategy, TrainConfig, Trainer};

pub use instantnet_automapper as automapper;
pub use instantnet_data as data;
pub use instantnet_dataflow as dataflow;
pub use instantnet_hwmodel as hwmodel;
pub use instantnet_infer as infer;
pub use instantnet_nas as nas;
pub use instantnet_nn as nn;
pub use instantnet_quant as quant;
pub use instantnet_tensor as tensor;
pub use instantnet_train as train;

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Candidate bit-widths the deployed network switches between.
    pub bits: BitWidthSet,
    /// Quantization rule (the paper uses SBM).
    pub quantizer: Quantizer,
    /// Searchable slots in the NAS macro-architecture.
    pub nas_slots: usize,
    /// NAS hyper-parameters.
    pub nas: NasConfig,
    /// Search strategy (SP-NAS by default; FP/LP-NAS for ablations).
    pub search_mode: SearchMode,
    /// Training-from-scratch hyper-parameters for the derived network.
    pub train: TrainConfig,
    /// AutoMapper hyper-parameters.
    pub mapper: MapperConfig,
    /// Deployment target.
    pub device: Device,
    /// Inference batch size used for hardware evaluation.
    pub hw_batch: usize,
    /// Master seed.
    pub seed: u64,
}

impl PipelineConfig {
    /// A configuration sized for seconds-scale end-to-end runs (tests,
    /// quickstart example).
    pub fn quick() -> Self {
        PipelineConfig {
            bits: BitWidthSet::new(vec![4, 32]).expect("static set"),
            quantizer: Quantizer::Sbm,
            nas_slots: 3,
            nas: NasConfig {
                epochs: 2,
                ..NasConfig::default()
            },
            search_mode: SearchMode::SpNas,
            train: TrainConfig {
                epochs: 4,
                ..TrainConfig::default()
            },
            mapper: MapperConfig {
                max_evals: 200,
                ..MapperConfig::default()
            },
            device: Device::eyeriss_like(),
            hw_batch: 1,
            seed: 0,
        }
    }

    /// The experiment-scale configuration used by the benchmark binaries.
    pub fn experiment(bits: BitWidthSet, device: Device) -> Self {
        PipelineConfig {
            bits,
            quantizer: Quantizer::Sbm,
            nas_slots: 4,
            nas: NasConfig {
                epochs: 5,
                ..NasConfig::default()
            },
            search_mode: SearchMode::SpNas,
            train: TrainConfig {
                epochs: 12,
                ..TrainConfig::default()
            },
            mapper: MapperConfig {
                max_evals: 500,
                ..MapperConfig::default()
            },
            device,
            hw_batch: 1,
            seed: 0,
        }
    }
}

/// One deployable accuracy-efficiency operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Bit-width of this point.
    pub bits: BitWidth,
    /// Test accuracy in `[0, 1]`.
    pub accuracy: f32,
    /// Inference energy (pJ).
    pub energy_pj: f64,
    /// Inference latency (s).
    pub latency_s: f64,
    /// Energy-delay product (pJ·s).
    pub edp: f64,
    /// Throughput (frames per second).
    pub fps: f64,
}

/// The pipeline's final artifact: a trained switchable-precision network's
/// per-bit-width operating points on the target device.
#[derive(Debug, Clone)]
pub struct DeploymentReport {
    arch: String,
    flops: u64,
    points: Vec<OperatingPoint>,
}

impl DeploymentReport {
    /// Creates a report (used by the pipeline and by baseline builders).
    pub fn new(arch: impl Into<String>, flops: u64, points: Vec<OperatingPoint>) -> Self {
        DeploymentReport {
            arch: arch.into(),
            flops,
            points,
        }
    }

    /// Architecture description string.
    pub fn arch(&self) -> &str {
        &self.arch
    }

    /// Single-sample FLOPs of the deployed network.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// Operating points, lowest bit-width first.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// Runtime bit-width selection: the most accurate operating point whose
    /// energy fits `energy_budget_pj`, if any — the instantaneous
    /// accuracy-efficiency trade-off SP-Nets exist for.
    pub fn select(&self, energy_budget_pj: f64) -> Option<&OperatingPoint> {
        self.points
            .iter()
            .filter(|p| p.energy_pj <= energy_budget_pj)
            .max_by(|a, b| {
                a.accuracy
                    .partial_cmp(&b.accuracy)
                    .expect("finite accuracies")
            })
    }

    /// The accuracy-vs-EDP Pareto frontier (Fig. 6's axes): operating
    /// points not dominated by any other point (higher-or-equal accuracy at
    /// lower-or-equal EDP, strictly better in one).
    pub fn pareto_frontier(&self) -> Vec<&OperatingPoint> {
        self.points
            .iter()
            .filter(|p| {
                !self.points.iter().any(|q| {
                    q.accuracy >= p.accuracy
                        && q.edp <= p.edp
                        && (q.accuracy > p.accuracy || q.edp < p.edp)
                })
            })
            .collect()
    }

    /// Whether this report dominates `other` at every shared bit-width
    /// (accuracy ≥ and EDP ≤, strictly better in at least one metric
    /// somewhere) — the Fig. 6 comparison criterion.
    pub fn dominates(&self, other: &DeploymentReport) -> bool {
        let mut strictly_better = false;
        for p in &self.points {
            let Some(q) = other.points.iter().find(|q| q.bits == p.bits) else {
                continue;
            };
            if p.accuracy < q.accuracy || p.edp > q.edp {
                return false;
            }
            if p.accuracy > q.accuracy || p.edp < q.edp {
                strictly_better = true;
            }
        }
        strictly_better
    }

    /// Renders the report as CSV (`bits,accuracy,energy_pj,latency_s,edp,fps`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bits,accuracy,energy_pj,latency_s,edp,fps\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                p.bits.get(),
                p.accuracy,
                p.energy_pj,
                p.latency_s,
                p.edp,
                p.fps
            ));
        }
        out
    }
}

/// The end-to-end InstantNet pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline {
    cfg: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline.
    pub fn new(cfg: PipelineConfig) -> Self {
        Pipeline { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Runs generation (SP-NAS), training (CDT) and deployment
    /// (AutoMapper) and returns the deployment report.
    pub fn run(&self, ds: &Dataset) -> DeploymentReport {
        let (net, arch_desc) = self.generate_and_train(ds);
        self.deploy(ds, &net, &arch_desc)
    }

    /// Stage 1+2: search an architecture and CDT-train it from scratch.
    pub fn generate_and_train(&self, ds: &Dataset) -> (Network, String) {
        let cfg = &self.cfg;
        let space = SearchSpace::cifar_tiny(cfg.nas_slots);
        let outcome = search(&space, ds, &cfg.bits, cfg.search_mode, cfg.nas);
        let net = outcome
            .arch
            .build_network(ds.num_classes(), cfg.bits.len(), cfg.seed);
        let ladder = PrecisionLadder::uniform(&cfg.bits);
        Trainer::new(cfg.train).train(&net, ds, &ladder, Strategy::cdt());
        (net, outcome.arch.describe())
    }

    /// Stage 3: per-bit-width accuracy evaluation and dataflow search.
    pub fn deploy(&self, ds: &Dataset, net: &Network, arch_desc: &str) -> DeploymentReport {
        let cfg = &self.cfg;
        let ladder = PrecisionLadder::uniform(&cfg.bits);
        let workloads = workloads_from_specs(&net.specs(), cfg.hw_batch);
        let points = cfg
            .bits
            .widths()
            .iter()
            .enumerate()
            .map(|(i, &bits)| {
                let accuracy = evaluate(
                    net,
                    ds.test(),
                    &ladder,
                    i,
                    cfg.quantizer,
                    cfg.train.batch_size,
                );
                let hw_bits = bits.get().min(16); // full precision deploys as 16-bit fixed point
                let (_, cost) = map_network(&workloads, &cfg.device, hw_bits, &cfg.mapper);
                OperatingPoint {
                    bits,
                    accuracy,
                    energy_pj: cost.energy_pj,
                    latency_s: cost.latency_s,
                    edp: cost.edp(),
                    fps: cost.fps,
                }
            })
            .collect();
        DeploymentReport::new(arch_desc, net.flops(), points)
    }
}

/// Builds the Fig. 6 "SOTA IoT system" baseline: a manually designed
/// SP-Net (a fixed MobileNetV2-style stack, i.e. no architecture search)
/// trained with SP's vanilla distillation, deployed with the expert
/// dataflow for the device (Eyeriss row-stationary on ASIC, CHaiDNN on
/// FPGA).
pub fn baseline_system(ds: &Dataset, cfg: &PipelineConfig) -> DeploymentReport {
    use instantnet_hwmodel::{baselines, evaluate_network, Platform, Workload};
    let net = instantnet_nn::models::mobilenet_v2(
        0.15,
        3,
        ds.num_classes(),
        (ds.hw(), ds.hw()),
        cfg.bits.len(),
        cfg.seed,
    );
    let ladder = PrecisionLadder::uniform(&cfg.bits);
    Trainer::new(cfg.train).train(&net, ds, &ladder, Strategy::sp_net());
    let workloads = workloads_from_specs(&net.specs(), cfg.hw_batch);
    let points = cfg
        .bits
        .widths()
        .iter()
        .enumerate()
        .map(|(i, &bits)| {
            let accuracy = evaluate(
                &net,
                ds.test(),
                &ladder,
                i,
                cfg.quantizer,
                cfg.train.batch_size,
            );
            let hw_bits = bits.get().min(16);
            let mappings: Vec<_> = workloads
                .iter()
                .map(|w: &Workload| match cfg.device.platform {
                    Platform::Asic => {
                        baselines::eyeriss_row_stationary(&w.dims, &cfg.device, hw_bits)
                    }
                    Platform::Fpga => baselines::chaidnn_mapping(&w.dims, &cfg.device, hw_bits),
                })
                .collect();
            let cost = evaluate_network(&workloads, &mappings, &cfg.device, hw_bits)
                .expect("expert baselines are legalized");
            OperatingPoint {
                bits,
                accuracy,
                energy_pj: cost.energy_pj,
                latency_s: cost.latency_s,
                edp: cost.edp(),
                fps: cost.fps,
            }
        })
        .collect();
    DeploymentReport::new("manual-mobilenetv2", net.flops(), points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantnet_data::DatasetSpec;

    #[test]
    fn quick_pipeline_produces_one_point_per_bitwidth() {
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let report = Pipeline::new(PipelineConfig::quick()).run(&ds);
        assert_eq!(report.points().len(), 2);
        assert!(!report.arch().is_empty());
        assert!(report.flops() > 0);
        for p in report.points() {
            assert!(p.accuracy >= 0.0 && p.accuracy <= 1.0);
            assert!(p.energy_pj > 0.0);
            assert!(p.edp > 0.0);
            assert!(p.fps > 0.0);
        }
    }

    #[test]
    fn lower_bits_have_lower_energy() {
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let report = Pipeline::new(PipelineConfig::quick()).run(&ds);
        let p = report.points();
        assert!(p[0].bits < p[1].bits);
        assert!(
            p[0].energy_pj < p[1].energy_pj,
            "4-bit energy {} vs 32-bit {}",
            p[0].energy_pj,
            p[1].energy_pj
        );
    }

    fn mk(bits: u8, acc: f32, e: f64) -> OperatingPoint {
        OperatingPoint {
            bits: BitWidth::new(bits),
            accuracy: acc,
            energy_pj: e,
            latency_s: 1e-3,
            edp: e * 1e-3,
            fps: 1000.0,
        }
    }

    #[test]
    fn pareto_frontier_drops_dominated_points() {
        // 8-bit here is dominated by 4-bit (lower accuracy, higher EDP).
        let report = DeploymentReport::new(
            "x",
            1,
            vec![mk(4, 0.7, 10.0), mk(8, 0.65, 40.0), mk(32, 0.8, 100.0)],
        );
        let frontier = report.pareto_frontier();
        let bits: Vec<u8> = frontier.iter().map(|p| p.bits.get()).collect();
        assert_eq!(bits, vec![4, 32]);
    }

    #[test]
    fn dominates_requires_weak_better_everywhere() {
        let ours = DeploymentReport::new("a", 1, vec![mk(4, 0.7, 10.0), mk(8, 0.8, 20.0)]);
        let worse = DeploymentReport::new("b", 1, vec![mk(4, 0.65, 12.0), mk(8, 0.8, 20.0)]);
        let mixed = DeploymentReport::new("c", 1, vec![mk(4, 0.75, 5.0), mk(8, 0.7, 30.0)]);
        assert!(ours.dominates(&worse));
        assert!(!ours.dominates(&mixed));
        assert!(!ours.dominates(&ours), "no strict improvement over itself");
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let report = DeploymentReport::new("x", 1, vec![mk(4, 0.7, 10.0)]);
        let csv = report.to_csv();
        assert!(csv.starts_with("bits,accuracy"));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("4,0.7,10"));
    }

    #[test]
    fn select_respects_energy_budget() {
        let points = vec![
            OperatingPoint {
                bits: BitWidth::new(4),
                accuracy: 0.6,
                energy_pj: 10.0,
                latency_s: 1e-3,
                edp: 0.01,
                fps: 1000.0,
            },
            OperatingPoint {
                bits: BitWidth::new(8),
                accuracy: 0.8,
                energy_pj: 40.0,
                latency_s: 2e-3,
                edp: 0.08,
                fps: 500.0,
            },
        ];
        let report = DeploymentReport::new("x", 1, points);
        assert_eq!(report.select(50.0).unwrap().bits.get(), 8);
        assert_eq!(report.select(15.0).unwrap().bits.get(), 4);
        assert!(report.select(1.0).is_none());
    }
}
