//! Seeded synthetic image-classification datasets.
//!
//! The paper evaluates on CIFAR-10/100, TinyImageNet and ImageNet — none of
//! which are available offline, and none of which a from-scratch CPU
//! training stack could process at full scale anyway. Per the reproduction's
//! substitution rule (see `DESIGN.md`), this crate generates *structured*
//! synthetic classification problems that exercise the same code paths:
//!
//! * each class has a smooth random template (mixture of 2-d cosine waves),
//!   so convolutional features are genuinely useful;
//! * samples perturb the template with amplitude jitter, random spatial
//!   shift and pixel noise, so networks generalize rather than memorize;
//! * difficulty (class count, resolution, noise) is chosen per preset so
//!   quantization to low bit-widths measurably hurts accuracy — the regime
//!   the paper's CDT targets.
//!
//! Everything is deterministic under a seed.
//!
//! # Example
//!
//! ```
//! use instantnet_data::{DatasetSpec, Dataset};
//! let ds = Dataset::generate(&DatasetSpec::cifar10_like());
//! assert_eq!(ds.num_classes(), 10);
//! let (x, y) = ds.batch(&[0, 1, 2]);
//! assert_eq!(x.dims()[0], 3);
//! assert_eq!(y.len(), 3);
//! ```

use instantnet_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generation parameters for a synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Preset name (diagnostics / experiment logs).
    pub name: &'static str,
    /// Number of classes.
    pub num_classes: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Square image resolution.
    pub hw: usize,
    /// Pixel noise standard deviation (controls difficulty).
    pub noise: f32,
    /// Maximum random spatial shift in pixels.
    pub max_shift: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// CIFAR-10 stand-in: 10 classes at 8x8.
    pub fn cifar10_like() -> Self {
        DatasetSpec {
            name: "cifar10-like",
            num_classes: 10,
            train_per_class: 64,
            test_per_class: 24,
            hw: 8,
            noise: 0.45,
            max_shift: 1,
            seed: 1001,
        }
    }

    /// CIFAR-100 stand-in: more classes, same resolution, harder.
    pub fn cifar100_like() -> Self {
        DatasetSpec {
            name: "cifar100-like",
            num_classes: 20,
            train_per_class: 40,
            test_per_class: 16,
            hw: 8,
            noise: 0.55,
            max_shift: 1,
            seed: 1002,
        }
    }

    /// TinyImageNet stand-in: higher resolution, more classes.
    pub fn tiny_imagenet_like() -> Self {
        DatasetSpec {
            name: "tinyimagenet-like",
            num_classes: 20,
            train_per_class: 40,
            test_per_class: 16,
            hw: 12,
            noise: 0.6,
            max_shift: 2,
            seed: 1003,
        }
    }

    /// ImageNet stand-in used by the Fig. 7 end-to-end experiment.
    pub fn imagenet_like() -> Self {
        DatasetSpec {
            name: "imagenet-like",
            num_classes: 20,
            train_per_class: 48,
            test_per_class: 16,
            hw: 12,
            noise: 0.5,
            max_shift: 2,
            seed: 1004,
        }
    }

    /// A deliberately tiny preset for unit tests.
    pub fn tiny() -> Self {
        DatasetSpec {
            name: "tiny",
            num_classes: 4,
            train_per_class: 12,
            test_per_class: 6,
            hw: 6,
            noise: 0.3,
            max_shift: 1,
            seed: 7,
        }
    }

    /// Returns a copy with a different seed (for held-out replications).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One split (train or test) of generated images.
#[derive(Debug, Clone)]
pub struct Split {
    images: Vec<f32>, // [n, 3, hw, hw] flattened
    labels: Vec<usize>,
    hw: usize,
}

impl Split {
    /// Number of samples.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Label of sample `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Gathers samples `indices` into an `[n, 3, hw, hw]` batch tensor and
    /// label vector.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let px = 3 * self.hw * self.hw;
        let mut data = Vec::with_capacity(indices.len() * px);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "sample index {i} out of range");
            data.extend_from_slice(&self.images[i * px..(i + 1) * px]);
            labels.push(self.labels[i]);
        }
        (
            Tensor::from_vec(vec![indices.len(), 3, self.hw, self.hw], data),
            labels,
        )
    }
}

/// A generated dataset with train and test splits.
#[derive(Debug, Clone)]
pub struct Dataset {
    spec: DatasetSpec,
    train: Split,
    test: Split,
}

impl Dataset {
    /// Generates the dataset described by `spec` (deterministic in
    /// `spec.seed`).
    pub fn generate(spec: &DatasetSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let templates = class_templates(&mut rng, spec);
        let train = generate_split(&mut rng, spec, &templates, spec.train_per_class);
        let test = generate_split(&mut rng, spec, &templates, spec.test_per_class);
        Dataset {
            spec: spec.clone(),
            train,
            test,
        }
    }

    /// The generation parameters.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.spec.num_classes
    }

    /// Square image resolution.
    pub fn hw(&self) -> usize {
        self.spec.hw
    }

    /// Training split.
    pub fn train(&self) -> &Split {
        &self.train
    }

    /// Test split.
    pub fn test(&self) -> &Split {
        &self.test
    }

    /// Convenience: batches from the training split.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        self.train.batch(indices)
    }

    /// Splits the training indices into two disjoint halves — the paper
    /// trains supernet weights on one half and architecture parameters on
    /// the other.
    pub fn half_split(&self, seed: u64) -> (Vec<usize>, Vec<usize>) {
        let mut idx: Vec<usize> = (0..self.train.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let mid = idx.len() / 2;
        let b = idx.split_off(mid);
        (idx, b)
    }
}

/// Train-time augmentation parameters: random horizontal flip and random
/// toroidal shift, the standard light CIFAR recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Augment {
    /// Flip each sample left-right with probability 1/2.
    pub flip: bool,
    /// Maximum random shift in pixels (toroidal, both axes).
    pub max_shift: usize,
}

impl Augment {
    /// The standard recipe: flip + shift by 1 pixel.
    pub fn standard() -> Self {
        Augment {
            flip: true,
            max_shift: 1,
        }
    }
}

impl Split {
    /// Like [`Split::batch`], but applies per-sample random augmentation
    /// drawn from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn batch_augmented(
        &self,
        indices: &[usize],
        aug: Augment,
        rng: &mut StdRng,
    ) -> (Tensor, Vec<usize>) {
        let (clean, labels) = self.batch(indices);
        let hw = self.hw;
        let mut data = clean.data().to_vec();
        for (bi, _) in indices.iter().enumerate() {
            let flip = aug.flip && rng.gen_bool(0.5);
            let dx: isize = if aug.max_shift > 0 {
                rng.gen_range(-(aug.max_shift as isize)..=aug.max_shift as isize)
            } else {
                0
            };
            let dy: isize = if aug.max_shift > 0 {
                rng.gen_range(-(aug.max_shift as isize)..=aug.max_shift as isize)
            } else {
                0
            };
            if !flip && dx == 0 && dy == 0 {
                continue;
            }
            let base = bi * 3 * hw * hw;
            let src: Vec<f32> = data[base..base + 3 * hw * hw].to_vec();
            for c in 0..3 {
                for y in 0..hw {
                    for x in 0..hw {
                        let sx0 = if flip { hw - 1 - x } else { x };
                        let sy = (y as isize + dy).rem_euclid(hw as isize) as usize;
                        let sx = (sx0 as isize + dx).rem_euclid(hw as isize) as usize;
                        data[base + (c * hw + y) * hw + x] = src[(c * hw + sy) * hw + sx];
                    }
                }
            }
        }
        (
            Tensor::from_vec(vec![indices.len(), 3, hw, hw], data),
            labels,
        )
    }
}

/// Iterates seeded, shuffled mini-batches over a list of sample indices.
#[derive(Debug)]
pub struct BatchIter {
    indices: Vec<usize>,
    batch: usize,
    cursor: usize,
}

impl BatchIter {
    /// Shuffles `indices` with `seed` and yields chunks of `batch`
    /// (the final short chunk is kept).
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn new(mut indices: Vec<usize>, batch: usize, seed: u64) -> Self {
        assert!(batch > 0, "batch size must be positive");
        indices.shuffle(&mut StdRng::seed_from_u64(seed));
        BatchIter {
            indices,
            batch,
            cursor: 0,
        }
    }
}

impl Iterator for BatchIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.cursor >= self.indices.len() {
            return None;
        }
        let end = (self.cursor + self.batch).min(self.indices.len());
        let chunk = self.indices[self.cursor..end].to_vec();
        self.cursor = end;
        Some(chunk)
    }
}

fn class_templates(rng: &mut StdRng, spec: &DatasetSpec) -> Vec<Vec<f32>> {
    let hw = spec.hw;
    (0..spec.num_classes)
        .map(|_| {
            let mut tpl = vec![0.0f32; 3 * hw * hw];
            // Each class: 3 random cosine components per channel.
            for c in 0..3 {
                for _ in 0..3 {
                    let fx: f32 = rng.gen_range(0.5..2.5);
                    let fy: f32 = rng.gen_range(0.5..2.5);
                    let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
                    let amp: f32 = rng.gen_range(0.4..1.0);
                    for y in 0..hw {
                        for x in 0..hw {
                            let arg = std::f32::consts::TAU
                                * (fx * x as f32 / hw as f32 + fy * y as f32 / hw as f32)
                                + phase;
                            tpl[(c * hw + y) * hw + x] += amp * arg.cos();
                        }
                    }
                }
            }
            tpl
        })
        .collect()
}

fn generate_split(
    rng: &mut StdRng,
    spec: &DatasetSpec,
    templates: &[Vec<f32>],
    per_class: usize,
) -> Split {
    let hw = spec.hw;
    let px = 3 * hw * hw;
    let n = spec.num_classes * per_class;
    let mut images = Vec::with_capacity(n * px);
    let mut labels = Vec::with_capacity(n);
    for (class, tpl) in templates.iter().enumerate() {
        for _ in 0..per_class {
            let amp: f32 = rng.gen_range(0.8..1.2);
            let dx: isize = rng.gen_range(-(spec.max_shift as isize)..=spec.max_shift as isize);
            let dy: isize = rng.gen_range(-(spec.max_shift as isize)..=spec.max_shift as isize);
            for c in 0..3 {
                for y in 0..hw {
                    for x in 0..hw {
                        // Toroidal shift keeps energy constant.
                        let sy = (y as isize + dy).rem_euclid(hw as isize) as usize;
                        let sx = (x as isize + dx).rem_euclid(hw as isize) as usize;
                        let noise: f32 = {
                            // Box-Muller on demand.
                            let u1: f32 = rng.gen_range(1e-7..1.0f32);
                            let u2: f32 = rng.gen_range(0.0..1.0f32);
                            (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
                        };
                        images.push(amp * tpl[(c * hw + sy) * hw + sx] + spec.noise * noise);
                    }
                }
            }
            labels.push(class);
        }
    }
    Split { images, labels, hw }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(&DatasetSpec::tiny());
        let b = Dataset::generate(&DatasetSpec::tiny());
        let (xa, ya) = a.train().batch(&[0, 5]);
        let (xb, yb) = b.train().batch(&[0, 5]);
        assert_eq!(xa, xb);
        assert_eq!(ya, yb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::generate(&DatasetSpec::tiny());
        let b = Dataset::generate(&DatasetSpec::tiny().with_seed(99));
        let (xa, _) = a.train().batch(&[0]);
        let (xb, _) = b.train().batch(&[0]);
        assert_ne!(xa, xb);
    }

    #[test]
    fn split_sizes_match_spec() {
        let spec = DatasetSpec::cifar10_like();
        let ds = Dataset::generate(&spec);
        assert_eq!(ds.train().len(), spec.num_classes * spec.train_per_class);
        assert_eq!(ds.test().len(), spec.num_classes * spec.test_per_class);
        assert!(ds.train().labels().iter().all(|&l| l < spec.num_classes));
    }

    #[test]
    fn batch_shapes_are_nchw() {
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let (x, y) = ds.batch(&[0, 1, 2, 3]);
        assert_eq!(x.dims(), &[4, 3, 6, 6]);
        assert_eq!(y.len(), 4);
    }

    #[test]
    fn half_split_is_disjoint_and_covers() {
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let (a, b) = ds.half_split(3);
        let mut all: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..ds.train().len()).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn batch_iter_covers_every_index_once() {
        let it = BatchIter::new((0..10).collect(), 3, 0);
        let mut seen: Vec<usize> = it.flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn batch_iter_chunk_sizes() {
        let chunks: Vec<Vec<usize>> = BatchIter::new((0..10).collect(), 4, 0).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 4);
        assert_eq!(chunks[2].len(), 2);
    }

    #[test]
    fn augmentation_preserves_shape_labels_and_energy() {
        use rand::SeedableRng;
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let (clean, labels) = ds.train().batch(&[0, 1, 2]);
        let (aug, labels2) = ds
            .train()
            .batch_augmented(&[0, 1, 2], Augment::standard(), &mut rng);
        assert_eq!(aug.dims(), clean.dims());
        assert_eq!(labels, labels2);
        // Flip + toroidal shift are permutations: per-sample energy is
        // conserved exactly.
        let px = clean.len() / 3;
        for b in 0..3 {
            let e1: f32 = clean.data()[b * px..(b + 1) * px]
                .iter()
                .map(|v| v * v)
                .sum();
            let e2: f32 = aug.data()[b * px..(b + 1) * px].iter().map(|v| v * v).sum();
            assert!((e1 - e2).abs() < 1e-3, "{e1} vs {e2}");
        }
    }

    #[test]
    fn augmentation_is_deterministic_under_seed() {
        use rand::SeedableRng;
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let a = ds.train().batch_augmented(
            &[0, 1],
            Augment::standard(),
            &mut rand::rngs::StdRng::seed_from_u64(9),
        );
        let b = ds.train().batch_augmented(
            &[0, 1],
            Augment::standard(),
            &mut rand::rngs::StdRng::seed_from_u64(9),
        );
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn no_op_augment_returns_clean_batch() {
        use rand::SeedableRng;
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let (clean, _) = ds.train().batch(&[0, 1]);
        let (aug, _) = ds.train().batch_augmented(
            &[0, 1],
            Augment {
                flip: false,
                max_shift: 0,
            },
            &mut rand::rngs::StdRng::seed_from_u64(1),
        );
        assert_eq!(clean, aug);
    }

    #[test]
    fn classes_are_separable_by_template_distance() {
        // Nearest-template classification on clean averages should beat
        // chance by a wide margin — sanity that the task is learnable.
        let spec = DatasetSpec::tiny();
        let ds = Dataset::generate(&spec);
        let px = 3 * spec.hw * spec.hw;
        // Build per-class means from train.
        let mut means = vec![vec![0.0f32; px]; spec.num_classes];
        let mut counts = vec![0usize; spec.num_classes];
        for i in 0..ds.train().len() {
            let (x, y) = ds.train().batch(&[i]);
            for (j, &v) in x.data().iter().enumerate() {
                means[y[0]][j] += v;
            }
            counts[y[0]] += 1;
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let mut correct = 0;
        for i in 0..ds.test().len() {
            let (x, y) = ds.test().batch(&[i]);
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (k, m) in means.iter().enumerate() {
                let d: f32 = x
                    .data()
                    .iter()
                    .zip(m)
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum();
                if d < best_d {
                    best_d = d;
                    best = k;
                }
            }
            if best == y[0] {
                correct += 1;
            }
        }
        let acc = correct as f32 / ds.test().len() as f32;
        assert!(acc > 0.5, "nearest-mean accuracy only {acc}");
    }
}
