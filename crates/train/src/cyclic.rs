//! Cyclic Precision Training (CPT) — the extension the paper cites as its
//! companion work (Fu et al., ICLR'21, ref. \[8\]).
//!
//! Instead of training every bit-width each batch (CDT's cost), CPT cycles
//! the active precision along the ladder following a cosine schedule,
//! visiting low precisions early-and-often (a regularizer) and high
//! precisions periodically. It costs one forward/backward per batch —
//! `N`x cheaper than CDT — at the price of weaker low-bit accuracy, which
//! makes it a useful ablation point between AdaBits and CDT.

use crate::optim::{CosineLr, Optimizer, Sgd};
use crate::strategy::PrecisionLadder;
use crate::trainer::{evaluate, TrainConfig, TrainReport};
use instantnet_data::{BatchIter, Dataset};
use instantnet_nn::models::Network;
use instantnet_nn::Module;
use instantnet_tensor::{ops, Var};

/// How the active rung moves through the ladder during cyclic training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleSchedule {
    /// Low → high → low triangle wave with the given period (in batches).
    Triangle {
        /// Batches per full cycle.
        period: usize,
    },
    /// Cosine-shaped cycle (CPT's schedule): spends more steps near the
    /// extremes than the triangle.
    Cosine {
        /// Batches per full cycle.
        period: usize,
    },
}

impl CycleSchedule {
    /// The rung index active at batch `t` for a ladder of `n` rungs.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn rung_at(&self, t: usize, n: usize) -> usize {
        assert!(n > 0, "ladder must be non-empty");
        if n == 1 {
            return 0;
        }
        match *self {
            CycleSchedule::Triangle { period } => {
                let period = period.max(2);
                let phase = t % period;
                let half = period / 2;
                let frac = if phase < half {
                    phase as f32 / half as f32
                } else {
                    1.0 - (phase - half) as f32 / (period - half) as f32
                };
                ((frac * (n - 1) as f32).round() as usize).min(n - 1)
            }
            CycleSchedule::Cosine { period } => {
                let period = period.max(2);
                let phase = (t % period) as f32 / period as f32;
                let frac = 0.5 * (1.0 - (std::f32::consts::TAU * phase).cos());
                ((frac * (n - 1) as f32).round() as usize).min(n - 1)
            }
        }
    }
}

/// Trains `net` with cyclic precision and reports per-rung test accuracy.
///
/// Each batch runs a single forward/backward at the schedule's current
/// rung (that rung's BN branch is the one updated), so all rungs'
/// statistics get visited over a cycle.
pub fn train_cyclic(
    net: &Network,
    ds: &Dataset,
    ladder: &PrecisionLadder,
    schedule: CycleSchedule,
    cfg: TrainConfig,
) -> TrainReport {
    let params = net.params();
    let mut opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
    let lr_schedule = CosineLr::new(cfg.lr, cfg.epochs.max(1));
    let mut loss_curve = Vec::with_capacity(cfg.epochs);
    let all: Vec<usize> = (0..ds.train().len()).collect();
    let mut t = 0usize;
    for epoch in 0..cfg.epochs {
        opt.set_lr(lr_schedule.at(epoch));
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        for idx in BatchIter::new(all.clone(), cfg.batch_size, cfg.seed + epoch as u64) {
            let (x, labels) = ds.train().batch(&idx);
            let xv = Var::constant(x);
            let rung = schedule.rung_at(t, ladder.len());
            let mut ctx = ladder.train_ctx(rung, cfg.quantizer);
            let logits = net.forward(&xv, &mut ctx);
            let loss = ops::softmax_cross_entropy(&logits, &labels);
            epoch_loss += loss.item();
            loss.backward();
            opt.step(&params);
            t += 1;
            batches += 1;
        }
        loss_curve.push(epoch_loss / batches.max(1) as f32);
    }
    let accuracy_per_rung = (0..ladder.len())
        .map(|i| evaluate(net, ds.test(), ladder, i, cfg.quantizer, cfg.batch_size))
        .collect();
    TrainReport {
        accuracy_per_rung,
        loss_curve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantnet_data::DatasetSpec;
    use instantnet_nn::models;
    use instantnet_quant::BitWidthSet;

    #[test]
    fn triangle_schedule_sweeps_both_directions() {
        let s = CycleSchedule::Triangle { period: 8 };
        let rungs: Vec<usize> = (0..8).map(|t| s.rung_at(t, 5)).collect();
        assert_eq!(*rungs.first().unwrap(), 0);
        assert!(rungs.contains(&4), "must reach the top rung: {rungs:?}");
        // Comes back down by the end of the cycle.
        assert!(rungs[7] < 3, "{rungs:?}");
    }

    #[test]
    fn cosine_schedule_visits_all_rungs() {
        let s = CycleSchedule::Cosine { period: 16 };
        let mut seen: Vec<usize> = (0..16).map(|t| s.rung_at(t, 4)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_rung_ladder_always_rung_zero() {
        let s = CycleSchedule::Triangle { period: 4 };
        assert!((0..20).all(|t| s.rung_at(t, 1) == 0));
    }

    #[test]
    fn schedule_is_periodic() {
        for s in [
            CycleSchedule::Triangle { period: 6 },
            CycleSchedule::Cosine { period: 6 },
        ] {
            for t in 0..6 {
                assert_eq!(s.rung_at(t, 5), s.rung_at(t + 6, 5));
            }
        }
    }

    #[test]
    fn cyclic_training_learns_above_chance() {
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let bits = BitWidthSet::new(vec![4, 32]).unwrap();
        let ladder = PrecisionLadder::uniform(&bits);
        let net = models::small_cnn(6, ds.num_classes(), (ds.hw(), ds.hw()), bits.len(), 21);
        let report = train_cyclic(
            &net,
            &ds,
            &ladder,
            CycleSchedule::Cosine { period: 8 },
            TrainConfig {
                epochs: 8,
                lr: 0.05,
                ..TrainConfig::default()
            },
        );
        let chance = 1.0 / ds.num_classes() as f32;
        for acc in &report.accuracy_per_rung {
            assert!(*acc > chance, "accuracy {acc} vs chance {chance}");
        }
    }
}
