//! Training/evaluation loops and the independent-per-bit baseline.

use crate::optim::{CosineLr, Optimizer, Sgd};
use crate::strategy::{batch_loss, PrecisionLadder, Strategy};
use instantnet_data::{Augment, BatchIter, Dataset, Split};
use instantnet_nn::{models::Network, Module};
use instantnet_parallel as parallel;
use instantnet_quant::Quantizer;
use instantnet_tensor::Var;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters for switchable-precision training.
///
/// Defaults mirror the paper's CIFAR settings (SGD, momentum 0.9, initial
/// LR 0.025 with cosine decay) at reproduction scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate (cosine-decayed to zero).
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay on conv/linear weights.
    pub weight_decay: f32,
    /// Quantization rule.
    pub quantizer: Quantizer,
    /// Optional train-time augmentation (flip/shift).
    pub augment: Option<Augment>,
    /// Progressive-precision warm-up: for this many initial epochs the
    /// network trains only at the highest rung (full precision), before the
    /// switchable objective takes over — stabilizes very deep networks
    /// whose low-bit rungs are too noisy to optimize from step one
    /// (AdaBits-style progressive training).
    pub warmup_epochs: usize,
    /// Shuffling seed.
    pub seed: u64,
    /// Thread budget for the tensor kernels under this trainer (batch-loop
    /// and row-chunk parallelism in conv/matmul). `0` inherits the process
    /// default (`INSTANTNET_THREADS` or the machine's core count). The
    /// autograd graph itself stays single-threaded: the per-rung forward
    /// passes of cascade distillation run in a fixed cascade order, and all
    /// parallelism lives below them in the kernels, so results are
    /// bit-identical for any setting.
    pub threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            batch_size: 16,
            lr: 0.025,
            momentum: 0.9,
            weight_decay: 1e-4,
            quantizer: Quantizer::Sbm,
            augment: None,
            warmup_epochs: 0,
            seed: 0,
            threads: 0,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Test accuracy at each precision rung (weakest first).
    pub accuracy_per_rung: Vec<f32>,
    /// Mean training loss per epoch.
    pub loss_curve: Vec<f32>,
}

/// Runs switchable-precision training with a chosen [`Strategy`].
#[derive(Debug, Clone)]
pub struct Trainer {
    cfg: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(cfg: TrainConfig) -> Self {
        Trainer { cfg }
    }

    /// Trains `net` on `ds` over the precision `ladder` and reports
    /// per-rung test accuracy.
    pub fn train(
        &self,
        net: &Network,
        ds: &Dataset,
        ladder: &PrecisionLadder,
        strategy: Strategy,
    ) -> TrainReport {
        // Scope the configured thread budget over the whole run: every
        // kernel under the CDT bit-width cascade (conv batch loops, matmul
        // row chunks) picks it up from here.
        parallel::with_threads(self.cfg.threads, || {
            self.train_inner(net, ds, ladder, strategy)
        })
    }

    fn train_inner(
        &self,
        net: &Network,
        ds: &Dataset,
        ladder: &PrecisionLadder,
        strategy: Strategy,
    ) -> TrainReport {
        let params = net.params();
        let mut opt = Sgd::new(self.cfg.lr, self.cfg.momentum, self.cfg.weight_decay);
        let schedule = CosineLr::new(self.cfg.lr, self.cfg.epochs.max(1));
        let mut loss_curve = Vec::with_capacity(self.cfg.epochs);
        let all: Vec<usize> = (0..ds.train().len()).collect();
        let mut aug_rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(0xA06));
        for epoch in 0..self.cfg.epochs {
            opt.set_lr(schedule.at(epoch));
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for idx in BatchIter::new(
                all.clone(),
                self.cfg.batch_size,
                self.cfg.seed + epoch as u64,
            ) {
                let (x, labels) = match self.cfg.augment {
                    Some(aug) => ds.train().batch_augmented(&idx, aug, &mut aug_rng),
                    None => ds.train().batch(&idx),
                };
                let xv = Var::constant(x);
                let loss = if epoch < self.cfg.warmup_epochs {
                    // Highest rung only: plain CE at (near-)full precision.
                    let mut ctx = ladder.train_ctx(ladder.len() - 1, self.cfg.quantizer);
                    let logits = net.forward(&xv, &mut ctx);
                    instantnet_tensor::ops::softmax_cross_entropy(&logits, &labels)
                } else {
                    batch_loss(net, &xv, &labels, ladder, self.cfg.quantizer, strategy)
                };
                epoch_loss += loss.item();
                loss.backward();
                opt.step(&params);
                batches += 1;
            }
            loss_curve.push(epoch_loss / batches.max(1) as f32);
        }
        let accuracy_per_rung = (0..ladder.len())
            .map(|i| {
                evaluate(
                    net,
                    ds.test(),
                    ladder,
                    i,
                    self.cfg.quantizer,
                    self.cfg.batch_size,
                )
            })
            .collect();
        TrainReport {
            accuracy_per_rung,
            loss_curve,
        }
    }
}

/// Test accuracy (fraction in `[0,1]`) of `net` at rung `rung`, using
/// inference-mode BN statistics.
pub fn evaluate(
    net: &dyn Module,
    split: &Split,
    ladder: &PrecisionLadder,
    rung: usize,
    quantizer: Quantizer,
    batch_size: usize,
) -> f32 {
    let mut correct = 0usize;
    let all: Vec<usize> = (0..split.len()).collect();
    for chunk in all.chunks(batch_size.max(1)) {
        let (x, labels) = split.batch(chunk);
        let xv = Var::constant(x);
        let mut ctx = ladder.eval_ctx(rung, quantizer);
        let logits = net.forward(&xv, &mut ctx).value();
        for (pred, &label) in logits.argmax_rows().iter().zip(&labels) {
            if *pred == label {
                correct += 1;
            }
        }
    }
    correct as f32 / split.len() as f32
}

/// Softmax class distribution of one sample at the given rung — the Fig. 2
/// prediction-distribution visualization.
pub fn prediction_distribution(
    net: &dyn Module,
    split: &Split,
    sample: usize,
    ladder: &PrecisionLadder,
    rung: usize,
    quantizer: Quantizer,
) -> Vec<f32> {
    let (x, _) = split.batch(&[sample]);
    let xv = Var::constant(x);
    let mut ctx = ladder.eval_ctx(rung, quantizer);
    let logits = net.forward(&xv, &mut ctx).value();
    logits.softmax_rows().data().to_vec()
}

/// The SBM baseline of Tables I–III: trains an *independent* model per
/// rung (no weight sharing, no distillation) and reports each one's
/// accuracy at its own precision.
///
/// `build` constructs a fresh single-branch network (`n_bits = 1`) for each
/// rung index.
pub fn train_independent(
    build: impl Fn(usize) -> Network,
    ds: &Dataset,
    ladder: &PrecisionLadder,
    cfg: TrainConfig,
) -> Vec<f32> {
    (0..ladder.len())
        .map(|i| {
            let net = build(i);
            let single = PrecisionLadder::new(vec![ladder.at(i)]);
            let report = Trainer::new(cfg).train(&net, ds, &single, Strategy::AdaBits);
            report.accuracy_per_rung[0]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantnet_data::DatasetSpec;
    use instantnet_nn::models;
    use instantnet_quant::BitWidthSet;

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 6,
            batch_size: 12,
            lr: 0.05,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn cdt_training_beats_chance_on_tiny_dataset() {
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let bits = BitWidthSet::new(vec![4, 32]).unwrap();
        let net = models::small_cnn(6, ds.num_classes(), (ds.hw(), ds.hw()), bits.len(), 11);
        let ladder = PrecisionLadder::uniform(&bits);
        let report = Trainer::new(quick_cfg()).train(&net, &ds, &ladder, Strategy::cdt());
        let chance = 1.0 / ds.num_classes() as f32;
        for (i, acc) in report.accuracy_per_rung.iter().enumerate() {
            assert!(
                *acc > chance + 0.15,
                "rung {i} accuracy {acc} not above chance {chance}"
            );
        }
    }

    #[test]
    fn loss_curve_decreases_overall() {
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let bits = BitWidthSet::new(vec![8]).unwrap();
        let net = models::small_cnn(4, ds.num_classes(), (ds.hw(), ds.hw()), 1, 2);
        let ladder = PrecisionLadder::uniform(&bits);
        let report = Trainer::new(quick_cfg()).train(&net, &ds, &ladder, Strategy::AdaBits);
        let first = report.loss_curve.first().copied().unwrap();
        let last = report.loss_curve.last().copied().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn evaluate_is_deterministic() {
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let bits = BitWidthSet::new(vec![8]).unwrap();
        let net = models::small_cnn(4, ds.num_classes(), (ds.hw(), ds.hw()), 1, 3);
        let ladder = PrecisionLadder::uniform(&bits);
        // Seed BN stats with one training pass.
        Trainer::new(TrainConfig {
            epochs: 1,
            ..quick_cfg()
        })
        .train(&net, &ds, &ladder, Strategy::AdaBits);
        let a = evaluate(&net, ds.test(), &ladder, 0, Quantizer::Sbm, 8);
        let b = evaluate(&net, ds.test(), &ladder, 0, Quantizer::Sbm, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn prediction_distribution_is_a_distribution() {
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let bits = BitWidthSet::new(vec![4, 32]).unwrap();
        let net = models::small_cnn(4, ds.num_classes(), (ds.hw(), ds.hw()), 2, 4);
        let ladder = PrecisionLadder::uniform(&bits);
        Trainer::new(TrainConfig {
            epochs: 1,
            ..quick_cfg()
        })
        .train(&net, &ds, &ladder, Strategy::cdt());
        let p = prediction_distribution(&net, ds.test(), 0, &ladder, 0, Quantizer::Sbm);
        assert_eq!(p.len(), ds.num_classes());
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn warmup_epochs_then_switchable_training_learns_all_rungs() {
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let bits = BitWidthSet::new(vec![4, 32]).unwrap();
        let net = models::small_cnn(6, ds.num_classes(), (ds.hw(), ds.hw()), bits.len(), 41);
        let ladder = PrecisionLadder::uniform(&bits);
        let report = Trainer::new(TrainConfig {
            warmup_epochs: 2,
            ..quick_cfg()
        })
        .train(&net, &ds, &ladder, Strategy::cdt());
        let chance = 1.0 / ds.num_classes() as f32;
        // Both rungs must still end above chance (the low rung is only
        // trained in the post-warm-up epochs, incl. its BN branch).
        for acc in &report.accuracy_per_rung {
            assert!(*acc > chance, "accuracy {acc}");
        }
    }

    #[test]
    fn augmented_training_still_learns() {
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let bits = BitWidthSet::new(vec![8]).unwrap();
        let net = models::small_cnn(6, ds.num_classes(), (ds.hw(), ds.hw()), 1, 31);
        let ladder = PrecisionLadder::uniform(&bits);
        let report = Trainer::new(TrainConfig {
            augment: Some(instantnet_data::Augment::standard()),
            ..quick_cfg()
        })
        .train(&net, &ds, &ladder, Strategy::AdaBits);
        let chance = 1.0 / ds.num_classes() as f32;
        assert!(report.accuracy_per_rung[0] > chance + 0.1);
    }

    #[test]
    fn independent_baseline_trains_one_model_per_rung() {
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let bits = BitWidthSet::new(vec![4, 32]).unwrap();
        let ladder = PrecisionLadder::uniform(&bits);
        let accs = train_independent(
            |i| models::small_cnn(4, ds.num_classes(), (ds.hw(), ds.hw()), 1, 100 + i as u64),
            &ds,
            &ladder,
            TrainConfig {
                epochs: 3,
                ..quick_cfg()
            },
        );
        assert_eq!(accs.len(), 2);
        assert!(accs.iter().all(|&a| (0.0..=1.0).contains(&a)));
    }
}
