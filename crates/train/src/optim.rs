//! Optimizers and learning-rate schedules.

use instantnet_tensor::{Param, Tensor};
use std::collections::HashMap;

/// First-order optimizer over a set of [`Param`]s.
///
/// Implementations read each parameter's accumulated gradient, update the
/// value in place, and clear the gradient.
pub trait Optimizer {
    /// Applies one update step and zeroes the gradients.
    fn step(&mut self, params: &[Param]);

    /// Changes the learning rate (for schedules).
    fn set_lr(&mut self, lr: f32);

    /// Current learning rate.
    fn lr(&self) -> f32;
}

/// Stochastic gradient descent with classical momentum and optional L2
/// weight decay (applied to parameters whose name contains `"weight"`,
/// the usual no-decay-on-BN/bias convention).
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    clip_norm: Option<f32>,
    velocity: HashMap<u64, Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            clip_norm: None,
            velocity: HashMap::new(),
        }
    }

    /// Enables global-norm gradient clipping: before each step, if the
    /// L2 norm over all gradients exceeds `max_norm`, every gradient is
    /// scaled down proportionally.
    pub fn with_clip_norm(mut self, max_norm: f32) -> Self {
        assert!(max_norm > 0.0, "clip norm must be positive");
        self.clip_norm = Some(max_norm);
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &[Param]) {
        let clip_scale = match self.clip_norm {
            Some(max_norm) => {
                let sq: f32 = params
                    .iter()
                    .filter_map(|p| p.var().grad())
                    .map(|g| g.data().iter().map(|v| v * v).sum::<f32>())
                    .sum();
                let norm = sq.sqrt();
                if norm > max_norm {
                    max_norm / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        for p in params {
            let Some(mut g) = p.var().grad() else {
                continue;
            };
            if clip_scale < 1.0 {
                g = g.scale(clip_scale);
            }
            if self.weight_decay > 0.0 && p.name().contains("weight") {
                g.add_scaled_assign(&p.var().value(), self.weight_decay);
            }
            let v = self
                .velocity
                .entry(p.var().id())
                .or_insert_with(|| Tensor::zeros(g.dims()));
            // v = momentum * v + g ; w -= lr * v
            *v = v.scale(self.momentum);
            v.add_assign(&g);
            let lr = self.lr;
            let vv = v.clone();
            p.var().update_value(|w| w.add_scaled_assign(&vv, -lr));
            p.var().zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba) — used for the NAS architecture parameters, matching
/// the paper's search settings (fixed LR 3e-4).
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: HashMap<u64, Tensor>,
    v: HashMap<u64, Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard `(0.9, 0.999)` betas.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &[Param]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in params {
            let Some(g) = p.var().grad() else {
                continue;
            };
            let m = self
                .m
                .entry(p.var().id())
                .or_insert_with(|| Tensor::zeros(g.dims()));
            *m = m.scale(self.beta1);
            m.add_scaled_assign(&g, 1.0 - self.beta1);
            let v = self
                .v
                .entry(p.var().id())
                .or_insert_with(|| Tensor::zeros(g.dims()));
            *v = v.scale(self.beta2);
            let g2 = g.mul(&g);
            v.add_scaled_assign(&g2, 1.0 - self.beta2);
            let mh = m.scale(1.0 / bc1);
            let vh = v.scale(1.0 / bc2);
            let lr = self.lr;
            let eps = self.eps;
            let update = mh.zip_map(&vh, |mi, vi| mi / (vi.sqrt() + eps));
            p.var().update_value(|w| w.add_scaled_assign(&update, -lr));
            p.var().zero_grad();
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Cosine learning-rate decay from `base` to 0 over `total` steps — the
/// paper's schedule for weight training.
#[derive(Debug, Clone, Copy)]
pub struct CosineLr {
    base: f32,
    total: usize,
}

impl CosineLr {
    /// Creates the schedule.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    pub fn new(base: f32, total: usize) -> Self {
        assert!(total > 0, "schedule length must be positive");
        CosineLr { base, total }
    }

    /// Learning rate at step `t` (clamped to the final value past `total`).
    pub fn at(&self, t: usize) -> f32 {
        let frac = (t.min(self.total)) as f32 / self.total as f32;
        self.base * 0.5 * (1.0 + (std::f32::consts::PI * frac).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantnet_tensor::{ops, Var};

    fn quadratic_param(x0: f32) -> Param {
        Param::new("weight", Tensor::from_vec(vec![1], vec![x0]))
    }

    fn quadratic_loss(p: &Param) -> Var {
        // loss = x^2, minimum at 0.
        p.var().mul(p.var()).sum()
    }

    #[test]
    fn sgd_descends_quadratic() {
        let p = quadratic_param(4.0);
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        for _ in 0..30 {
            quadratic_loss(&p).backward();
            opt.step(std::slice::from_ref(&p));
        }
        assert!(p.var().value().item().abs() < 0.1);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let run = |momentum: f32| {
            let p = quadratic_param(4.0);
            let mut opt = Sgd::new(0.02, momentum, 0.0);
            for _ in 0..20 {
                quadratic_loss(&p).backward();
                opt.step(std::slice::from_ref(&p));
            }
            p.var().value().item().abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn sgd_weight_decay_shrinks_weights_without_gradient_signal() {
        let p = quadratic_param(2.0);
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        // Constant-zero loss gradient: only decay acts.
        for _ in 0..5 {
            ops::mse_loss(p.var(), p.var()).backward();
            opt.step(std::slice::from_ref(&p));
        }
        assert!(p.var().value().item() < 2.0);
    }

    #[test]
    fn adam_descends_quadratic() {
        let p = quadratic_param(-3.0);
        let mut opt = Adam::new(0.2);
        for _ in 0..100 {
            quadratic_loss(&p).backward();
            opt.step(std::slice::from_ref(&p));
        }
        assert!(p.var().value().item().abs() < 0.2);
    }

    #[test]
    fn clip_norm_bounds_update_magnitude() {
        // Huge gradient: unclipped step moves far, clipped step is bounded.
        let run = |clip: Option<f32>| {
            let p = quadratic_param(100.0);
            let mut opt = Sgd::new(0.1, 0.0, 0.0);
            if let Some(c) = clip {
                opt = opt.with_clip_norm(c);
            }
            quadratic_loss(&p).backward();
            opt.step(std::slice::from_ref(&p));
            (100.0 - p.var().value().item()).abs()
        };
        let free = run(None);
        let clipped = run(Some(1.0));
        assert!(free > 10.0);
        assert!(clipped <= 0.11, "clipped step {clipped}");
    }

    #[test]
    fn step_without_grad_is_noop() {
        let p = quadratic_param(1.5);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        opt.step(std::slice::from_ref(&p));
        assert_eq!(p.var().value().item(), 1.5);
    }

    #[test]
    fn cosine_schedule_endpoints() {
        let s = CosineLr::new(0.1, 100);
        assert!((s.at(0) - 0.1).abs() < 1e-7);
        assert!(s.at(100) < 1e-7);
        assert!((s.at(50) - 0.05).abs() < 1e-7);
        assert!(s.at(200) < 1e-7, "clamped past the horizon");
    }

    #[test]
    fn set_lr_changes_rate() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
    }
}
