//! Switchable-precision training objectives: CDT (Eq. 1) and baselines.

use instantnet_nn::{ForwardCtx, Module};
use instantnet_quant::{BitWidthSet, Precision, Quantizer};
use instantnet_tensor::{ops, Var};

/// The ordered list of precision "rungs" a switchable network trains over.
///
/// Rung 0 is the weakest (lowest bit-width); the last rung is the strongest
/// and acts as the ultimate distillation teacher. A rung's index doubles as
/// the switchable-BN branch index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecisionLadder {
    rungs: Vec<Precision>,
}

impl PrecisionLadder {
    /// Builds a ladder from explicit precisions (must be non-empty,
    /// ordered weakest → strongest by the caller's judgment).
    ///
    /// # Panics
    ///
    /// Panics if `rungs` is empty.
    pub fn new(rungs: Vec<Precision>) -> Self {
        assert!(!rungs.is_empty(), "precision ladder must not be empty");
        PrecisionLadder { rungs }
    }

    /// Uniform weight/activation ladder from a bit-width set.
    pub fn uniform(set: &BitWidthSet) -> Self {
        PrecisionLadder {
            rungs: set
                .widths()
                .iter()
                .map(|&b| Precision::uniform(b))
                .collect(),
        }
    }

    /// The rungs, weakest first.
    pub fn rungs(&self) -> &[Precision] {
        &self.rungs
    }

    /// Number of rungs.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// Precision at rung `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn at(&self, i: usize) -> Precision {
        self.rungs[i]
    }

    /// A training-mode forward context for rung `i`.
    pub fn train_ctx(&self, i: usize, quantizer: Quantizer) -> ForwardCtx {
        ForwardCtx {
            train: true,
            bit_index: i,
            precision: self.rungs[i],
            quantizer,
        }
    }

    /// An inference-mode forward context for rung `i`.
    pub fn eval_ctx(&self, i: usize, quantizer: Quantizer) -> ForwardCtx {
        ForwardCtx {
            train: false,
            bit_index: i,
            precision: self.rungs[i],
            quantizer,
        }
    }
}

/// The training objective applied to a weight-shared multi-precision
/// network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// InstantNet's cascade distillation (Eq. 1): every rung distills from
    /// *all* higher rungs with stop-gradient teachers.
    Cdt {
        /// Distillation weight β.
        beta: f32,
    },
    /// SP-style vanilla distillation: every rung distills only from the
    /// highest rung (Guerra et al. 2020). Also the "vanilla distillation"
    /// ablation of Fig. 2.
    SpNet {
        /// Distillation weight β.
        beta: f32,
    },
    /// AdaBits-style joint training: plain average cross-entropy over all
    /// rungs, no distillation (Jin et al. 2019).
    AdaBits,
    /// CDT with temperature-softened KL distillation instead of logit MSE
    /// — scale-robust for extreme (2-bit) rungs where raw logit MSE
    /// overwhelms the cross-entropy signal.
    CdtKl {
        /// Distillation weight β.
        beta: f32,
        /// Softmax temperature T.
        temperature: f32,
    },
    /// Ablation: CDT *without* the stop-gradient on teachers — gradients
    /// from the distillation terms flow back into the higher-bit-width
    /// passes, which the paper (following SP) explicitly prohibits.
    CdtNoStopGrad {
        /// Distillation weight β.
        beta: f32,
    },
}

impl Strategy {
    /// CDT with the default β = 0.2, calibrated on the reproduction-scale
    /// workloads (a sweep over β showed 0.2 maximizes lowest-bit accuracy;
    /// the paper's λ/β trade-off is workload-dependent).
    pub fn cdt() -> Self {
        Strategy::Cdt { beta: 0.2 }
    }

    /// SP baseline with the same β as [`Strategy::cdt`] for fairness.
    pub fn sp_net() -> Self {
        Strategy::SpNet { beta: 0.2 }
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Cdt { .. } => "CDT",
            Strategy::SpNet { .. } => "SP",
            Strategy::AdaBits => "AdaBits",
            Strategy::CdtNoStopGrad { .. } => "CDT-noSG",
            Strategy::CdtKl { .. } => "CDT-KL",
        }
    }
}

/// Computes the strategy's total loss for one batch.
///
/// Runs one training-mode forward pass per rung (sharing weights,
/// selecting that rung's BN branch) and combines the per-rung losses:
///
/// * **CDT**: `L_i = CE_i + β Σ_{j>i} MSE(logits_i, SG(logits_j))`
/// * **SP**: `L_i = CE_i + β MSE(logits_i, SG(logits_last)) (i < last)`
/// * **AdaBits**: `L_i = CE_i`
///
/// and returns `mean_i L_i` as a scalar [`Var`].
pub fn batch_loss(
    net: &dyn Module,
    x: &Var,
    labels: &[usize],
    ladder: &PrecisionLadder,
    quantizer: Quantizer,
    strategy: Strategy,
) -> Var {
    let n = ladder.len();
    let logits: Vec<Var> = (0..n)
        .map(|i| {
            let mut ctx = ladder.train_ctx(i, quantizer);
            net.forward(x, &mut ctx)
        })
        .collect();
    // Detached teacher copies (stop-gradient).
    let teachers: Vec<Var> = logits.iter().map(Var::detach).collect();
    let mut total: Option<Var> = None;
    for i in 0..n {
        let mut li = ops::softmax_cross_entropy(&logits[i], labels);
        match strategy {
            Strategy::Cdt { beta } => {
                for teacher in teachers.iter().take(n).skip(i + 1) {
                    li = li.add(&ops::mse_loss(&logits[i], teacher).scale(beta));
                }
            }
            Strategy::SpNet { beta } => {
                if i + 1 < n {
                    li = li.add(&ops::mse_loss(&logits[i], &teachers[n - 1]).scale(beta));
                }
            }
            Strategy::AdaBits => {}
            Strategy::CdtKl { beta, temperature } => {
                for j in (i + 1)..n {
                    let teacher = logits[j].value();
                    li = li.add(&ops::distill_kl(&logits[i], &teacher, temperature).scale(beta));
                }
            }
            Strategy::CdtNoStopGrad { beta } => {
                for teacher in logits.iter().take(n).skip(i + 1) {
                    li = li.add(&ops::mse_loss(&logits[i], teacher).scale(beta));
                }
            }
        }
        total = Some(match total {
            Some(t) => t.add(&li),
            None => li,
        });
    }
    total.expect("ladder is non-empty").scale(1.0 / n as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantnet_nn::models;
    use instantnet_quant::BitWidth;
    use instantnet_tensor::{init, Var};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ladder2() -> PrecisionLadder {
        PrecisionLadder::uniform(&BitWidthSet::new(vec![4, 32]).unwrap())
    }

    #[test]
    fn uniform_ladder_matches_set() {
        let l = PrecisionLadder::uniform(&BitWidthSet::large_range());
        assert_eq!(l.len(), 5);
        assert_eq!(l.at(0).weight.get(), 4);
        assert!(l.at(4).weight.is_full_precision());
    }

    #[test]
    fn mixed_ladder_for_table4() {
        let l = PrecisionLadder::new(vec![
            Precision::new(BitWidth::new(2), BitWidth::FULL),
            Precision::uniform(BitWidth::FULL),
        ]);
        assert_eq!(l.at(0).to_string(), "W2A32");
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_ladder_rejected() {
        let _ = PrecisionLadder::new(vec![]);
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(Strategy::cdt().label(), "CDT");
        assert_eq!(Strategy::sp_net().label(), "SP");
        assert_eq!(Strategy::AdaBits.label(), "AdaBits");
    }

    #[test]
    fn cdt_loss_exceeds_adabits_loss_by_distillation_terms() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = models::small_cnn(4, 4, (6, 6), 2, 3);
        let x = Var::constant(init::uniform(&mut rng, &[4, 3, 6, 6], -1.0, 1.0));
        let labels = vec![0, 1, 2, 3];
        let l = ladder2();
        let cdt = batch_loss(&net, &x, &labels, &l, Quantizer::Sbm, Strategy::cdt()).item();
        let ada = batch_loss(&net, &x, &labels, &l, Quantizer::Sbm, Strategy::AdaBits).item();
        assert!(cdt >= ada, "cdt {cdt} vs adabits {ada}");
    }

    #[test]
    fn cdt_gradients_reach_shared_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = models::small_cnn(4, 4, (6, 6), 2, 5);
        let x = Var::constant(init::uniform(&mut rng, &[2, 3, 6, 6], -1.0, 1.0));
        let loss = batch_loss(
            &net,
            &x,
            &[0, 1],
            &ladder2(),
            Quantizer::Sbm,
            Strategy::cdt(),
        );
        loss.backward();
        let with_grad = net
            .params()
            .iter()
            .filter(|p| p.var().grad().is_some())
            .count();
        // Shared conv/linear weights plus both BN branches get gradients.
        assert_eq!(with_grad, net.params().len());
    }

    #[test]
    fn three_rung_cdt_has_cascade_of_three_distill_terms() {
        // With β -> huge, the loss difference between CDT and AdaBits is
        // dominated by the distillation MSEs — verify it's strictly larger
        // for the 3-rung ladder than the 2-rung ladder on the same network.
        let mut rng = StdRng::seed_from_u64(2);
        let net = models::small_cnn(4, 4, (6, 6), 3, 6);
        let x = Var::constant(init::uniform(&mut rng, &[2, 3, 6, 6], -1.0, 1.0));
        let labels = vec![0, 1];
        let l3 = PrecisionLadder::uniform(&BitWidthSet::new(vec![2, 4, 32]).unwrap());
        let big_beta = Strategy::Cdt { beta: 100.0 };
        let cdt = batch_loss(&net, &x, &labels, &l3, Quantizer::Sbm, big_beta).item();
        let ada = batch_loss(&net, &x, &labels, &l3, Quantizer::Sbm, Strategy::AdaBits).item();
        assert!(
            cdt > ada,
            "distillation terms must contribute: {cdt} vs {ada}"
        );
    }

    #[test]
    fn cdt_kl_trains_and_labels() {
        let mut rng = StdRng::seed_from_u64(12);
        let net = models::small_cnn(4, 4, (6, 6), 2, 9);
        let x = Var::constant(init::uniform(&mut rng, &[2, 3, 6, 6], -1.0, 1.0));
        let strat = Strategy::CdtKl {
            beta: 1.0,
            temperature: 4.0,
        };
        assert_eq!(strat.label(), "CDT-KL");
        let loss = batch_loss(&net, &x, &[0, 1], &ladder2(), Quantizer::Sbm, strat);
        loss.backward();
        let with_grad = net
            .params()
            .iter()
            .filter(|p| p.var().grad().is_some())
            .count();
        assert_eq!(with_grad, net.params().len());
    }

    #[test]
    fn no_stop_grad_ablation_backprops_into_teachers() {
        // Without SG, the highest-rung pass receives gradient from the
        // distillation terms, so the total loss value equals CDT's (same
        // forward) while the gradient field differs.
        let mut rng = StdRng::seed_from_u64(9);
        let net = models::small_cnn(4, 4, (6, 6), 2, 8);
        let x = Var::constant(init::uniform(&mut rng, &[2, 3, 6, 6], -1.0, 1.0));
        let l = ladder2();
        let a = batch_loss(
            &net,
            &x,
            &[0, 1],
            &l,
            Quantizer::Sbm,
            Strategy::Cdt { beta: 1.0 },
        )
        .item();
        let b = batch_loss(
            &net,
            &x,
            &[0, 1],
            &l,
            Quantizer::Sbm,
            Strategy::CdtNoStopGrad { beta: 1.0 },
        )
        .item();
        assert!((a - b).abs() < 1e-5, "loss values match: {a} vs {b}");
        assert_eq!(Strategy::CdtNoStopGrad { beta: 1.0 }.label(), "CDT-noSG");
    }

    #[test]
    fn single_rung_ladder_strategies_coincide() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = models::small_cnn(4, 4, (6, 6), 1, 7);
        let x = Var::constant(init::uniform(&mut rng, &[2, 3, 6, 6], -1.0, 1.0));
        let l = PrecisionLadder::new(vec![Precision::uniform(BitWidth::new(8))]);
        let a = batch_loss(&net, &x, &[0, 1], &l, Quantizer::Sbm, Strategy::cdt()).item();
        let b = batch_loss(&net, &x, &[0, 1], &l, Quantizer::Sbm, Strategy::AdaBits).item();
        // BN running stats update between calls, but the batch-stat forward
        // is identical, so losses match exactly.
        assert!((a - b).abs() < 1e-6);
    }
}
