//! Training machinery for switchable-precision networks.
//!
//! The centerpiece is [`strategy::Strategy::Cdt`] — InstantNet's
//! **cascade distillation training** (Eq. 1 of the paper): the loss at each
//! bit-width combines cross-entropy with MSE distillation from *every*
//! higher bit-width, teachers stop-gradient'ed. The crate also implements
//! the paper's baselines (SP's vanilla full-precision-only distillation,
//! AdaBits' joint training, and independently trained per-bit SBM models)
//! so every row of Tables I–IV can be regenerated.
//!
//! # Example
//!
//! ```
//! use instantnet_data::{Dataset, DatasetSpec};
//! use instantnet_nn::models;
//! use instantnet_quant::BitWidthSet;
//! use instantnet_train::{strategy::Strategy, PrecisionLadder, TrainConfig, Trainer};
//!
//! let ds = Dataset::generate(&DatasetSpec::tiny());
//! let bits = BitWidthSet::new(vec![4, 32])?;
//! let net = models::small_cnn(4, ds.num_classes(), (ds.hw(), ds.hw()), bits.len(), 0);
//! let cfg = TrainConfig { epochs: 1, ..TrainConfig::default() };
//! let report = Trainer::new(cfg).train(&net, &ds, &PrecisionLadder::uniform(&bits), Strategy::cdt());
//! assert_eq!(report.accuracy_per_rung.len(), 2);
//! # Ok::<(), instantnet_quant::BitWidthError>(())
//! ```

pub mod cyclic;
pub mod optim;
pub mod strategy;
pub mod trainer;

pub use cyclic::{train_cyclic, CycleSchedule};
pub use optim::{Adam, CosineLr, Optimizer, Sgd};
pub use strategy::{PrecisionLadder, Strategy};
pub use trainer::{
    evaluate, prediction_distribution, train_independent, TrainConfig, TrainReport, Trainer,
};
