//! InstantNet's AutoMapper: evolutionary search over the generic dataflow
//! space (Alg. 1 of the paper).
//!
//! The algorithm keeps a pool of candidate mappings ranked by hardware
//! efficiency. While the pool is at or below its nominal size `n`, it grows
//! by picking random members and perturbing `k` of their design features
//! (`m` new candidates per iteration); once the pool overflows, the `m`
//! worst candidates are culled. Per-layer searches compose into per-network
//! mappings, searched independently per bit-width — the key deployment
//! property of switchable-precision networks.
//!
//! # Example
//!
//! ```
//! use instantnet_automapper::{evolve_layer, MapperConfig};
//! use instantnet_dataflow::ConvDims;
//! use instantnet_hwmodel::Device;
//!
//! let dims = ConvDims::new(1, 32, 16, 14, 14, 3, 3, 1);
//! let device = Device::eyeriss_like();
//! let cfg = MapperConfig { max_evals: 300, ..MapperConfig::default() };
//! let found = evolve_layer(&dims, &device, 16, &cfg);
//! assert!(found.cost.edp() > 0.0);
//! ```

pub mod bit_alloc;

pub use bit_alloc::{allocate_bits, BitAllocation, LayerAssignment};

use instantnet_dataflow::{ConvDims, Mapping};
use instantnet_hwmodel::{
    baselines, evaluate_layer, evaluate_network, Device, LayerCost, NetworkCost, Workload,
};
use instantnet_parallel as parallel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Search hyper-parameters for Alg. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapperConfig {
    /// Nominal pool size `n`.
    pub pool_size: usize,
    /// Candidates added / culled per iteration `m`.
    pub batch: usize,
    /// Features perturbed per mutation `k`.
    pub perturb_features: usize,
    /// Total evaluation budget.
    pub max_evals: usize,
    /// Optional EDP goal — search stops early once met (the paper's
    /// "Efficiency Goal").
    pub edp_goal: Option<f64>,
    /// Force pipeline (`Some(true)`), multi-cycle (`Some(false)`), or let
    /// the search decide (`None`).
    pub pipelined: Option<bool>,
    /// Probability of producing a child by two-parent crossover instead of
    /// perturbation (0.0 = the paper's pure-mutation Alg. 1).
    pub crossover_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            pool_size: 24,
            batch: 8,
            perturb_features: 2,
            max_evals: 600,
            edp_goal: None,
            pipelined: None,
            crossover_prob: 0.0,
            seed: 0,
        }
    }
}

/// Result of a per-layer search.
#[derive(Debug, Clone)]
pub struct FoundMapping {
    /// The best mapping found.
    pub mapping: Mapping,
    /// Its evaluated cost.
    pub cost: LayerCost,
    /// Number of cost-model evaluations spent.
    pub evals: usize,
    /// Best-so-far EDP after each evaluation (convergence curve).
    pub history: Vec<f64>,
}

struct Pool {
    // (edp, mapping, cost) sorted ascending by EDP on demand.
    members: Vec<(f64, Mapping, LayerCost)>,
}

impl Pool {
    fn best(&self) -> &(f64, Mapping, LayerCost) {
        self.members
            .iter()
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite EDP"))
            .expect("pool non-empty")
    }

    fn cull_worst(&mut self, m: usize) {
        self.members
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite EDP"));
        let keep = self.members.len().saturating_sub(m).max(1);
        self.members.truncate(keep);
    }
}

fn try_eval(
    dims: &ConvDims,
    mut mapping: Mapping,
    device: &Device,
    bits: u8,
    forced_pipeline: Option<bool>,
) -> Option<(f64, Mapping, LayerCost)> {
    if let Some(p) = forced_pipeline {
        mapping.pipelined = p;
    }
    let cost = evaluate_layer(dims, &mapping, device, bits).ok()?;
    Some((cost.edp(), mapping, cost))
}

/// Evolutionary AutoMapper for one layer (Alg. 1).
///
/// Illegal mappings (capacity/PE violations) are rejected and do not enter
/// the pool but do consume evaluation budget, mirroring a real cost-model
/// query. The pool is seeded with random samples plus the always-legal
/// outermost mapping so a result is guaranteed.
pub fn evolve_layer(
    dims: &ConvDims,
    device: &Device,
    bits: u8,
    cfg: &MapperConfig,
) -> FoundMapping {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut evals = 0usize;
    let mut history = Vec::new();
    let mut pool = Pool {
        members: Vec::new(),
    };
    // Guaranteed-legal seed.
    let fallback = baselines::outermost_mapping(dims, cfg.pipelined.unwrap_or(false));
    if let Some(entry) = try_eval(dims, fallback, device, bits, cfg.pipelined) {
        pool.members.push(entry);
    }
    evals += 1;
    // Initial random pool. Candidates are drawn serially from the single
    // RNG stream, then scored concurrently: `try_eval` is pure, so batching
    // the evaluations is bit-identical to evaluating inline — at any thread
    // count. The batch size is capped so neither the pool-size nor the
    // eval-budget stopping condition can trip mid-batch, which keeps the
    // RNG draw sequence exactly equal to the one-at-a-time loop.
    while pool.members.len() < cfg.pool_size && evals < cfg.max_evals {
        let take = (cfg.pool_size - pool.members.len()).min(cfg.max_evals - evals);
        let candidates: Vec<Mapping> = (0..take).map(|_| Mapping::random(dims, &mut rng)).collect();
        let entries = parallel::parallel_map(&candidates, |_, m| {
            try_eval(dims, m.clone(), device, bits, cfg.pipelined)
        });
        for entry in entries {
            if let Some(e) = entry {
                pool.members.push(e);
            }
            evals += 1;
            history.push(pool.best().0);
        }
    }
    // Main loop.
    while evals < cfg.max_evals {
        if let Some(goal) = cfg.edp_goal {
            if pool.best().0 <= goal {
                break;
            }
        }
        if pool.members.len() <= cfg.pool_size {
            // One generation: mutate/crossover against the pool as it stands
            // at the start of the batch (all RNG work serial, single
            // stream), then evaluate the whole batch concurrently and fold
            // the results back in batch order.
            let take = cfg.batch.min(cfg.max_evals - evals);
            let children: Vec<Mapping> = (0..take)
                .map(|_| {
                    // Binary tournament: draw two members, mutate the
                    // fitter one. Batched generation no longer sees
                    // within-batch pool growth, so selection pressure
                    // comes from the tournament instead.
                    let i = rng.gen_range(0..pool.members.len());
                    let j = rng.gen_range(0..pool.members.len());
                    let pick = if pool.members[i].0 <= pool.members[j].0 {
                        i
                    } else {
                        j
                    };
                    let parent = pool.members[pick].1.clone();
                    if cfg.crossover_prob > 0.0
                        && pool.members.len() > 1
                        && rng.gen_bool(cfg.crossover_prob)
                    {
                        let other = rng.gen_range(0..pool.members.len());
                        parent.crossover(&pool.members[other].1, &mut rng)
                    } else {
                        parent.perturb(dims, &mut rng, cfg.perturb_features)
                    }
                })
                .collect();
            let entries = parallel::parallel_map(&children, |_, child| {
                try_eval(dims, child.clone(), device, bits, cfg.pipelined)
            });
            for entry in entries {
                if let Some(e) = entry {
                    pool.members.push(e);
                }
                evals += 1;
                history.push(pool.best().0);
            }
        } else {
            pool.cull_worst(cfg.batch);
        }
    }
    let (_, mapping, cost) = pool.best().clone();
    FoundMapping {
        mapping,
        cost,
        evals,
        history,
    }
}

/// Pure random search with the same budget — the baseline the paper argues
/// evolutionary search beats on this highly discrete space.
pub fn random_search_layer(
    dims: &ConvDims,
    device: &Device,
    bits: u8,
    cfg: &MapperConfig,
) -> FoundMapping {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut best: Option<(f64, Mapping, LayerCost)> = None;
    let mut history = Vec::new();
    let fallback = baselines::outermost_mapping(dims, cfg.pipelined.unwrap_or(false));
    if let Some(entry) = try_eval(dims, fallback, device, bits, cfg.pipelined) {
        best = Some(entry);
    }
    let mut evals = 1usize;
    while evals < cfg.max_evals {
        let m = Mapping::random(dims, &mut rng);
        if let Some(entry) = try_eval(dims, m, device, bits, cfg.pipelined) {
            if best.as_ref().is_none_or(|(b, _, _)| entry.0 < *b) {
                best = Some(entry);
            }
        }
        evals += 1;
        if let Some((b, _, _)) = &best {
            history.push(*b);
        }
    }
    let (_, mapping, cost) = best.expect("fallback mapping is legal");
    FoundMapping {
        mapping,
        cost,
        evals,
        history,
    }
}

/// Per-network mapping search: one evolutionary search per layer, trying
/// both pipeline and multi-cycle execution and keeping the better EDP.
///
/// Returns the per-layer mappings and the network cost.
pub fn map_network(
    workloads: &[Workload],
    device: &Device,
    bits: u8,
    cfg: &MapperConfig,
) -> (Vec<Mapping>, NetworkCost) {
    assert!(
        !workloads.is_empty(),
        "network must have at least one layer"
    );
    let total_macs: f64 = workloads.iter().map(|w| w.macs() as f64).sum();
    // Every (execution mode, layer) search is an independent evolve_layer
    // run under its own derived seed, so the whole grid fans out across
    // threads at once; results are stitched back in (mode, layer) order
    // and the winning mode is chosen serially.
    let nl = workloads.len();
    let jobs: Vec<(bool, usize)> = [false, true]
        .into_iter()
        .flat_map(|p| (0..nl).map(move |li| (p, li)))
        .collect();
    let mapped = parallel::parallel_map(&jobs, |_, &(pipelined, li)| {
        let w = &workloads[li];
        // In pipeline mode each stage owns a slice of the fabric, so
        // search against the partitioned device.
        let dev = if pipelined {
            instantnet_hwmodel::cost::pipeline_stage_device(device, w.macs() as f64 / total_macs)
        } else {
            device.clone()
        };
        let layer_cfg = MapperConfig {
            pipelined: Some(pipelined),
            seed: cfg.seed.wrapping_add(li as u64 * 7919),
            ..*cfg
        };
        evolve_layer(&w.dims, &dev, bits, &layer_cfg).mapping
    });
    let mut mapped = mapped.into_iter();
    let mut best: Option<(Vec<Mapping>, NetworkCost)> = None;
    for _pipelined in [false, true] {
        let mappings: Vec<Mapping> = mapped.by_ref().take(nl).collect();
        if let Ok(cost) = evaluate_network(workloads, &mappings, device, bits) {
            if best.as_ref().is_none_or(|(_, b)| cost.edp() < b.edp()) {
                best = Some((mappings, cost));
            }
        }
    }
    best.expect("multi-cycle fallback mappings are always legal")
}

/// Per-bit-width deployment of a switchable-precision network: one
/// independent mapping search per bit-width.
///
/// This is the deployment-side core of the paper's argument: "the best
/// dataflow for SP-Nets under *different bit-widths* can be different"
/// (§I), so reusing one bit-width's mapping at another leaves efficiency
/// on the table. [`switch_penalty`] quantifies exactly that gap.
pub fn map_per_bitwidth(
    workloads: &[Workload],
    device: &Device,
    bit_widths: &[u8],
    cfg: &MapperConfig,
) -> Vec<(u8, Vec<Mapping>, NetworkCost)> {
    // Bit-widths are fully independent searches; run them concurrently
    // (each worker serializes its own nested map_network fan-out).
    parallel::parallel_map(bit_widths, |_, &bits| {
        let (mappings, cost) = map_network(workloads, device, bits, cfg);
        (bits, mappings, cost)
    })
}

/// EDP penalty of running the network at `bits` with a mapping searched
/// for `donor_bits`, relative to the mapping searched for `bits` itself.
///
/// Returns `(reused_edp, native_edp, penalty_ratio)` where
/// `penalty_ratio = reused_edp / native_edp` (≥ ~1 when the native search
/// is at least as good). Reused mappings that become illegal at the new
/// word width are legalized first, as a deployment stack would.
pub fn switch_penalty(
    workloads: &[Workload],
    device: &Device,
    bits: u8,
    donor_bits: u8,
    cfg: &MapperConfig,
) -> (f64, f64, f64) {
    let (donor_mappings, _) = map_network(workloads, device, donor_bits, cfg);
    let legalized: Vec<Mapping> = workloads
        .iter()
        .zip(&donor_mappings)
        .map(|(w, m)| baselines::legalize(m.clone(), &w.dims, device, bits))
        .collect();
    let reused =
        evaluate_network(workloads, &legalized, device, bits).expect("legalized mappings evaluate");
    let (_, native) = map_network(workloads, device, bits, cfg);
    (reused.edp(), native.edp(), reused.edp() / native.edp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> ConvDims {
        ConvDims::new(1, 32, 16, 14, 14, 3, 3, 1)
    }

    fn quick_cfg() -> MapperConfig {
        MapperConfig {
            max_evals: 300,
            ..MapperConfig::default()
        }
    }

    #[test]
    fn evolution_improves_over_initial_pool() {
        let found = evolve_layer(&dims(), &Device::eyeriss_like(), 16, &quick_cfg());
        assert!(found.history.len() > 10);
        let first = found.history[0];
        let last = *found.history.last().unwrap();
        assert!(last <= first, "EDP must not regress: {first} -> {last}");
        assert!(last < first, "search should find something better");
    }

    #[test]
    fn history_is_monotone_nonincreasing() {
        let found = evolve_layer(&dims(), &Device::eyeriss_like(), 8, &quick_cfg());
        for w in found.history.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = evolve_layer(&dims(), &Device::eyeriss_like(), 16, &quick_cfg());
        let b = evolve_layer(&dims(), &Device::eyeriss_like(), 16, &quick_cfg());
        assert_eq!(a.cost.edp(), b.cost.edp());
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn evolution_beats_random_search_at_equal_budget() {
        // Average over seeds to keep the comparison robust.
        let d = dims();
        let dev = Device::eyeriss_like();
        let mut evo = 0.0;
        let mut rnd = 0.0;
        for seed in 0..5 {
            let cfg = MapperConfig {
                max_evals: 400,
                seed,
                ..MapperConfig::default()
            };
            evo += evolve_layer(&d, &dev, 16, &cfg).cost.edp();
            rnd += random_search_layer(&d, &dev, 16, &cfg).cost.edp();
        }
        assert!(
            evo < rnd,
            "evolutionary {evo} should beat random {rnd} on average"
        );
    }

    #[test]
    fn crossover_variant_still_converges() {
        let cfg = MapperConfig {
            crossover_prob: 0.5,
            max_evals: 300,
            ..MapperConfig::default()
        };
        let found = evolve_layer(&dims(), &Device::eyeriss_like(), 16, &cfg);
        let fallback = instantnet_hwmodel::baselines::outermost_mapping(&dims(), false);
        let fb =
            instantnet_hwmodel::evaluate_layer(&dims(), &fallback, &Device::eyeriss_like(), 16)
                .unwrap()
                .edp();
        assert!(found.cost.edp() < fb, "crossover search must still improve");
    }

    #[test]
    fn edp_goal_stops_search_early() {
        let cfg = MapperConfig {
            edp_goal: Some(f64::INFINITY),
            max_evals: 10_000,
            ..MapperConfig::default()
        };
        let found = evolve_layer(&dims(), &Device::eyeriss_like(), 16, &cfg);
        assert!(
            found.evals < 10_000,
            "goal met at once, evals {}",
            found.evals
        );
    }

    #[test]
    fn forced_pipeline_flag_respected() {
        let cfg = MapperConfig {
            pipelined: Some(true),
            ..quick_cfg()
        };
        let found = evolve_layer(&dims(), &Device::zc706_like(), 16, &cfg);
        assert!(found.mapping.pipelined);
    }

    #[test]
    fn map_network_returns_one_mapping_per_layer() {
        let ws = vec![
            Workload {
                dims: dims(),
                multiplicity: 1,
            },
            Workload {
                dims: ConvDims::new(1, 64, 32, 7, 7, 3, 3, 1),
                multiplicity: 1,
            },
        ];
        let cfg = MapperConfig {
            max_evals: 150,
            ..MapperConfig::default()
        };
        let (mappings, cost) = map_network(&ws, &Device::eyeriss_like(), 8, &cfg);
        assert_eq!(mappings.len(), 2);
        assert!(cost.fps > 0.0);
        assert!(cost.edp() > 0.0);
    }

    #[test]
    fn per_bitwidth_mappings_cover_all_bits() {
        let ws = vec![Workload {
            dims: dims(),
            multiplicity: 1,
        }];
        let cfg = MapperConfig {
            max_evals: 120,
            ..MapperConfig::default()
        };
        let results = map_per_bitwidth(&ws, &Device::eyeriss_like(), &[4, 8, 16], &cfg);
        assert_eq!(results.len(), 3);
        let edps: Vec<f64> = results.iter().map(|(_, _, c)| c.edp()).collect();
        assert!(edps[0] < edps[2], "4-bit EDP should beat 16-bit");
    }

    #[test]
    fn native_search_at_least_matches_reused_mapping() {
        // The paper's per-bit-width deployment claim: a mapping searched at
        // 16-bit, reused at 4-bit, should not beat the native 4-bit search.
        let ws = vec![Workload {
            dims: dims(),
            multiplicity: 1,
        }];
        let cfg = MapperConfig {
            max_evals: 300,
            ..MapperConfig::default()
        };
        let (reused, native, ratio) = switch_penalty(&ws, &Device::eyeriss_like(), 4, 16, &cfg);
        assert!(native > 0.0 && reused > 0.0);
        assert!(
            ratio >= 0.99,
            "native search regressed vs reused mapping: ratio {ratio}"
        );
    }

    #[test]
    fn lower_bits_map_to_lower_edp() {
        let ws = vec![Workload {
            dims: dims(),
            multiplicity: 1,
        }];
        let cfg = MapperConfig {
            max_evals: 200,
            ..MapperConfig::default()
        };
        let (_, c4) = map_network(&ws, &Device::eyeriss_like(), 4, &cfg);
        let (_, c16) = map_network(&ws, &Device::eyeriss_like(), 16, &cfg);
        assert!(c4.edp() < c16.edp());
    }
}
