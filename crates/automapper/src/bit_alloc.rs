//! Per-layer bit-width allocation for deployment.
//!
//! An SP-Net can execute every layer at any candidate bit-width, so a
//! deployment stack may assign *different* bit-widths to different layers
//! (mixed-precision execution), subject to a mean-bit-width budget that
//! proxies the accuracy constraint. This module searches that assignment
//! greedily: starting from the highest precision everywhere, it repeatedly
//! demotes the layer with the best EDP-saving-per-bit until the budget is
//! met — a deployment-side counterpart to HAQ-style mixed-precision search
//! (the paper's ref. \[11\]).

use crate::{evolve_layer, MapperConfig};
use instantnet_dataflow::Mapping;
use instantnet_hwmodel::{Device, Workload};

/// One layer's chosen bit-width and searched mapping.
#[derive(Debug, Clone)]
pub struct LayerAssignment {
    /// Chosen bit-width for this layer.
    pub bits: u8,
    /// Mapping searched at that bit-width.
    pub mapping: Mapping,
    /// Layer EDP (pJ·s) including group multiplicity.
    pub edp: f64,
}

/// Result of a mixed-precision allocation.
#[derive(Debug, Clone)]
pub struct BitAllocation {
    /// Per-layer assignments, in workload order.
    pub layers: Vec<LayerAssignment>,
    /// MAC-weighted mean bit-width of the assignment.
    pub mean_bits: f64,
    /// Total EDP over all layers (pJ·s).
    pub total_edp: f64,
}

/// Greedy mixed-precision allocation: demote layers (highest precision →
/// next lower) by best EDP saving per bit until the MAC-weighted mean
/// bit-width is at most `mean_bits_budget`.
///
/// `bit_choices` must be sorted ascending (e.g. `[4, 5, 6, 8]`). Layer
/// mappings are re-searched at each candidate bit-width (cached across the
/// greedy loop).
///
/// # Panics
///
/// Panics if `workloads` or `bit_choices` is empty, or `bit_choices` is not
/// strictly ascending.
pub fn allocate_bits(
    workloads: &[Workload],
    device: &Device,
    bit_choices: &[u8],
    mean_bits_budget: f64,
    cfg: &MapperConfig,
) -> BitAllocation {
    assert!(!workloads.is_empty(), "need at least one layer");
    assert!(!bit_choices.is_empty(), "need at least one bit choice");
    assert!(
        bit_choices.windows(2).all(|w| w[0] < w[1]),
        "bit choices must be strictly ascending"
    );
    let n = workloads.len();
    let top = bit_choices.len() - 1;
    // Pre-search a mapping per (layer, bit) lazily.
    let mut cache: Vec<Vec<Option<(Mapping, f64)>>> = vec![vec![None; bit_choices.len()]; n];
    let get = |li: usize, bi: usize, cache: &mut Vec<Vec<Option<(Mapping, f64)>>>| {
        if cache[li][bi].is_none() {
            let layer_cfg = MapperConfig {
                pipelined: Some(false),
                seed: cfg.seed.wrapping_add((li * 31 + bi) as u64),
                ..*cfg
            };
            let found = evolve_layer(&workloads[li].dims, device, bit_choices[bi], &layer_cfg);
            let edp = found.cost.edp() * workloads[li].multiplicity as f64;
            cache[li][bi] = Some((found.mapping, edp));
        }
        cache[li][bi].clone().expect("just filled")
    };
    let macs: Vec<f64> = workloads.iter().map(|w| w.macs() as f64).collect();
    let total_macs: f64 = macs.iter().sum();
    let mut levels = vec![top; n];
    let mean = |levels: &[usize]| -> f64 {
        levels
            .iter()
            .zip(&macs)
            .map(|(&l, &m)| f64::from(bit_choices[l]) * m)
            .sum::<f64>()
            / total_macs
    };
    while mean(&levels) > mean_bits_budget {
        // Find the demotion with the best EDP saving per (weighted) bit.
        let mut best: Option<(usize, f64)> = None;
        for li in 0..n {
            if levels[li] == 0 {
                continue;
            }
            let (_, edp_now) = get(li, levels[li], &mut cache);
            let (_, edp_down) = get(li, levels[li] - 1, &mut cache);
            let bit_drop = f64::from(bit_choices[levels[li]] - bit_choices[levels[li] - 1])
                * macs[li]
                / total_macs;
            let gain = (edp_now - edp_down) / bit_drop.max(1e-12);
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((li, gain));
            }
        }
        let Some((li, _)) = best else {
            break; // everything already at the lowest precision
        };
        levels[li] -= 1;
    }
    let layers: Vec<LayerAssignment> = (0..n)
        .map(|li| {
            let (mapping, edp) = get(li, levels[li], &mut cache);
            LayerAssignment {
                bits: bit_choices[levels[li]],
                mapping,
                edp,
            }
        })
        .collect();
    BitAllocation {
        mean_bits: mean(&levels),
        total_edp: layers.iter().map(|l| l.edp).sum(),
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantnet_dataflow::ConvDims;

    fn workloads() -> Vec<Workload> {
        vec![
            Workload {
                dims: ConvDims::new(1, 32, 16, 14, 14, 3, 3, 1),
                multiplicity: 1,
            },
            Workload {
                dims: ConvDims::new(1, 64, 32, 7, 7, 3, 3, 1),
                multiplicity: 1,
            },
        ]
    }

    fn cfg() -> MapperConfig {
        MapperConfig {
            max_evals: 120,
            ..MapperConfig::default()
        }
    }

    #[test]
    fn unconstrained_budget_keeps_highest_bits() {
        let alloc = allocate_bits(
            &workloads(),
            &Device::eyeriss_like(),
            &[4, 8, 16],
            16.0,
            &cfg(),
        );
        assert!(alloc.layers.iter().all(|l| l.bits == 16));
        assert!((alloc.mean_bits - 16.0).abs() < 1e-9);
    }

    #[test]
    fn budget_forces_demotion_and_reduces_edp() {
        let dev = Device::eyeriss_like();
        let full = allocate_bits(&workloads(), &dev, &[4, 8, 16], 16.0, &cfg());
        let tight = allocate_bits(&workloads(), &dev, &[4, 8, 16], 6.0, &cfg());
        assert!(tight.mean_bits <= 6.0 + 1e-9);
        assert!(tight.total_edp < full.total_edp);
        assert!(tight.layers.iter().any(|l| l.bits < 16));
    }

    #[test]
    fn impossible_budget_saturates_at_lowest() {
        let alloc = allocate_bits(&workloads(), &Device::eyeriss_like(), &[4, 8], 1.0, &cfg());
        assert!(alloc.layers.iter().all(|l| l.bits == 4));
        assert!((alloc.mean_bits - 4.0).abs() < 1e-9);
    }

    #[test]
    fn mean_bits_is_mac_weighted() {
        // Demoting only the small layer moves the mean less than demoting
        // the big one; with a budget just under the top, the big layer
        // (better EDP saving) goes first.
        let alloc = allocate_bits(
            &workloads(),
            &Device::eyeriss_like(),
            &[8, 16],
            12.0,
            &cfg(),
        );
        assert!(alloc.mean_bits <= 12.0 + 1e-9);
    }
}
