//! Hardware-aware efficiency costs for the NAS objective.
//!
//! Eq. 2's efficiency loss is "`L_eff` (e.g., energy cost)". The default
//! supernet uses per-candidate FLOPs; this module derives *device energy*
//! tables instead, by costing every candidate operator of every slot under
//! an expert dataflow on the target device — making the search
//! hardware-aware in the same sense as the paper's end-to-end pipeline.

use crate::{CandidateKind, SearchSpace};
use instantnet_dataflow::ConvDims;
use instantnet_hwmodel::{baselines, evaluate_layer, Device};

/// Which quantity the supernet's efficiency loss penalizes.
#[derive(Debug, Clone, PartialEq)]
pub enum EfficiencyCost {
    /// Per-candidate FLOPs (device-independent; the default).
    Flops,
    /// Pre-computed per-slot, per-candidate costs (e.g. device energy from
    /// [`energy_table`]). Outer index = slot, inner = candidate.
    Table(Vec<Vec<f32>>),
}

impl EfficiencyCost {
    /// Validates a table against a search space.
    ///
    /// # Panics
    ///
    /// Panics if the table's shape does not match the space.
    pub fn validate(&self, space: &SearchSpace) {
        if let EfficiencyCost::Table(t) = self {
            assert_eq!(t.len(), space.layers().len(), "one row per slot");
            for (slot, row) in t.iter().enumerate() {
                assert_eq!(
                    row.len(),
                    space.layers()[slot].candidates.len(),
                    "one cost per candidate in slot {slot}"
                );
            }
        }
    }
}

/// The conv layers a candidate expands to, as hardware loop nests.
fn candidate_dims(
    space: &SearchSpace,
    slot: usize,
    cand: CandidateKind,
    in_hw: usize,
) -> Vec<(ConvDims, usize)> {
    let lc = &space.layers()[slot];
    match cand {
        CandidateKind::Skip => vec![],
        CandidateKind::MbConv { expand, kernel } => {
            let hidden = lc.in_c * expand;
            let mut out = Vec::new();
            let mut hw = in_hw;
            if expand > 1 {
                out.push((ConvDims::new(1, hidden, lc.in_c, hw, hw, 1, 1, 1), 1));
            }
            let oh = (hw + 2 * (kernel / 2) - kernel) / lc.stride + 1;
            // Depthwise: one 1-channel group per hidden channel.
            out.push((
                ConvDims::new(1, 1, 1, oh, oh, kernel, kernel, lc.stride),
                hidden,
            ));
            hw = oh;
            out.push((ConvDims::new(1, lc.out_c, hidden, hw, hw, 1, 1, 1), 1));
            out
        }
    }
}

/// Energy (pJ) of every candidate of every slot when executed on `device`
/// at `bits`, under the Eyeriss row-stationary expert dataflow — a cheap,
/// deterministic cost oracle for the search loop.
pub fn energy_table(space: &SearchSpace, device: &Device, bits: u8) -> Vec<Vec<f32>> {
    let slot_hw = space.slot_input_hw();
    space
        .layers()
        .iter()
        .enumerate()
        .map(|(slot, lc)| {
            lc.candidates
                .iter()
                .map(|&cand| {
                    candidate_dims(space, slot, cand, slot_hw[slot])
                        .into_iter()
                        .map(|(dims, mult)| {
                            let m = baselines::eyeriss_row_stationary(&dims, device, bits);
                            let cost = evaluate_layer(&dims, &m, device, bits)
                                .expect("expert baseline is legalized");
                            cost.energy_pj as f32 * mult as f32
                        })
                        .sum::<f32>()
                        .max(0.0) // normalize -0.0 from empty (skip) sums
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_table_shape_matches_space() {
        let space = SearchSpace::cifar_tiny(3);
        let t = energy_table(&space, &Device::eyeriss_like(), 8);
        EfficiencyCost::Table(t.clone()).validate(&space);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn skip_costs_nothing_and_big_blocks_cost_more() {
        let space = SearchSpace::cifar_tiny(3);
        let t = energy_table(&space, &Device::eyeriss_like(), 8);
        let lc = &space.layers()[0];
        let skip = lc
            .candidates
            .iter()
            .position(|c| *c == CandidateKind::Skip)
            .expect("slot 0 has skip");
        let small = lc
            .candidates
            .iter()
            .position(|c| {
                *c == CandidateKind::MbConv {
                    expand: 1,
                    kernel: 3,
                }
            })
            .expect("e1k3 present");
        let big = lc
            .candidates
            .iter()
            .position(|c| {
                *c == CandidateKind::MbConv {
                    expand: 6,
                    kernel: 5,
                }
            })
            .expect("e6k5 present");
        assert_eq!(t[0][skip], 0.0);
        assert!(t[0][small] > 0.0);
        assert!(t[0][big] > t[0][small]);
    }

    #[test]
    fn lower_bits_give_lower_energy_table() {
        let space = SearchSpace::cifar_tiny(2);
        let t4 = energy_table(&space, &Device::eyeriss_like(), 4);
        let t16 = energy_table(&space, &Device::eyeriss_like(), 16);
        for (r4, r16) in t4.iter().zip(&t16) {
            for (a, b) in r4.iter().zip(r16) {
                assert!(a <= b, "{a} vs {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "one cost per candidate")]
    fn validate_rejects_ragged_table() {
        let space = SearchSpace::cifar_tiny(2);
        let bad = vec![vec![1.0; 3], vec![1.0; 3]];
        EfficiencyCost::Table(bad).validate(&space);
    }
}
