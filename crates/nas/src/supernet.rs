//! The weight-sharing supernet with Gumbel-softmax architecture mixing.

use crate::efficiency::EfficiencyCost;
use crate::{CandidateKind, DerivedArch, SearchSpace};
use instantnet_nn::blocks::{ConvBnAct, InvertedResidual};
use instantnet_nn::layers::{Activation, QuantLinear};
use instantnet_nn::{ForwardCtx, Module};
use instantnet_tensor::{ops, Param, Tensor, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One searchable slot inside the supernet: every candidate operator is
/// instantiated with its own weights, and a `theta` logit vector mixes
/// their outputs.
struct MixedLayer {
    candidates: Vec<CandidateKind>,
    ops: Vec<Option<InvertedResidual>>, // `None` encodes skip
    theta: Param,
    /// Per-candidate efficiency cost (FLOPs by default, or device energy
    /// via [`crate::efficiency::energy_table`]).
    costs: Vec<f32>,
}

impl MixedLayer {
    /// Mixes candidate outputs with the given architecture weights `y`
    /// (a `[n_candidates]` probability vector from Gumbel-softmax).
    fn forward(&self, x: &Var, ctx: &mut ForwardCtx, y: &Var) -> Var {
        let mut acc: Option<Var> = None;
        for (i, op) in self.ops.iter().enumerate() {
            let out = match op {
                Some(block) => block.forward(x, ctx),
                None => x.clone(), // skip
            };
            let scaled = ops::scale_by_element(&out, y, i);
            acc = Some(match acc {
                Some(a) => a.add(&scaled),
                None => scaled,
            });
        }
        acc.expect("at least one candidate")
    }

    fn weight_params(&self) -> Vec<Param> {
        self.ops.iter().flatten().flat_map(|b| b.params()).collect()
    }
}

/// Output of one supernet forward pass.
pub struct SupernetOutput {
    /// Class logits `[N, classes]`.
    pub logits: Var,
    /// Differentiable expected efficiency cost of the sampled architecture
    /// (FLOPs or device energy, per construction), normalized by the most
    /// expensive possible architecture (`[1]`).
    pub expected_cost: Var,
}

/// The differentiable supernet: stem + mixed slots + head, with
/// architecture logits per slot.
pub struct Supernet {
    space: SearchSpace,
    stem: ConvBnAct,
    layers: Vec<MixedLayer>,
    head: ConvBnAct,
    classifier: QuantLinear,
    max_cost: f32,
    num_classes: usize,
}

impl Supernet {
    /// Instantiates the supernet for `space` with `n_bits` BN branches per
    /// operator, using per-candidate FLOPs as the efficiency cost.
    pub fn new(space: &SearchSpace, num_classes: usize, n_bits: usize, seed: u64) -> Self {
        Supernet::with_efficiency_cost(space, num_classes, n_bits, seed, EfficiencyCost::Flops)
    }

    /// Instantiates the supernet with an explicit efficiency cost — pass
    /// [`EfficiencyCost::Table`] (e.g. from
    /// [`crate::efficiency::energy_table`]) to make the Eq. 2 efficiency
    /// loss hardware-aware.
    ///
    /// # Panics
    ///
    /// Panics if a cost table's shape does not match the space.
    pub fn with_efficiency_cost(
        space: &SearchSpace,
        num_classes: usize,
        n_bits: usize,
        seed: u64,
        cost: EfficiencyCost,
    ) -> Self {
        cost.validate(space);
        let mut rng = StdRng::seed_from_u64(seed);
        let stem = ConvBnAct::new(
            &mut rng,
            "stem",
            3,
            space.stem_channels(),
            3,
            1,
            1,
            n_bits,
            Activation::Relu6,
            false,
        );
        let slot_hw = space.slot_input_hw();
        let mut layers = Vec::new();
        for (slot, lc) in space.layers().iter().enumerate() {
            let mut ops_vec = Vec::new();
            let mut costs = Vec::new();
            for (ci, &cand) in lc.candidates.iter().enumerate() {
                costs.push(match &cost {
                    EfficiencyCost::Flops => {
                        space.candidate_flops(slot, cand, slot_hw[slot]) as f32
                    }
                    EfficiencyCost::Table(t) => t[slot][ci],
                });
                match cand {
                    CandidateKind::Skip => ops_vec.push(None),
                    CandidateKind::MbConv { expand, kernel } => {
                        ops_vec.push(Some(InvertedResidual::new(
                            &mut rng,
                            &format!("slot{slot}.cand{ci}"),
                            lc.in_c,
                            lc.out_c,
                            expand,
                            kernel,
                            lc.stride,
                            n_bits,
                        )))
                    }
                }
            }
            let theta = Param::new(
                format!("slot{slot}.theta"),
                Tensor::zeros(&[lc.candidates.len()]),
            );
            layers.push(MixedLayer {
                candidates: lc.candidates.clone(),
                ops: ops_vec,
                theta,
                costs,
            });
        }
        let last_c = space.layers().last().expect("non-empty").out_c;
        let head = ConvBnAct::new(
            &mut rng,
            "head",
            last_c,
            space.head_channels(),
            1,
            1,
            1,
            n_bits,
            Activation::Relu6,
            true,
        );
        let classifier =
            QuantLinear::new(&mut rng, "classifier", space.head_channels(), num_classes);
        let max_cost: f32 = layers
            .iter()
            .map(|l| l.costs.iter().fold(0.0f32, |m, &f| m.max(f)))
            .sum::<f32>()
            .max(1.0);
        Supernet {
            space: space.clone(),
            stem,
            layers,
            head,
            classifier,
            max_cost,
            num_classes,
        }
    }

    /// The space this supernet was built for.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Runs the supernet with Gumbel-softmax sampled architecture weights
    /// at temperature `tau`.
    pub fn forward(
        &self,
        x: &Var,
        ctx: &mut ForwardCtx,
        tau: f32,
        rng: &mut StdRng,
    ) -> SupernetOutput {
        let mut cur = self.stem.forward(x, ctx);
        let mut cost_acc: Option<Var> = None;
        for layer in &self.layers {
            let y = gumbel_softmax(layer.theta.var(), tau, rng);
            cur = layer.forward(&cur, ctx, &y);
            let norm: Vec<f32> = layer.costs.iter().map(|f| f / self.max_cost).collect();
            let lf = ops::dot_const(&y, &norm);
            cost_acc = Some(match cost_acc {
                Some(a) => a.add(&lf),
                None => lf,
            });
        }
        cur = self.head.forward(&cur, ctx);
        let pooled = ops::global_avg_pool(&cur);
        let logits = self.classifier.forward(&pooled, ctx);
        SupernetOutput {
            logits,
            expected_cost: cost_acc.expect("at least one slot"),
        }
    }

    /// All operator weights (excludes architecture logits).
    pub fn weight_params(&self) -> Vec<Param> {
        let mut p = self.stem.params();
        for l in &self.layers {
            p.extend(l.weight_params());
        }
        p.extend(self.head.params());
        p.extend(self.classifier.params());
        p
    }

    /// The architecture logits, one vector per slot.
    pub fn arch_params(&self) -> Vec<Param> {
        self.layers.iter().map(|l| l.theta.clone()).collect()
    }

    /// Argmax-derives the discrete architecture from the current logits.
    pub fn derive(&self) -> DerivedArch {
        let choices = self
            .layers
            .iter()
            .map(|l| {
                let v = l.theta.var().value();
                v.data()
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .expect("non-empty candidates")
            })
            .collect();
        DerivedArch::new(self.space.clone(), choices)
    }

    /// Current softmax architecture distribution per slot (diagnostics).
    pub fn arch_distributions(&self) -> Vec<Vec<f32>> {
        self.layers
            .iter()
            .map(|l| {
                let v = l.theta.var().value();
                v.reshape(&[1, v.len()]).softmax_rows().data().to_vec()
            })
            .collect()
    }

    /// Candidate labels per slot (diagnostics).
    pub fn candidate_labels(&self) -> Vec<Vec<String>> {
        self.layers
            .iter()
            .map(|l| l.candidates.iter().map(CandidateKind::label).collect())
            .collect()
    }
}

/// Differentiable Gumbel-softmax sample over `theta` logits.
pub fn gumbel_softmax(theta: &Var, tau: f32, rng: &mut StdRng) -> Var {
    let n = theta.dims()[0];
    let noise: Vec<f32> = (0..n)
        .map(|_| {
            let u: f32 = rng.gen_range(1e-7..1.0);
            -(-u.ln()).ln()
        })
        .collect();
    let g = Var::constant(Tensor::from_vec(vec![n], noise));
    let z = theta.add(&g).scale(1.0 / tau.max(1e-6));
    ops::softmax_1d(&z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantnet_quant::{BitWidthSet, Quantizer};

    fn tiny_supernet() -> Supernet {
        Supernet::new(&SearchSpace::cifar_tiny(3), 5, 2, 0)
    }

    #[test]
    fn forward_produces_logits_and_flops() {
        let sn = tiny_supernet();
        let bits = BitWidthSet::new(vec![4, 32]).unwrap();
        let x = Var::constant(Tensor::zeros(&[2, 3, 8, 8]));
        let mut ctx = ForwardCtx::train(&bits, 0, Quantizer::Sbm);
        let mut rng = StdRng::seed_from_u64(1);
        let out = sn.forward(&x, &mut ctx, 3.0, &mut rng);
        assert_eq!(out.logits.dims(), vec![2, 5]);
        let f = out.expected_cost.item();
        assert!(f > 0.0 && f <= 3.0, "normalized flops {f}");
    }

    #[test]
    fn gumbel_softmax_is_probability_vector() {
        let theta = Var::leaf(Tensor::from_vec(vec![4], vec![1.0, 0.0, -1.0, 2.0]), true);
        let mut rng = StdRng::seed_from_u64(2);
        let y = gumbel_softmax(&theta, 1.0, &mut rng);
        let v = y.value();
        let sum: f32 = v.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(v.data().iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn low_temperature_sharpens_distribution() {
        let theta = Var::leaf(Tensor::from_vec(vec![3], vec![2.0, 0.0, -2.0]), true);
        let sharp = gumbel_softmax(&theta, 0.05, &mut StdRng::seed_from_u64(3));
        let max = sharp.value().max_abs();
        assert!(
            max > 0.95,
            "low-tau sample should be nearly one-hot, got {max}"
        );
    }

    #[test]
    fn arch_gradients_flow_from_classification_loss() {
        let sn = tiny_supernet();
        let bits = BitWidthSet::new(vec![4, 32]).unwrap();
        let x = Var::constant(instantnet_tensor::init::uniform(
            &mut StdRng::seed_from_u64(4),
            &[2, 3, 8, 8],
            -1.0,
            1.0,
        ));
        let mut ctx = ForwardCtx::train(&bits, 0, Quantizer::Sbm);
        let mut rng = StdRng::seed_from_u64(5);
        let out = sn.forward(&x, &mut ctx, 3.0, &mut rng);
        let loss =
            ops::softmax_cross_entropy(&out.logits, &[0, 1]).add(&out.expected_cost.scale(0.1));
        loss.backward();
        for theta in sn.arch_params() {
            let g = theta.var().grad().expect("theta grad");
            assert!(g.max_abs() > 0.0, "zero grad for {}", theta.name());
        }
    }

    #[test]
    fn derive_picks_argmax() {
        let sn = tiny_supernet();
        // Bias slot 0's logits toward candidate 2.
        sn.arch_params()[0].var().update_value(|t| {
            t.data_mut()[2] = 5.0;
        });
        let arch = sn.derive();
        let labels = sn.candidate_labels();
        assert_eq!(arch.describe().split('|').next().unwrap(), labels[0][2]);
    }

    #[test]
    fn weight_and_arch_params_are_disjoint() {
        let sn = tiny_supernet();
        let arch_ids: Vec<u64> = sn.arch_params().iter().map(|p| p.var().id()).collect();
        for w in sn.weight_params() {
            assert!(!arch_ids.contains(&w.var().id()));
        }
        assert_eq!(sn.arch_params().len(), 3);
    }

    #[test]
    fn expected_flops_prefers_skip_when_biased() {
        let sn = tiny_supernet();
        let bits = BitWidthSet::new(vec![4]).unwrap();
        let x = Var::constant(Tensor::zeros(&[1, 3, 8, 8]));
        let run = |sn: &Supernet| {
            let mut ctx = ForwardCtx::train(&bits, 0, Quantizer::Sbm);
            let mut rng = StdRng::seed_from_u64(6);
            sn.forward(&x, &mut ctx, 0.05, &mut rng)
                .expected_cost
                .item()
        };
        let before = run(&sn);
        // Bias every slot with a skip candidate hard toward skip.
        for (slot, labels) in sn.candidate_labels().into_iter().enumerate() {
            if let Some(i) = labels.iter().position(|l| l == "skip") {
                sn.arch_params()[slot].var().update_value(|t| {
                    t.data_mut()[i] = 50.0;
                });
            }
        }
        let after = run(&sn);
        assert!(after < before, "flops {before} -> {after}");
    }
}
