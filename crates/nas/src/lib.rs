//! Switchable-Precision Neural Architecture Search (SP-NAS).
//!
//! SP-NAS (§III-C of the paper) searches for architectures that *natively*
//! tolerate every bit-width in a candidate set. It is differentiable NAS in
//! the FBNet mold — a weight-sharing supernet whose per-layer candidate
//! operators are mixed by Gumbel-softmax architecture weights — with the
//! paper's heterogeneous bi-level update (Eq. 2):
//!
//! * supernet **weights** are updated with the cascade-distillation (CDT)
//!   loss summed over all bit-widths, on one half of the training set;
//! * **architecture parameters** are updated only at the *lowest*
//!   bit-width (plus an efficiency loss), on the other half — forcing the
//!   search to solve the SP-Net bottleneck.
//!
//! [`SearchMode::FpNas`] and [`SearchMode::LpNas`] are the Fig. 4 baselines
//! that search at a single fixed precision instead.
//!
//! # Example
//!
//! ```
//! use instantnet_nas::{SearchSpace, CandidateKind};
//! let space = SearchSpace::cifar_tiny(4);
//! assert_eq!(space.layers().len(), 4);
//! assert!(space.layers()[0].candidates.contains(&CandidateKind::Skip)
//!     || space.layers()[0].candidates.iter().any(|c| matches!(c, CandidateKind::MbConv { .. })));
//! ```

pub mod efficiency;
pub mod search;
pub mod supernet;

pub use efficiency::{energy_table, EfficiencyCost};
pub use search::{search, search_with_cost, NasConfig, SearchMode, SearchOutcome};
pub use supernet::Supernet;

use instantnet_nn::blocks::{ConvBnAct, InvertedResidual};
use instantnet_nn::layers::{Activation, GlobalAvgPool, QuantLinear};
use instantnet_nn::{models::Network, ConvSpec, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One candidate operator in a searchable layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CandidateKind {
    /// MobileNetV2 inverted residual with the given expansion ratio and
    /// depthwise kernel size.
    MbConv {
        /// Expansion ratio (hidden = in_c * expand).
        expand: usize,
        /// Depthwise kernel size.
        kernel: usize,
    },
    /// Identity — the layer is removed from the derived network. Only
    /// valid when the layer preserves shape.
    Skip,
}

impl CandidateKind {
    /// Short label used in logs (`e3k5`, `skip`).
    pub fn label(&self) -> String {
        match self {
            CandidateKind::MbConv { expand, kernel } => format!("e{expand}k{kernel}"),
            CandidateKind::Skip => "skip".to_string(),
        }
    }
}

/// A searchable layer slot: fixed input/output geometry, choice of
/// operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerChoice {
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Stride of this slot.
    pub stride: usize,
    /// Candidate operators.
    pub candidates: Vec<CandidateKind>,
}

impl LayerChoice {
    /// The FBNet-style candidate menu for this slot's geometry: six MBConv
    /// variants plus skip when the slot preserves shape.
    pub fn fbnet_menu(in_c: usize, out_c: usize, stride: usize) -> Self {
        let mut candidates = vec![
            CandidateKind::MbConv {
                expand: 1,
                kernel: 3,
            },
            CandidateKind::MbConv {
                expand: 3,
                kernel: 3,
            },
            CandidateKind::MbConv {
                expand: 6,
                kernel: 3,
            },
            CandidateKind::MbConv {
                expand: 1,
                kernel: 5,
            },
            CandidateKind::MbConv {
                expand: 3,
                kernel: 5,
            },
            CandidateKind::MbConv {
                expand: 6,
                kernel: 5,
            },
        ];
        if stride == 1 && in_c == out_c {
            candidates.push(CandidateKind::Skip);
        }
        LayerChoice {
            in_c,
            out_c,
            stride,
            candidates,
        }
    }
}

/// The macro-architecture being searched: stem/head geometry plus a list of
/// searchable layer slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    stem_c: usize,
    layers: Vec<LayerChoice>,
    head_c: usize,
    in_hw: (usize, usize),
}

impl SearchSpace {
    /// Builds a space from explicit slots.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or channel chaining is inconsistent.
    pub fn new(
        stem_c: usize,
        layers: Vec<LayerChoice>,
        head_c: usize,
        in_hw: (usize, usize),
    ) -> Self {
        assert!(!layers.is_empty(), "search space needs at least one slot");
        assert_eq!(layers[0].in_c, stem_c, "first slot must consume the stem");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_c, pair[1].in_c,
                "slot channel chain must be consistent"
            );
        }
        SearchSpace {
            stem_c,
            layers,
            head_c,
            in_hw,
        }
    }

    /// A reproduction-scale CIFAR space: `n_slots` FBNet-menu slots with a
    /// gentle channel ramp and one stride-2 stage in the middle.
    pub fn cifar_tiny(n_slots: usize) -> Self {
        assert!(n_slots >= 2, "need at least 2 slots");
        let stem_c = 8;
        let mut layers = Vec::new();
        let mut in_c = stem_c;
        for i in 0..n_slots {
            let (out_c, stride) = if i == n_slots / 2 {
                (in_c * 2, 2)
            } else {
                (in_c, 1)
            };
            layers.push(LayerChoice::fbnet_menu(in_c, out_c, stride));
            in_c = out_c;
        }
        SearchSpace::new(stem_c, layers, in_c * 2, (8, 8))
    }

    /// The searchable slots.
    pub fn layers(&self) -> &[LayerChoice] {
        &self.layers
    }

    /// Stem output channels.
    pub fn stem_channels(&self) -> usize {
        self.stem_c
    }

    /// Head (final 1x1 conv) channels.
    pub fn head_channels(&self) -> usize {
        self.head_c
    }

    /// Expected input resolution.
    pub fn in_hw(&self) -> (usize, usize) {
        self.in_hw
    }

    /// Single-sample FLOPs of candidate `cand` placed in slot `slot`,
    /// given the slot's input spatial size.
    pub fn candidate_flops(&self, slot: usize, cand: CandidateKind, in_hw: usize) -> u64 {
        let lc = &self.layers[slot];
        match cand {
            CandidateKind::Skip => 0,
            CandidateKind::MbConv { expand, kernel } => {
                let hidden = lc.in_c * expand;
                let mut total = 0u64;
                let mut hw = in_hw;
                if expand > 1 {
                    total += ConvSpec {
                        in_c: lc.in_c,
                        out_c: hidden,
                        kernel: 1,
                        stride: 1,
                        pad: 0,
                        groups: 1,
                        in_h: hw,
                        in_w: hw,
                    }
                    .flops();
                }
                total += ConvSpec {
                    in_c: hidden,
                    out_c: hidden,
                    kernel,
                    stride: lc.stride,
                    pad: kernel / 2,
                    groups: hidden,
                    in_h: hw,
                    in_w: hw,
                }
                .flops();
                hw = (hw + 2 * (kernel / 2) - kernel) / lc.stride + 1;
                total += ConvSpec {
                    in_c: hidden,
                    out_c: lc.out_c,
                    kernel: 1,
                    stride: 1,
                    pad: 0,
                    groups: 1,
                    in_h: hw,
                    in_w: hw,
                }
                .flops();
                total
            }
        }
    }

    /// Spatial size at the input of each slot (stem is stride 1).
    pub fn slot_input_hw(&self) -> Vec<usize> {
        let mut hw = self.in_hw.0;
        let mut out = Vec::with_capacity(self.layers.len());
        for lc in &self.layers {
            out.push(hw);
            if lc.stride > 1 {
                // Same-padded depthwise conv: output size is independent of
                // the kernel choice, so the k=3 formula covers all menus.
                hw = (hw + 2 - 3) / lc.stride + 1;
            }
        }
        out
    }
}

/// Error parsing a textual architecture description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseArchError {
    /// The description has the wrong number of slots.
    SlotCount {
        /// Slots in the search space.
        expected: usize,
        /// Slots in the description.
        got: usize,
    },
    /// A label does not name any candidate of its slot.
    UnknownCandidate {
        /// Slot index.
        slot: usize,
        /// Offending label.
        label: String,
    },
}

impl std::fmt::Display for ParseArchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseArchError::SlotCount { expected, got } => {
                write!(f, "expected {expected} slots, got {got}")
            }
            ParseArchError::UnknownCandidate { slot, label } => {
                write!(f, "slot {slot} has no candidate labeled '{label}'")
            }
        }
    }
}

impl std::error::Error for ParseArchError {}

/// A concrete architecture derived from a search: one candidate index per
/// slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivedArch {
    space: SearchSpace,
    choices: Vec<usize>,
}

impl DerivedArch {
    /// Creates a derived architecture.
    ///
    /// # Panics
    ///
    /// Panics if `choices` length differs from the slot count or any index
    /// is out of range.
    pub fn new(space: SearchSpace, choices: Vec<usize>) -> Self {
        assert_eq!(
            choices.len(),
            space.layers.len(),
            "one choice per slot required"
        );
        for (slot, &c) in choices.iter().enumerate() {
            assert!(
                c < space.layers[slot].candidates.len(),
                "choice {c} out of range for slot {slot}"
            );
        }
        DerivedArch { space, choices }
    }

    /// Per-slot chosen candidates.
    pub fn choices(&self) -> Vec<CandidateKind> {
        self.choices
            .iter()
            .enumerate()
            .map(|(slot, &c)| self.space.layers[slot].candidates[c])
            .collect()
    }

    /// The underlying search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Human-readable architecture string, e.g. `e3k3|skip|e6k5`.
    pub fn describe(&self) -> String {
        self.choices()
            .iter()
            .map(CandidateKind::label)
            .collect::<Vec<_>>()
            .join("|")
    }

    /// Parses a [`DerivedArch::describe`] string back into an architecture
    /// for `space` — lets experiment scripts persist and reload search
    /// results as plain text.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArchError`] if the slot count differs or a label does
    /// not name a candidate of its slot.
    pub fn parse(space: SearchSpace, text: &str) -> Result<Self, ParseArchError> {
        let labels: Vec<&str> = text.split('|').collect();
        if labels.len() != space.layers.len() {
            return Err(ParseArchError::SlotCount {
                expected: space.layers.len(),
                got: labels.len(),
            });
        }
        let mut choices = Vec::with_capacity(labels.len());
        for (slot, label) in labels.iter().enumerate() {
            let idx = space.layers[slot]
                .candidates
                .iter()
                .position(|c| c.label() == *label)
                .ok_or_else(|| ParseArchError::UnknownCandidate {
                    slot,
                    label: label.to_string(),
                })?;
            choices.push(idx);
        }
        Ok(DerivedArch { space, choices })
    }

    /// Builds the derived network (skip slots are omitted entirely).
    pub fn build_network(&self, num_classes: usize, n_bits: usize, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut body = Sequential::new();
        body.push(Box::new(ConvBnAct::new(
            &mut rng,
            "stem",
            3,
            self.space.stem_c,
            3,
            1,
            1,
            n_bits,
            Activation::Relu6,
            false,
        )));
        for (slot, cand) in self.choices().into_iter().enumerate() {
            let lc = &self.space.layers[slot];
            match cand {
                CandidateKind::Skip => {}
                CandidateKind::MbConv { expand, kernel } => {
                    body.push(Box::new(InvertedResidual::new(
                        &mut rng,
                        &format!("slot{slot}"),
                        lc.in_c,
                        lc.out_c,
                        expand,
                        kernel,
                        lc.stride,
                        n_bits,
                    )));
                }
            }
        }
        let last_c = self.space.layers.last().expect("non-empty").out_c;
        body.push(Box::new(ConvBnAct::new(
            &mut rng,
            "head",
            last_c,
            self.space.head_c,
            1,
            1,
            1,
            n_bits,
            Activation::Relu6,
            true,
        )));
        body.push(Box::new(GlobalAvgPool));
        body.push(Box::new(QuantLinear::new(
            &mut rng,
            "classifier",
            self.space.head_c,
            num_classes,
        )));
        Network::new(
            format!("derived[{}]", self.describe()),
            body,
            (3, self.space.in_hw.0, self.space.in_hw.1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantnet_nn::Module;
    use instantnet_quant::{BitWidthSet, Quantizer};
    use instantnet_tensor::{Tensor, Var};

    #[test]
    fn fbnet_menu_includes_skip_only_when_shape_preserved() {
        let same = LayerChoice::fbnet_menu(8, 8, 1);
        assert!(same.candidates.contains(&CandidateKind::Skip));
        assert_eq!(same.candidates.len(), 7);
        let strided = LayerChoice::fbnet_menu(8, 16, 2);
        assert!(!strided.candidates.contains(&CandidateKind::Skip));
        assert_eq!(strided.candidates.len(), 6);
    }

    #[test]
    fn cifar_tiny_space_chains_channels() {
        let space = SearchSpace::cifar_tiny(4);
        let l = space.layers();
        for pair in l.windows(2) {
            assert_eq!(pair[0].out_c, pair[1].in_c);
        }
        assert_eq!(l.iter().filter(|lc| lc.stride == 2).count(), 1);
    }

    #[test]
    fn candidate_flops_ordering() {
        let space = SearchSpace::cifar_tiny(4);
        let f_skip = space.candidate_flops(0, CandidateKind::Skip, 8);
        let f_small = space.candidate_flops(
            0,
            CandidateKind::MbConv {
                expand: 1,
                kernel: 3,
            },
            8,
        );
        let f_big = space.candidate_flops(
            0,
            CandidateKind::MbConv {
                expand: 6,
                kernel: 5,
            },
            8,
        );
        assert_eq!(f_skip, 0);
        assert!(f_small > 0);
        assert!(f_big > f_small);
    }

    #[test]
    fn derived_arch_builds_runnable_network() {
        let space = SearchSpace::cifar_tiny(3);
        // Pick the first candidate everywhere.
        let arch = DerivedArch::new(space, vec![0, 0, 0]);
        let bits = BitWidthSet::new(vec![4, 32]).unwrap();
        let net = arch.build_network(10, bits.len(), 0);
        let x = Var::constant(Tensor::zeros(&[1, 3, 8, 8]));
        let mut ctx = instantnet_nn::ForwardCtx::train(&bits, 0, Quantizer::Sbm);
        let y = net.forward(&x, &mut ctx);
        assert_eq!(y.dims(), vec![1, 10]);
        assert!(net.flops() > 0);
    }

    #[test]
    fn skip_choice_reduces_flops() {
        let space = SearchSpace::cifar_tiny(3);
        let skip_idx = space.layers()[0]
            .candidates
            .iter()
            .position(|c| *c == CandidateKind::Skip)
            .expect("slot 0 preserves shape");
        let with_skip = DerivedArch::new(space.clone(), vec![skip_idx, 0, 0]);
        let without = DerivedArch::new(space, vec![0, 0, 0]);
        let f_skip = with_skip.build_network(10, 1, 0).flops();
        let f_full = without.build_network(10, 1, 0).flops();
        assert!(f_skip < f_full);
        assert!(with_skip.describe().starts_with("skip"));
    }

    #[test]
    fn describe_parse_roundtrip() {
        let space = SearchSpace::cifar_tiny(3);
        let arch = DerivedArch::new(space.clone(), vec![2, 0, 5]);
        let text = arch.describe();
        let parsed = DerivedArch::parse(space, &text).unwrap();
        assert_eq!(parsed, arch);
    }

    #[test]
    fn parse_rejects_wrong_slot_count() {
        let space = SearchSpace::cifar_tiny(3);
        let err = DerivedArch::parse(space, "e1k3|e1k3").unwrap_err();
        assert!(matches!(
            err,
            ParseArchError::SlotCount {
                expected: 3,
                got: 2
            }
        ));
    }

    #[test]
    fn parse_rejects_unknown_label() {
        let space = SearchSpace::cifar_tiny(3);
        let err = DerivedArch::parse(space, "e1k3|bogus|e1k3").unwrap_err();
        assert!(
            matches!(err, ParseArchError::UnknownCandidate { slot: 1, .. }),
            "{err}"
        );
    }

    #[test]
    #[should_panic(expected = "choice")]
    fn derived_arch_validates_choice_range() {
        let space = SearchSpace::cifar_tiny(3);
        let _ = DerivedArch::new(space, vec![0, 0, 99]);
    }
}
