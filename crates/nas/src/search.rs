//! The bi-level search loop (Eq. 2) and its Fig. 4 baselines.

use crate::supernet::Supernet;
use crate::{DerivedArch, SearchSpace};
use instantnet_data::{BatchIter, Dataset};
use instantnet_quant::{BitWidthSet, Quantizer};
use instantnet_tensor::{ops, Var};
use instantnet_train::{Adam, CosineLr, Optimizer, PrecisionLadder, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which precision(s) drive the search — the Fig. 4 ablation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// InstantNet's SP-NAS: supernet weights trained with CDT over *all*
    /// bit-widths; architecture parameters updated at the *lowest*
    /// bit-width.
    SpNas,
    /// Full-Precision NAS baseline: both updates at the highest bit-width.
    FpNas,
    /// Low-Precision NAS baseline: both updates at the lowest bit-width
    /// only (no cascade supervision).
    LpNas,
}

impl SearchMode {
    /// Short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            SearchMode::SpNas => "SP-NAS",
            SearchMode::FpNas => "FP-NAS",
            SearchMode::LpNas => "LP-NAS",
        }
    }
}

/// Search hyper-parameters. Defaults follow the paper's CIFAR settings at
/// reproduction scale (SGD 0.025 cosine for weights, Adam 3e-4 for
/// architecture, Gumbel temperature 3.0 decayed 0.94/epoch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NasConfig {
    /// Search epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Weight learning rate (cosine-decayed).
    pub w_lr: f32,
    /// Weight momentum.
    pub w_momentum: f32,
    /// Weight decay.
    pub w_decay: f32,
    /// Architecture (Adam) learning rate.
    pub arch_lr: f32,
    /// Efficiency-loss coefficient λ: larger → smaller architectures.
    pub lambda: f32,
    /// Initial Gumbel-softmax temperature.
    pub tau0: f32,
    /// Per-epoch temperature decay factor.
    pub tau_decay: f32,
    /// CDT distillation weight β.
    pub beta: f32,
    /// Quantizer.
    pub quantizer: Quantizer,
    /// Epochs during which only weights train (no architecture updates) —
    /// standard supernet warm-up so early, noisy weights do not mislead the
    /// architecture distribution.
    pub warmup_epochs: usize,
    /// RNG seed (initialization, shuffling, Gumbel noise).
    pub seed: u64,
}

impl Default for NasConfig {
    fn default() -> Self {
        NasConfig {
            epochs: 6,
            batch_size: 16,
            w_lr: 0.025,
            w_momentum: 0.9,
            w_decay: 1e-4,
            arch_lr: 3e-4,
            lambda: 0.3,
            tau0: 3.0,
            tau_decay: 0.94,
            beta: 0.2,
            quantizer: Quantizer::Sbm,
            warmup_epochs: 1,
            seed: 0,
        }
    }
}

/// Result of a search run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The argmax-derived architecture.
    pub arch: DerivedArch,
    /// Single-sample FLOPs of the derived network (classification body).
    pub derived_flops: u64,
    /// Final per-slot architecture distributions (diagnostics).
    pub distributions: Vec<Vec<f32>>,
}

/// Runs differentiable architecture search over `space` and derives the
/// final architecture.
///
/// The training split is divided in half: supernet weights train on one
/// half, architecture parameters on the other, alternating every batch —
/// the standard first-order bi-level approximation of Eq. 2.
pub fn search(
    space: &SearchSpace,
    ds: &Dataset,
    bits: &BitWidthSet,
    mode: SearchMode,
    cfg: NasConfig,
) -> SearchOutcome {
    search_with_cost(space, ds, bits, mode, cfg, crate::EfficiencyCost::Flops)
}

/// Like [`search`], but with an explicit efficiency cost for Eq. 2's
/// `L_eff` — pass a device-energy table from
/// [`crate::efficiency::energy_table`] for hardware-aware search.
pub fn search_with_cost(
    space: &SearchSpace,
    ds: &Dataset,
    bits: &BitWidthSet,
    mode: SearchMode,
    cfg: NasConfig,
    cost: crate::EfficiencyCost,
) -> SearchOutcome {
    let supernet =
        Supernet::with_efficiency_cost(space, ds.num_classes(), bits.len(), cfg.seed, cost);
    let ladder = PrecisionLadder::uniform(bits);
    let (half_w, half_a) = ds.half_split(cfg.seed);
    let w_params = supernet.weight_params();
    let a_params = supernet.arch_params();
    let mut w_opt = Sgd::new(cfg.w_lr, cfg.w_momentum, cfg.w_decay);
    let mut a_opt = Adam::new(cfg.arch_lr);
    let schedule = CosineLr::new(cfg.w_lr, cfg.epochs.max(1));
    let mut tau = cfg.tau0;
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(17));
    let arch_rung = match mode {
        SearchMode::SpNas | SearchMode::LpNas => 0,
        SearchMode::FpNas => ladder.len() - 1,
    };
    for epoch in 0..cfg.epochs {
        w_opt.set_lr(schedule.at(epoch));
        let w_batches: Vec<Vec<usize>> =
            BatchIter::new(half_w.clone(), cfg.batch_size, cfg.seed + 2 * epoch as u64).collect();
        let a_batches: Vec<Vec<usize>> = BatchIter::new(
            half_a.clone(),
            cfg.batch_size,
            cfg.seed + 2 * epoch as u64 + 1,
        )
        .collect();
        for (wb, ab) in w_batches.iter().zip(a_batches.iter()) {
            // --- weight step ---
            let (x, labels) = ds.train().batch(wb);
            let xv = Var::constant(x);
            let w_loss = match mode {
                SearchMode::SpNas => {
                    supernet_cdt_loss(&supernet, &xv, &labels, &ladder, cfg, tau, &mut rng)
                }
                SearchMode::FpNas => supernet_ce_loss(
                    &supernet,
                    &xv,
                    &labels,
                    &ladder,
                    ladder.len() - 1,
                    cfg,
                    tau,
                    &mut rng,
                ),
                SearchMode::LpNas => {
                    supernet_ce_loss(&supernet, &xv, &labels, &ladder, 0, cfg, tau, &mut rng)
                }
            };
            w_loss.backward();
            // Only weights move in this phase.
            for t in &a_params {
                t.var().zero_grad();
            }
            w_opt.step(&w_params);
            // --- architecture step (skipped during warm-up) ---
            if epoch < cfg.warmup_epochs {
                continue;
            }
            let (x, labels) = ds.train().batch(ab);
            let xv = Var::constant(x);
            let mut ctx = ladder.train_ctx(arch_rung, cfg.quantizer);
            let out = supernet.forward(&xv, &mut ctx, tau, &mut rng);
            let loss = ops::softmax_cross_entropy(&out.logits, &labels)
                .add(&out.expected_cost.scale(cfg.lambda));
            loss.backward();
            for w in &w_params {
                w.var().zero_grad();
            }
            a_opt.step(&a_params);
        }
        tau *= cfg.tau_decay;
    }
    let arch = supernet.derive();
    let derived_flops = arch.build_network(ds.num_classes(), 1, cfg.seed).flops();
    SearchOutcome {
        distributions: supernet.arch_distributions(),
        derived_flops,
        arch,
    }
}

/// CDT loss (Eq. 1) over the supernet: one Gumbel-sampled forward per rung,
/// cross-entropy plus cascade distillation with stop-gradient teachers.
fn supernet_cdt_loss(
    supernet: &Supernet,
    x: &Var,
    labels: &[usize],
    ladder: &PrecisionLadder,
    cfg: NasConfig,
    tau: f32,
    rng: &mut StdRng,
) -> Var {
    let n = ladder.len();
    let logits: Vec<Var> = (0..n)
        .map(|i| {
            let mut ctx = ladder.train_ctx(i, cfg.quantizer);
            supernet.forward(x, &mut ctx, tau, rng).logits
        })
        .collect();
    let teachers: Vec<Var> = logits.iter().map(Var::detach).collect();
    let mut total: Option<Var> = None;
    for (i, logit) in logits.iter().enumerate() {
        let mut li = ops::softmax_cross_entropy(logit, labels);
        for teacher in teachers.iter().skip(i + 1) {
            li = li.add(&ops::mse_loss(logit, teacher).scale(cfg.beta));
        }
        total = Some(match total {
            Some(t) => t.add(&li),
            None => li,
        });
    }
    total.expect("ladder non-empty").scale(1.0 / n as f32)
}

/// Plain cross-entropy at one rung (FP-NAS / LP-NAS weight updates).
#[allow(clippy::too_many_arguments)]
fn supernet_ce_loss(
    supernet: &Supernet,
    x: &Var,
    labels: &[usize],
    ladder: &PrecisionLadder,
    rung: usize,
    cfg: NasConfig,
    tau: f32,
    rng: &mut StdRng,
) -> Var {
    let mut ctx = ladder.train_ctx(rung, cfg.quantizer);
    let out = supernet.forward(x, &mut ctx, tau, rng);
    ops::softmax_cross_entropy(&out.logits, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantnet_data::DatasetSpec;

    fn quick_cfg() -> NasConfig {
        NasConfig {
            epochs: 2,
            batch_size: 12,
            ..NasConfig::default()
        }
    }

    #[test]
    fn search_produces_valid_architecture() {
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let space = SearchSpace::cifar_tiny(3);
        let bits = BitWidthSet::new(vec![4, 32]).unwrap();
        let out = search(&space, &ds, &bits, SearchMode::SpNas, quick_cfg());
        assert_eq!(out.arch.choices().len(), 3);
        assert!(out.derived_flops > 0);
        assert_eq!(out.distributions.len(), 3);
        for d in &out.distributions {
            let s: f32 = d.iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn search_is_deterministic_under_seed() {
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let space = SearchSpace::cifar_tiny(3);
        let bits = BitWidthSet::new(vec![4, 32]).unwrap();
        let a = search(&space, &ds, &bits, SearchMode::SpNas, quick_cfg());
        let b = search(&space, &ds, &bits, SearchMode::SpNas, quick_cfg());
        assert_eq!(a.arch.describe(), b.arch.describe());
    }

    #[test]
    fn higher_lambda_yields_smaller_architectures() {
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let space = SearchSpace::cifar_tiny(4);
        let bits = BitWidthSet::new(vec![4, 32]).unwrap();
        let small = search(
            &space,
            &ds,
            &bits,
            SearchMode::SpNas,
            NasConfig {
                lambda: 20.0,
                epochs: 3,
                ..quick_cfg()
            },
        );
        let large = search(
            &space,
            &ds,
            &bits,
            SearchMode::SpNas,
            NasConfig {
                lambda: 0.0,
                epochs: 3,
                ..quick_cfg()
            },
        );
        assert!(
            small.derived_flops <= large.derived_flops,
            "lambda=20 flops {} vs lambda=0 flops {}",
            small.derived_flops,
            large.derived_flops
        );
    }

    #[test]
    fn energy_aware_search_runs_and_differs_in_cost_basis() {
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let space = SearchSpace::cifar_tiny(2);
        let bits = BitWidthSet::new(vec![4, 32]).unwrap();
        let table =
            crate::efficiency::energy_table(&space, &instantnet_hwmodel::Device::eyeriss_like(), 4);
        let out = crate::search_with_cost(
            &space,
            &ds,
            &bits,
            SearchMode::SpNas,
            NasConfig {
                epochs: 1,
                ..quick_cfg()
            },
            crate::EfficiencyCost::Table(table),
        );
        assert_eq!(out.arch.choices().len(), 2);
    }

    #[test]
    fn all_modes_run() {
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let space = SearchSpace::cifar_tiny(2);
        let bits = BitWidthSet::new(vec![4, 32]).unwrap();
        for mode in [SearchMode::SpNas, SearchMode::FpNas, SearchMode::LpNas] {
            let out = search(
                &space,
                &ds,
                &bits,
                mode,
                NasConfig {
                    epochs: 1,
                    ..quick_cfg()
                },
            );
            assert_eq!(out.arch.choices().len(), 2, "{}", mode.label());
        }
    }
}
