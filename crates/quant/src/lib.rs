//! Bit-widths, bit-width sets, and quantizers for switchable-precision
//! networks.
//!
//! A switchable-precision network (SP-Net) shares one set of full-precision
//! weights and, at inference time, quantizes weights and activations to the
//! currently selected bit-width from a [`BitWidthSet`]. This crate provides:
//!
//! * [`BitWidth`] / [`BitWidthSet`] — the candidate precisions (index 0 is
//!   the lowest bit-width, the accuracy bottleneck the paper targets).
//! * [`Quantizer`] — the quantization rules evaluated in the paper:
//!   [`Quantizer::Dorefa`] (Zhou et al.) and [`Quantizer::Sbm`]
//!   (Banner et al., the paper's default), plus full-precision identity.
//!   All quantizers differentiate through a straight-through estimator.
//!
//! # Example
//!
//! ```
//! use instantnet_quant::{BitWidthSet, Quantizer};
//! use instantnet_tensor::Tensor;
//!
//! let bits = BitWidthSet::new(vec![4, 8, 12, 16, 32])?;
//! assert_eq!(bits.lowest().get(), 4);
//! let q = Quantizer::Sbm;
//! let w = Tensor::from_vec(vec![2, 2], vec![0.3, -1.2, 0.9, 0.05]);
//! let wq = q.quantize_weights_tensor(&w, bits.lowest());
//! assert!(wq.max_abs() <= w.max_abs() + 1e-6);
//! # Ok::<(), instantnet_quant::BitWidthError>(())
//! ```

use instantnet_tensor::{ops, Tensor, Var};
use std::error::Error;
use std::fmt;

/// A quantization precision in bits. `32` denotes full precision (no
/// quantization).
///
/// # Example
///
/// ```
/// use instantnet_quant::BitWidth;
/// assert!(BitWidth::new(32).is_full_precision());
/// assert_eq!(BitWidth::new(4).levels(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BitWidth(u8);

impl BitWidth {
    /// Full precision marker.
    pub const FULL: BitWidth = BitWidth(32);

    /// Creates a bit-width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 32.
    pub fn new(bits: u8) -> Self {
        assert!((1..=32).contains(&bits), "bit-width must be in 1..=32");
        BitWidth(bits)
    }

    /// Raw number of bits.
    pub fn get(&self) -> u8 {
        self.0
    }

    /// Whether this bit-width means "do not quantize".
    pub fn is_full_precision(&self) -> bool {
        self.0 >= 32
    }

    /// Number of representable levels, `2^bits` (saturates for ≥ 31 bits).
    pub fn levels(&self) -> u64 {
        1u64 << self.0.min(63)
    }
}

impl fmt::Display for BitWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.0)
    }
}

impl From<u8> for BitWidth {
    fn from(b: u8) -> Self {
        BitWidth::new(b)
    }
}

/// Error constructing a [`BitWidthSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitWidthError {
    /// The candidate list was empty.
    Empty,
    /// The candidate list contained a duplicate bit-width.
    Duplicate(u8),
}

impl fmt::Display for BitWidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitWidthError::Empty => write!(f, "bit-width set must not be empty"),
            BitWidthError::Duplicate(b) => write!(f, "duplicate bit-width {b} in set"),
        }
    }
}

impl Error for BitWidthError {}

/// The ordered set of candidate bit-widths an SP-Net can switch between.
///
/// Stored ascending: index `0` is the lowest precision — the accuracy
/// bottleneck that both CDT and SP-NAS specifically target.
///
/// # Example
///
/// ```
/// use instantnet_quant::BitWidthSet;
/// let set = BitWidthSet::new(vec![8, 4, 32])?; // order does not matter
/// assert_eq!(set.widths().iter().map(|b| b.get()).collect::<Vec<_>>(), vec![4, 8, 32]);
/// assert_eq!(set.teachers_of(0).count(), 2); // 8-bit and 32-bit teach 4-bit
/// # Ok::<(), instantnet_quant::BitWidthError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitWidthSet {
    widths: Vec<BitWidth>,
}

impl BitWidthSet {
    /// Builds a set from raw bit counts (sorted, deduplicated is an error).
    ///
    /// # Errors
    ///
    /// Returns [`BitWidthError::Empty`] for an empty list and
    /// [`BitWidthError::Duplicate`] if a value repeats.
    pub fn new(bits: Vec<u8>) -> Result<Self, BitWidthError> {
        if bits.is_empty() {
            return Err(BitWidthError::Empty);
        }
        let mut widths: Vec<BitWidth> = bits.iter().map(|&b| BitWidth::new(b)).collect();
        widths.sort();
        for pair in widths.windows(2) {
            if pair[0] == pair[1] {
                return Err(BitWidthError::Duplicate(pair[0].get()));
            }
        }
        Ok(BitWidthSet { widths })
    }

    /// The paper's large-dynamic-range set `{4, 8, 12, 16, 32}`.
    pub fn large_range() -> Self {
        BitWidthSet::new(vec![4, 8, 12, 16, 32]).expect("static set is valid")
    }

    /// The paper's narrow-dynamic-range set `{4, 5, 6, 8}`.
    pub fn narrow_range() -> Self {
        BitWidthSet::new(vec![4, 5, 6, 8]).expect("static set is valid")
    }

    /// Ascending candidate bit-widths.
    pub fn widths(&self) -> &[BitWidth] {
        &self.widths
    }

    /// Number of candidates.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.widths.len()
    }

    /// The lowest (bottleneck) bit-width.
    pub fn lowest(&self) -> BitWidth {
        self.widths[0]
    }

    /// The highest bit-width (the strongest distillation teacher).
    pub fn highest(&self) -> BitWidth {
        *self.widths.last().expect("set is non-empty")
    }

    /// Candidate at `index` (ascending order).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn at(&self, index: usize) -> BitWidth {
        self.widths[index]
    }

    /// Index of a bit-width in the set, if present.
    pub fn index_of(&self, bits: BitWidth) -> Option<usize> {
        self.widths.iter().position(|&b| b == bits)
    }

    /// Indices of all bit-widths strictly above `index` — the cascade of
    /// distillation teachers for student `index` in Eq. (1).
    pub fn teachers_of(&self, index: usize) -> impl Iterator<Item = usize> + '_ {
        (index + 1)..self.widths.len()
    }

    /// The set's dynamic range, `highest / lowest` — the paper
    /// distinguishes "large" ({4,8,12,16,32}, range 8) from "narrow"
    /// ({4,5,6,8}, range 2) sets, with SP-NAS most helpful on large
    /// ranges.
    pub fn dynamic_range(&self) -> f32 {
        f32::from(self.highest().get()) / f32::from(self.lowest().get())
    }
}

/// Separate weight/activation precision, used in the paper's Table IV
/// (e.g. 2-bit weights with 32-bit activations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Precision {
    /// Weight bit-width.
    pub weight: BitWidth,
    /// Activation bit-width.
    pub activation: BitWidth,
}

impl Precision {
    /// Uniform precision for weights and activations.
    pub fn uniform(bits: BitWidth) -> Self {
        Precision {
            weight: bits,
            activation: bits,
        }
    }

    /// Mixed weight/activation precision.
    pub fn new(weight: BitWidth, activation: BitWidth) -> Self {
        Precision { weight, activation }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W{}A{}", self.weight.get(), self.activation.get())
    }
}

/// Uniform quantization of `x ∈ [0,1]` to `k` bits: the `quantize_k`
/// primitive shared by DoReFa weights and activations.
fn quantize_unit(x: f32, bits: u8) -> f32 {
    let n = ((1u64 << bits) - 1) as f32;
    (x * n).round() / n
}

/// DoReFa weight codes `c = round((tanh(w) / (2·max|tanh(w)|) + 0.5) · n)`
/// with `n = 2^bits - 1`, so the quantized value is `2c/n - 1`.
///
/// `tanh` is odd and monotone, so `max |tanh(w)| = tanh(max |w|)`: one tanh
/// call replaces the full normalization pass over the tensor. For ≤ 4 bits
/// the per-element tanh disappears too — the code increments exactly where
/// `tanh(v)` crosses `((c − 0.5)/n − 0.5)·2·max`, and monotonicity moves
/// that boundary into input space via `atanh`, leaving a 15-way threshold
/// scan per element.
fn dorefa_weight_codes(data: &[f32], bits: u8) -> Vec<i32> {
    let n = ((1u64 << bits) - 1) as f32;
    let amax = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let tmax = amax.tanh().max(1e-8);
    if bits <= 4 {
        let levels = 1usize << bits;
        let mut thr = [0f32; 15];
        for (c, t) in thr.iter_mut().enumerate().take(levels - 1) {
            let y = (((c + 1) as f32 - 0.5) / n - 0.5) * (2.0 * tmax);
            *t = y.clamp(-0.999_999, 0.999_999).atanh();
        }
        let thr = &thr[..levels - 1];
        data.iter()
            .map(|&v| thr.iter().map(|&t| i32::from(v >= t)).sum())
            .collect()
    } else {
        let half_inv = 0.5 / tmax;
        data.iter()
            .map(|&v| ((v.tanh() * half_inv + 0.5) * n).round().clamp(0.0, n) as i32)
            .collect()
    }
}

/// Integer weight codes plus the affine decode parameters, the prepack
/// input for the integer inference engine (`crates/infer`).
///
/// The decoded value of element `e` in dim-0 channel `k` is
/// `scales[k.min(scales.len()-1)] * codes[e] + offset` and reproduces
/// [`Quantizer::quantize_weights_tensor`] up to f32 rounding (bit-exact
/// for SBM, ≤ 1 ulp for DoReFa).
#[derive(Debug, Clone)]
pub struct WeightCodes {
    /// One integer code per element, row-major like the source tensor.
    pub codes: Vec<i32>,
    /// Per-output-channel scales (`dims[0]` entries) or one per-tensor scale.
    pub scales: Vec<f32>,
    /// Shared additive offset: DoReFa's `-1`, zero for SBM.
    pub offset: f32,
    /// Smallest representable code at this bit-width.
    pub code_min: i32,
    /// Largest representable code at this bit-width.
    pub code_max: i32,
}

/// Integer activation codes with a per-tensor decode scale
/// (`value = scale * code`), computed fresh each forward because the scale
/// is data-dependent.
#[derive(Debug, Clone)]
pub struct ActivationCodes {
    /// One integer code per element.
    pub codes: Vec<i32>,
    /// Per-tensor decode scale.
    pub scale: f32,
    /// Largest |code| that can occur (overflow-bound input for kernels).
    pub code_abs_max: i32,
}

/// The quantization rule applied to weights and activations.
///
/// All rules share weights across bit-widths (quantization happens on the
/// fly in the forward pass) and use a straight-through estimator for the
/// backward pass, which is what makes switchable-precision training work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Quantizer {
    /// No quantization at any bit-width (debugging / FP reference).
    Identity,
    /// DoReFa-Net (Zhou et al. 2016): tanh-normalized weights and
    /// clipped-`[0,1]` activations, both uniformly quantized.
    Dorefa,
    /// SBM (Banner et al., NeurIPS'18 "Scalable Methods for 8-bit
    /// Training"): symmetric range-based scaling, per-output-channel for
    /// weights and per-tensor for activations. The paper's default.
    #[default]
    Sbm,
}

impl Quantizer {
    /// Quantizes a weight tensor to `bits` (pure, no gradient).
    ///
    /// Full-precision bit-widths return the input unchanged.
    pub fn quantize_weights_tensor(&self, w: &Tensor, bits: BitWidth) -> Tensor {
        if bits.is_full_precision() || matches!(self, Quantizer::Identity) {
            return w.clone();
        }
        match self {
            Quantizer::Identity => unreachable!(),
            Quantizer::Dorefa => {
                let n = ((1u64 << bits.get()) - 1) as f32;
                let codes = dorefa_weight_codes(w.data(), bits.get());
                Tensor::from_vec(
                    w.dims().to_vec(),
                    codes.iter().map(|&c| 2.0 * (c as f32 / n) - 1.0).collect(),
                )
            }
            Quantizer::Sbm => {
                // Per-output-channel (axis 0) symmetric scaling; rank-1
                // tensors fall back to per-tensor scaling.
                let dims = w.dims().to_vec();
                let qmax = ((1u64 << (bits.get().min(31) - 1)) - 1).max(1) as f32;
                if dims.len() < 2 {
                    let s = w.max_abs().max(1e-8) / qmax;
                    return w.map(|v| (v / s).round().clamp(-qmax, qmax) * s);
                }
                let per: usize = dims[1..].iter().product();
                let mut out = w.clone();
                for k in 0..dims[0] {
                    let chunk = &w.data()[k * per..(k + 1) * per];
                    let max = chunk.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-8);
                    let s = max / qmax;
                    for (o, &v) in out.data_mut()[k * per..(k + 1) * per].iter_mut().zip(chunk) {
                        *o = (v / s).round().clamp(-qmax, qmax) * s;
                    }
                }
                out
            }
        }
    }

    /// Quantizes an activation tensor to `bits` (pure, no gradient).
    pub fn quantize_activations_tensor(&self, x: &Tensor, bits: BitWidth) -> Tensor {
        if bits.is_full_precision() || matches!(self, Quantizer::Identity) {
            return x.clone();
        }
        match self {
            Quantizer::Identity => unreachable!(),
            Quantizer::Dorefa => x.map(|v| quantize_unit(v.clamp(0.0, 1.0), bits.get())),
            Quantizer::Sbm => {
                // Unsigned per-tensor scaling (activations follow ReLU).
                let qmax = ((1u64 << bits.get().min(31)) - 1) as f32;
                let max = x.max_abs().max(1e-8);
                let s = max / qmax;
                x.map(|v| (v / s).round().clamp(-qmax, qmax) * s)
            }
        }
    }

    /// Extracts integer weight codes and decode scales for prepacking.
    ///
    /// Returns `None` when no integer grid exists ([`Quantizer::Identity`]
    /// or a full-precision bit-width) — callers keep f32 weights then.
    /// SBM yields per-output-channel scales on rank ≥ 2 tensors (one scale
    /// per dim-0 slice, matching [`Self::quantize_weights_tensor`]); DoReFa
    /// yields a single per-tensor scale `2/n` with offset `-1`.
    pub fn weight_codes(&self, w: &Tensor, bits: BitWidth) -> Option<WeightCodes> {
        if bits.is_full_precision() || matches!(self, Quantizer::Identity) {
            return None;
        }
        match self {
            Quantizer::Identity => unreachable!(),
            Quantizer::Dorefa => {
                let n = ((1u64 << bits.get()) - 1) as f32;
                Some(WeightCodes {
                    codes: dorefa_weight_codes(w.data(), bits.get()),
                    scales: vec![2.0 / n],
                    offset: -1.0,
                    code_min: 0,
                    code_max: (n as i32).max(1),
                })
            }
            Quantizer::Sbm => {
                let dims = w.dims().to_vec();
                let qmax = ((1u64 << (bits.get().min(31) - 1)) - 1).max(1) as f32;
                let (codes, scales) = if dims.len() < 2 {
                    let s = w.max_abs().max(1e-8) / qmax;
                    let codes = w
                        .data()
                        .iter()
                        .map(|&v| (v / s).round().clamp(-qmax, qmax) as i32)
                        .collect();
                    (codes, vec![s])
                } else {
                    let per: usize = dims[1..].iter().product();
                    let mut codes = Vec::with_capacity(w.len());
                    let mut scales = Vec::with_capacity(dims[0]);
                    for k in 0..dims[0] {
                        let chunk = &w.data()[k * per..(k + 1) * per];
                        let max = chunk.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-8);
                        let s = max / qmax;
                        codes.extend(
                            chunk
                                .iter()
                                .map(|&v| (v / s).round().clamp(-qmax, qmax) as i32),
                        );
                        scales.push(s);
                    }
                    (codes, scales)
                };
                Some(WeightCodes {
                    codes,
                    scales,
                    offset: 0.0,
                    code_min: -(qmax as i32),
                    code_max: qmax as i32,
                })
            }
        }
    }

    /// Extracts integer activation codes plus the per-tensor decode scale.
    ///
    /// Returns `None` for [`Quantizer::Identity`] or full precision. The
    /// decoded value `scale * code` matches
    /// [`Self::quantize_activations_tensor`] up to f32 rounding.
    pub fn activation_codes(&self, x: &[f32], bits: BitWidth) -> Option<ActivationCodes> {
        if bits.is_full_precision() || matches!(self, Quantizer::Identity) {
            return None;
        }
        match self {
            Quantizer::Identity => unreachable!(),
            Quantizer::Dorefa => {
                let n = ((1u64 << bits.get()) - 1) as f32;
                let codes = x
                    .iter()
                    .map(|&v| (v.clamp(0.0, 1.0) * n).round() as i32)
                    .collect();
                Some(ActivationCodes {
                    codes,
                    scale: 1.0 / n,
                    code_abs_max: (n as i32).max(1),
                })
            }
            Quantizer::Sbm => {
                let qmax = ((1u64 << bits.get().min(31)) - 1) as f32;
                let max = x.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-8);
                let s = max / qmax;
                let codes = x
                    .iter()
                    .map(|&v| (v / s).round().clamp(-qmax, qmax) as i32)
                    .collect();
                Some(ActivationCodes {
                    codes,
                    scale: s,
                    code_abs_max: qmax as i32,
                })
            }
        }
    }

    /// Differentiable weight quantization (straight-through gradient).
    pub fn quantize_weights(&self, w: &Var, bits: BitWidth) -> Var {
        if bits.is_full_precision() || matches!(self, Quantizer::Identity) {
            // Still insert a pass-through node so graph shape is uniform.
            return ops::ste_apply(w, |t| t.clone(), None);
        }
        let q = *self;
        ops::ste_apply(w, move |t| q.quantize_weights_tensor(t, bits), None)
    }

    /// Differentiable activation quantization.
    ///
    /// DoReFa clips to `[0,1]` and masks the gradient outside the clip
    /// range; SBM passes the gradient straight through.
    pub fn quantize_activations(&self, x: &Var, bits: BitWidth) -> Var {
        if bits.is_full_precision() || matches!(self, Quantizer::Identity) {
            return ops::ste_apply(x, |t| t.clone(), None);
        }
        let q = *self;
        let mask: Option<ops::GradMaskFn> = match self {
            Quantizer::Dorefa => Some(Box::new(|t: &Tensor| {
                t.map(|v| if (0.0..=1.0).contains(&v) { 1.0 } else { 0.0 })
            })),
            _ => None,
        };
        ops::ste_apply(x, move |t| q.quantize_activations_tensor(t, bits), mask)
    }

    /// Mean squared quantization error of an activation tensor at `bits`.
    pub fn activation_error(&self, x: &Tensor, bits: BitWidth) -> f32 {
        let q = self.quantize_activations_tensor(x, bits);
        x.sub(&q).map(|v| v * v).mean()
    }

    /// Mean squared quantization error of a weight tensor at `bits` —
    /// the quantity whose decay with increasing bit-width motivates
    /// cascade distillation.
    pub fn weight_error(&self, w: &Tensor, bits: BitWidth) -> f32 {
        let q = self.quantize_weights_tensor(w, bits);
        w.sub(&q).map(|v| v * v).mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantnet_tensor::Var;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(seed: u64, dims: &[usize]) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let n: usize = dims.iter().product();
        Tensor::from_vec(
            dims.to_vec(),
            (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect(),
        )
    }

    #[test]
    fn bitwidth_set_sorted_and_indexed() {
        let set = BitWidthSet::new(vec![16, 4, 32, 8, 12]).unwrap();
        assert_eq!(set.lowest().get(), 4);
        assert_eq!(set.highest().get(), 32);
        assert_eq!(set.index_of(BitWidth::new(12)), Some(2));
        assert_eq!(set.index_of(BitWidth::new(5)), None);
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn bitwidth_set_rejects_bad_input() {
        assert_eq!(BitWidthSet::new(vec![]), Err(BitWidthError::Empty));
        assert_eq!(
            BitWidthSet::new(vec![4, 4]),
            Err(BitWidthError::Duplicate(4))
        );
    }

    #[test]
    fn dynamic_range_distinguishes_paper_sets() {
        assert_eq!(BitWidthSet::large_range().dynamic_range(), 8.0);
        assert_eq!(BitWidthSet::narrow_range().dynamic_range(), 2.0);
    }

    #[test]
    fn activation_error_decreases_with_bits() {
        let x = random_tensor(11, &[128]);
        let q = Quantizer::Sbm;
        let lo = q.activation_error(&x, BitWidth::new(3));
        let hi = q.activation_error(&x, BitWidth::new(8));
        assert!(hi < lo);
        assert_eq!(q.activation_error(&x, BitWidth::FULL), 0.0);
    }

    #[test]
    fn teachers_are_all_higher_bits() {
        let set = BitWidthSet::large_range();
        let teachers: Vec<usize> = set.teachers_of(0).collect();
        assert_eq!(teachers, vec![1, 2, 3, 4]);
        assert_eq!(set.teachers_of(4).count(), 0);
    }

    #[test]
    fn full_precision_is_identity_for_all_quantizers() {
        let w = random_tensor(0, &[4, 3]);
        for q in [Quantizer::Identity, Quantizer::Dorefa, Quantizer::Sbm] {
            assert_eq!(q.quantize_weights_tensor(&w, BitWidth::FULL), w);
            assert_eq!(q.quantize_activations_tensor(&w, BitWidth::FULL), w);
        }
    }

    #[test]
    fn dorefa_weights_bounded_by_one() {
        let w = random_tensor(1, &[8, 4]);
        let q = Quantizer::Dorefa.quantize_weights_tensor(&w, BitWidth::new(4));
        assert!(q.data().iter().all(|v| v.abs() <= 1.0 + 1e-6));
    }

    #[test]
    fn dorefa_activations_in_unit_range() {
        let x = random_tensor(2, &[16]);
        let q = Quantizer::Dorefa.quantize_activations_tensor(&x, BitWidth::new(3));
        assert!(q.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Exactly representable levels: v * 7 should be integral.
        assert!(q
            .data()
            .iter()
            .all(|&v| (v * 7.0 - (v * 7.0).round()).abs() < 1e-5));
    }

    #[test]
    fn sbm_is_idempotent() {
        let w = random_tensor(3, &[4, 6]);
        let q = Quantizer::Sbm;
        let w1 = q.quantize_weights_tensor(&w, BitWidth::new(5));
        let w2 = q.quantize_weights_tensor(&w1, BitWidth::new(5));
        for (a, b) in w1.data().iter().zip(w2.data()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn sbm_error_decreases_with_bits() {
        let w = random_tensor(4, &[8, 16]);
        let q = Quantizer::Sbm;
        let e4 = q.weight_error(&w, BitWidth::new(4));
        let e8 = q.weight_error(&w, BitWidth::new(8));
        let e16 = q.weight_error(&w, BitWidth::new(16));
        assert!(e4 > e8, "e4 {e4} vs e8 {e8}");
        assert!(e8 > e16, "e8 {e8} vs e16 {e16}");
    }

    #[test]
    fn adjacent_bitwidths_are_closer_than_distant_ones() {
        // The CDT hypothesis: quantization noise between adjacent bit-widths
        // is smaller than between distant ones.
        let w = random_tensor(5, &[8, 16]);
        let q = Quantizer::Sbm;
        let w4 = q.quantize_weights_tensor(&w, BitWidth::new(4));
        let w8 = q.quantize_weights_tensor(&w, BitWidth::new(8));
        let w32 = q.quantize_weights_tensor(&w, BitWidth::FULL);
        let gap_4_8 = w4.sub(&w8).map(|v| v * v).mean();
        let gap_4_32 = w4.sub(&w32).map(|v| v * v).mean();
        let gap_8_32 = w8.sub(&w32).map(|v| v * v).mean();
        assert!(gap_8_32 < gap_4_32);
        assert!(gap_4_8 <= gap_4_32 * 1.5); // adjacent gap comparable or smaller
    }

    #[test]
    fn ste_gradient_flows_through_weight_quantization() {
        let w = Var::leaf(random_tensor(6, &[3, 3]), true);
        let q = Quantizer::Sbm.quantize_weights(&w, BitWidth::new(4));
        q.sum().backward();
        let g = w.grad().unwrap();
        assert!(g.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn dorefa_activation_mask_zeroes_out_of_range() {
        let x = Var::leaf(Tensor::from_vec(vec![3], vec![-0.5, 0.5, 1.5]), true);
        let q = Quantizer::Dorefa.quantize_activations(&x, BitWidth::new(4));
        q.sum().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn one_bit_quantization_is_sign_like() {
        // 1-bit SBM: values collapse to {-max, 0, +max} per channel.
        let w = random_tensor(13, &[2, 8]);
        let q = Quantizer::Sbm.quantize_weights_tensor(&w, BitWidth::new(1));
        for k in 0..2 {
            let chunk = &q.data()[k * 8..(k + 1) * 8];
            let mut levels: Vec<i32> = chunk.iter().map(|&v| v.signum() as i32).collect();
            levels.sort_unstable();
            levels.dedup();
            assert!(levels.len() <= 3, "1-bit levels {levels:?}");
        }
    }

    #[test]
    #[should_panic(expected = "bit-width must be in 1..=32")]
    fn zero_bitwidth_rejected() {
        let _ = BitWidth::new(0);
    }

    #[test]
    fn bitwidth_ordering_and_levels() {
        assert!(BitWidth::new(4) < BitWidth::new(8));
        assert_eq!(BitWidth::new(1).levels(), 2);
        assert_eq!(BitWidth::FULL.levels(), 1u64 << 32);
    }

    #[test]
    fn precision_display_and_uniform() {
        let p = Precision::new(BitWidth::new(2), BitWidth::FULL);
        assert_eq!(p.to_string(), "W2A32");
        assert_eq!(Precision::uniform(BitWidth::new(4)).activation.get(), 4);
    }

    /// Reference DoReFa weight rule, written the slow way (per-element tanh
    /// and division) — pins the optimized path to the original definition.
    fn dorefa_weights_reference(w: &Tensor, bits: u8) -> Tensor {
        let t = w.map(f32::tanh);
        let max = t.max_abs().max(1e-8);
        t.map(|v| 2.0 * quantize_unit(v / (2.0 * max) + 0.5, bits) - 1.0)
    }

    #[test]
    fn dorefa_fast_path_matches_reference() {
        for seed in 0..20 {
            let w = random_tensor(seed, &[16, 9]);
            for bits in [2u8, 3, 4, 5, 8, 12] {
                let fast = Quantizer::Dorefa.quantize_weights_tensor(&w, BitWidth::new(bits));
                let reference = dorefa_weights_reference(&w, bits);
                let step = 2.0 / (((1u64 << bits) - 1) as f32);
                for (a, b) in fast.data().iter().zip(reference.data()) {
                    assert!((a - b).abs() < step * 0.5 + 1e-6, "bits {bits}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn weight_codes_decode_matches_fake_quant() {
        let w = random_tensor(7, &[6, 10]);
        for q in [Quantizer::Sbm, Quantizer::Dorefa] {
            for bits in [2u8, 4, 8, 12] {
                let bw = BitWidth::new(bits);
                let wc = q.weight_codes(&w, bw).unwrap();
                let fake = q.quantize_weights_tensor(&w, bw);
                let per = w.len() / 6;
                for (e, (&c, &f)) in wc.codes.iter().zip(fake.data()).enumerate() {
                    assert!((wc.code_min..=wc.code_max).contains(&c));
                    let s = wc.scales[(e / per).min(wc.scales.len() - 1)];
                    let decoded = s * c as f32 + wc.offset;
                    assert!(
                        (decoded - f).abs() < 1e-5,
                        "{q:?} bits {bits}: {decoded} vs {f}"
                    );
                }
            }
        }
    }

    #[test]
    fn activation_codes_decode_matches_fake_quant() {
        let x = random_tensor(9, &[128]);
        for q in [Quantizer::Sbm, Quantizer::Dorefa] {
            for bits in [2u8, 4, 8] {
                let bw = BitWidth::new(bits);
                let ac = q.activation_codes(x.data(), bw).unwrap();
                let fake = q.quantize_activations_tensor(&x, bw);
                for (&c, &f) in ac.codes.iter().zip(fake.data()) {
                    assert!(c.abs() <= ac.code_abs_max);
                    let decoded = ac.scale * c as f32;
                    assert!(
                        (decoded - f).abs() < 1e-5,
                        "{q:?} bits {bits}: {decoded} vs {f}"
                    );
                }
            }
        }
    }

    #[test]
    fn codes_absent_for_identity_and_full_precision() {
        let w = random_tensor(10, &[4, 4]);
        assert!(Quantizer::Identity
            .weight_codes(&w, BitWidth::new(4))
            .is_none());
        assert!(Quantizer::Sbm.weight_codes(&w, BitWidth::FULL).is_none());
        assert!(Quantizer::Sbm
            .activation_codes(w.data(), BitWidth::FULL)
            .is_none());
    }

    proptest! {
        #[test]
        fn prop_sbm_weights_never_exceed_input_range(
            seed in 0u64..1000, bits in 2u8..12
        ) {
            let w = random_tensor(seed, &[4, 8]);
            let q = Quantizer::Sbm.quantize_weights_tensor(&w, BitWidth::new(bits));
            prop_assert!(q.max_abs() <= w.max_abs() + 1e-5);
        }

        #[test]
        fn prop_dorefa_level_count_bounded(seed in 0u64..500, bits in 2u8..6) {
            let x = random_tensor(seed, &[64]);
            let q = Quantizer::Dorefa.quantize_activations_tensor(&x, BitWidth::new(bits));
            let mut levels: Vec<i64> = q
                .data()
                .iter()
                .map(|&v| (v * (((1u64 << bits) - 1) as f32)).round() as i64)
                .collect();
            levels.sort_unstable();
            levels.dedup();
            prop_assert!(levels.len() as u64 <= (1u64 << bits));
        }

        #[test]
        fn prop_quantization_error_shrinks_with_bits(seed in 0u64..200) {
            let w = random_tensor(seed, &[8, 8]);
            let q = Quantizer::Sbm;
            let lo = q.weight_error(&w, BitWidth::new(3));
            let hi = q.weight_error(&w, BitWidth::new(10));
            prop_assert!(hi <= lo + 1e-9);
        }
    }
}
