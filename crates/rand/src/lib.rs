//! Vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so the workspace ships
//! the small slice of `rand` it actually uses: a seedable [`rngs::StdRng`]
//! (xoshiro256\*\* seeded via SplitMix64 — *not* the upstream ChaCha12, but
//! every consumer in this workspace only relies on determinism under a
//! fixed seed, never on the exact upstream stream), uniform sampling over
//! integer/float ranges, [`Rng::gen_bool`], and Fisher–Yates shuffling via
//! [`seq::SliceRandom`].
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f32 = rng.gen_range(-1.0..1.0);
//! assert!((-1.0..1.0).contains(&x));
//! let i = rng.gen_range(0..10usize);
//! assert!(i < 10);
//! ```

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open (`lo..hi`) or inclusive (`lo..=hi`)
    /// range of any supported primitive type.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// `u64 -> [0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// `u64 -> [0, 1)` with 24 bits of precision.
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// A range that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "gen_range on empty range");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + unit_f32(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Seedable generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256\*\* (Blackman & Vigna),
    /// seeded from a `u64` via SplitMix64.
    ///
    /// Fast, high-quality, and deterministic under a fixed seed — the only
    /// properties this workspace depends on. Not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related extensions.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u = rng.gen_range(5..17usize);
            assert!((5..17).contains(&u));
            let i = rng.gen_range(-4..=4isize);
            assert!((-4..=4).contains(&i));
            let f = rng.gen_range(-2.0..3.0f32);
            assert!((-2.0..3.0).contains(&f));
            let d = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&d));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..=2usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let &x = v.choose(&mut rng).unwrap();
            seen[x / 10 - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..1000 {
            let f = rng.gen_range(0.0..1.0f32);
            assert!((0.0..1.0).contains(&f));
        }
    }
}
