//! Workspace-wide parallel execution layer.
//!
//! Every hot loop in the workspace (matmul row blocks, `im2col` channels,
//! conv batch samples, AutoMapper candidate evaluation) parallelizes
//! through this module instead of spawning threads ad hoc. The design
//! contract is **determinism**: results are bit-identical at 1 thread and
//! N threads, because
//!
//! * work is split into *index-addressed chunks* — chunk `i` computes the
//!   same values no matter which thread runs it;
//! * every chunk writes to its own disjoint output slot (no atomics-based
//!   float accumulation anywhere);
//! * reductions happen on the calling thread in fixed chunk order
//!   ([`parallel_map`] returns results in input order for the caller to
//!   fold).
//!
//! # Thread-count knob
//!
//! The effective thread count is, in priority order:
//!
//! 1. a thread-local override set by [`set_threads`] / [`with_threads`]
//!    (how tests force serial or forced-parallel execution);
//! 2. the `INSTANTNET_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! Worker threads run with an override of 1, so nested parallel regions
//! (a parallel conv batch loop calling the parallel matmul) execute
//! serially instead of oversubscribing the machine.
//!
//! # Example
//!
//! ```
//! use instantnet_parallel as parallel;
//!
//! let squares = parallel::parallel_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // Identical results forced-serial and forced-parallel:
//! let serial = parallel::with_threads(1, || parallel::parallel_map_indexed(8, |i| i * i));
//! let par = parallel::with_threads(4, || parallel::parallel_map_indexed(8, |i| i * i));
//! assert_eq!(serial, par);
//! ```

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

static DEFAULT: OnceLock<usize> = OnceLock::new();

fn default_threads() -> usize {
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("INSTANTNET_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The effective maximum thread count for parallel regions started from
/// the current thread.
pub fn max_threads() -> usize {
    let o = OVERRIDE.with(Cell::get);
    if o > 0 {
        o
    } else {
        default_threads()
    }
}

/// Sets (n ≥ 1) or clears (n = 0) the current thread's thread-count
/// override. Prefer [`with_threads`], which restores the previous value.
pub fn set_threads(n: usize) {
    OVERRIDE.with(|o| o.set(n));
}

/// Runs `f` with the thread-count override set to `n` (0 = no override),
/// restoring the previous override afterwards — the scoped form of
/// [`set_threads`] used by tests and by trainer configs.
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let prev = OVERRIDE.with(Cell::get);
    set_threads(n);
    let out = f();
    set_threads(prev);
    out
}

/// Runs `f` under the ambient thread budget when `parallel` is true, or
/// forced-serial (override 1) otherwise — the work-size gate every kernel
/// call site wraps its parallel region in. Results must not depend on the
/// choice (the determinism contract), so the flag is purely a scheduling
/// hint, typically `flops >= THRESHOLD`.
pub fn gate<T>(parallel: bool, f: impl FnOnce() -> T) -> T {
    if parallel {
        f()
    } else {
        with_threads(1, f)
    }
}

/// Maps `f(index, item)` over `items`, returning results in input order.
///
/// `f` must be pure with respect to the index (chunk placement is a
/// scheduling detail); under that contract the output is identical for
/// every thread count.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let threads = max_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for (ci, (in_chunk, out_chunk)) in
            items.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
        {
            let f = &f;
            s.spawn(move || {
                set_threads(1); // serialize nested parallel regions
                for (j, (t, slot)) in in_chunk.iter().zip(out_chunk.iter_mut()).enumerate() {
                    *slot = Some(f(ci * chunk + j, t));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("every slot filled"))
        .collect()
}

/// Maps `f(i)` over `0..n`, returning results in index order.
pub fn parallel_map_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    parallel_map(&indices, |_, &i| f(i))
}

/// Splits `data` into consecutive chunks of `chunk` elements (the last may
/// be shorter) and runs `f(chunk_index, chunk)` on each, in parallel.
///
/// Chunks are disjoint `&mut` slices, so writes cannot race; with `f` pure
/// in the chunk index the result is independent of the thread count.
///
/// # Panics
///
/// Panics if `chunk == 0` while `data` is non-empty.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk > 0, "chunk size must be positive");
    let nchunks = data.len().div_ceil(chunk);
    let threads = max_threads().min(nchunks);
    if threads <= 1 {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    // Hand each thread a contiguous run of chunks: preserves the cache
    // locality of the serial loop and keeps chunk indices deterministic.
    let per_thread = nchunks.div_ceil(threads);
    std::thread::scope(|s| {
        for (ti, group) in data.chunks_mut(per_thread * chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                set_threads(1);
                for (j, c) in group.chunks_mut(chunk).enumerate() {
                    f(ti * per_thread + j, c);
                }
            });
        }
    });
}

/// Runs two closures, in parallel when more than one thread is allowed,
/// and returns both results.
pub fn join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if max_threads() <= 1 {
        return (fa(), fb());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| {
            set_threads(1);
            fb()
        });
        let a = {
            let prev = OVERRIDE.with(Cell::get);
            set_threads(1);
            let a = fa();
            set_threads(prev);
            a
        };
        (a, hb.join().expect("join closure panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = with_threads(8, || parallel_map(&items, |i, &x| (i, x * 2)));
        for (i, &(idx, v)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(v, i * 2);
        }
    }

    #[test]
    fn map_serial_equals_parallel() {
        let items: Vec<u64> = (0..57).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(13);
        let serial = with_threads(1, || parallel_map(&items, f));
        for t in [2, 3, 5, 16] {
            assert_eq!(with_threads(t, || parallel_map(&items, f)), serial);
        }
    }

    #[test]
    fn chunks_cover_all_indices() {
        let mut data = vec![0usize; 103];
        with_threads(4, || {
            par_chunks_mut(&mut data, 10, |ci, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = ci * 10 + j + 1;
                }
            })
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i + 1, "index {i} written by wrong chunk");
        }
    }

    #[test]
    fn chunks_serial_equals_parallel() {
        let init: Vec<f32> = (0..64).map(|i| i as f32 * 0.5).collect();
        let run = |threads: usize| {
            let mut d = init.clone();
            with_threads(threads, || {
                par_chunks_mut(&mut d, 7, |ci, chunk| {
                    for v in chunk.iter_mut() {
                        *v = v.sin() + ci as f32;
                    }
                })
            });
            d
        };
        let serial = run(1);
        assert_eq!(run(4), serial);
        assert_eq!(run(9), serial);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let out: Vec<u8> = parallel_map(&[] as &[u8], |_, &x| x);
        assert!(out.is_empty());
        par_chunks_mut(&mut [] as &mut [u8], 4, |_, _| {});
        assert_eq!(parallel_map_indexed(0, |i| i).len(), 0);
    }

    #[test]
    fn override_is_scoped() {
        assert_eq!(with_threads(3, max_threads), 3);
        let outer = max_threads();
        with_threads(2, || {
            assert_eq!(max_threads(), 2);
        });
        assert_eq!(max_threads(), outer);
    }

    #[test]
    fn nested_regions_serialize() {
        // Inside a parallel_map worker the override is 1, so a nested
        // region must not spawn (observable via max_threads()).
        let inner: Vec<usize> = with_threads(4, || parallel_map_indexed(4, |_| max_threads()));
        assert!(inner.iter().all(|&t| t == 1), "workers saw {inner:?}");
    }

    #[test]
    fn gate_controls_thread_budget() {
        let ungated = with_threads(6, || gate(true, max_threads));
        assert_eq!(ungated, 6);
        let gated = with_threads(6, || gate(false, max_threads));
        assert_eq!(gated, 1);
        // The previous override is restored either way.
        with_threads(3, || {
            gate(false, || ());
            assert_eq!(max_threads(), 3);
        });
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = with_threads(2, || join(|| 6 * 7, || "ok"));
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
        let (c, d) = with_threads(1, || join(|| 1, || 2));
        assert_eq!((c, d), (1, 2));
    }

    #[test]
    fn indexed_map_matches_direct_computation() {
        let out = with_threads(5, || parallel_map_indexed(23, |i| i * i));
        let expect: Vec<usize> = (0..23).map(|i| i * i).collect();
        assert_eq!(out, expect);
    }
}
