//! Weight initializers.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Kaiming/He uniform initialization for conv weights `[K, C/g, R, S]` or
/// linear weights `[out, in]`: `U(-b, b)` with `b = sqrt(6 / fan_in)`.
///
/// # Panics
///
/// Panics if `dims` has fewer than 2 axes.
pub fn kaiming_uniform(rng: &mut StdRng, dims: &[usize]) -> Tensor {
    assert!(dims.len() >= 2, "kaiming init needs at least 2 axes");
    let fan_in: usize = dims[1..].iter().product();
    let bound = (6.0 / fan_in as f32).sqrt();
    let n: usize = dims.iter().product();
    Tensor::from_vec(
        dims.to_vec(),
        (0..n).map(|_| rng.gen_range(-bound..bound)).collect(),
    )
}

/// Standard normal samples scaled by `std`.
pub fn normal(rng: &mut StdRng, dims: &[usize], std: f32) -> Tensor {
    let n: usize = dims.iter().product();
    // Box-Muller; avoids a distribution dependency.
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(1e-7..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(dims.to_vec(), data)
}

/// Uniform samples in `[lo, hi)`.
pub fn uniform(rng: &mut StdRng, dims: &[usize], lo: f32, hi: f32) -> Tensor {
    let n: usize = dims.iter().product();
    Tensor::from_vec(
        dims.to_vec(),
        (0..n).map(|_| rng.gen_range(lo..hi)).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kaiming_bound_respected() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = kaiming_uniform(&mut rng, &[8, 4, 3, 3]);
        let bound = (6.0 / 36.0f32).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound));
        assert_eq!(t.dims(), &[8, 4, 3, 3]);
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = normal(&mut rng, &[10000], 2.0);
        let mean = t.mean();
        let var: f32 = t
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a = uniform(&mut StdRng::seed_from_u64(7), &[16], -1.0, 1.0);
        let b = uniform(&mut StdRng::seed_from_u64(7), &[16], -1.0, 1.0);
        assert_eq!(a, b);
    }
}
