//! Finite-difference gradient checking utilities.
//!
//! Exact analytic gradients are the foundation the whole training stack
//! rests on, so every operator's backward pass should be validated against
//! central differences. These helpers are public so downstream crates (and
//! users adding custom operators) can reuse them in their own tests.

use crate::autograd::Var;
use crate::tensor::Tensor;

/// Numeric gradient of the scalar function `f` at `point` via central
/// differences with step `eps`.
///
/// `f` must treat its argument as a constant leaf (it is re-invoked with
/// perturbed copies).
pub fn numeric_gradient(point: &Tensor, f: &dyn Fn(&Var) -> Var, eps: f32) -> Tensor {
    let mut grad = Tensor::zeros(point.dims());
    for i in 0..point.len() {
        let mut plus = point.clone();
        plus.data_mut()[i] += eps;
        let mut minus = point.clone();
        minus.data_mut()[i] -= eps;
        let fp = f(&Var::constant(plus)).item();
        let fm = f(&Var::constant(minus)).item();
        grad.data_mut()[i] = (fp - fm) / (2.0 * eps);
    }
    grad
}

/// Result of a gradient check: the largest relative discrepancy and where
/// it occurred.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheck {
    /// Largest `|analytic - numeric| / (1 + |numeric|)` over all elements.
    pub max_rel_err: f32,
    /// Flat index of the worst element.
    pub worst_index: usize,
}

impl GradCheck {
    /// Whether the check passed at tolerance `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_err <= tol
    }
}

/// Compares the analytic gradient of scalar `f` at leaf value `point`
/// against central differences.
///
/// # Panics
///
/// Panics if `f` returns a non-scalar or produces no gradient (e.g. the
/// graph is disconnected from the input).
pub fn check_gradient(point: &Tensor, f: &dyn Fn(&Var) -> Var, eps: f32) -> GradCheck {
    let leaf = Var::leaf(point.clone(), true);
    let loss = f(&leaf);
    loss.backward();
    let analytic = leaf
        .grad()
        .expect("function must be differentiable w.r.t. its input");
    let numeric = numeric_gradient(point, f, eps);
    let mut max_rel_err = 0.0f32;
    let mut worst_index = 0;
    for i in 0..point.len() {
        let a = analytic.data()[i];
        let n = numeric.data()[i];
        let rel = (a - n).abs() / (1.0 + n.abs());
        if rel > max_rel_err {
            max_rel_err = rel;
            worst_index = i;
        }
    }
    GradCheck {
        max_rel_err,
        worst_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn quadratic_gradient_checks_out() {
        let point = Tensor::from_vec(vec![3], vec![1.0, -2.0, 0.5]);
        let check = check_gradient(&point, &|x| x.mul(x).sum(), 1e-2);
        assert!(check.passes(1e-2), "{check:?}");
    }

    #[test]
    fn detects_wrong_gradient() {
        // relu at clearly-positive inputs has gradient 1; compare against a
        // deliberately different function to confirm the check is not vacuous.
        let point = Tensor::from_vec(vec![2], vec![2.0, 3.0]);
        let analytic_of_scaled = check_gradient(&point, &|x| ops::scale(x, 3.0).sum(), 1e-2);
        assert!(analytic_of_scaled.passes(1e-3));
        // A mismatched pair: numeric of 3x vs analytic of x.
        let leaf = Var::leaf(point.clone(), true);
        leaf.mul(&leaf).sum().backward();
        let analytic = leaf.grad().unwrap();
        let numeric = numeric_gradient(&point, &|x| ops::scale(x, 3.0).sum(), 1e-2);
        assert_ne!(analytic, numeric);
    }

    #[test]
    fn numeric_gradient_of_linear_fn_is_constant() {
        let point = Tensor::from_vec(vec![4], vec![0.1, 0.2, 0.3, 0.4]);
        let g = numeric_gradient(&point, &|x| ops::scale(x, 2.5).sum(), 1e-3);
        for &v in g.data() {
            assert!((v - 2.5).abs() < 1e-2, "{v}");
        }
    }
}
