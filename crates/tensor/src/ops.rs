//! Differentiable operators.
//!
//! Every function here performs an eager forward computation and registers a
//! closure computing the exact analytic vector-Jacobian product for the
//! backward pass. Convolution caches the `im2col` patch matrices computed in
//! the forward pass and reuses them in the backward closure, so the backward
//! pass costs two matmuls plus a `col2im` per sample/group instead of
//! re-unfolding the input. Batch samples are independent and run through the
//! shared parallel layer ([`instantnet_parallel`]); reductions stay in fixed
//! sample order, so gradients are bit-identical at any thread count.

use crate::autograd::Var;
use crate::tensor::{col2im, im2col, Tensor};
use instantnet_parallel as parallel;

// ---------------------------------------------------------------------------
// Elementwise arithmetic
// ---------------------------------------------------------------------------

/// Elementwise `a + b` (shapes must match).
pub fn add(a: &Var, b: &Var) -> Var {
    let out = a.node.value.borrow().add(&b.node.value.borrow());
    Var::from_op(
        out,
        vec![a.clone(), b.clone()],
        Box::new(|g, parents| {
            parents[0].accumulate_grad(g);
            parents[1].accumulate_grad(g);
        }),
    )
}

/// Elementwise `a - b` (shapes must match).
pub fn sub(a: &Var, b: &Var) -> Var {
    let out = a.node.value.borrow().sub(&b.node.value.borrow());
    Var::from_op(
        out,
        vec![a.clone(), b.clone()],
        Box::new(|g, parents| {
            parents[0].accumulate_grad(g);
            parents[1].accumulate_grad(&g.scale(-1.0));
        }),
    )
}

/// Elementwise `a * b` (Hadamard product, shapes must match).
pub fn mul(a: &Var, b: &Var) -> Var {
    let out = a.node.value.borrow().mul(&b.node.value.borrow());
    Var::from_op(
        out,
        vec![a.clone(), b.clone()],
        Box::new(|g, parents| {
            let av = parents[0].value();
            let bv = parents[1].value();
            parents[0].accumulate_grad(&g.mul(&bv));
            parents[1].accumulate_grad(&g.mul(&av));
        }),
    )
}

/// Scales every element by the constant `s`.
pub fn scale(x: &Var, s: f32) -> Var {
    let out = x.node.value.borrow().scale(s);
    Var::from_op(
        out,
        vec![x.clone()],
        Box::new(move |g, parents| parents[0].accumulate_grad(&g.scale(s))),
    )
}

/// Adds the constant `c` to every element.
pub fn add_scalar(x: &Var, c: f32) -> Var {
    let out = x.node.value.borrow().map(|v| v + c);
    Var::from_op(
        out,
        vec![x.clone()],
        Box::new(|g, parents| parents[0].accumulate_grad(g)),
    )
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

/// Sum of all elements, as a `[1]` tensor.
pub fn sum(x: &Var) -> Var {
    let out = Tensor::scalar(x.node.value.borrow().sum());
    Var::from_op(
        out,
        vec![x.clone()],
        Box::new(|g, parents| {
            let dims = parents[0].dims();
            parents[0].accumulate_grad(&Tensor::full(&dims, g.item()));
        }),
    )
}

/// Mean of all elements, as a `[1]` tensor.
pub fn mean(x: &Var) -> Var {
    let n = x.node.value.borrow().len() as f32;
    scale(&sum(x), 1.0 / n)
}

// ---------------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------------

/// Matrix product `[m,k] x [k,n] -> [m,n]`.
pub fn matmul(a: &Var, b: &Var) -> Var {
    let out = a.node.value.borrow().matmul(&b.node.value.borrow());
    Var::from_op(
        out,
        vec![a.clone(), b.clone()],
        Box::new(|g, parents| {
            let av = parents[0].value();
            let bv = parents[1].value();
            // dA = g . B^T ; dB = A^T . g
            parents[0].accumulate_grad(&g.matmul(&bv.transpose2d()));
            parents[1].accumulate_grad(&av.transpose2d().matmul(g));
        }),
    )
}

/// Fully-connected layer: `x[n, in] . w[out, in]^T (+ b[out])`.
pub fn linear(x: &Var, w: &Var, b: Option<&Var>) -> Var {
    let wt = transpose2d(w);
    let y = matmul(x, &wt);
    match b {
        Some(bias) => bias_add(&y, bias),
        None => y,
    }
}

/// Matrix transpose as a graph op.
pub fn transpose2d(x: &Var) -> Var {
    let out = x.node.value.borrow().transpose2d();
    Var::from_op(
        out,
        vec![x.clone()],
        Box::new(|g, parents| parents[0].accumulate_grad(&g.transpose2d())),
    )
}

/// Broadcast-adds a `[C]` bias over the channel axis of `[N,C]` or
/// `[N,C,H,W]` input.
///
/// # Panics
///
/// Panics if the input rank is not 2 or 4, or the bias length differs from
/// the channel extent.
pub fn bias_add(x: &Var, b: &Var) -> Var {
    let xv = x.node.value.borrow().clone();
    let bv = b.node.value.borrow().clone();
    let dims = xv.dims().to_vec();
    let c = match dims.len() {
        2 => dims[1],
        4 => dims[1],
        r => panic!("bias_add expects rank 2 or 4 input, got rank {r}"),
    };
    assert_eq!(bv.len(), c, "bias length must equal channel count");
    let spatial: usize = if dims.len() == 4 {
        dims[2] * dims[3]
    } else {
        1
    };
    let n = dims[0];
    let mut out = xv.clone();
    {
        let data = out.data_mut();
        let bd = bv.data();
        for i in 0..n {
            for (ch, &bch) in bd.iter().enumerate() {
                let base = (i * c + ch) * spatial;
                for s in 0..spatial {
                    data[base + s] += bch;
                }
            }
        }
    }
    Var::from_op(
        out,
        vec![x.clone(), b.clone()],
        Box::new(move |g, parents| {
            parents[0].accumulate_grad(g);
            let mut db = vec![0.0f32; c];
            let gd = g.data();
            for i in 0..n {
                for (ch, dbch) in db.iter_mut().enumerate() {
                    let base = (i * c + ch) * spatial;
                    for s in 0..spatial {
                        *dbch += gd[base + s];
                    }
                }
            }
            parents[1].accumulate_grad(&Tensor::from_vec(vec![c], db));
        }),
    )
}

// ---------------------------------------------------------------------------
// Convolution
// ---------------------------------------------------------------------------

/// Grouped 2-d convolution.
///
/// * `x`: `[N, C, H, W]`
/// * `w`: `[K, C/groups, R, S]`
/// * zero padding `pad` on both spatial sides, square `stride`.
///
/// Depthwise convolution is `groups == C == K`.
///
/// # Panics
///
/// Panics if shapes are inconsistent with `groups`, or the kernel does not
/// fit the padded input.
pub fn conv2d(x: &Var, w: &Var, stride: usize, pad: usize, groups: usize) -> Var {
    let xv = x.node.value.borrow().clone();
    let wv = w.node.value.borrow().clone();
    if groups > 1 && xv.dims().len() == 4 && groups == xv.dims()[1] && groups == wv.dims()[0] {
        return conv2d_depthwise(x, &xv, w, &wv, stride, pad);
    }
    let (out, oh, ow, cols_cache) = conv2d_forward(&xv, &wv, stride, pad, groups);
    let (n, c) = (xv.dims()[0], xv.dims()[1]);
    let (h, wdt) = (xv.dims()[2], xv.dims()[3]);
    let (k, cg, r, s) = (wv.dims()[0], wv.dims()[1], wv.dims()[2], wv.dims()[3]);
    Var::from_op(
        out,
        vec![x.clone(), w.clone()],
        Box::new(move |g, parents| {
            let wv = parents[1].value();
            let kg = k / groups;
            let mut dx = Tensor::zeros(&[n, c, h, wdt]);
            let mut dw = Tensor::zeros(&[k, cg, r, s]);
            let gd = g.data();
            // Transposed per-group weight matrices, hoisted out of the
            // sample loop.
            let wgt: Vec<Tensor> = (0..groups)
                .map(|gi| {
                    let mut wg = Tensor::zeros(&[kg, cg * r * s]);
                    for kk in 0..kg {
                        let src = (gi * kg + kk) * cg * r * s;
                        wg.data_mut()[kk * cg * r * s..(kk + 1) * cg * r * s]
                            .copy_from_slice(&wv.data()[src..src + cg * r * s]);
                    }
                    wg.transpose2d()
                })
                .collect();
            // Per-sample gradients are independent: compute them in
            // parallel from the cached forward patch matrices, then reduce
            // dw serially in ascending sample order so the accumulation
            // order (and hence the float result) never depends on the
            // thread count.
            let flops = 4 * n * kg * cg * r * s * oh * ow * groups;
            let sample_grad = |i: usize| {
                let mut dx_i = vec![0.0f32; c * h * wdt];
                let mut dwgs = Vec::with_capacity(groups);
                for gi in 0..groups {
                    // Cached patch matrix for this sample/group:
                    // [cg*r*s, oh*ow] — computed once in the forward pass.
                    let cols = &cols_cache[i * groups + gi];
                    // dy for this sample/group: [kg, oh*ow].
                    let mut dy = Tensor::zeros(&[kg, oh * ow]);
                    for kk in 0..kg {
                        let src = ((i * k) + gi * kg + kk) * oh * ow;
                        dy.data_mut()[kk * oh * ow..(kk + 1) * oh * ow]
                            .copy_from_slice(&gd[src..src + oh * ow]);
                    }
                    // dW[g] contribution: dy . cols^T
                    dwgs.push(dy.matmul(&cols.transpose2d()));
                    // dcols = W[g]^T . dy ; dx = col2im(dcols)
                    let dcols = wgt[gi].matmul(&dy);
                    let dxg = col2im(&dcols, cg, h, wdt, r, s, stride, pad);
                    let dst = gi * cg * h * wdt;
                    for (j, &v) in dxg.iter().enumerate() {
                        dx_i[dst + j] += v;
                    }
                }
                (dx_i, dwgs)
            };
            let per_sample = if flops < crate::tensor::PAR_FLOP_THRESHOLD {
                parallel::with_threads(1, || parallel::parallel_map_indexed(n, sample_grad))
            } else {
                parallel::parallel_map_indexed(n, sample_grad)
            };
            for (i, (dx_i, dwgs)) in per_sample.into_iter().enumerate() {
                dx.data_mut()[i * c * h * wdt..(i + 1) * c * h * wdt].copy_from_slice(&dx_i);
                for (gi, dwg) in dwgs.iter().enumerate() {
                    for kk in 0..kg {
                        let dst = (gi * kg + kk) * cg * r * s;
                        let row = &dwg.data()[kk * cg * r * s..(kk + 1) * cg * r * s];
                        for (j, &v) in row.iter().enumerate() {
                            dw.data_mut()[dst + j] += v;
                        }
                    }
                }
            }
            parents[0].accumulate_grad(&dx);
            parents[1].accumulate_grad(&dw);
        }),
    )
}

/// Depthwise fast path (`groups == C == K`): every filter reads exactly
/// one input plane, so both passes run direct tap loops — no per-group
/// 1-column patch matrices are built, cached for backward, or multiplied
/// through 1×(R·S) GEMMs. Forward memory drops to the output itself and
/// the backward scatters `dx` / reduces `dw` straight from `g` and `x`.
/// Per-(sample, channel) chunks are index-addressed with disjoint writes,
/// and `dw` folds serially in ascending sample order, so results are
/// bit-identical at any thread count.
fn conv2d_depthwise(x: &Var, xv: &Tensor, w: &Var, wv: &Tensor, stride: usize, pad: usize) -> Var {
    assert_eq!(xv.dims().len(), 4, "conv2d input must be [N,C,H,W]");
    assert_eq!(wv.dims().len(), 4, "conv2d weight must be [K,C/g,R,S]");
    let (n, c, h, wdt) = (xv.dims()[0], xv.dims()[1], xv.dims()[2], xv.dims()[3]);
    let (cg, r, s) = (wv.dims()[1], wv.dims()[2], wv.dims()[3]);
    assert_eq!(cg, 1, "depthwise weight must be [C, 1, R, S]");
    assert!(
        h + 2 * pad >= r && wdt + 2 * pad >= s,
        "kernel {r}x{s} does not fit padded input {h}x{wdt} (pad {pad})"
    );
    let oh = (h + 2 * pad - r) / stride + 1;
    let ow = (wdt + 2 * pad - s) / stride + 1;
    let flops = 2 * n * c * r * s * oh * ow;

    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    parallel::gate(flops >= crate::tensor::PAR_FLOP_THRESHOLD, || {
        parallel::par_chunks_mut(out.data_mut(), oh * ow, |ci, orow| {
            let (i, ch) = (ci / c, ci % c);
            let plane = &xv.data()[(i * c + ch) * h * wdt..(i * c + ch + 1) * h * wdt];
            let wrow = &wv.data()[ch * r * s..(ch + 1) * r * s];
            let mut jp = 0usize;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ki in 0..r {
                        let iy = (oy * stride + ki) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kj in 0..s {
                            let ix = (ox * stride + kj) as isize - pad as isize;
                            if ix < 0 || ix >= wdt as isize {
                                continue;
                            }
                            acc += wrow[ki * s + kj] * plane[iy as usize * wdt + ix as usize];
                        }
                    }
                    orow[jp] = acc;
                    jp += 1;
                }
            }
        })
    });

    Var::from_op(
        out,
        vec![x.clone(), w.clone()],
        Box::new(move |g, parents| {
            let xv = parents[0].value();
            let wv = parents[1].value();
            let gd = g.data();
            let sample_grad = |i: usize| {
                let mut dx_i = vec![0.0f32; c * h * wdt];
                let mut dw_i = vec![0.0f32; c * r * s];
                for ch in 0..c {
                    let plane = &xv.data()[(i * c + ch) * h * wdt..(i * c + ch + 1) * h * wdt];
                    let grow = &gd[(i * c + ch) * oh * ow..(i * c + ch + 1) * oh * ow];
                    let dxp = &mut dx_i[ch * h * wdt..(ch + 1) * h * wdt];
                    let wrow = &wv.data()[ch * r * s..(ch + 1) * r * s];
                    let dwr = &mut dw_i[ch * r * s..(ch + 1) * r * s];
                    let mut jp = 0usize;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let gv = grow[jp];
                            jp += 1;
                            for ki in 0..r {
                                let iy = (oy * stride + ki) as isize - pad as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kj in 0..s {
                                    let ix = (ox * stride + kj) as isize - pad as isize;
                                    if ix < 0 || ix >= wdt as isize {
                                        continue;
                                    }
                                    let xi = iy as usize * wdt + ix as usize;
                                    dxp[xi] += gv * wrow[ki * s + kj];
                                    dwr[ki * s + kj] += gv * plane[xi];
                                }
                            }
                        }
                    }
                }
                (dx_i, dw_i)
            };
            let per_sample = parallel::gate(2 * flops >= crate::tensor::PAR_FLOP_THRESHOLD, || {
                parallel::parallel_map_indexed(n, sample_grad)
            });
            let mut dx = Tensor::zeros(&[n, c, h, wdt]);
            let mut dw = Tensor::zeros(&[c, 1, r, s]);
            for (i, (dx_i, dw_i)) in per_sample.into_iter().enumerate() {
                dx.data_mut()[i * c * h * wdt..(i + 1) * c * h * wdt].copy_from_slice(&dx_i);
                for (o, &v) in dw.data_mut().iter_mut().zip(&dw_i) {
                    *o += v;
                }
            }
            parents[0].accumulate_grad(&dx);
            parents[1].accumulate_grad(&dw);
        }),
    )
}

/// Forward conv plus the per-sample/group `im2col` patch matrices (indexed
/// `i * groups + gi`), which [`conv2d`] hands to its backward closure.
fn conv2d_forward(
    x: &Tensor,
    w: &Tensor,
    stride: usize,
    pad: usize,
    groups: usize,
) -> (Tensor, usize, usize, Vec<Tensor>) {
    assert_eq!(x.dims().len(), 4, "conv2d input must be [N,C,H,W]");
    assert_eq!(w.dims().len(), 4, "conv2d weight must be [K,C/g,R,S]");
    let (n, c, h, wdt) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (k, cg, r, s) = (w.dims()[0], w.dims()[1], w.dims()[2], w.dims()[3]);
    assert_eq!(
        c % groups,
        0,
        "channels {c} not divisible by groups {groups}"
    );
    assert_eq!(
        k % groups,
        0,
        "filters {k} not divisible by groups {groups}"
    );
    assert_eq!(cg, c / groups, "weight C/g mismatch");
    assert!(
        h + 2 * pad >= r && wdt + 2 * pad >= s,
        "kernel {r}x{s} does not fit padded input {h}x{wdt} (pad {pad})"
    );
    let oh = (h + 2 * pad - r) / stride + 1;
    let ow = (wdt + 2 * pad - s) / stride + 1;
    let kg = k / groups;
    // Per-group weight matrices, hoisted out of the sample loop.
    let wgs: Vec<Tensor> = (0..groups)
        .map(|gi| {
            let mut wg = Tensor::zeros(&[kg, cg * r * s]);
            for kk in 0..kg {
                let src = (gi * kg + kk) * cg * r * s;
                wg.data_mut()[kk * cg * r * s..(kk + 1) * cg * r * s]
                    .copy_from_slice(&w.data()[src..src + cg * r * s]);
            }
            wg
        })
        .collect();
    // Each sample is independent (im2col + one matmul per group), so the
    // batch loop fans out across threads; results are stitched back in
    // sample order. Small convolutions stay on the calling thread.
    let flops = 2 * n * kg * cg * r * s * oh * ow * groups;
    let sample_fwd = |i: usize| {
        let mut out_i = vec![0.0f32; k * oh * ow];
        let mut cols_i = Vec::with_capacity(groups);
        for gi in 0..groups {
            let xin = &x.data()[(i * c + gi * cg) * h * wdt..(i * c + (gi + 1) * cg) * h * wdt];
            let (cols, _, _) = im2col(xin, cg, h, wdt, r, s, stride, pad);
            let y = wgs[gi].matmul(&cols); // [kg, oh*ow]
            out_i[gi * kg * oh * ow..(gi + 1) * kg * oh * ow].copy_from_slice(y.data());
            cols_i.push(cols);
        }
        (out_i, cols_i)
    };
    let per_sample = if flops < crate::tensor::PAR_FLOP_THRESHOLD {
        parallel::with_threads(1, || parallel::parallel_map_indexed(n, sample_fwd))
    } else {
        parallel::parallel_map_indexed(n, sample_fwd)
    };
    let mut out = Tensor::zeros(&[n, k, oh, ow]);
    let mut cols_cache = Vec::with_capacity(n * groups);
    for (i, (out_i, cols_i)) in per_sample.into_iter().enumerate() {
        out.data_mut()[i * k * oh * ow..(i + 1) * k * oh * ow].copy_from_slice(&out_i);
        cols_cache.extend(cols_i);
    }
    (out, oh, ow, cols_cache)
}

// ---------------------------------------------------------------------------
// Normalization
// ---------------------------------------------------------------------------

/// Result of [`batch_norm2d`]: the normalized output plus the batch
/// statistics needed to maintain running estimates.
#[derive(Debug)]
pub struct BatchNormOutput {
    /// Normalized, scaled and shifted activations.
    pub out: Var,
    /// Per-channel mean used for normalization.
    pub mean: Tensor,
    /// Per-channel (biased) variance used for normalization.
    pub var: Tensor,
}

/// Batch normalization over `[N, C, H, W]` (statistics per channel).
///
/// With `stats = None` the batch statistics are computed and fully
/// differentiated (training mode). With `stats = Some((mean, var))` the
/// given statistics are treated as constants (inference mode).
///
/// # Panics
///
/// Panics if the input is not rank 4 or parameter lengths differ from `C`.
pub fn batch_norm2d(
    x: &Var,
    gamma: &Var,
    beta: &Var,
    eps: f32,
    stats: Option<(Tensor, Tensor)>,
) -> BatchNormOutput {
    let xv = x.node.value.borrow().clone();
    assert_eq!(xv.dims().len(), 4, "batch_norm2d input must be [N,C,H,W]");
    let (n, c, h, w) = (xv.dims()[0], xv.dims()[1], xv.dims()[2], xv.dims()[3]);
    let gv = gamma.node.value.borrow().clone();
    let bv = beta.node.value.borrow().clone();
    assert_eq!(gv.len(), c, "gamma length must equal channel count");
    assert_eq!(bv.len(), c, "beta length must equal channel count");
    let m = (n * h * w) as f32;
    let use_batch_stats = stats.is_none();
    let (mean, var) = match stats {
        Some((mu, va)) => (mu, va),
        None => {
            let mut mu = vec![0.0f32; c];
            let mut va = vec![0.0f32; c];
            for i in 0..n {
                for (ch, much) in mu.iter_mut().enumerate() {
                    let base = (i * c + ch) * h * w;
                    for s in 0..h * w {
                        *much += xv.data()[base + s];
                    }
                }
            }
            for v in mu.iter_mut() {
                *v /= m;
            }
            for i in 0..n {
                for ch in 0..c {
                    let base = (i * c + ch) * h * w;
                    for s in 0..h * w {
                        let d = xv.data()[base + s] - mu[ch];
                        va[ch] += d * d;
                    }
                }
            }
            for v in va.iter_mut() {
                *v /= m;
            }
            (Tensor::from_vec(vec![c], mu), Tensor::from_vec(vec![c], va))
        }
    };
    let invstd: Vec<f32> = var.data().iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
    // xhat and y
    let mut xhat = Tensor::zeros(&[n, c, h, w]);
    let mut y = Tensor::zeros(&[n, c, h, w]);
    for i in 0..n {
        for (ch, &is) in invstd.iter().enumerate() {
            let base = (i * c + ch) * h * w;
            for s in 0..h * w {
                let xh = (xv.data()[base + s] - mean.data()[ch]) * is;
                xhat.data_mut()[base + s] = xh;
                y.data_mut()[base + s] = gv.data()[ch] * xh + bv.data()[ch];
            }
        }
    }
    let xhat_saved = xhat.clone();
    let invstd_saved = invstd.clone();
    let mean_out = mean.clone();
    let var_out = var.clone();
    let out = Var::from_op(
        y,
        vec![x.clone(), gamma.clone(), beta.clone()],
        Box::new(move |g, parents| {
            let gv = parents[1].value();
            let gd = g.data();
            let mut dgamma = vec![0.0f32; c];
            let mut dbeta = vec![0.0f32; c];
            let mut sum_dy = vec![0.0f32; c];
            let mut sum_dy_xhat = vec![0.0f32; c];
            for i in 0..n {
                for ch in 0..c {
                    let base = (i * c + ch) * h * w;
                    for s in 0..h * w {
                        let dy = gd[base + s];
                        let xh = xhat_saved.data()[base + s];
                        dgamma[ch] += dy * xh;
                        dbeta[ch] += dy;
                        sum_dy[ch] += dy;
                        sum_dy_xhat[ch] += dy * xh;
                    }
                }
            }
            let mut dx = Tensor::zeros(&[n, c, h, w]);
            for i in 0..n {
                for ch in 0..c {
                    let base = (i * c + ch) * h * w;
                    let gsc = gv.data()[ch] * invstd_saved[ch];
                    for s in 0..h * w {
                        let dy = gd[base + s];
                        let xh = xhat_saved.data()[base + s];
                        dx.data_mut()[base + s] = if use_batch_stats {
                            gsc / m * (m * dy - sum_dy[ch] - xh * sum_dy_xhat[ch])
                        } else {
                            gsc * dy
                        };
                    }
                }
            }
            parents[0].accumulate_grad(&dx);
            parents[1].accumulate_grad(&Tensor::from_vec(vec![c], dgamma));
            parents[2].accumulate_grad(&Tensor::from_vec(vec![c], dbeta));
        }),
    );
    BatchNormOutput {
        out,
        mean: mean_out,
        var: var_out,
    }
}

// ---------------------------------------------------------------------------
// Activations
// ---------------------------------------------------------------------------

/// Rectified linear unit, `max(x, 0)`.
pub fn relu(x: &Var) -> Var {
    clamp(x, 0.0, f32::INFINITY)
}

/// `min(max(x, 0), 6)` — MobileNet's bounded activation.
pub fn relu6(x: &Var) -> Var {
    clamp(x, 0.0, 6.0)
}

/// Elementwise clamp with pass-through gradient strictly inside the range.
pub fn clamp(x: &Var, lo: f32, hi: f32) -> Var {
    let xv = x.node.value.borrow().clone();
    let out = xv.map(|v| v.clamp(lo, hi));
    Var::from_op(
        out,
        vec![x.clone()],
        Box::new(move |g, parents| {
            let xv = parents[0].value();
            let dx = g.zip_map(&xv, |gi, vi| if vi > lo && vi < hi { gi } else { 0.0 });
            parents[0].accumulate_grad(&dx);
        }),
    )
}

// ---------------------------------------------------------------------------
// Pooling & reshape
// ---------------------------------------------------------------------------

/// Non-overlapping-friendly average pooling over `[N,C,H,W]`.
///
/// # Panics
///
/// Panics if the window does not tile the input exactly.
pub fn avg_pool2d(x: &Var, kernel: usize, stride: usize) -> Var {
    let xv = x.node.value.borrow().clone();
    assert_eq!(xv.dims().len(), 4, "avg_pool2d input must be [N,C,H,W]");
    let (n, c, h, w) = (xv.dims()[0], xv.dims()[1], xv.dims()[2], xv.dims()[3]);
    assert!(
        (h - kernel).is_multiple_of(stride) && (w - kernel).is_multiple_of(stride),
        "pool window {kernel}/{stride} must tile {h}x{w}"
    );
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let inv = 1.0 / (kernel * kernel) as f32;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    for i in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            acc += xv.data()
                                [((i * c + ch) * h + oy * stride + ky) * w + ox * stride + kx];
                        }
                    }
                    out.data_mut()[((i * c + ch) * oh + oy) * ow + ox] = acc * inv;
                }
            }
        }
    }
    Var::from_op(
        out,
        vec![x.clone()],
        Box::new(move |g, parents| {
            let mut dx = Tensor::zeros(&[n, c, h, w]);
            let gd = g.data();
            for i in 0..n {
                for ch in 0..c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let go = gd[((i * c + ch) * oh + oy) * ow + ox] * inv;
                            for ky in 0..kernel {
                                for kx in 0..kernel {
                                    dx.data_mut()[((i * c + ch) * h + oy * stride + ky) * w
                                        + ox * stride
                                        + kx] += go;
                                }
                            }
                        }
                    }
                }
            }
            parents[0].accumulate_grad(&dx);
        }),
    )
}

/// Global average pooling: `[N,C,H,W] -> [N,C]`.
pub fn global_avg_pool(x: &Var) -> Var {
    let xv = x.node.value.borrow().clone();
    assert_eq!(
        xv.dims().len(),
        4,
        "global_avg_pool input must be [N,C,H,W]"
    );
    let (n, c, h, w) = (xv.dims()[0], xv.dims()[1], xv.dims()[2], xv.dims()[3]);
    let inv = 1.0 / (h * w) as f32;
    let mut out = Tensor::zeros(&[n, c]);
    for i in 0..n {
        for ch in 0..c {
            let base = (i * c + ch) * h * w;
            let acc: f32 = xv.data()[base..base + h * w].iter().sum();
            out.data_mut()[i * c + ch] = acc * inv;
        }
    }
    Var::from_op(
        out,
        vec![x.clone()],
        Box::new(move |g, parents| {
            let mut dx = Tensor::zeros(&[n, c, h, w]);
            let gd = g.data();
            for i in 0..n {
                for ch in 0..c {
                    let go = gd[i * c + ch] * inv;
                    let base = (i * c + ch) * h * w;
                    for s in 0..h * w {
                        dx.data_mut()[base + s] = go;
                    }
                }
            }
            parents[0].accumulate_grad(&dx);
        }),
    )
}

/// Max pooling over `[N,C,H,W]` with square kernel/stride.
///
/// # Panics
///
/// Panics if the window does not tile the input exactly.
pub fn max_pool2d(x: &Var, kernel: usize, stride: usize) -> Var {
    let xv = x.node.value.borrow().clone();
    assert_eq!(xv.dims().len(), 4, "max_pool2d input must be [N,C,H,W]");
    let (n, c, h, w) = (xv.dims()[0], xv.dims()[1], xv.dims()[2], xv.dims()[3]);
    assert!(
        (h - kernel).is_multiple_of(stride) && (w - kernel).is_multiple_of(stride),
        "pool window {kernel}/{stride} must tile {h}x{w}"
    );
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut arg: Vec<usize> = vec![0; n * c * oh * ow];
    for i in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let idx = ((i * c + ch) * h + oy * stride + ky) * w + ox * stride + kx;
                            if xv.data()[idx] > best {
                                best = xv.data()[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o = ((i * c + ch) * oh + oy) * ow + ox;
                    out.data_mut()[o] = best;
                    arg[o] = best_idx;
                }
            }
        }
    }
    Var::from_op(
        out,
        vec![x.clone()],
        Box::new(move |g, parents| {
            let mut dx = Tensor::zeros(&[n, c, h, w]);
            for (o, &src) in arg.iter().enumerate() {
                dx.data_mut()[src] += g.data()[o];
            }
            parents[0].accumulate_grad(&dx);
        }),
    )
}

/// Shape-changing view (data order preserved).
pub fn reshape(x: &Var, dims: &[usize]) -> Var {
    let out = x.node.value.borrow().reshape(dims);
    Var::from_op(
        out,
        vec![x.clone()],
        Box::new(|g, parents| {
            let dims = parents[0].dims();
            parents[0].accumulate_grad(&g.reshape(&dims));
        }),
    )
}

// ---------------------------------------------------------------------------
// Concatenation & slicing
// ---------------------------------------------------------------------------

/// Concatenates along axis 0 (all other axes must match).
///
/// # Panics
///
/// Panics if `parts` is empty or trailing shapes disagree.
pub fn concat0(parts: &[Var]) -> Var {
    assert!(!parts.is_empty(), "concat0 needs at least one input");
    let first = parts[0].node.value.borrow().clone();
    let tail_shape: Vec<usize> = first.dims()[1..].to_vec();
    let mut rows = 0usize;
    let mut data = Vec::new();
    let mut sizes = Vec::with_capacity(parts.len());
    for p in parts {
        let v = p.node.value.borrow().clone();
        assert_eq!(
            &v.dims()[1..],
            tail_shape.as_slice(),
            "concat0 trailing shapes must match"
        );
        rows += v.dims()[0];
        sizes.push(v.len());
        data.extend_from_slice(v.data());
    }
    let mut out_dims = vec![rows];
    out_dims.extend_from_slice(&tail_shape);
    Var::from_op(
        Tensor::from_vec(out_dims, data),
        parts.to_vec(),
        Box::new(move |g, parents| {
            let mut offset = 0usize;
            for (p, &len) in parents.iter().zip(&sizes) {
                let dims = p.dims();
                let chunk = Tensor::from_vec(dims, g.data()[offset..offset + len].to_vec());
                p.accumulate_grad(&chunk);
                offset += len;
            }
        }),
    )
}

/// Slices rows `[start, start + len)` along axis 0.
///
/// # Panics
///
/// Panics if the range exceeds the axis-0 extent or `len == 0`.
pub fn slice0(x: &Var, start: usize, len: usize) -> Var {
    let xv = x.node.value.borrow().clone();
    let rows = xv.dims()[0];
    assert!(len > 0, "slice length must be positive");
    assert!(
        start + len <= rows,
        "slice [{start}, {}) out of {rows} rows",
        start + len
    );
    let per: usize = xv.dims()[1..].iter().product::<usize>().max(1);
    let mut dims = xv.dims().to_vec();
    dims[0] = len;
    let data = xv.data()[start * per..(start + len) * per].to_vec();
    Var::from_op(
        Tensor::from_vec(dims, data),
        vec![x.clone()],
        Box::new(move |g, parents| {
            let pdims = parents[0].dims();
            let mut dx = Tensor::zeros(&pdims);
            dx.data_mut()[start * per..(start + len) * per].copy_from_slice(g.data());
            parents[0].accumulate_grad(&dx);
        }),
    )
}

// ---------------------------------------------------------------------------
// Softmax & losses
// ---------------------------------------------------------------------------

/// Softmax over a 1-d vector (used for Gumbel-softmax architecture weights).
///
/// # Panics
///
/// Panics if the input is not rank 1.
pub fn softmax_1d(x: &Var) -> Var {
    let xv = x.node.value.borrow().clone();
    assert_eq!(xv.dims().len(), 1, "softmax_1d input must be rank 1");
    let y = xv
        .reshape(&[1, xv.len()])
        .softmax_rows()
        .reshape(&[xv.len()]);
    let y_saved = y.clone();
    Var::from_op(
        y,
        vec![x.clone()],
        Box::new(move |g, parents| {
            // dx_i = y_i * (g_i - sum_j g_j y_j)
            let dot: f32 = g
                .data()
                .iter()
                .zip(y_saved.data())
                .map(|(&gi, &yi)| gi * yi)
                .sum();
            let dx = y_saved.zip_map(g, |yi, gi| yi * (gi - dot));
            parents[0].accumulate_grad(&dx);
        }),
    )
}

/// Fused softmax + cross-entropy over `[N, C]` logits with integer labels.
///
/// Returns the mean negative log-likelihood as a `[1]` tensor.
///
/// # Panics
///
/// Panics if `labels.len() != N` or any label is out of range.
pub fn softmax_cross_entropy(logits: &Var, labels: &[usize]) -> Var {
    let lv = logits.node.value.borrow().clone();
    assert_eq!(lv.dims().len(), 2, "logits must be [N, C]");
    let (n, c) = (lv.dims()[0], lv.dims()[1]);
    assert_eq!(labels.len(), n, "labels length must equal batch size");
    assert!(
        labels.iter().all(|&l| l < c),
        "label out of range for {c} classes"
    );
    let probs = lv.softmax_rows();
    let mut loss = 0.0f32;
    for (i, &l) in labels.iter().enumerate() {
        loss -= probs.data()[i * c + l].max(1e-12).ln();
    }
    loss /= n as f32;
    let labels_owned = labels.to_vec();
    Var::from_op(
        Tensor::scalar(loss),
        vec![logits.clone()],
        Box::new(move |g, parents| {
            let go = g.item() / n as f32;
            let mut dl = probs.clone();
            for (i, &l) in labels_owned.iter().enumerate() {
                dl.data_mut()[i * c + l] -= 1.0;
            }
            parents[0].accumulate_grad(&dl.scale(go));
        }),
    )
}

/// Softmax cross-entropy with label smoothing: the target distribution is
/// `(1 - eps) * onehot + eps / C`.
///
/// With `eps = 0` this equals [`softmax_cross_entropy`].
///
/// # Panics
///
/// Panics on label/shape mismatch or `eps` outside `[0, 1)`.
pub fn softmax_cross_entropy_smoothed(logits: &Var, labels: &[usize], eps: f32) -> Var {
    assert!((0.0..1.0).contains(&eps), "eps must be in [0, 1)");
    let lv = logits.node.value.borrow().clone();
    assert_eq!(lv.dims().len(), 2, "logits must be [N, C]");
    let (n, c) = (lv.dims()[0], lv.dims()[1]);
    assert_eq!(labels.len(), n, "labels length must equal batch size");
    assert!(labels.iter().all(|&l| l < c), "label out of range");
    let probs = lv.softmax_rows();
    let unif = eps / c as f32;
    let mut loss = 0.0f32;
    for (i, &l) in labels.iter().enumerate() {
        for j in 0..c {
            let target = if j == l { 1.0 - eps + unif } else { unif };
            if target > 0.0 {
                loss -= target * probs.data()[i * c + j].max(1e-12).ln();
            }
        }
    }
    loss /= n as f32;
    let labels_owned = labels.to_vec();
    Var::from_op(
        Tensor::scalar(loss),
        vec![logits.clone()],
        Box::new(move |g, parents| {
            let go = g.item() / n as f32;
            let mut dl = probs.clone();
            for (i, &l) in labels_owned.iter().enumerate() {
                for j in 0..c {
                    let target = if j == l { 1.0 - eps + unif } else { unif };
                    dl.data_mut()[i * c + j] -= target;
                }
            }
            parents[0].accumulate_grad(&dl.scale(go));
        }),
    )
}

/// Mean-squared-error `mean((a - b)^2)` as a `[1]` tensor.
pub fn mse_loss(a: &Var, b: &Var) -> Var {
    let d = sub(a, b);
    mean(&mul(&d, &d))
}

/// Temperature-softened distillation loss:
/// `KL(softmax(teacher/T) || softmax(student/T)) * T^2`, averaged over the
/// batch (Hinton et al.; the `T^2` keeps gradient magnitude
/// temperature-invariant).
///
/// The teacher distribution is a constant (stop-gradient) tensor of
/// logits with the same `[N, C]` shape.
///
/// # Panics
///
/// Panics on shape mismatch or non-positive temperature.
pub fn distill_kl(student_logits: &Var, teacher_logits: &Tensor, temperature: f32) -> Var {
    assert!(temperature > 0.0, "temperature must be positive");
    let sv = student_logits.node.value.borrow().clone();
    assert_eq!(sv.dims().len(), 2, "logits must be [N, C]");
    assert_eq!(
        sv.shape(),
        teacher_logits.shape(),
        "student/teacher shapes differ"
    );
    let (n, c) = (sv.dims()[0], sv.dims()[1]);
    let t = temperature;
    let p_teacher = teacher_logits.scale(1.0 / t).softmax_rows();
    let p_student = sv.scale(1.0 / t).softmax_rows();
    let mut loss = 0.0f32;
    for i in 0..n * c {
        let pt = p_teacher.data()[i];
        if pt > 0.0 {
            loss += pt * (pt.max(1e-12).ln() - p_student.data()[i].max(1e-12).ln());
        }
    }
    loss = loss * t * t / n as f32;
    Var::from_op(
        Tensor::scalar(loss),
        vec![student_logits.clone()],
        Box::new(move |g, parents| {
            // d/dz_s = (softmax(z_s/T) - p_teacher) * T / N  (times T^2/T).
            let go = g.item() * t / n as f32;
            let dl = p_student.sub(&p_teacher).scale(go);
            parents[0].accumulate_grad(&dl);
        }),
    )
}

// ---------------------------------------------------------------------------
// Straight-through estimator & architecture mixing
// ---------------------------------------------------------------------------

/// Elementwise gradient multiplier used by [`ste_apply`] (e.g. a clip-range
/// mask for DoReFa activations).
pub type GradMaskFn = Box<dyn Fn(&Tensor) -> Tensor>;

/// Applies a non-differentiable elementwise transform with a
/// straight-through gradient.
///
/// `forward` maps the input tensor to the output (e.g. a quantizer);
/// `grad_mask`, if given, produces an elementwise multiplier applied to the
/// incoming gradient (e.g. zero outside a clipping range). With
/// `grad_mask = None` the gradient passes through unchanged — the classic
/// STE used by DoReFa / SBM quantizers.
pub fn ste_apply(
    x: &Var,
    forward: impl Fn(&Tensor) -> Tensor,
    grad_mask: Option<GradMaskFn>,
) -> Var {
    let xv = x.node.value.borrow().clone();
    let out = forward(&xv);
    assert_eq!(
        out.shape(),
        xv.shape(),
        "ste_apply transform must preserve the shape"
    );
    Var::from_op(
        out,
        vec![x.clone()],
        Box::new(move |g, parents| {
            let dx = match &grad_mask {
                Some(mask) => g.mul(&mask(&parents[0].value())),
                None => g.clone(),
            };
            parents[0].accumulate_grad(&dx);
        }),
    )
}

/// PACT activation quantization (Choi et al. 2018): clips to a *learnable*
/// range `[0, alpha]` and uniformly quantizes to `bits`.
///
/// Gradients: straight-through inside the clip range for `x`; for `alpha`,
/// the gradient is the sum of upstream gradients over clipped-high
/// elements (the PACT estimator).
///
/// # Panics
///
/// Panics if `alpha` is not a positive scalar or `bits == 0`.
pub fn pact(x: &Var, alpha: &Var, bits: u8) -> Var {
    assert!(bits >= 1, "bits must be positive");
    let a = alpha.node.value.borrow().item().max(1e-3);
    let levels = ((1u64 << bits.min(31)) - 1) as f32;
    let xv = x.node.value.borrow().clone();
    let out = xv.map(|v| {
        let c = v.clamp(0.0, a);
        (c * levels / a).round() * a / levels
    });
    Var::from_op(
        out,
        vec![x.clone(), alpha.clone()],
        Box::new(move |g, parents| {
            let xv = parents[0].value();
            let a = parents[1].value().item().max(1e-3);
            let dx = g.zip_map(&xv, |gi, vi| if (0.0..=a).contains(&vi) { gi } else { 0.0 });
            parents[0].accumulate_grad(&dx);
            let dalpha: f32 = g
                .data()
                .iter()
                .zip(xv.data())
                .map(|(&gi, &vi)| if vi > a { gi } else { 0.0 })
                .sum();
            parents[1].accumulate_grad(&Tensor::scalar(dalpha));
        }),
    )
}

/// Multiplies a tensor by one scalar element of a vector-valued [`Var`].
///
/// Used to mix supernet candidate outputs: `out = x * w[idx]`, with
/// gradients flowing to both the candidate output and the architecture
/// weight element.
///
/// # Panics
///
/// Panics if `idx` is out of range for `w`.
pub fn scale_by_element(x: &Var, w: &Var, idx: usize) -> Var {
    let wv = w.node.value.borrow().clone();
    assert!(idx < wv.len(), "weight index {idx} out of range");
    let out = x.node.value.borrow().scale(wv.data()[idx]);
    Var::from_op(
        out,
        vec![x.clone(), w.clone()],
        Box::new(move |g, parents| {
            let xv = parents[0].value();
            let wv = parents[1].value();
            parents[0].accumulate_grad(&g.scale(wv.data()[idx]));
            let mut dw = Tensor::zeros(&[wv.len()]);
            dw.data_mut()[idx] = g
                .data()
                .iter()
                .zip(xv.data())
                .map(|(&gi, &xi)| gi * xi)
                .sum();
            parents[1].accumulate_grad(&dw);
        }),
    )
}

/// Inner product of a variable with a constant vector: `sum_i x_i * c_i`.
///
/// Used for the differentiable FLOPs/efficiency loss over architecture
/// weights.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot_const(x: &Var, consts: &[f32]) -> Var {
    let xv = x.node.value.borrow().clone();
    assert_eq!(xv.len(), consts.len(), "dot_const length mismatch");
    let out: f32 = xv.data().iter().zip(consts).map(|(&a, &b)| a * b).sum();
    let consts = consts.to_vec();
    Var::from_op(
        Tensor::scalar(out),
        vec![x.clone()],
        Box::new(move |g, parents| {
            let go = g.item();
            let dx = Tensor::from_vec(vec![consts.len()], consts.iter().map(|&c| c * go).collect());
            parents[0].accumulate_grad(&dx);
        }),
    )
}

// ---------------------------------------------------------------------------
// Method sugar on Var
// ---------------------------------------------------------------------------

impl Var {
    /// See [`add`].
    pub fn add(&self, other: &Var) -> Var {
        add(self, other)
    }
    /// See [`sub`].
    pub fn sub(&self, other: &Var) -> Var {
        sub(self, other)
    }
    /// See [`mul`].
    pub fn mul(&self, other: &Var) -> Var {
        mul(self, other)
    }
    /// See [`scale`].
    pub fn scale(&self, s: f32) -> Var {
        scale(self, s)
    }
    /// See [`sum`].
    pub fn sum(&self) -> Var {
        sum(self)
    }
    /// See [`mean`].
    pub fn mean(&self) -> Var {
        mean(self)
    }
    /// See [`relu`].
    pub fn relu(&self) -> Var {
        relu(self)
    }
    /// See [`relu6`].
    pub fn relu6(&self) -> Var {
        relu6(self)
    }
    /// See [`reshape`].
    pub fn reshape(&self, dims: &[usize]) -> Var {
        reshape(self, dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Central-difference gradient check of `f` at leaf `x`.
    fn grad_check(x: &Var, f: impl Fn(&Var) -> Var, tol: f32) {
        let loss = f(x);
        loss.backward();
        let analytic = x.grad().unwrap();
        let base = x.value();
        let eps = 1e-2f32;
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus.data_mut()[i] += eps;
            let mut minus = base.clone();
            minus.data_mut()[i] -= eps;
            let fp = f(&Var::leaf(plus, false)).item();
            let fm = f(&Var::leaf(minus, false)).item();
            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "grad mismatch at {i}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    fn randn(rng: &mut StdRng, dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec(
            dims.to_vec(),
            (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
    }

    #[test]
    fn grad_check_matmul() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = Var::constant(randn(&mut rng, &[3, 2]));
        let x = Var::leaf(randn(&mut rng, &[2, 3]), true);
        grad_check(&x, |x| matmul(x, &b).sum(), 1e-2);
    }

    #[test]
    fn grad_check_conv2d_weight() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Var::constant(randn(&mut rng, &[1, 2, 5, 5]));
        let w = Var::leaf(randn(&mut rng, &[3, 2, 3, 3]), true);
        grad_check(&w, |w| conv2d(&x, w, 1, 1, 1).sum(), 2e-2);
    }

    #[test]
    fn grad_check_conv2d_input_strided() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Var::constant(randn(&mut rng, &[2, 2, 3, 3]));
        let x = Var::leaf(randn(&mut rng, &[1, 2, 6, 6]), true);
        grad_check(&x, |x| conv2d(x, &w, 2, 1, 1).sum(), 2e-2);
    }

    #[test]
    fn grad_check_depthwise_conv() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Var::constant(randn(&mut rng, &[1, 4, 5, 5]));
        let w = Var::leaf(randn(&mut rng, &[4, 1, 3, 3]), true);
        grad_check(&w, |w| conv2d(&x, w, 1, 1, 4).sum(), 2e-2);
    }

    #[test]
    fn grad_check_depthwise_conv_input() {
        let mut rng = StdRng::seed_from_u64(41);
        let w = Var::constant(randn(&mut rng, &[3, 1, 3, 3]));
        let x = Var::leaf(randn(&mut rng, &[2, 3, 6, 6]), true);
        grad_check(&x, |x| conv2d(x, &w, 2, 1, 3).sum(), 2e-2);
    }

    #[test]
    fn depthwise_fast_path_matches_generic_conv() {
        let mut rng = StdRng::seed_from_u64(42);
        let xv = randn(&mut rng, &[2, 5, 7, 7]);
        let wv = randn(&mut rng, &[5, 1, 3, 3]);
        let fast = conv2d(
            &Var::constant(xv.clone()),
            &Var::constant(wv.clone()),
            1,
            1,
            5,
        );
        // The generic grouped path, reached directly (conv2d itself would
        // route groups == C == K to the fast path).
        let (generic, _, _, _) = conv2d_forward(&xv, &wv, 1, 1, 5);
        assert_eq!(fast.value().dims(), generic.dims());
        for (a, b) in fast.value().data().iter().zip(generic.data()) {
            assert!((a - b).abs() <= 1e-5 + 1e-5 * b.abs(), "{a} vs {b}");
        }
    }

    #[test]
    fn grad_check_batch_norm_input() {
        let mut rng = StdRng::seed_from_u64(5);
        let gamma = Var::constant(Tensor::ones(&[3]));
        let beta = Var::constant(Tensor::zeros(&[3]));
        let x = Var::leaf(randn(&mut rng, &[2, 3, 2, 2]), true);
        grad_check(
            &x,
            |x| {
                let bn = batch_norm2d(x, &gamma, &beta, 1e-3, None);
                mul(&bn.out, &bn.out).sum()
            },
            5e-2,
        );
    }

    #[test]
    fn grad_check_batch_norm_gamma_beta() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = Var::constant(randn(&mut rng, &[2, 2, 3, 3]));
        let gb = Var::leaf(randn(&mut rng, &[2]), true);
        // Check gamma gradient by reusing gb as gamma.
        grad_check(
            &gb,
            |gamma| {
                let beta = Var::constant(Tensor::zeros(&[2]));
                let bn = batch_norm2d(&x, gamma, &beta, 1e-3, None);
                mul(&bn.out, &bn.out).sum()
            },
            5e-2,
        );
    }

    #[test]
    fn grad_check_softmax_cross_entropy() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Var::leaf(randn(&mut rng, &[4, 5]), true);
        grad_check(&x, |x| softmax_cross_entropy(x, &[0, 1, 2, 3]), 1e-2);
    }

    #[test]
    fn grad_check_softmax_1d() {
        let mut rng = StdRng::seed_from_u64(8);
        let x = Var::leaf(randn(&mut rng, &[5]), true);
        grad_check(
            &x,
            |x| dot_const(&softmax_1d(x), &[1.0, -2.0, 3.0, 0.5, 2.0]),
            1e-2,
        );
    }

    #[test]
    fn grad_check_avg_pool() {
        let mut rng = StdRng::seed_from_u64(9);
        let x = Var::leaf(randn(&mut rng, &[1, 2, 4, 4]), true);
        grad_check(
            &x,
            |x| {
                let p = avg_pool2d(x, 2, 2);
                mul(&p, &p).sum()
            },
            1e-2,
        );
    }

    #[test]
    fn grad_check_global_avg_pool() {
        let mut rng = StdRng::seed_from_u64(10);
        let x = Var::leaf(randn(&mut rng, &[2, 3, 2, 2]), true);
        grad_check(
            &x,
            |x| {
                let p = global_avg_pool(x);
                mul(&p, &p).sum()
            },
            1e-2,
        );
    }

    #[test]
    fn grad_check_linear_and_bias() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = Var::constant(randn(&mut rng, &[3, 4]));
        let w = Var::leaf(randn(&mut rng, &[2, 4]), true);
        grad_check(
            &w,
            |w| {
                let b = Var::constant(randn(&mut StdRng::seed_from_u64(12), &[2]));
                let y = linear(&x, w, Some(&b));
                mul(&y, &y).sum()
            },
            2e-2,
        );
    }

    #[test]
    fn grad_check_clamp_interior_only() {
        let x = Var::leaf(Tensor::from_vec(vec![3], vec![-1.0, 0.5, 7.0]), true);
        let y = relu6(&x).sum();
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn max_pool_routes_gradient_to_argmax() {
        let x = Var::leaf(
            Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]),
            true,
        );
        let y = max_pool2d(&x, 2, 2).sum();
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn ste_passes_gradient_through_round() {
        let x = Var::leaf(Tensor::from_vec(vec![3], vec![0.2, 0.7, 1.4]), true);
        let q = ste_apply(&x, |t| t.map(|v| v.round()), None);
        assert_eq!(q.value().data(), &[0.0, 1.0, 1.0]);
        q.sum().backward();
        assert_eq!(x.grad().unwrap().data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn ste_grad_mask_applies() {
        let x = Var::leaf(Tensor::from_vec(vec![2], vec![0.5, 2.0]), true);
        let q = ste_apply(
            &x,
            |t| t.map(|v| v.clamp(0.0, 1.0)),
            Some(Box::new(|t: &Tensor| {
                t.map(|v| if (0.0..=1.0).contains(&v) { 1.0 } else { 0.0 })
            })),
        );
        q.sum().backward();
        assert_eq!(x.grad().unwrap().data(), &[1.0, 0.0]);
    }

    #[test]
    fn scale_by_element_grad_flows_to_weight() {
        let x = Var::constant(Tensor::from_vec(vec![2], vec![1.0, 2.0]));
        let w = Var::leaf(Tensor::from_vec(vec![3], vec![0.1, 0.2, 0.3]), true);
        let y = scale_by_element(&x, &w, 1).sum();
        y.backward();
        assert_eq!(w.grad().unwrap().data(), &[0.0, 3.0, 0.0]);
    }

    #[test]
    fn mse_loss_of_equal_inputs_is_zero() {
        let a = Var::constant(Tensor::from_vec(vec![2], vec![1.0, 2.0]));
        let b = Var::constant(Tensor::from_vec(vec![2], vec![1.0, 2.0]));
        assert_eq!(mse_loss(&a, &b).item(), 0.0);
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Var::constant(Tensor::from_vec(vec![1, 3], vec![20.0, 0.0, 0.0]));
        assert!(softmax_cross_entropy(&logits, &[0]).item() < 1e-3);
    }

    #[test]
    fn pact_output_bounded_by_alpha_and_quantized() {
        let x = Var::constant(Tensor::from_vec(vec![4], vec![-1.0, 0.3, 0.9, 5.0]));
        let alpha = Var::leaf(Tensor::scalar(1.0), true);
        let y = pact(&x, &alpha, 2);
        let v = y.value();
        assert!(v.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
        // 2-bit: levels at multiples of 1/3.
        assert!(v
            .data()
            .iter()
            .all(|&p| (p * 3.0 - (p * 3.0).round()).abs() < 1e-5));
    }

    #[test]
    fn pact_alpha_gradient_counts_clipped_elements() {
        let x = Var::constant(Tensor::from_vec(vec![4], vec![-1.0, 0.5, 2.0, 3.0]));
        let alpha = Var::leaf(Tensor::scalar(1.0), true);
        pact(&x, &alpha, 4).sum().backward();
        // Two elements exceed alpha; each contributes gradient 1.
        assert_eq!(alpha.grad().unwrap().item(), 2.0);
    }

    #[test]
    fn pact_input_gradient_masks_out_of_range() {
        let x = Var::leaf(Tensor::from_vec(vec![3], vec![-0.5, 0.5, 2.0]), true);
        let alpha = Var::constant(Tensor::scalar(1.0));
        pact(&x, &alpha, 4).sum().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn distill_kl_zero_for_identical_logits() {
        let mut rng = StdRng::seed_from_u64(30);
        let z = randn(&mut rng, &[3, 5]);
        let loss = distill_kl(&Var::constant(z.clone()), &z, 4.0).item();
        assert!(loss.abs() < 1e-5, "{loss}");
    }

    #[test]
    fn distill_kl_nonnegative_and_grad_checks() {
        let mut rng = StdRng::seed_from_u64(31);
        let teacher = randn(&mut rng, &[3, 4]);
        let x = Var::leaf(randn(&mut rng, &[3, 4]), true);
        assert!(distill_kl(&x, &teacher, 2.0).item() >= 0.0);
        let t2 = teacher.clone();
        grad_check(&x, move |x| distill_kl(x, &t2, 2.0), 1e-2);
    }

    #[test]
    fn distill_kl_bounded_under_logit_scaling() {
        // Unlike logit MSE, the softened KL does not explode when logits
        // scale up (the Table IV failure mode of raw-MSE distillation).
        let teacher = Tensor::from_vec(vec![1, 3], vec![10.0, 0.0, -10.0]);
        let student = Var::constant(Tensor::from_vec(vec![1, 3], vec![-10.0, 0.0, 10.0]));
        let kl = distill_kl(&student, &teacher, 4.0).item();
        let mse = mse_loss(&student, &Var::constant(teacher.clone())).item();
        assert!(kl < mse, "kl {kl} vs mse {mse}");
    }

    #[test]
    fn concat0_stacks_batches_and_routes_grads() {
        let a = Var::leaf(Tensor::from_vec(vec![1, 2], vec![1.0, 2.0]), true);
        let b = Var::leaf(Tensor::from_vec(vec![2, 2], vec![3.0, 4.0, 5.0, 6.0]), true);
        let c = concat0(&[a.clone(), b.clone()]);
        assert_eq!(c.dims(), vec![3, 2]);
        // Weight the rows differently so the split gradients differ.
        let w = Var::constant(Tensor::from_vec(
            vec![3, 2],
            vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0],
        ));
        mul(&c, &w).sum().backward();
        assert_eq!(a.grad().unwrap().data(), &[1.0, 1.0]);
        assert_eq!(b.grad().unwrap().data(), &[2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn slice0_extracts_rows_and_scatters_grad() {
        let x = Var::leaf(
            Tensor::from_vec(vec![3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
            true,
        );
        let sl = slice0(&x, 1, 1);
        assert_eq!(sl.value().data(), &[3.0, 4.0]);
        sl.sum().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn concat_slice_roundtrip() {
        let x = Var::constant(Tensor::from_vec(
            vec![2, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        ));
        let parts = vec![slice0(&x, 0, 1), slice0(&x, 1, 1)];
        let back = concat0(&parts);
        assert_eq!(back.value(), x.value());
    }

    #[test]
    #[should_panic(expected = "trailing shapes")]
    fn concat0_rejects_mismatched_shapes() {
        let a = Var::constant(Tensor::zeros(&[1, 2]));
        let b = Var::constant(Tensor::zeros(&[1, 3]));
        let _ = concat0(&[a, b]);
    }

    #[test]
    fn smoothed_ce_reduces_to_plain_ce_at_eps_zero() {
        let mut rng = StdRng::seed_from_u64(20);
        let x = randn(&mut rng, &[3, 4]);
        let a = softmax_cross_entropy(&Var::constant(x.clone()), &[0, 1, 2]).item();
        let b = softmax_cross_entropy_smoothed(&Var::constant(x), &[0, 1, 2], 0.0).item();
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn grad_check_smoothed_cross_entropy() {
        let mut rng = StdRng::seed_from_u64(21);
        let x = Var::leaf(randn(&mut rng, &[3, 4]), true);
        grad_check(
            &x,
            |x| softmax_cross_entropy_smoothed(x, &[0, 1, 3], 0.1),
            1e-2,
        );
    }

    #[test]
    fn smoothing_penalizes_overconfidence() {
        // A very confident correct prediction has near-zero CE but nonzero
        // smoothed CE (the uniform component keeps pressure on).
        let logits = Var::constant(Tensor::from_vec(vec![1, 3], vec![30.0, 0.0, 0.0]));
        let plain = softmax_cross_entropy(&logits, &[0]).item();
        let smooth = softmax_cross_entropy_smoothed(&logits, &[0], 0.2).item();
        assert!(plain < 1e-3);
        assert!(smooth > 1.0);
    }

    #[test]
    fn conv_matches_hand_computed_value() {
        // 1x1 input channel, 2x2 input, 2x2 kernel, no pad.
        let x = Var::constant(Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]));
        let w = Var::constant(Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 0.0, 0.0, 1.0]));
        let y = conv2d(&x, &w, 1, 0, 1);
        assert_eq!(y.value().data(), &[5.0]); // 1*1 + 4*1
    }

    #[test]
    fn bias_add_4d_broadcasts_per_channel() {
        let x = Var::constant(Tensor::zeros(&[1, 2, 2, 2]));
        let b = Var::constant(Tensor::from_vec(vec![2], vec![1.0, -1.0]));
        let y = bias_add(&x, &b);
        let v = y.value();
        assert_eq!(&v.data()[0..4], &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(&v.data()[4..8], &[-1.0, -1.0, -1.0, -1.0]);
    }
}
