//! Tape-based reverse-mode automatic differentiation.
//!
//! Graphs are built dynamically (define-by-run): every operator in
//! [`crate::ops`] allocates a [`Var`] node holding the forward value, its
//! parents, and a closure that maps the incoming gradient to parent-gradient
//! contributions. [`Var::backward`] topologically sorts the reachable graph
//! and runs the closures in reverse order.

use crate::tensor::Tensor;
use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// Gradient function: receives the gradient w.r.t. this node's output and
/// the node's parents, and accumulates contributions into each parent.
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor, &[Var])>;

pub(crate) struct Node {
    pub(crate) id: u64,
    pub(crate) value: RefCell<Tensor>,
    pub(crate) grad: RefCell<Option<Tensor>>,
    pub(crate) requires_grad: bool,
    pub(crate) parents: Vec<Var>,
    pub(crate) backward: Option<BackwardFn>,
}

/// A node in the autodiff graph.
///
/// `Var` is a cheap handle (`Rc` clone). Leaves are created with
/// [`Var::leaf`]; interior nodes come from the operators in [`crate::ops`].
///
/// # Example
///
/// ```
/// use instantnet_tensor::{Tensor, Var};
/// let w = Var::leaf(Tensor::from_vec(vec![1], vec![3.0]), true);
/// let loss = w.mul(&w).mean();
/// loss.backward();
/// assert_eq!(w.grad().unwrap().item(), 6.0);
/// ```
#[derive(Clone)]
pub struct Var {
    pub(crate) node: Rc<Node>,
}

impl Var {
    /// Creates a leaf node. Pass `requires_grad = true` for trainable
    /// parameters and `false` for inputs/constants.
    pub fn leaf(value: Tensor, requires_grad: bool) -> Self {
        Var {
            node: Rc::new(Node {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                value: RefCell::new(value),
                grad: RefCell::new(None),
                requires_grad,
                parents: Vec::new(),
                backward: None,
            }),
        }
    }

    /// Constant leaf (no gradient).
    pub fn constant(value: Tensor) -> Self {
        Var::leaf(value, false)
    }

    pub(crate) fn from_op(value: Tensor, parents: Vec<Var>, backward: BackwardFn) -> Self {
        let requires_grad = parents.iter().any(|p| p.node.requires_grad);
        Var {
            node: Rc::new(Node {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                value: RefCell::new(value),
                grad: RefCell::new(None),
                requires_grad,
                parents,
                backward: if requires_grad { Some(backward) } else { None },
            }),
        }
    }

    /// Unique node id (monotone creation order).
    pub fn id(&self) -> u64 {
        self.node.id
    }

    /// Whether gradients flow into this node.
    pub fn requires_grad(&self) -> bool {
        self.node.requires_grad
    }

    /// Clones the forward value out of the node.
    pub fn value(&self) -> Tensor {
        self.node.value.borrow().clone()
    }

    /// Shape dims of the forward value.
    pub fn dims(&self) -> Vec<usize> {
        self.node.value.borrow().dims().to_vec()
    }

    /// Scalar forward value.
    ///
    /// # Panics
    ///
    /// Panics if the value has more than one element.
    pub fn item(&self) -> f32 {
        self.node.value.borrow().item()
    }

    /// Clones the accumulated gradient, if any.
    pub fn grad(&self) -> Option<Tensor> {
        self.node.grad.borrow().clone()
    }

    /// Clears the accumulated gradient (used by optimizers between steps).
    pub fn zero_grad(&self) {
        *self.node.grad.borrow_mut() = None;
    }

    /// Overwrites the forward value in place (used by optimizers on leaves).
    ///
    /// # Panics
    ///
    /// Panics if the new value has a different shape.
    pub fn set_value(&self, value: Tensor) {
        let mut v = self.node.value.borrow_mut();
        assert_eq!(
            v.shape(),
            value.shape(),
            "set_value must preserve the shape"
        );
        *v = value;
    }

    /// Applies an in-place update to the forward value.
    pub fn update_value(&self, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.node.value.borrow_mut());
    }

    /// Returns a gradient-isolated copy of this node's value.
    ///
    /// The detached node shares no graph edges with `self`: it acts as a
    /// constant. This implements the stop-gradient (`SG`) operator in the
    /// cascade-distillation loss (Eq. 1 of the paper).
    pub fn detach(&self) -> Var {
        Var::constant(self.value())
    }

    pub(crate) fn accumulate_grad(&self, g: &Tensor) {
        if !self.node.requires_grad {
            return;
        }
        let mut slot = self.node.grad.borrow_mut();
        match slot.as_mut() {
            Some(existing) => existing.add_assign(g),
            None => *slot = Some(g.clone()),
        }
    }

    /// Runs reverse-mode differentiation from this scalar node.
    ///
    /// Gradients accumulate into every reachable node with
    /// `requires_grad == true` (leaves keep them until [`Var::zero_grad`]).
    ///
    /// # Panics
    ///
    /// Panics if the node's value is not a scalar.
    pub fn backward(&self) {
        assert_eq!(
            self.node.value.borrow().len(),
            1,
            "backward() must start from a scalar loss"
        );
        self.backward_with(Tensor::scalar(1.0));
    }

    /// Reverse-mode differentiation with an explicit seed gradient.
    pub fn backward_with(&self, seed: Tensor) {
        if !self.node.requires_grad {
            return;
        }
        // Topological order via iterative post-order DFS.
        let mut order: Vec<Var> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack: Vec<(Var, bool)> = vec![(self.clone(), false)];
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                order.push(v);
                continue;
            }
            if !visited.insert(v.node.id) {
                continue;
            }
            stack.push((v.clone(), true));
            for p in &v.node.parents {
                if p.node.requires_grad && !visited.contains(&p.node.id) {
                    stack.push((p.clone(), false));
                }
            }
        }
        self.accumulate_grad(&seed);
        for v in order.iter().rev() {
            let grad = v.node.grad.borrow().clone();
            if let (Some(g), Some(back)) = (grad, v.node.backward.as_ref()) {
                back(&g, &v.node.parents);
            }
            // Free interior gradients eagerly; leaves keep theirs.
            if v.node.backward.is_some() {
                *v.node.grad.borrow_mut() = None;
            }
        }
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Var#{}(value={:?}, requires_grad={})",
            self.node.id,
            self.node.value.borrow(),
            self.node.requires_grad
        )
    }
}

/// A named trainable parameter: a leaf [`Var`] with `requires_grad = true`.
///
/// Modules expose their parameters as `Vec<Param>`; optimizers mutate the
/// underlying values in place via [`Var::update_value`].
#[derive(Clone, Debug)]
pub struct Param {
    name: String,
    var: Var,
}

impl Param {
    /// Creates a named parameter from an initial value.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        Param {
            name: name.into(),
            var: Var::leaf(value, true),
        }
    }

    /// The parameter's name (diagnostics / weight decay filtering).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Handle to the underlying graph leaf.
    pub fn var(&self) -> &Var {
        &self.var
    }

    /// Element count.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.var.node.value.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn chain_rule_through_shared_node() {
        // y = (x * x) + (x * x): grad = 4x.
        let x = Var::leaf(Tensor::from_vec(vec![1], vec![3.0]), true);
        let sq = x.mul(&x);
        let y = sq.add(&sq).sum();
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 12.0);
    }

    #[test]
    fn detach_blocks_gradient() {
        let x = Var::leaf(Tensor::from_vec(vec![1], vec![2.0]), true);
        let d = x.mul(&x).detach();
        let y = d.mul(&x).sum(); // y = const * x
        y.backward();
        // d = 4 treated as constant, so dy/dx = 4 (not 3x^2 = 12).
        assert_eq!(x.grad().unwrap().item(), 4.0);
    }

    #[test]
    fn grad_accumulates_across_backward_calls() {
        let x = Var::leaf(Tensor::from_vec(vec![1], vec![1.0]), true);
        let y1 = x.scale(2.0).sum();
        y1.backward();
        let y2 = x.scale(3.0).sum();
        y2.backward();
        assert_eq!(x.grad().unwrap().item(), 5.0);
        x.zero_grad();
        assert!(x.grad().is_none());
    }

    #[test]
    fn constant_leaf_gets_no_grad() {
        let c = Var::constant(Tensor::scalar(5.0));
        let x = Var::leaf(Tensor::scalar(2.0), true);
        let y = ops::mul(&c, &x).sum();
        y.backward();
        assert!(c.grad().is_none());
        assert_eq!(x.grad().unwrap().item(), 5.0);
    }

    #[test]
    #[should_panic(expected = "backward() must start from a scalar")]
    fn backward_requires_scalar() {
        let x = Var::leaf(Tensor::zeros(&[2]), true);
        x.scale(1.0).backward();
    }

    #[test]
    fn backward_with_custom_seed_scales_gradients() {
        let x = Var::leaf(Tensor::from_vec(vec![1], vec![2.0]), true);
        let y = x.scale(3.0);
        y.backward_with(Tensor::scalar(10.0));
        assert_eq!(x.grad().unwrap().item(), 30.0);
    }

    #[test]
    fn backward_on_constant_graph_is_noop() {
        let c = Var::constant(Tensor::scalar(1.0));
        let y = c.scale(2.0);
        // No requires_grad anywhere: backward_with must not panic or store.
        y.backward_with(Tensor::scalar(1.0));
        assert!(c.grad().is_none());
    }

    #[test]
    #[should_panic(expected = "preserve the shape")]
    fn set_value_rejects_shape_change() {
        let x = Var::leaf(Tensor::zeros(&[2]), true);
        x.set_value(Tensor::zeros(&[3]));
    }

    #[test]
    fn param_exposes_name_and_var() {
        let p = Param::new("conv.weight", Tensor::zeros(&[4]));
        assert_eq!(p.name(), "conv.weight");
        assert!(p.var().requires_grad());
        assert_eq!(p.len(), 4);
    }
}
