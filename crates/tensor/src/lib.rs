//! Dense `f32` tensors and a tape-based reverse-mode autodiff engine.
//!
//! This crate is the numerical substrate for the InstantNet reproduction.
//! It provides:
//!
//! * [`Tensor`] — a row-major, heap-allocated `f32` n-d array with the
//!   elementwise / matmul / im2col kernels needed by small CNNs.
//! * [`Var`] — a node in a dynamically built computation graph
//!   (define-by-run). Calling [`Var::backward`] on a scalar propagates exact
//!   analytic gradients to every reachable leaf.
//! * [`ops`] — differentiable operators: convolution (grouped / depthwise),
//!   batch normalization, pooling, activations, fused
//!   softmax-cross-entropy, and [`ops::ste_apply`] — the straight-through
//!   estimator hook that quantizers are built on.
//!
//! # Example
//!
//! ```
//! use instantnet_tensor::{Tensor, Var};
//!
//! let x = Var::leaf(Tensor::from_vec(vec![2], vec![1.0, -2.0]), true);
//! let y = x.mul(&x).sum(); // y = sum(x^2)
//! y.backward();
//! assert_eq!(x.grad().unwrap().data(), &[2.0, -4.0]); // dy/dx = 2x
//! ```
pub mod autograd;
pub mod check;
pub mod init;
pub mod ops;
pub mod shape;
pub mod tensor;

pub use autograd::{Param, Var};
pub use shape::Shape;
pub use tensor::Tensor;
