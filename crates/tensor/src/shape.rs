//! Shape bookkeeping for row-major tensors.

use std::fmt;

/// The extents of a tensor along each axis, row-major (last axis fastest).
///
/// `Shape` is a thin wrapper over `Vec<usize>` that centralizes index
/// arithmetic so kernels cannot disagree about layout.
///
/// # Example
///
/// ```
/// use instantnet_tensor::Shape;
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from per-axis extents.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero; zero-sized tensors are never meaningful
    /// in this workspace and allowing them would push degenerate-case checks
    /// into every kernel.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape axes must be positive, got {dims:?}"
        );
        Shape(dims)
    }

    /// Scalar shape `[1]`.
    pub fn scalar() -> Self {
        Shape(vec![1])
    }

    /// Per-axis extents.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides (elements, not bytes).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Extent of axis `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.dims(), &[1]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(vec![4, 8]).to_string(), "[4x8]");
    }

    #[test]
    #[should_panic(expected = "shape axes must be positive")]
    fn zero_axis_rejected() {
        let _ = Shape::new(vec![2, 0]);
    }
}
