//! The dense `f32` tensor and its (non-differentiable) kernels.

use crate::shape::Shape;
use instantnet_parallel as parallel;
use std::fmt;

/// Kernels whose flop count falls below this run serially; thread spawn
/// costs more than it saves on small inputs.
pub(crate) const PAR_FLOP_THRESHOLD: usize = 1 << 18;

/// Depth of the k-dimension blocking in [`matmul_row_block`]: one block of
/// rhs rows (64 × n floats) stays cache-resident while every output row of
/// the chunk accumulates it.
const K_BLOCK: usize = 64;

/// Computes output rows `row0..row0 + out.len() / n` of an `[m, k] x [k, n]`
/// product into `out`, which holds exactly those rows.
///
/// The accumulation order over `k` is fixed (block-major, ascending within
/// each block — i.e. plain ascending `p`), so the result for a given row is
/// bit-identical however the rows are chunked across threads.
fn matmul_row_block(lhs: &[f32], rhs: &[f32], row0: usize, out: &mut [f32], k: usize, n: usize) {
    let rows = out.len() / n;
    for p0 in (0..k).step_by(K_BLOCK) {
        let p1 = (p0 + K_BLOCK).min(k);
        for r in 0..rows {
            let lhs_row = &lhs[(row0 + r) * k..(row0 + r) * k + k];
            let out_row = &mut out[r * n..(r + 1) * n];
            // i-k-j order: streams the rhs row-major, good cache behaviour.
            for p in p0..p1 {
                let a = lhs_row[p];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs[p * n..(p + 1) * n];
                for j in 0..n {
                    out_row[j] += a * rhs_row[j];
                }
            }
        }
    }
}

/// A dense, row-major `f32` n-d array.
///
/// All autograd operators in [`crate::ops`] bottom out in the plain kernels
/// defined here. `Tensor` is a value type: operations return new tensors
/// unless named `*_assign` / `*_scaled`.
///
/// # Example
///
/// ```
/// use instantnet_tensor::Tensor;
/// let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Tensor::full(&[2, 2], 1.0);
/// assert_eq!(a.add(&b).data(), &[2.0, 3.0, 4.0, 5.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor with the given shape and backing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(dims: Vec<usize>, data: Vec<f32>) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.len(),
            data.len(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// All-zeros tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::from(dims);
        let n = shape.len();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// All-ones tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::from(dims);
        let n = shape.len();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Scalar (shape `[1]`) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Per-axis extents.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the backing data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Scalar value of a one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() on non-scalar tensor {}", self.shape);
        self.data[0]
    }

    /// Returns the same data viewed under a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::from(dims);
        assert_eq!(
            shape.len(),
            self.len(),
            "reshape {} -> {shape} changes element count",
            self.shape
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Elementwise combination of two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip_map shape mismatch {} vs {}",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise product (Hadamard).
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "add_assign shape mismatch {} vs {}",
            self.shape, other.shape
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += s * other` (axpy).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled_assign(&mut self, other: &Tensor, s: f32) {
        assert_eq!(
            self.shape, other.shape,
            "add_scaled_assign shape mismatch {} vs {}",
            self.shape, other.shape
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.len() as f32
    }

    /// Largest absolute value (0 for the impossible empty case).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Index of the maximum element of a 1-d slice of `len` starting at
    /// `offset`; used for per-row argmax.
    fn argmax_slice(&self, offset: usize, len: usize) -> usize {
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for i in 0..len {
            let v = self.data[offset + i];
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Per-row argmax of a `[rows, cols]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.rank(), 2, "argmax_rows needs a matrix");
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        (0..rows)
            .map(|r| self.argmax_slice(r * cols, cols))
            .collect()
    }

    /// Row-wise softmax of a `[rows, cols]` tensor (numerically stabilized).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "softmax_rows needs a matrix");
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let mut z = 0.0f32;
            for c in 0..cols {
                let e = (row[c] - m).exp();
                out[r * cols + c] = e;
                z += e;
            }
            for c in 0..cols {
                out[r * cols + c] /= z;
            }
        }
        Tensor::from_vec(vec![rows, cols], out)
    }

    /// Matrix product of `[m, k] x [k, n] -> [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dims disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "matmul lhs must be a matrix");
        assert_eq!(other.shape.rank(), 2, "matmul rhs must be a matrix");
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        if n > 0 {
            // Output rows are independent (row i reads lhs row i and all of
            // rhs), so splitting over row chunks is bit-identical to the
            // serial loop for any thread count. Small products stay serial:
            // a single chunk covering every row.
            let rows_per_chunk = if 2 * m * k * n < PAR_FLOP_THRESHOLD {
                m
            } else {
                m.div_ceil(parallel::max_threads()).max(1)
            };
            let (lhs, rhs) = (&self.data, &other.data);
            parallel::par_chunks_mut(&mut out, rows_per_chunk * n, |ci, out_chunk| {
                matmul_row_block(lhs, rhs, ci * rows_per_chunk, out_chunk, k, n);
            });
        }
        Tensor::from_vec(vec![m, n], out)
    }

    /// Transpose of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose2d(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose2d needs a matrix");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(vec![n, m], out)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        write!(f, "{preview:?}")?;
        if self.len() > 8 {
            write!(f, "…")?;
        }
        Ok(())
    }
}

/// Unfolds conv input patches into columns (`im2col`).
///
/// Input is `[c, h, w]` for a single sample; output is
/// `[c * kh * kw, oh * ow]` where `oh/ow` follow the usual conv arithmetic
/// with the given `stride` and zero `pad`.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    input: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> (Tensor, usize, usize) {
    let (out, oh, ow) = im2col_generic(input, c, h, w, kh, kw, stride, pad);
    let rows = c * kh * kw;
    (Tensor::from_vec(vec![rows, oh * ow], out), oh, ow)
}

/// Element-type-generic [`im2col`]: identical patch layout, but over raw
/// slices of any copyable element (the integer engine unfolds `i32`
/// activation codes). Padding positions take `T::default()`.
#[allow(clippy::too_many_arguments)]
pub fn im2col_generic<T: Copy + Default + Send + Sync>(
    input: &[T],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> (Vec<T>, usize, usize) {
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;
    let rows = c * kh * kw;
    let cols = oh * ow;
    let mut out = vec![T::default(); rows * cols];
    // Channel ci owns the contiguous output rows [ci*kh*kw, (ci+1)*kh*kw),
    // so channels parallelize with disjoint writes and no ordering effects.
    let per_channel = kh * kw * cols;
    let fill = |ci: usize, chunk: &mut [T]| {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = ki * kw + kj;
                // At stride 1 the gather is contiguous: `ix = ox + kj - pad`
                // walks in lockstep with `ox`, so each output row is one
                // span copy of the input row, clipped to the valid range.
                let shift = kj as isize - pad as isize;
                let ox0 = (-shift).max(0) as usize;
                let ox1 = (w as isize - shift).clamp(0, ow as isize) as usize;
                for oy in 0..oh {
                    let iy = (oy * stride + ki) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_row = (ci * h + iy as usize) * w;
                    let dst_row = row * cols + oy * ow;
                    if stride == 1 {
                        if ox0 < ox1 {
                            let ix0 = (ox0 as isize + shift) as usize;
                            chunk[dst_row + ox0..dst_row + ox1]
                                .copy_from_slice(&input[src_row + ix0..src_row + ix0 + ox1 - ox0]);
                        }
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * stride + kj) as isize - pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        chunk[dst_row + ox] = input[src_row + ix as usize];
                    }
                }
            }
        }
    };
    if rows * cols < PAR_FLOP_THRESHOLD {
        parallel::with_threads(1, || parallel::par_chunks_mut(&mut out, per_channel, fill));
    } else {
        parallel::par_chunks_mut(&mut out, per_channel, fill);
    }
    (out, oh, ow)
}

/// Folds columns back into an image, accumulating overlaps (`col2im`); the
/// adjoint of [`im2col`].
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    cols: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Vec<f32> {
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;
    let ncols = oh * ow;
    let mut out = vec![0.0f32; c * h * w];
    let data = cols.data();
    // Channel ci only accumulates into its own `h * w` image plane, and the
    // accumulation order within a plane matches the serial loop exactly, so
    // the fold is deterministic under any thread count.
    let fold = |ci: usize, plane: &mut [f32]| {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                for oy in 0..oh {
                    let iy = (oy * stride + ki) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * stride + kj) as isize - pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        plane[iy as usize * w + ix as usize] += data[row * ncols + oy * ow + ox];
                    }
                }
            }
        }
    };
    if c * kh * kw * ncols < PAR_FLOP_THRESHOLD {
        parallel::with_threads(1, || parallel::par_chunks_mut(&mut out, h * w, fold));
    } else {
        parallel::par_chunks_mut(&mut out, h * w, fold);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let eye = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&eye), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose2d().transpose2d(), a);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let a = Tensor::from_vec(vec![1, 2], vec![1000.0, 1001.0]);
        let s = a.softmax_rows();
        assert!(s.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn im2col_col2im_adjoint_on_ones() {
        // col2im(im2col(x)) counts how many patches cover each pixel.
        let (c, h, w, k, s, p) = (1, 4, 4, 3, 1, 1);
        let input = vec![1.0f32; c * h * w];
        let (cols, oh, ow) = im2col(&input, c, h, w, k, k, s, p);
        assert_eq!(oh, 4);
        assert_eq!(ow, 4);
        let back = col2im(&cols, c, h, w, k, k, s, p);
        // Centre pixels are covered by all 9 offsets; corners by 4.
        assert_eq!(back[5], 9.0);
        assert_eq!(back[0], 4.0);
    }

    #[test]
    fn im2col_stride_two_shrinks_output() {
        let (c, h, w) = (2, 8, 8);
        let input = vec![0.5f32; c * h * w];
        let (cols, oh, ow) = im2col(&input, c, h, w, 3, 3, 2, 1);
        assert_eq!((oh, ow), (4, 4));
        assert_eq!(cols.dims(), &[2 * 9, 16]);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let a = Tensor::from_vec(vec![2, 3], vec![0.1, 0.9, 0.0, 1.0, -5.0, 0.5]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_length_checked() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = a.reshape(&[3, 2]);
        assert_eq!(b.data(), a.data());
        assert_eq!(b.dims(), &[3, 2]);
    }

    #[test]
    fn add_scaled_assign_is_axpy() {
        let mut a = Tensor::from_vec(vec![2], vec![1.0, 2.0]);
        let b = Tensor::from_vec(vec![2], vec![10.0, 20.0]);
        a.add_scaled_assign(&b, 0.5);
        assert_eq!(a.data(), &[6.0, 12.0]);
    }
}
