//! Quantized integer inference engine with zero-cost precision switching.
//!
//! The training stack executes "quantized" networks as f32 fake-quant:
//! every forward re-quantizes the shared weights onto an f32 grid and runs
//! full-precision matmul/conv, so a 4-bit model costs as much as a 32-bit
//! one and a bit-width switch pays a full re-quantization pass. This crate
//! delivers the paper's *instantaneous switching* claim at the execution
//! level:
//!
//! * [`PackedModel::prepack`] walks a module's inference plan
//!   ([`instantnet_nn::Module::plan_ops`]) and, **once per bit-width**,
//!   converts each layer's weights to integer codes — bit-packed signed
//!   nibbles for ≤ 4 bits, `i8` for 5–8, `i16` for 9–16 — with per-output-
//!   channel scale factors, folding `SwitchableBatchNorm` running
//!   statistics of the matching branch into the per-row scale and bias.
//! * A runtime bit-width switch ([`PackedModel::switch_to`]) just moves the
//!   active-network index into the prebuilt table: no per-element weight
//!   work (asserted by tests against [`PackedModel::pack_passes`]).
//! * Forwards quantize activations to integer codes between layers with
//!   the exact SBM/DoReFa grids from `instantnet-quant`, then run
//!   i32-accumulate (i64 for 9–16 bit) GEMM and im2col-conv kernels,
//!   row-parallel via `instantnet-parallel`. Integer accumulation is
//!   exact, so results are bit-identical at any thread count.
//! * The hot reduction kernels run through a one-time runtime-dispatched
//!   backend table ([`mod@simd`]): explicit AVX2 kernels where the CPU
//!   supports them, portable scalar Rust everywhere else, overridable
//!   with `INSTANTNET_SIMD=scalar|avx2`. Both backends are bit-identical,
//!   so the dispatch choice is invisible to every serving layer.
//!
//! Dequantization uses the affine identity
//! `y[k][j] = sa · (A[k] · acc[k][j] + B[k] · colsum[j]) + bias[k]`
//! where `acc` is the integer dot product of weight and activation codes,
//! `colsum[j]` the per-column activation code sum, `A[k]` the weight scale
//! × BN scale, `B[k]` the weight zero-offset term (non-zero only for
//! DoReFa's `[0, n]` codes and the nibble/i8 re-centering bias), and `sa`
//! the per-tensor activation scale computed fresh each forward. The packed
//! path matches the f32 fake-quant reference within one quantization step
//! per element.

#![deny(unsafe_op_in_unsafe_fn)]

use instantnet_nn::checkpoint::CheckpointError;
use instantnet_nn::layers::Activation;
use instantnet_nn::plan::PlanOp;
use instantnet_nn::Module;
use instantnet_quant::{BitWidth, BitWidthSet, Quantizer};
use instantnet_tensor::Tensor;
use std::path::Path;
use std::sync::Arc;

mod exec;
mod pack;
pub mod simd;

pub use simd::{
    active_simd_backend, avx2_available, fused_gemm_enabled, neon_available, with_fused_gemm,
    with_simd_backend, SimdBackend,
};

/// Typed error for every fallible engine operation: plan compilation
/// ([`PackedModel::prepack`]), checkpoint restore
/// ([`PackedModel::from_checkpoint`]), bit-width selection
/// ([`PackedModel::switch_to`]) and input validation on the fallible
/// forward paths ([`PackedModel::try_forward_at`]). Serving layers match
/// on the variant to decide whether to fail a request, a batch, or the
/// whole deployment.
#[derive(Debug)]
pub enum InferError {
    /// The plan contains an op sequence the engine cannot execute (e.g. a
    /// batch-norm with no preceding convolution to fold into).
    Unsupported(String),
    /// Tensor shapes in the plan are inconsistent at pack time.
    Shape(String),
    /// Checkpoint restore failed in [`PackedModel::from_checkpoint`].
    Checkpoint(CheckpointError),
    /// A bit-width set index outside the packed table.
    BitIndex {
        /// The requested index.
        index: usize,
        /// Number of packed bit-widths.
        len: usize,
    },
    /// A bit-width value that is not in the packed set.
    BitWidth(BitWidth),
    /// A forward input that does not fit the packed network's first layer.
    Input(String),
}

impl std::fmt::Display for InferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferError::Unsupported(msg) => write!(f, "unsupported plan: {msg}"),
            InferError::Shape(msg) => write!(f, "shape mismatch: {msg}"),
            InferError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            InferError::BitIndex { index, len } => {
                write!(
                    f,
                    "bit index {index} out of range (packed {len} bit-widths)"
                )
            }
            InferError::BitWidth(b) => {
                write!(f, "bit-width {b} is not in the packed model's set")
            }
            InferError::Input(msg) => write!(f, "invalid forward input: {msg}"),
        }
    }
}

impl std::error::Error for InferError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InferError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for InferError {
    fn from(e: CheckpointError) -> Self {
        InferError::Checkpoint(e)
    }
}

/// Former name of [`InferError`], kept as an alias for existing callers.
pub type PackError = InferError;

/// Integer (or fallback f32) weight storage for one packed layer.
///
/// Integer variants hold *re-centered* codes `d = c - cb` where `cb` is
/// the mid-point of the quantizer's code range, so asymmetric DoReFa codes
/// (`[0, 2^b - 1]`) fit signed storage; the shift is folded into the
/// layer's column-sum coefficient.
#[derive(Debug, Clone)]
pub enum Storage {
    /// Two signed 4-bit codes per byte, rows padded to whole bytes.
    Nibble(Vec<u8>),
    /// One signed byte per code (5–8 bits).
    I8(Vec<i8>),
    /// One signed 16-bit word per code (9–16 bits).
    I16(Vec<i16>),
    /// Plain f32 weights: full precision, stem layers whose input is not
    /// quantized, or bit-widths above 16 (already fake-quantized values).
    F32(Vec<f32>),
}

impl Storage {
    /// Whether this layer runs the integer kernels.
    pub fn is_integer(&self) -> bool {
        !matches!(self, Storage::F32(_))
    }

    /// Bytes held by the packed weights.
    pub fn bytes(&self) -> usize {
        match self {
            Storage::Nibble(v) => v.len(),
            Storage::I8(v) => v.len(),
            Storage::I16(v) => 2 * v.len(),
            Storage::F32(v) => 4 * v.len(),
        }
    }

    /// Decodes one row of `cols` codes into `out`, on the active SIMD
    /// backend.
    ///
    /// # Panics
    ///
    /// Panics if called on [`Storage::F32`] (the f32 path never decodes).
    fn decode_row(&self, row: usize, cols: usize, out: &mut [i32]) {
        (simd::kernels().decode_row_i32)(self, row, cols, out);
    }

    /// Scalar-backend body of [`Self::decode_row`] (referenced by the
    /// dispatch table; also the portable baseline the SIMD kernels are
    /// tested bit-identical against).
    fn decode_row_scalar(&self, row: usize, cols: usize, out: &mut [i32]) {
        match self {
            Storage::Nibble(data) => {
                let stride = cols.div_ceil(2);
                let row_bytes = &data[row * stride..row * stride + stride];
                // Two sign-extended codes per byte, low nibble first.
                for (pair, &byte) in out[..cols].chunks_mut(2).zip(row_bytes) {
                    pair[0] = i32::from(((byte as i8) << 4) >> 4);
                    if let Some(hi) = pair.get_mut(1) {
                        *hi = i32::from((byte as i8) >> 4);
                    }
                }
            }
            Storage::I8(data) => {
                for (o, &v) in out.iter_mut().zip(&data[row * cols..(row + 1) * cols]) {
                    *o = i32::from(v);
                }
            }
            Storage::I16(data) => {
                for (o, &v) in out.iter_mut().zip(&data[row * cols..(row + 1) * cols]) {
                    *o = i32::from(v);
                }
            }
            Storage::F32(_) => panic!("decode_row on f32 storage"),
        }
    }

    /// Decodes one row of `cols` codes into f32 lanes (the exact-f32
    /// accumulation tier; every code is a small integer so the conversion
    /// is lossless), on the active SIMD backend.
    ///
    /// # Panics
    ///
    /// Panics if called on [`Storage::F32`].
    fn decode_row_f32(&self, row: usize, cols: usize, out: &mut [f32]) {
        (simd::kernels().decode_row_f32)(self, row, cols, out);
    }

    /// Scalar-backend body of [`Self::decode_row_f32`].
    fn decode_row_f32_scalar(&self, row: usize, cols: usize, out: &mut [f32]) {
        match self {
            Storage::Nibble(data) => {
                let stride = cols.div_ceil(2);
                let row_bytes = &data[row * stride..row * stride + stride];
                for (pair, &byte) in out[..cols].chunks_mut(2).zip(row_bytes) {
                    pair[0] = f32::from(((byte as i8) << 4) >> 4);
                    if let Some(hi) = pair.get_mut(1) {
                        *hi = f32::from((byte as i8) >> 4);
                    }
                }
            }
            Storage::I8(data) => {
                for (o, &v) in out.iter_mut().zip(&data[row * cols..(row + 1) * cols]) {
                    *o = f32::from(v);
                }
            }
            Storage::I16(data) => {
                for (o, &v) in out.iter_mut().zip(&data[row * cols..(row + 1) * cols]) {
                    *o = f32::from(v);
                }
            }
            Storage::F32(_) => panic!("decode_row_f32 on f32 storage"),
        }
    }
}

/// Accumulator type for a packed layer's integer GEMM, chosen at pack time
/// from the worst-case partial-sum bound `max|w_code| · max|a_code| · cols`.
///
/// All three tiers compute the *same exact integer*: f32 arithmetic on
/// integers below 2^24 is lossless (every product and partial sum is
/// exactly representable), so the `F32` tier — which vectorizes on every
/// target, unlike i32 multiplies on baseline x86-64 — is preferred
/// whenever the bound allows. Exact arithmetic is associative, keeping the
/// thread-count-determinism guarantee in all tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accum {
    /// Bound < 2^24: exact f32 lanes (all ≤ 8-bit layers in practice).
    F32,
    /// Bound ≤ i32::MAX / 2: native i32.
    I32,
    /// Anything wider (9–16-bit layers with long reductions).
    I64,
}

/// A packed weight matrix plus its affine dequantization parameters.
#[derive(Debug, Clone)]
pub struct PackedGemm {
    /// Output rows (conv filters across all groups / linear out features).
    pub rows: usize,
    /// Reduction length (conv `cg*r*s` / linear in features).
    pub cols: usize,
    /// Packed weight codes or fallback f32 values.
    pub storage: Storage,
    /// Per-row multiplier `A[k]` (weight scale × folded BN scale; the BN
    /// scale alone on the f32 path).
    pub scale: Vec<f32>,
    /// Per-row column-sum coefficient `B[k]` (weight offset terms × BN
    /// scale); all-zero for symmetric SBM codes.
    pub colsum_coef: Vec<f32>,
    /// Per-row additive bias (folded BN shift or linear bias).
    pub bias: Vec<f32>,
    /// Whether any `colsum_coef` entry is non-zero.
    pub has_offset: bool,
    /// Overflow-safe accumulator tier for this layer.
    pub accum: Accum,
    /// Whether this layer may route through the fused ≤ 8-bit kernels
    /// (nibble/i8 storage whose shifted-code accumulation bound fits i32;
    /// see `pack.rs`). The backend must also provide a fused kernel —
    /// scalar dispatch always takes the decode-then-multiply tier path.
    pub fused: bool,
}

/// One executable operation of a packed network.
#[derive(Debug, Clone)]
pub(crate) enum PackedOp {
    Conv {
        gemm: PackedGemm,
        cg: usize,
        r: usize,
        s: usize,
        stride: usize,
        pad: usize,
        groups: usize,
        quantize_input: bool,
    },
    Linear {
        gemm: PackedGemm,
    },
    Act(Activation),
    GlobalAvgPool,
    Residual {
        body: Vec<PackedOp>,
        shortcut: Vec<PackedOp>,
        post_relu: bool,
    },
}

/// The ops of one bit-width's prebuilt network.
#[derive(Debug, Clone)]
pub(crate) struct PackedNet {
    pub(crate) ops: Vec<PackedOp>,
    pub(crate) bits: BitWidth,
}

/// A network prepacked at every bit-width of a [`BitWidthSet`].
///
/// The per-bit-width packed tables are immutable after construction and
/// shared behind an [`Arc`], so `PackedModel::clone()` is O(1): a replica
/// clone bumps one reference count and copies only the mutable cursor
/// state (active index). Cloning never re-packs — [`Self::pack_passes`]
/// is constant across clones, and sharded serving relies on this to spin
/// up N replicas for free. Each clone switches bit-widths independently.
///
/// # Example
///
/// ```
/// use instantnet_infer::PackedModel;
/// use instantnet_nn::models;
/// use instantnet_quant::{BitWidthSet, Quantizer};
/// use instantnet_tensor::Tensor;
///
/// let bits = BitWidthSet::narrow_range();
/// let net = models::small_cnn(4, 10, (8, 8), bits.len(), 7);
/// let mut packed = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
/// let x = Tensor::zeros(&[1, 3, 8, 8]);
/// let y4 = packed.forward(&x); // lowest bit-width
/// packed.switch_to(bits.len() - 1).unwrap(); // instantaneous: no weight work
/// let y8 = packed.forward(&x);
/// assert_eq!(y4.dims(), y8.dims());
/// ```
#[derive(Clone)]
pub struct PackedModel {
    nets: Arc<Vec<PackedNet>>,
    set: BitWidthSet,
    quantizer: Quantizer,
    active: usize,
    pack_passes: usize,
}

impl PackedModel {
    /// Prepacks `module` at every bit-width of `set`.
    ///
    /// # Errors
    ///
    /// [`InferError::Unsupported`] if the module exposes no inference plan
    /// (e.g. PACT layers) or the plan contains an unfoldable op sequence;
    /// [`InferError::Shape`] on inconsistent tensor shapes.
    pub fn prepack(
        module: &dyn Module,
        set: &BitWidthSet,
        quantizer: Quantizer,
    ) -> Result<Self, InferError> {
        let plan = module
            .plan_ops()
            .ok_or_else(|| InferError::Unsupported("module exposes no inference plan".into()))?;
        Self::from_plan(&plan, set, quantizer)
    }

    /// Prepacks an explicit plan (useful for single-layer tests/benches).
    ///
    /// # Errors
    ///
    /// Same as [`Self::prepack`].
    pub fn from_plan(
        plan: &[PlanOp],
        set: &BitWidthSet,
        quantizer: Quantizer,
    ) -> Result<Self, InferError> {
        let mut pack_passes = 0usize;
        let mut nets = Vec::with_capacity(set.len());
        for (i, &b) in set.widths().iter().enumerate() {
            let ops = pack::pack_plan(plan, i, b, quantizer, &mut pack_passes)?;
            nets.push(PackedNet { ops, bits: b });
        }
        Ok(PackedModel {
            nets: Arc::new(nets),
            set: set.clone(),
            quantizer,
            active: 0,
            pack_passes,
        })
    }

    /// Restores `module` from a checkpoint (parameters *and* BN running
    /// statistics), then prepacks it — the deployment path: train, save,
    /// load on device, pack once, switch freely.
    ///
    /// # Errors
    ///
    /// Checkpoint I/O and format errors surface as
    /// [`InferError::Checkpoint`]; packing errors as in [`Self::prepack`].
    pub fn from_checkpoint(
        module: &dyn Module,
        path: impl AsRef<Path>,
        set: &BitWidthSet,
        quantizer: Quantizer,
    ) -> Result<Self, InferError> {
        instantnet_nn::checkpoint::load(module, path).map_err(InferError::Checkpoint)?;
        Self::prepack(module, set, quantizer)
    }

    /// Switches the active bit-width by set index — a pointer swap into
    /// the prebuilt table; performs no per-element weight work.
    ///
    /// # Errors
    ///
    /// [`InferError::BitIndex`] if `index` is out of range (the model is
    /// left unchanged).
    pub fn switch_to(&mut self, index: usize) -> Result<(), InferError> {
        if index >= self.nets.len() {
            return Err(InferError::BitIndex {
                index,
                len: self.nets.len(),
            });
        }
        self.active = index;
        Ok(())
    }

    /// Switches by bit-width value; returns whether it was in the set —
    /// the `bool` convenience twin of [`Self::try_switch_to_bits`].
    pub fn switch_to_bits(&mut self, bits: BitWidth) -> bool {
        self.try_switch_to_bits(bits).is_ok()
    }

    /// Switches by bit-width value.
    ///
    /// # Errors
    ///
    /// [`InferError::BitWidth`] if `bits` is not in the packed set (the
    /// model is left unchanged).
    pub fn try_switch_to_bits(&mut self, bits: BitWidth) -> Result<(), InferError> {
        match self.set.index_of(bits) {
            Some(i) => {
                self.active = i;
                Ok(())
            }
            None => Err(InferError::BitWidth(bits)),
        }
    }

    /// Index of the active bit-width.
    pub fn active_index(&self) -> usize {
        self.active
    }

    /// The active bit-width.
    pub fn active_bits(&self) -> BitWidth {
        self.nets[self.active].bits
    }

    /// The candidate set this model was packed for.
    pub fn bit_widths(&self) -> &BitWidthSet {
        &self.set
    }

    /// The quantization rule the model was packed with.
    pub fn quantizer(&self) -> Quantizer {
        self.quantizer
    }

    /// Number of per-element weight packing passes performed so far.
    /// Monotone; constant after construction — switching, forwards, and
    /// cloning never repack (the zero-cost-switch guarantee tests pin).
    pub fn pack_passes(&self) -> usize {
        self.pack_passes
    }

    /// Whether two models share the same underlying packed weight tables
    /// (i.e. one is a clone of the other). Replica clones in sharded
    /// serving share tables by construction; independently packed models
    /// never do.
    pub fn shares_packed_tables(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.nets, &other.nets)
    }

    /// Total bytes of packed weight storage across all bit-widths.
    pub fn packed_bytes(&self) -> usize {
        fn op_bytes(op: &PackedOp) -> usize {
            match op {
                PackedOp::Conv { gemm, .. } | PackedOp::Linear { gemm } => gemm.storage.bytes(),
                PackedOp::Residual { body, shortcut, .. } => {
                    body.iter().map(op_bytes).sum::<usize>()
                        + shortcut.iter().map(op_bytes).sum::<usize>()
                }
                _ => 0,
            }
        }
        self.nets
            .iter()
            .map(|n| n.ops.iter().map(op_bytes).sum::<usize>())
            .sum()
    }

    /// Validates that `index` addresses a packed net and `x` fits its
    /// first shape-consuming layer — the checks the fallible forward paths
    /// run so malformed serving inputs surface as [`InferError`] instead
    /// of a panic deep inside a kernel.
    fn validate_input(&self, index: usize, x: &Tensor) -> Result<(), InferError> {
        if index >= self.nets.len() {
            return Err(InferError::BitIndex {
                index,
                len: self.nets.len(),
            });
        }
        let dims = x.dims();
        if dims.is_empty() || dims[0] == 0 {
            return Err(InferError::Input(format!(
                "input must have a non-empty batch dimension, got {dims:?}"
            )));
        }
        validate_ops_input(&self.nets[index].ops, dims)
    }

    /// Runs the packed network at the active bit-width.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_at(self.active, x)
    }

    /// [`Self::forward`] with input validation instead of panics.
    ///
    /// # Errors
    ///
    /// [`InferError::Input`] when `x` does not fit the first layer.
    pub fn try_forward(&self, x: &Tensor) -> Result<Tensor, InferError> {
        self.try_forward_at(self.active, x)
    }

    /// Runs the packed network at an explicit bit-width index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the input shape does not fit
    /// the first layer ([`Self::try_forward_at`] is the fallible twin).
    pub fn forward_at(&self, index: usize, x: &Tensor) -> Tensor {
        match self.try_forward_at(index, x) {
            Ok(y) => y,
            Err(e) => panic!("forward_at: {e}"),
        }
    }

    /// [`Self::forward_at`] with input validation instead of panics.
    ///
    /// # Errors
    ///
    /// [`InferError::BitIndex`] for an out-of-range index,
    /// [`InferError::Input`] when `x` does not fit the first layer.
    pub fn try_forward_at(&self, index: usize, x: &Tensor) -> Result<Tensor, InferError> {
        self.validate_input(index, x)?;
        let net = &self.nets[index];
        Ok(exec::exec_ops(
            &net.ops,
            x,
            net.bits,
            self.quantizer,
            exec::ActQuant::PerBatch,
        ))
    }

    /// Runs an aggregated request batch at the active bit-width — the
    /// serving entry point. See [`Self::forward_batch_at`].
    pub fn forward_batch(&self, x: &Tensor) -> Tensor {
        self.forward_batch_at(self.active, x)
    }

    /// [`Self::forward_batch`] with input validation instead of panics.
    ///
    /// # Errors
    ///
    /// [`InferError::Input`] when `x` does not fit the first layer.
    pub fn try_forward_batch(&self, x: &Tensor) -> Result<Tensor, InferError> {
        self.try_forward_batch_at(self.active, x)
    }

    /// Runs an aggregated request batch at an explicit bit-width index.
    ///
    /// Unlike [`Self::forward_at`], which quantizes activations with one
    /// scale across the whole tensor (the fake-quant training semantics),
    /// this path computes activation scales **per dim-0 sample**. Combined
    /// with the exact accumulator tiers, that makes each sample's output
    /// bit-identical to a batch-of-one forward of that sample — requests
    /// aggregated by the serving queue cannot observe their batch-mates,
    /// at any bit-width and any thread count. The batch still shares all
    /// fixed per-forward costs: weights are decoded once per layer,
    /// `im2col` patch matrices and column sums are built in one pass, and
    /// one parallel region covers `samples × output rows`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the input shape does not fit
    /// the first layer ([`Self::try_forward_batch_at`] is the fallible
    /// twin).
    pub fn forward_batch_at(&self, index: usize, x: &Tensor) -> Tensor {
        match self.try_forward_batch_at(index, x) {
            Ok(y) => y,
            Err(e) => panic!("forward_batch_at: {e}"),
        }
    }

    /// [`Self::forward_batch_at`] with input validation instead of panics.
    ///
    /// # Errors
    ///
    /// [`InferError::BitIndex`] for an out-of-range index,
    /// [`InferError::Input`] when `x` does not fit the first layer.
    pub fn try_forward_batch_at(&self, index: usize, x: &Tensor) -> Result<Tensor, InferError> {
        self.validate_input(index, x)?;
        let net = &self.nets[index];
        Ok(exec::exec_ops(
            &net.ops,
            x,
            net.bits,
            self.quantizer,
            exec::ActQuant::PerSample,
        ))
    }
}

/// Checks `dims` against the first shape-consuming op of `ops` (skipping
/// pure activations, recursing into residual bodies). Later layers consume
/// shapes the plan itself produced, so validating the entry contract is
/// sufficient to keep kernels off their panic paths.
fn validate_ops_input(ops: &[PackedOp], dims: &[usize]) -> Result<(), InferError> {
    for op in ops {
        match op {
            PackedOp::Act(_) => continue,
            PackedOp::Residual { body, .. } => return validate_ops_input(body, dims),
            PackedOp::Conv {
                gemm,
                cg,
                r,
                s,
                stride,
                pad,
                groups,
                ..
            } => {
                if dims.len() != 4 {
                    return Err(InferError::Input(format!(
                        "conv input must be rank 4 [n, c, h, w], got {dims:?}"
                    )));
                }
                let (c, h, w) = (dims[1], dims[2], dims[3]);
                if c != cg * groups {
                    return Err(InferError::Input(format!(
                        "conv expects {} input channels ({cg} per group × {groups} groups), got {c}",
                        cg * groups
                    )));
                }
                if h + 2 * pad < *r || w + 2 * pad < *s {
                    return Err(InferError::Input(format!(
                        "padded input {h}×{w} (pad {pad}) is smaller than the {r}×{s} kernel"
                    )));
                }
                let _ = (gemm, stride);
                return Ok(());
            }
            PackedOp::Linear { gemm } => {
                if dims.len() != 2 {
                    return Err(InferError::Input(format!(
                        "linear input must be rank 2 [n, features], got {dims:?}"
                    )));
                }
                if dims[1] != gemm.cols {
                    return Err(InferError::Input(format!(
                        "linear expects {} input features, got {}",
                        gemm.cols, dims[1]
                    )));
                }
                return Ok(());
            }
            PackedOp::GlobalAvgPool => {
                if dims.len() != 4 {
                    return Err(InferError::Input(format!(
                        "global average pool input must be rank 4, got {dims:?}"
                    )));
                }
                return Ok(());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantnet_nn::{checkpoint, models};

    #[test]
    fn from_checkpoint_matches_prepack_of_source() {
        let bits = BitWidthSet::narrow_range();
        let net = models::small_cnn(4, 6, (8, 8), bits.len(), 11);
        let path = std::env::temp_dir().join(format!(
            "instantnet_infer_ckpt_{}_{:p}.bin",
            std::process::id(),
            &bits
        ));
        checkpoint::save(&net, &path).unwrap();

        // A differently-seeded clone restored from the checkpoint must pack
        // to the same model as the source (parameters and BN buffers both
        // travel through the file).
        let restored = models::small_cnn(4, 6, (8, 8), bits.len(), 99);
        let packed_src = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
        let packed_ckpt =
            PackedModel::from_checkpoint(&restored, &path, &bits, Quantizer::Sbm).unwrap();
        std::fs::remove_file(&path).unwrap();

        let x = Tensor::from_vec(
            vec![2, 3, 8, 8],
            (0..2 * 3 * 8 * 8)
                .map(|i| ((i * 37 % 101) as f32) / 50.5 - 1.0)
                .collect(),
        );
        for i in 0..bits.len() {
            let a = packed_src.forward_at(i, &x);
            let b = packed_ckpt.forward_at(i, &x);
            assert_eq!(a.data(), b.data(), "bit index {i}");
        }
    }

    #[test]
    fn from_checkpoint_surfaces_corruption_as_typed_error() {
        let bits = BitWidthSet::narrow_range();
        let net = models::small_cnn(4, 6, (8, 8), bits.len(), 11);
        let path = std::env::temp_dir().join(format!(
            "instantnet_infer_corrupt_{}_{:p}.bin",
            std::process::id(),
            &bits
        ));
        checkpoint::save(&net, &path).unwrap();
        // Flip one bit in the tensor-data tail: the structure still parses,
        // so only the per-section CRC32 can reject the file.
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = bytes.len() - 6;
        bytes[victim] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        let err = match PackedModel::from_checkpoint(&net, &path, &bits, Quantizer::Sbm) {
            Ok(_) => panic!("corrupt checkpoint must not load"),
            Err(e) => e,
        };
        std::fs::remove_file(&path).unwrap();
        assert!(
            matches!(
                err,
                InferError::Checkpoint(instantnet_nn::checkpoint::CheckpointError::Corrupt(_))
            ),
            "expected typed corruption error, got: {err}"
        );
    }

    #[test]
    fn switching_and_forwards_perform_no_weight_work() {
        let bits = BitWidthSet::large_range();
        let net = models::small_cnn(4, 6, (8, 8), bits.len(), 3);
        let mut packed = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
        // small_cnn has three GEMM layers (two convs + classifier), each
        // packed exactly once per bit-width.
        assert_eq!(packed.pack_passes(), 3 * bits.len());

        let x = Tensor::zeros(&[1, 3, 8, 8]);
        let before = packed.pack_passes();
        for i in (0..bits.len()).rev() {
            packed.switch_to(i).unwrap();
            assert_eq!(packed.active_index(), i);
            let _ = packed.forward(&x);
        }
        assert!(packed.switch_to_bits(bits.widths()[0]));
        let _ = packed.forward(&x);
        assert_eq!(packed.pack_passes(), before, "switching must not repack");
    }

    #[test]
    fn clone_shares_packed_tables_and_never_repacks() {
        let bits = BitWidthSet::large_range();
        let net = models::small_cnn(4, 6, (8, 8), bits.len(), 5);
        let packed = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
        let passes = packed.pack_passes();

        // Replica clones share the immutable packed tables (one refcount
        // bump, no per-element weight work) and report the same pack count.
        let mut replica = packed.clone();
        assert!(packed.shares_packed_tables(&replica));
        assert_eq!(replica.pack_passes(), passes);
        assert_eq!(packed.pack_passes(), passes);

        // Each clone switches independently…
        replica.switch_to(bits.len() - 1).unwrap();
        assert_eq!(packed.active_index(), 0);
        assert_eq!(replica.active_index(), bits.len() - 1);

        // …and forwards are bit-identical to the original at every width.
        let x = Tensor::from_vec(
            vec![2, 3, 8, 8],
            (0..2 * 3 * 8 * 8)
                .map(|i| ((i * 29 % 97) as f32) / 48.5 - 1.0)
                .collect(),
        );
        for i in 0..bits.len() {
            assert_eq!(
                packed.forward_batch_at(i, &x).data(),
                replica.forward_batch_at(i, &x).data(),
                "bit index {i}"
            );
        }
        assert_eq!(packed.pack_passes(), passes, "cloning must not repack");
        assert_eq!(replica.pack_passes(), passes);

        // Independently packed models do not share tables.
        let other = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
        assert!(!packed.shares_packed_tables(&other));
    }

    #[test]
    fn nibble_roundtrip_all_signed_values() {
        // Pack every signed nibble value over an odd column count (row
        // padding exercised), decode, compare.
        let cols = 5;
        let codes: Vec<i32> = (-8..8).collect(); // 16 values
        let rows = codes.len().div_ceil(cols);
        let mut padded = codes.clone();
        padded.resize(rows * cols, 0);
        let stride = cols.div_ceil(2);
        let mut data = vec![0u8; rows * stride];
        for (e, &d) in padded.iter().enumerate() {
            let (row, j) = (e / cols, e % cols);
            let nib = (d as u8) & 0xF;
            let slot = &mut data[row * stride + j / 2];
            *slot |= if j % 2 == 0 { nib } else { nib << 4 };
        }
        let storage = Storage::Nibble(data);
        let mut out = vec![0i32; cols];
        for row in 0..rows {
            storage.decode_row(row, cols, &mut out);
            assert_eq!(out, &padded[row * cols..(row + 1) * cols]);
        }
    }

    #[test]
    fn switch_and_forward_errors_are_typed() {
        let bits = BitWidthSet::new(vec![4, 8]).unwrap();
        let net = models::small_cnn(4, 6, (8, 8), bits.len(), 7);
        let mut packed = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();

        // Bad index: typed error, model unchanged.
        let before = packed.active_index();
        let err = packed.switch_to(99).unwrap_err();
        assert!(
            matches!(err, InferError::BitIndex { index: 99, len: 2 }),
            "{err}"
        );
        assert_eq!(packed.active_index(), before);

        // Bad bit-width value: typed error from the fallible twin, `false`
        // from the bool convenience, model unchanged either way.
        let err = packed.try_switch_to_bits(BitWidth::new(6)).unwrap_err();
        assert!(
            matches!(err, InferError::BitWidth(b) if b.get() == 6),
            "{err}"
        );
        assert!(!packed.switch_to_bits(BitWidth::new(6)));
        assert!(packed.switch_to_bits(BitWidth::new(8)));
        assert_eq!(packed.active_bits().get(), 8);

        // Malformed forward inputs: typed errors, not kernel panics.
        let rank2 = Tensor::zeros(&[1, 3]);
        assert!(matches!(
            packed.try_forward(&rank2).unwrap_err(),
            InferError::Input(_)
        ));
        let wrong_channels = Tensor::zeros(&[1, 5, 8, 8]);
        assert!(matches!(
            packed.try_forward_batch(&wrong_channels).unwrap_err(),
            InferError::Input(_)
        ));
        assert!(matches!(
            packed
                .try_forward_at(7, &Tensor::zeros(&[1, 3, 8, 8]))
                .unwrap_err(),
            InferError::BitIndex { index: 7, len: 2 }
        ));

        // A well-formed input still runs, and the fallible path matches
        // the panicking one bit for bit.
        let x = Tensor::from_vec(
            vec![1, 3, 8, 8],
            (0..3 * 8 * 8)
                .map(|i| (i % 11) as f32 / 11.0 - 0.5)
                .collect(),
        );
        let a = packed.try_forward_at(0, &x).unwrap();
        assert_eq!(a.data(), packed.forward_at(0, &x).data());
    }

    #[test]
    fn storage_bytes_accounting() {
        assert_eq!(Storage::Nibble(vec![0; 10]).bytes(), 10);
        assert_eq!(Storage::I8(vec![0; 10]).bytes(), 10);
        assert_eq!(Storage::I16(vec![0; 10]).bytes(), 20);
        assert_eq!(Storage::F32(vec![0.0; 10]).bytes(), 40);
        assert!(!Storage::F32(vec![]).is_integer());
        assert!(Storage::I8(vec![]).is_integer());
    }
}
