//! Explicit-SIMD backend for the hot reduction kernels, behind one-time
//! runtime dispatch.
//!
//! The packed engine's inner loops — the `accumulate_*` column reductions
//! and the per-row weight decode — are portable scalar Rust in
//! [`crate::exec`] / [`crate::Storage`]. This module adds AVX2
//! (`core::arch::x86_64`) implementations of the same kernels and selects
//! between the two backends **once per process** through a function table:
//!
//! * detection runs once ([`std::sync::OnceLock`]) via
//!   `is_x86_feature_detected!("avx2")`;
//! * the `INSTANTNET_SIMD` environment variable overrides detection
//!   (`scalar` forces the portable kernels anywhere; `avx2` requests AVX2
//!   and falls back to scalar when the CPU lacks it; anything else —
//!   including unset and `auto` — means "detect");
//! * tests and benches can force a backend for a scoped region with
//!   [`with_simd_backend`], which serializes callers on a global lock.
//!
//! Every call site in the engine routes through [`kernels`], so batched,
//! resilient, and sharded serving plus the f32-fallback path all inherit
//! the active backend with no API change. The table layout is
//! backend-agnostic on purpose: a NEON port adds one more `Kernels`
//! static (and a `SimdBackend::Neon` arm) without touching any call site.
//!
//! # Bit-identity contract
//!
//! The SIMD kernels produce **bit-identical** output to the scalar ones
//! for every tier × bit-width × quantizer × batch size × thread count:
//!
//! * the i32/i64 kernels are integer arithmetic, which is associative and
//!   commutative — lane order and write-back interleaving cannot change
//!   the final sums;
//! * the f32 kernels only ever see integer-valued lanes whose every
//!   partial sum is bounded below 2^24 (the pack-time tier selection in
//!   [`crate::pack`] guarantees the bound over the *whole* reduction, so
//!   every prefix in any association order is an exactly representable
//!   integer) — reassociating exact arithmetic is lossless;
//! * `decode_row` is elementwise (no reduction at all).
//!
//! The contract is pinned by the kernel-level parity tests below and by
//! `tests/simd_parity.rs`, which runs whole-model forwards under both
//! backends.
//!
//! # Safety
//!
//! This module is the only place in the workspace containing `unsafe`
//! code, and all of it is confined to the [`avx2`] submodule behind safe
//! wrappers. Two invariants carry every `unsafe` block:
//!
//! 1. **ISA availability**: the AVX2 table is only reachable after
//!    `is_x86_feature_detected!("avx2")` succeeded (dispatch default) or
//!    after [`with_simd_backend`] asserted availability — so executing
//!    AVX2 instructions is valid on this CPU.
//! 2. **In-bounds access**: every vector load/store takes its pointer
//!    from a bounds-checked subslice of exactly the lanes it touches, so
//!    the unsafe surface is the intrinsic call itself, never the
//!    addressing. Slice-shape contracts (`acts.len() == wrow.len() *
//!    acc.len()`) are debug-asserted at the wrapper boundary.

use crate::Storage;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// A kernel backend the dispatch table can route to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdBackend {
    /// Portable scalar Rust (the baseline every target can run).
    Scalar,
    /// 256-bit AVX2 integer/float kernels (x86-64 with runtime support).
    Avx2,
}

impl SimdBackend {
    /// The knob spelling of this backend (`INSTANTNET_SIMD` value).
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Scalar => "scalar",
            SimdBackend::Avx2 => "avx2",
        }
    }
}

/// The hot-kernel function table one backend provides. One static per
/// backend; [`kernels`] picks which one the engine routes through.
pub(crate) struct Kernels {
    pub(crate) backend: SimdBackend,
    /// `acc[j] += Σ_p wrow[p] · acts[p · acc.len() + j]` in i32.
    pub(crate) accumulate_i32: fn(&mut [i32], &[i32], &[i32]),
    /// The i64-accumulator variant (12/16-bit layers).
    pub(crate) accumulate_i64: fn(&mut [i64], &[i32], &[i32]),
    /// The exact-f32-lane variant (≤ 8-bit layers).
    pub(crate) accumulate_f32: fn(&mut [f32], &[f32], &[f32]),
    /// Decodes one packed weight row into i32 codes.
    pub(crate) decode_row_i32: fn(&Storage, usize, usize, &mut [i32]),
    /// Decodes one packed weight row into exact f32 lanes.
    pub(crate) decode_row_f32: fn(&Storage, usize, usize, &mut [f32]),
}

static SCALAR: Kernels = Kernels {
    backend: SimdBackend::Scalar,
    accumulate_i32: crate::exec::accumulate_i32_scalar,
    accumulate_i64: crate::exec::accumulate_i64_scalar,
    accumulate_f32: crate::exec::accumulate_f32_scalar,
    decode_row_i32: Storage::decode_row_scalar,
    decode_row_f32: Storage::decode_row_f32_scalar,
};

#[cfg(target_arch = "x86_64")]
static AVX2: Kernels = Kernels {
    backend: SimdBackend::Avx2,
    accumulate_i32: avx2::accumulate_i32,
    accumulate_i64: avx2::accumulate_i64,
    accumulate_f32: avx2::accumulate_f32,
    decode_row_i32: avx2::decode_row_i32,
    decode_row_f32: avx2::decode_row_f32,
};

fn table(backend: SimdBackend) -> &'static Kernels {
    match backend {
        SimdBackend::Scalar => &SCALAR,
        #[cfg(target_arch = "x86_64")]
        SimdBackend::Avx2 => &AVX2,
        // `resolve` never yields Avx2 off x86-64 and `with_simd_backend`
        // asserts availability, so this arm is unreachable in practice.
        #[cfg(not(target_arch = "x86_64"))]
        SimdBackend::Avx2 => &SCALAR,
    }
}

/// Whether this CPU can run the AVX2 backend (always false off x86-64).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Pure resolution of (env override, detected AVX2) → backend, split out
/// so the knob semantics are unit-testable without process-global state.
fn resolve(env: Option<&str>, avx2: bool) -> SimdBackend {
    let fallback = if avx2 {
        SimdBackend::Avx2
    } else {
        SimdBackend::Scalar
    };
    match env.map(str::trim) {
        Some(v) if v.eq_ignore_ascii_case("scalar") => SimdBackend::Scalar,
        // An explicit avx2 request still needs the CPU to support it;
        // degrade to scalar instead of faulting on the first kernel.
        Some(v) if v.eq_ignore_ascii_case("avx2") => fallback,
        // Unset, "auto", or garbage: detect.
        _ => fallback,
    }
}

/// Forced-backend override (0 = none, else `SimdBackend` discriminant+1):
/// process-global so worker threads spawned inside parallel regions see
/// the same backend as the caller that forced it.
static FORCED: AtomicU8 = AtomicU8::new(0);
static FORCE_LOCK: Mutex<()> = Mutex::new(());

fn default_kernels() -> &'static Kernels {
    static DEFAULT: OnceLock<&'static Kernels> = OnceLock::new();
    DEFAULT.get_or_init(|| {
        table(resolve(
            std::env::var("INSTANTNET_SIMD").ok().as_deref(),
            avx2_available(),
        ))
    })
}

/// The active kernel table: a forced override when one is in effect, else
/// the process default resolved once from `INSTANTNET_SIMD` + detection.
#[inline]
pub(crate) fn kernels() -> &'static Kernels {
    match FORCED.load(Ordering::Relaxed) {
        1 => &SCALAR,
        #[cfg(target_arch = "x86_64")]
        2 => &AVX2,
        _ => default_kernels(),
    }
}

/// The backend the engine currently dispatches to.
pub fn active_simd_backend() -> SimdBackend {
    kernels().backend
}

/// Runs `f` with kernel dispatch forced to `backend`, restoring the
/// previous state afterwards (also on panic).
///
/// The override is **process-global** — it must be, so worker threads
/// inside parallel regions run the same backend — and concurrent callers
/// are serialized on an internal lock (do not nest calls; a nested call
/// deadlocks). Forwards running concurrently *outside* the closure may
/// observe the override, which is safe because both backends are
/// bit-identical; only performance differs. Intended for parity tests and
/// scalar-vs-SIMD benches.
///
/// # Panics
///
/// Panics if `backend` is [`SimdBackend::Avx2`] on a CPU without AVX2
/// (callers gate on [`avx2_available`]).
pub fn with_simd_backend<T>(backend: SimdBackend, f: impl FnOnce() -> T) -> T {
    assert!(
        backend != SimdBackend::Avx2 || avx2_available(),
        "AVX2 backend forced but this CPU has no AVX2"
    );
    let _serialize = FORCE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED.store(self.0, Ordering::SeqCst);
        }
    }
    let code = match backend {
        SimdBackend::Scalar => 1,
        SimdBackend::Avx2 => 2,
    };
    let _restore = Restore(FORCED.swap(code, Ordering::SeqCst));
    f()
}

// ---------------------------------------------------------------------------
// AVX2 kernels (x86-64 only; every `unsafe` in the crate lives here)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    // `loadu`/`storeu` intrinsics have no alignment requirement, so the
    // `*const i32 → *const __m256i` pointer casts below are sound; the
    // lint assumes the target type's alignment matters.
    #![allow(clippy::cast_ptr_alignment)]

    use crate::Storage;
    use core::arch::x86_64::{
        __m128i, __m256, __m256i, _mm256_add_epi32, _mm256_add_epi64, _mm256_add_ps,
        _mm256_cvtepi16_epi32, _mm256_cvtepi32_ps, _mm256_cvtepi8_epi32, _mm256_cvtepu8_epi32,
        _mm256_loadu_ps, _mm256_loadu_si256, _mm256_mul_epi32, _mm256_mul_ps, _mm256_mullo_epi32,
        _mm256_permute2x128_si256, _mm256_set1_epi32, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_setzero_si256, _mm256_shuffle_epi32, _mm256_slli_epi32, _mm256_srai_epi32,
        _mm256_storeu_ps, _mm256_storeu_si256, _mm256_unpackhi_epi32, _mm256_unpackhi_epi64,
        _mm256_unpacklo_epi32, _mm256_unpacklo_epi64, _mm_loadl_epi64, _mm_loadu_si128,
    };

    /// i32/f32 lanes per 256-bit register.
    const L: usize = 8;

    // --- safe wrappers: the only entry points into this module. Each
    // checks the slice-shape contract, then defers to a
    // `#[target_feature(enable = "avx2")]` kernel. ---

    pub(super) fn accumulate_i32(acc: &mut [i32], wrow: &[i32], acts: &[i32]) {
        debug_assert_eq!(
            acts.len(),
            wrow.len() * acc.len(),
            "acts must be [rows, ncols]"
        );
        // SAFETY: reachable only through the AVX2 dispatch table, which is
        // installed strictly after `is_x86_feature_detected!("avx2")`.
        unsafe { accumulate_i32_kernel(acc, wrow, acts) }
    }

    pub(super) fn accumulate_i64(acc: &mut [i64], wrow: &[i32], acts: &[i32]) {
        debug_assert_eq!(
            acts.len(),
            wrow.len() * acc.len(),
            "acts must be [rows, ncols]"
        );
        // SAFETY: as in `accumulate_i32`.
        unsafe { accumulate_i64_kernel(acc, wrow, acts) }
    }

    pub(super) fn accumulate_f32(acc: &mut [f32], wrow: &[f32], acts: &[f32]) {
        debug_assert_eq!(
            acts.len(),
            wrow.len() * acc.len(),
            "acts must be [rows, ncols]"
        );
        // SAFETY: as in `accumulate_i32`.
        unsafe { accumulate_f32_kernel(acc, wrow, acts) }
    }

    pub(super) fn decode_row_i32(storage: &Storage, row: usize, cols: usize, out: &mut [i32]) {
        let out = &mut out[..cols];
        match storage {
            Storage::Nibble(data) => {
                let stride = cols.div_ceil(2);
                // SAFETY: AVX2 detected (dispatch invariant); the row slice
                // is bounds-checked here.
                unsafe { decode_nibble_i32_kernel(&data[row * stride..(row + 1) * stride], out) }
            }
            // SAFETY (both arms): as above.
            Storage::I8(data) => unsafe {
                decode_i8_i32_kernel(&data[row * cols..(row + 1) * cols], out)
            },
            Storage::I16(data) => unsafe {
                decode_i16_i32_kernel(&data[row * cols..(row + 1) * cols], out)
            },
            Storage::F32(_) => panic!("decode_row on f32 storage"),
        }
    }

    pub(super) fn decode_row_f32(storage: &Storage, row: usize, cols: usize, out: &mut [f32]) {
        let out = &mut out[..cols];
        match storage {
            Storage::Nibble(data) => {
                let stride = cols.div_ceil(2);
                // SAFETY: as in `decode_row_i32`.
                unsafe { decode_nibble_f32_kernel(&data[row * stride..(row + 1) * stride], out) }
            }
            // SAFETY (both arms): as in `decode_row_i32`.
            Storage::I8(data) => unsafe {
                decode_i8_f32_kernel(&data[row * cols..(row + 1) * cols], out)
            },
            Storage::I16(data) => unsafe {
                decode_i16_f32_kernel(&data[row * cols..(row + 1) * cols], out)
            },
            Storage::F32(_) => panic!("decode_row_f32 on f32 storage"),
        }
    }

    // --- bounds-checked load/store helpers: each takes its pointer from a
    // subslice of exactly the lanes it touches, so addressing is proven by
    // the slice check and only the intrinsic call itself is unsafe. ---

    #[target_feature(enable = "avx2")]
    fn load_i32(s: &[i32], at: usize) -> __m256i {
        let lane = &s[at..at + L];
        // SAFETY: 8 readable i32 lanes per the slice above; unaligned load.
        unsafe { _mm256_loadu_si256(lane.as_ptr().cast()) }
    }

    #[target_feature(enable = "avx2")]
    fn store_i32(s: &mut [i32], at: usize, v: __m256i) {
        let lane = &mut s[at..at + L];
        // SAFETY: 8 writable i32 lanes per the slice above; unaligned store.
        unsafe { _mm256_storeu_si256(lane.as_mut_ptr().cast(), v) }
    }

    #[target_feature(enable = "avx2")]
    fn add_store_i32(acc: &mut [i32], at: usize, v: __m256i) {
        let sum = _mm256_add_epi32(load_i32(acc, at), v);
        store_i32(acc, at, sum);
    }

    #[target_feature(enable = "avx2")]
    fn load_i64(s: &[i64], at: usize) -> __m256i {
        let lane = &s[at..at + 4];
        // SAFETY: 4 readable i64 lanes per the slice above; unaligned load.
        unsafe { _mm256_loadu_si256(lane.as_ptr().cast()) }
    }

    #[target_feature(enable = "avx2")]
    fn add_store_i64(acc: &mut [i64], at: usize, v: __m256i) {
        let sum = _mm256_add_epi64(load_i64(acc, at), v);
        let lane = &mut acc[at..at + 4];
        // SAFETY: 4 writable i64 lanes per the slice above; unaligned store.
        unsafe { _mm256_storeu_si256(lane.as_mut_ptr().cast(), sum) }
    }

    #[target_feature(enable = "avx2")]
    fn load_f32(s: &[f32], at: usize) -> __m256 {
        let lane = &s[at..at + L];
        // SAFETY: 8 readable f32 lanes per the slice above; unaligned load.
        unsafe { _mm256_loadu_ps(lane.as_ptr()) }
    }

    #[target_feature(enable = "avx2")]
    fn add_store_f32(acc: &mut [f32], at: usize, v: __m256) {
        let sum = _mm256_add_ps(load_f32(acc, at), v);
        let lane = &mut acc[at..at + L];
        // SAFETY: 8 writable f32 lanes per the slice above; unaligned store.
        unsafe { _mm256_storeu_ps(lane.as_mut_ptr(), sum) }
    }

    /// Loads 8 bytes into the low half of an xmm register.
    #[target_feature(enable = "avx2")]
    fn load_8_bytes(s: &[u8], at: usize) -> __m128i {
        let lane = &s[at..at + 8];
        // SAFETY: 8 readable bytes per the slice above; unaligned load.
        unsafe { _mm_loadl_epi64(lane.as_ptr().cast()) }
    }

    // --- accumulate kernels ---

    /// i32 column reduction, two registers (16 columns) per block so the
    /// integer pipes have independent chains to fill.
    #[target_feature(enable = "avx2")]
    fn accumulate_i32_kernel(acc: &mut [i32], wrow: &[i32], acts: &[i32]) {
        let ncols = acc.len();
        let mut j = 0usize;
        while j + 2 * L <= ncols {
            let mut s0 = _mm256_setzero_si256();
            let mut s1 = _mm256_setzero_si256();
            let mut base = j;
            for &wv in wrow {
                let w = _mm256_set1_epi32(wv);
                s0 = _mm256_add_epi32(s0, _mm256_mullo_epi32(w, load_i32(acts, base)));
                s1 = _mm256_add_epi32(s1, _mm256_mullo_epi32(w, load_i32(acts, base + L)));
                base += ncols;
            }
            add_store_i32(acc, j, s0);
            add_store_i32(acc, j + L, s1);
            j += 2 * L;
        }
        while j + L <= ncols {
            let mut s = _mm256_setzero_si256();
            let mut base = j;
            for &wv in wrow {
                s = _mm256_add_epi32(
                    s,
                    _mm256_mullo_epi32(_mm256_set1_epi32(wv), load_i32(acts, base)),
                );
                base += ncols;
            }
            add_store_i32(acc, j, s);
            j += L;
        }
        while j < ncols {
            let mut lane = 0i32;
            let mut idx = j;
            for &wv in wrow {
                lane += wv * acts[idx];
                idx += ncols;
            }
            acc[j] += lane;
            j += 1;
        }
    }

    /// i64 column reduction. AVX2 has no 64×64 multiply, but
    /// `_mm256_mul_epi32` sign-extends the low dword of each qword into a
    /// full 64-bit product — exactly the i32×i32→i64 widening MAC the i64
    /// tier needs. Even columns multiply in place; odd columns are
    /// shuffled into the low-dword slots first, and the two qword
    /// accumulators are re-interleaved on write-back. Integer addition is
    /// order-free, so the split cannot change the sums.
    #[target_feature(enable = "avx2")]
    fn accumulate_i64_kernel(acc: &mut [i64], wrow: &[i32], acts: &[i32]) {
        let ncols = acc.len();
        let mut j = 0usize;
        while j + L <= ncols {
            let mut even = _mm256_setzero_si256(); // columns j, j+2, j+4, j+6
            let mut odd = _mm256_setzero_si256(); // columns j+1, j+3, j+5, j+7
            let mut base = j;
            for &wv in wrow {
                let w = _mm256_set1_epi32(wv);
                let a = load_i32(acts, base);
                even = _mm256_add_epi64(even, _mm256_mul_epi32(w, a));
                // 0xF5 copies dwords {1,3} of each 128-bit lane into the
                // qword low-dword slots {0,2}.
                odd = _mm256_add_epi64(odd, _mm256_mul_epi32(w, _mm256_shuffle_epi32::<0xF5>(a)));
                base += ncols;
            }
            let lo = _mm256_unpacklo_epi64(even, odd); // j, j+1 | j+4, j+5
            let hi = _mm256_unpackhi_epi64(even, odd); // j+2, j+3 | j+6, j+7
            add_store_i64(acc, j, _mm256_permute2x128_si256::<0x20>(lo, hi));
            add_store_i64(acc, j + 4, _mm256_permute2x128_si256::<0x31>(lo, hi));
            j += L;
        }
        while j < ncols {
            let mut lane = 0i64;
            let mut idx = j;
            for &wv in wrow {
                lane += i64::from(wv) * i64::from(acts[idx]);
                idx += ncols;
            }
            acc[j] += lane;
            j += 1;
        }
    }

    /// Exact-f32 column reduction (lanes are small integers; every partial
    /// sum stays below 2^24, so mul+add here is lossless and bit-identical
    /// to the scalar order). No FMA on purpose: `avx2` detection does not
    /// imply `fma`, and exactness makes fusion pointless.
    #[target_feature(enable = "avx2")]
    fn accumulate_f32_kernel(acc: &mut [f32], wrow: &[f32], acts: &[f32]) {
        let ncols = acc.len();
        let mut j = 0usize;
        while j + 2 * L <= ncols {
            let mut s0 = _mm256_setzero_ps();
            let mut s1 = _mm256_setzero_ps();
            let mut base = j;
            for &wv in wrow {
                let w = _mm256_set1_ps(wv);
                s0 = _mm256_add_ps(s0, _mm256_mul_ps(w, load_f32(acts, base)));
                s1 = _mm256_add_ps(s1, _mm256_mul_ps(w, load_f32(acts, base + L)));
                base += ncols;
            }
            add_store_f32(acc, j, s0);
            add_store_f32(acc, j + L, s1);
            j += 2 * L;
        }
        while j + L <= ncols {
            let mut s = _mm256_setzero_ps();
            let mut base = j;
            for &wv in wrow {
                s = _mm256_add_ps(s, _mm256_mul_ps(_mm256_set1_ps(wv), load_f32(acts, base)));
                base += ncols;
            }
            add_store_f32(acc, j, s);
            j += L;
        }
        while j < ncols {
            let mut lane = 0.0f32;
            let mut idx = j;
            for &wv in wrow {
                lane += wv * acts[idx];
                idx += ncols;
            }
            acc[j] += lane;
            j += 1;
        }
    }

    // --- decode kernels ---

    /// Sign-extends the two nibbles of each of 8 bytes into 16 i32 codes:
    /// widen bytes to dwords, shift-extract both nibbles, interleave
    /// (low nibble first — the pack order in `crate::pack`).
    #[target_feature(enable = "avx2")]
    fn decode_nibble_pair(bytes: __m128i) -> (__m256i, __m256i) {
        let v = _mm256_cvtepu8_epi32(bytes);
        let lo = _mm256_srai_epi32::<28>(_mm256_slli_epi32::<28>(v));
        let hi = _mm256_srai_epi32::<28>(_mm256_slli_epi32::<24>(v));
        let il = _mm256_unpacklo_epi32(lo, hi); // L0 H0 L1 H1 | L4 H4 L5 H5
        let ih = _mm256_unpackhi_epi32(lo, hi); // L2 H2 L3 H3 | L6 H6 L7 H7
        (
            _mm256_permute2x128_si256::<0x20>(il, ih), // codes 0..8
            _mm256_permute2x128_si256::<0x31>(il, ih), // codes 8..16
        )
    }

    #[target_feature(enable = "avx2")]
    fn decode_nibble_i32_kernel(row_bytes: &[u8], out: &mut [i32]) {
        let cols = out.len();
        let (mut j, mut b) = (0usize, 0usize);
        while j + 2 * L <= cols {
            let (first, second) = decode_nibble_pair(load_8_bytes(row_bytes, b));
            store_i32(out, j, first);
            store_i32(out, j + L, second);
            j += 2 * L;
            b += L;
        }
        decode_nibble_tail(row_bytes, b, out, j);
    }

    #[target_feature(enable = "avx2")]
    fn decode_nibble_f32_kernel(row_bytes: &[u8], out: &mut [f32]) {
        let cols = out.len();
        let (mut j, mut b) = (0usize, 0usize);
        while j + 2 * L <= cols {
            let (first, second) = decode_nibble_pair(load_8_bytes(row_bytes, b));
            store_f32_from_i32(out, j, first);
            store_f32_from_i32(out, j + L, second);
            j += 2 * L;
            b += L;
        }
        let mut tail = [0i32; 2 * L];
        let n = cols - j;
        decode_nibble_tail(row_bytes, b, &mut tail[..n], 0);
        for (o, &c) in out[j..].iter_mut().zip(&tail[..n]) {
            *o = c as f32;
        }
    }

    /// Scalar nibble tail, identical to `Storage::decode_row_scalar`'s
    /// per-byte decode (low nibble first, high nibble dropped past `cols`).
    fn decode_nibble_tail(row_bytes: &[u8], mut b: usize, out: &mut [i32], mut j: usize) {
        let cols = out.len();
        while j < cols {
            let byte = row_bytes[b] as i8;
            out[j] = i32::from((byte << 4) >> 4);
            if let Some(o) = out.get_mut(j + 1) {
                *o = i32::from(byte >> 4);
            }
            j += 2;
            b += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    fn store_f32_from_i32(s: &mut [f32], at: usize, v: __m256i) {
        let lane = &mut s[at..at + L];
        // SAFETY: 8 writable f32 lanes per the slice above; unaligned store.
        unsafe { _mm256_storeu_ps(lane.as_mut_ptr(), _mm256_cvtepi32_ps(v)) }
    }

    #[target_feature(enable = "avx2")]
    fn decode_i8_i32_kernel(codes: &[i8], out: &mut [i32]) {
        let cols = out.len();
        let mut j = 0usize;
        while j + L <= cols {
            let lane = &codes[j..j + L];
            // SAFETY: 8 readable bytes per the slice above; unaligned load.
            let bytes = unsafe { _mm_loadl_epi64(lane.as_ptr().cast()) };
            store_i32(out, j, _mm256_cvtepi8_epi32(bytes));
            j += L;
        }
        for (o, &c) in out[j..].iter_mut().zip(&codes[j..]) {
            *o = i32::from(c);
        }
    }

    #[target_feature(enable = "avx2")]
    fn decode_i8_f32_kernel(codes: &[i8], out: &mut [f32]) {
        let cols = out.len();
        let mut j = 0usize;
        while j + L <= cols {
            let lane = &codes[j..j + L];
            // SAFETY: 8 readable bytes per the slice above; unaligned load.
            let bytes = unsafe { _mm_loadl_epi64(lane.as_ptr().cast()) };
            store_f32_from_i32(out, j, _mm256_cvtepi8_epi32(bytes));
            j += L;
        }
        for (o, &c) in out[j..].iter_mut().zip(&codes[j..]) {
            *o = f32::from(c);
        }
    }

    #[target_feature(enable = "avx2")]
    fn decode_i16_i32_kernel(codes: &[i16], out: &mut [i32]) {
        let cols = out.len();
        let mut j = 0usize;
        while j + L <= cols {
            let lane = &codes[j..j + L];
            // SAFETY: 8 readable i16 lanes per the slice above; unaligned load.
            let words = unsafe { _mm_loadu_si128(lane.as_ptr().cast()) };
            store_i32(out, j, _mm256_cvtepi16_epi32(words));
            j += L;
        }
        for (o, &c) in out[j..].iter_mut().zip(&codes[j..]) {
            *o = i32::from(c);
        }
    }

    #[target_feature(enable = "avx2")]
    fn decode_i16_f32_kernel(codes: &[i16], out: &mut [f32]) {
        let cols = out.len();
        let mut j = 0usize;
        while j + L <= cols {
            let lane = &codes[j..j + L];
            // SAFETY: 8 readable i16 lanes per the slice above; unaligned load.
            let words = unsafe { _mm_loadu_si128(lane.as_ptr().cast()) };
            store_f32_from_i32(out, j, _mm256_cvtepi16_epi32(words));
            j += L;
        }
        for (o, &c) in out[j..].iter_mut().zip(&codes[j..]) {
            *o = f32::from(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn resolve_knob_semantics() {
        use SimdBackend::{Avx2, Scalar};
        // scalar always wins, case/space-insensitively.
        assert_eq!(resolve(Some("scalar"), true), Scalar);
        assert_eq!(resolve(Some(" SCALAR "), true), Scalar);
        assert_eq!(resolve(Some("scalar"), false), Scalar);
        // avx2 requires detection; degrades to scalar without it.
        assert_eq!(resolve(Some("avx2"), true), Avx2);
        assert_eq!(resolve(Some("AVX2"), false), Scalar);
        // unset / auto / garbage: detect.
        assert_eq!(resolve(None, true), Avx2);
        assert_eq!(resolve(None, false), Scalar);
        assert_eq!(resolve(Some("auto"), true), Avx2);
        assert_eq!(resolve(Some("definitely-not-a-backend"), false), Scalar);
    }

    #[test]
    fn backend_names_round_trip_through_resolve() {
        for b in [SimdBackend::Scalar, SimdBackend::Avx2] {
            assert_eq!(resolve(Some(b.name()), true), b);
        }
    }

    #[test]
    fn forced_backend_is_scoped_and_restored() {
        let ambient = active_simd_backend();
        let inside = with_simd_backend(SimdBackend::Scalar, active_simd_backend);
        assert_eq!(inside, SimdBackend::Scalar);
        assert_eq!(active_simd_backend(), ambient);
        if avx2_available() {
            let inside = with_simd_backend(SimdBackend::Avx2, active_simd_backend);
            assert_eq!(inside, SimdBackend::Avx2);
            assert_eq!(active_simd_backend(), ambient);
        }
    }

    #[test]
    fn forced_backend_is_restored_on_panic() {
        let ambient = active_simd_backend();
        let result =
            std::panic::catch_unwind(|| with_simd_backend(SimdBackend::Scalar, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(active_simd_backend(), ambient);
    }

    /// Random `[rows, ncols]` problems, including ragged tails around the
    /// 8/16-lane block widths; both backends must agree bit for bit.
    #[test]
    fn avx2_accumulate_kernels_match_scalar_bit_for_bit() {
        if !avx2_available() {
            eprintln!("skipping: no AVX2 on this CPU");
            return;
        }
        let mut rng = StdRng::seed_from_u64(0x51AD);
        for case in 0..200 {
            let rows = rng.gen_range(1usize..20);
            let ncols = rng.gen_range(1usize..70);
            let wrow: Vec<i32> = (0..rows).map(|_| rng.gen_range(-128i32..128)).collect();
            let acts: Vec<i32> = (0..rows * ncols)
                .map(|_| rng.gen_range(-256i32..256))
                .collect();
            let init: Vec<i32> = (0..ncols).map(|_| rng.gen_range(-1000i32..1000)).collect();

            let mut a32 = init.clone();
            let mut b32 = init.clone();
            (SCALAR.accumulate_i32)(&mut a32, &wrow, &acts);
            (AVX2.accumulate_i32)(&mut b32, &wrow, &acts);
            assert_eq!(a32, b32, "i32 case {case}: rows {rows} ncols {ncols}");

            let init64: Vec<i64> = init.iter().map(|&v| i64::from(v)).collect();
            let mut a64 = init64.clone();
            let mut b64 = init64;
            (SCALAR.accumulate_i64)(&mut a64, &wrow, &acts);
            (AVX2.accumulate_i64)(&mut b64, &wrow, &acts);
            assert_eq!(a64, b64, "i64 case {case}: rows {rows} ncols {ncols}");

            let wf: Vec<f32> = wrow.iter().map(|&v| v as f32).collect();
            let af: Vec<f32> = acts.iter().map(|&v| v as f32).collect();
            let initf: Vec<f32> = init.iter().map(|&v| v as f32).collect();
            let mut aff = initf.clone();
            let mut bff = initf;
            (SCALAR.accumulate_f32)(&mut aff, &wf, &af);
            (AVX2.accumulate_f32)(&mut bff, &wf, &af);
            let (ab, bb): (Vec<u32>, Vec<u32>) = (
                aff.iter().map(|v| v.to_bits()).collect(),
                bff.iter().map(|v| v.to_bits()).collect(),
            );
            assert_eq!(ab, bb, "f32 case {case}: rows {rows} ncols {ncols}");
        }
    }

    /// Every storage tier decodes identically under both backends, over
    /// widths that exercise full blocks, ragged tails, and the odd-cols
    /// half-byte of the nibble format.
    #[test]
    fn avx2_decode_kernels_match_scalar_bit_for_bit() {
        if !avx2_available() {
            eprintln!("skipping: no AVX2 on this CPU");
            return;
        }
        let mut rng = StdRng::seed_from_u64(99);
        for cols in [1usize, 2, 5, 7, 8, 15, 16, 17, 31, 32, 33, 64, 67] {
            let rows = 3;
            let stride = cols.div_ceil(2);
            let nib = Storage::Nibble(
                (0..rows * stride)
                    .map(|_| rng.gen_range(0u32..256) as u8)
                    .collect(),
            );
            let i8s = Storage::I8(
                (0..rows * cols)
                    .map(|_| rng.gen_range(-128i32..128) as i8)
                    .collect(),
            );
            let i16s = Storage::I16(
                (0..rows * cols)
                    .map(|_| rng.gen_range(-32768i32..32768) as i16)
                    .collect(),
            );
            for storage in [&nib, &i8s, &i16s] {
                for row in 0..rows {
                    let mut a = vec![0i32; cols];
                    let mut b = vec![7i32; cols];
                    (SCALAR.decode_row_i32)(storage, row, cols, &mut a);
                    (AVX2.decode_row_i32)(storage, row, cols, &mut b);
                    assert_eq!(a, b, "i32 decode: cols {cols} row {row}");

                    let mut af = vec![0f32; cols];
                    let mut bf = vec![7f32; cols];
                    (SCALAR.decode_row_f32)(storage, row, cols, &mut af);
                    (AVX2.decode_row_f32)(storage, row, cols, &mut bf);
                    assert_eq!(af, bf, "f32 decode: cols {cols} row {row}");
                }
            }
        }
    }
}
