//! Explicit-SIMD backend for the hot reduction kernels, behind one-time
//! runtime dispatch.
//!
//! The packed engine's inner loops — the `accumulate_*` column reductions
//! and the per-row weight decode — are portable scalar Rust in
//! [`crate::exec`] / [`crate::Storage`]. This module adds AVX2
//! (`core::arch::x86_64`) and NEON (`core::arch::aarch64`)
//! implementations of the same kernels, plus **fused** ≤ 8-bit GEMM
//! kernels that multiply directly on packed codes, and selects a backend
//! **once per process** through a function table:
//!
//! * detection runs once ([`std::sync::OnceLock`]) via
//!   `is_x86_feature_detected!("avx2")` (ASIMD is baseline on aarch64, so
//!   NEON needs no runtime probe);
//! * the `INSTANTNET_SIMD` environment variable overrides detection
//!   (`scalar` forces the portable kernels anywhere; `avx2`/`neon`
//!   request that backend and fall back to detection when the CPU lacks
//!   it; anything else — including unset and `auto` — means "detect");
//! * tests and benches can force a backend for a scoped region with
//!   [`with_simd_backend`], which serializes callers on a global lock,
//!   and toggle the fused paths with [`with_fused_gemm`] (env default:
//!   `INSTANTNET_FUSED`, on unless `0`/`off`/`false`).
//!
//! Every call site in the engine routes through [`kernels`], so batched,
//! resilient, sharded, and wall-clock serving plus the f32-fallback path
//! all inherit the active backend with no API change.
//!
//! # Fused ≤ 8-bit GEMM
//!
//! The PR 6 kernels decode every weight code to the accumulator type
//! before multiplying, so 4-bit GEMM ran no faster than 8-bit. The
//! `gemm_nibble`/`gemm_i8` slots multiply on packed codes instead
//! (activations pre-narrowed to `i8`/`i16` and interleaved by
//! `crate::exec`):
//!
//! * **nibble** (≤ 4-bit weights): codes ship as `w + 8 ∈ [0, 15]`
//!   unsigned bytes, four to a `u32`; `maddubs`-class instructions form
//!   `(w₀+8)a₀ + (w₁+8)a₁` i16 pairs — bounded by 2·15·15 = 450, far from
//!   the i16 saturation point — then widen pair sums to i32. The `+8`
//!   shift is undone by an exact integer `-8·Σa` column-sum correction.
//! * **i8** (5–8-bit weights): codes ship as i16 pairs in a `u32`; `madd`
//!   (x86) / `smull`+pairwise-add (NEON) forms i32 pair sums directly —
//!   each product is bounded by 128·255, so the i32 pair sum is exact.
//!
//! Pack time guarantees the whole shifted reduction and the column sums
//! fit i32 with ×2 slack (`PackedGemm::fused`, mirroring the 2^24 f32
//! bound; DESIGN.md §6g) — so the fused accumulator equals the tier
//! accumulator as a mathematical integer, and results stay bit-identical.
//!
//! # Bit-identity contract
//!
//! The SIMD kernels produce **bit-identical** output to the scalar ones
//! for every tier × bit-width × quantizer × batch size × thread count:
//!
//! * the i32/i64 kernels are integer arithmetic, which is associative and
//!   commutative — lane order and write-back interleaving cannot change
//!   the final sums;
//! * the f32 kernels only ever see integer-valued lanes whose every
//!   partial sum is bounded below 2^24 (the pack-time tier selection in
//!   [`crate::pack`] guarantees the bound over the *whole* reduction, so
//!   every prefix in any association order is an exactly representable
//!   integer) — reassociating exact arithmetic is lossless;
//! * `decode_row` is elementwise (no reduction at all).
//!
//! The contract is pinned by the kernel-level parity tests below and by
//! `tests/simd_parity.rs`, which runs whole-model forwards under both
//! backends.
//!
//! # Safety
//!
//! This module is the only place in the workspace containing `unsafe`
//! code, and all of it is confined to the [`avx2`] submodule behind safe
//! wrappers. Two invariants carry every `unsafe` block:
//!
//! 1. **ISA availability**: the AVX2 table is only reachable after
//!    `is_x86_feature_detected!("avx2")` succeeded (dispatch default) or
//!    after [`with_simd_backend`] asserted availability — so executing
//!    AVX2 instructions is valid on this CPU.
//! 2. **In-bounds access**: every vector load/store takes its pointer
//!    from a bounds-checked subslice of exactly the lanes it touches, so
//!    the unsafe surface is the intrinsic call itself, never the
//!    addressing. Slice-shape contracts (`acts.len() == wrow.len() *
//!    acc.len()`) are debug-asserted at the wrapper boundary.

use crate::Storage;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// A kernel backend the dispatch table can route to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdBackend {
    /// Portable scalar Rust (the baseline every target can run).
    Scalar,
    /// 256-bit AVX2 integer/float kernels (x86-64 with runtime support).
    Avx2,
    /// 128-bit NEON/ASIMD kernels (baseline on aarch64).
    Neon,
}

impl SimdBackend {
    /// The knob spelling of this backend (`INSTANTNET_SIMD` value).
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Scalar => "scalar",
            SimdBackend::Avx2 => "avx2",
            SimdBackend::Neon => "neon",
        }
    }
}

/// The hot-kernel function table one backend provides. One static per
/// backend; [`kernels`] picks which one the engine routes through.
pub(crate) struct Kernels {
    pub(crate) backend: SimdBackend,
    /// `acc[j] += Σ_p wrow[p] · acts[p · acc.len() + j]` in i32.
    pub(crate) accumulate_i32: fn(&mut [i32], &[i32], &[i32]),
    /// The i64-accumulator variant (12/16-bit layers).
    pub(crate) accumulate_i64: fn(&mut [i64], &[i32], &[i32]),
    /// The exact-f32-lane variant (≤ 8-bit layers).
    pub(crate) accumulate_f32: fn(&mut [f32], &[f32], &[f32]),
    /// Decodes one packed weight row into i32 codes.
    pub(crate) decode_row_i32: fn(&Storage, usize, usize, &mut [i32]),
    /// Decodes one packed weight row into exact f32 lanes.
    pub(crate) decode_row_f32: fn(&Storage, usize, usize, &mut [f32]),
    /// Fused nibble GEMM: `acc[j] += Σ_q Σ_k byte_k(w[q]) · block[(q·ncols
    /// + j)·4 + k]` over shifted `w + 8` bytes and an interleaved i8 block
    /// (`None`: backend multiplies on decoded codes only).
    pub(crate) gemm_nibble: Option<FusedKernel<i8>>,
    /// Fused i8 GEMM: same contract over i16 weight pairs and an
    /// interleaved i16 block, no shift.
    pub(crate) gemm_i8: Option<FusedKernel<i16>>,
}

/// A fused GEMM kernel: `(acc, packed weight words, interleaved activation
/// block, ncols)`.
pub(crate) type FusedKernel<L> = fn(&mut [i32], &[u32], &[L], usize);

static SCALAR: Kernels = Kernels {
    backend: SimdBackend::Scalar,
    accumulate_i32: crate::exec::accumulate_i32_scalar,
    accumulate_i64: crate::exec::accumulate_i64_scalar,
    accumulate_f32: crate::exec::accumulate_f32_scalar,
    decode_row_i32: Storage::decode_row_scalar,
    decode_row_f32: Storage::decode_row_f32_scalar,
    // The scalar backend stays the pure decode-then-multiply reference the
    // parity suite measures everything against.
    gemm_nibble: None,
    gemm_i8: None,
};

#[cfg(target_arch = "x86_64")]
static AVX2: Kernels = Kernels {
    backend: SimdBackend::Avx2,
    accumulate_i32: avx2::accumulate_i32,
    accumulate_i64: avx2::accumulate_i64,
    accumulate_f32: avx2::accumulate_f32,
    decode_row_i32: avx2::decode_row_i32,
    decode_row_f32: avx2::decode_row_f32,
    gemm_nibble: Some(avx2::gemm_nibble),
    gemm_i8: Some(avx2::gemm_i8),
};

#[cfg(target_arch = "aarch64")]
static NEON: Kernels = Kernels {
    backend: SimdBackend::Neon,
    accumulate_i32: neon::accumulate_i32,
    accumulate_i64: neon::accumulate_i64,
    accumulate_f32: neon::accumulate_f32,
    // Decode is elementwise and cold next to the reductions (the fused
    // paths never decode at all), so NEON keeps the scalar decoders.
    decode_row_i32: Storage::decode_row_scalar,
    decode_row_f32: Storage::decode_row_f32_scalar,
    gemm_nibble: Some(neon::gemm_nibble),
    gemm_i8: Some(neon::gemm_i8),
};

fn table(backend: SimdBackend) -> &'static Kernels {
    match backend {
        SimdBackend::Scalar => &SCALAR,
        #[cfg(target_arch = "x86_64")]
        SimdBackend::Avx2 => &AVX2,
        #[cfg(target_arch = "aarch64")]
        SimdBackend::Neon => &NEON,
        // `resolve` never yields an unavailable backend and
        // `with_simd_backend` asserts availability, so these arms are
        // unreachable in practice.
        #[cfg(not(target_arch = "x86_64"))]
        SimdBackend::Avx2 => &SCALAR,
        #[cfg(not(target_arch = "aarch64"))]
        SimdBackend::Neon => &SCALAR,
    }
}

/// Whether this CPU can run the AVX2 backend (always false off x86-64).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether this CPU can run the NEON backend (ASIMD is baseline on
/// aarch64, so this is a compile-time fact; always false elsewhere).
pub fn neon_available() -> bool {
    cfg!(target_arch = "aarch64")
}

/// Pure resolution of (env override, detected AVX2/NEON) → backend, split
/// out so the knob semantics are unit-testable without process-global
/// state. An explicit backend request still needs the CPU to support it;
/// degrade to detection instead of faulting on the first kernel.
fn resolve(env: Option<&str>, avx2: bool, neon: bool) -> SimdBackend {
    let detected = if avx2 {
        SimdBackend::Avx2
    } else if neon {
        SimdBackend::Neon
    } else {
        SimdBackend::Scalar
    };
    match env.map(str::trim) {
        Some(v) if v.eq_ignore_ascii_case("scalar") => SimdBackend::Scalar,
        Some(v) if v.eq_ignore_ascii_case("avx2") && avx2 => SimdBackend::Avx2,
        Some(v) if v.eq_ignore_ascii_case("neon") && neon => SimdBackend::Neon,
        // Unset, "auto", an unavailable request, or garbage: detect.
        _ => detected,
    }
}

/// Forced-backend override (0 = none, else `SimdBackend` discriminant+1):
/// process-global so worker threads spawned inside parallel regions see
/// the same backend as the caller that forced it.
static FORCED: AtomicU8 = AtomicU8::new(0);
static FORCE_LOCK: Mutex<()> = Mutex::new(());

fn default_kernels() -> &'static Kernels {
    static DEFAULT: OnceLock<&'static Kernels> = OnceLock::new();
    DEFAULT.get_or_init(|| {
        table(resolve(
            std::env::var("INSTANTNET_SIMD").ok().as_deref(),
            avx2_available(),
            neon_available(),
        ))
    })
}

/// The active kernel table: a forced override when one is in effect, else
/// the process default resolved once from `INSTANTNET_SIMD` + detection.
#[inline]
pub(crate) fn kernels() -> &'static Kernels {
    match FORCED.load(Ordering::Relaxed) {
        1 => &SCALAR,
        #[cfg(target_arch = "x86_64")]
        2 => &AVX2,
        #[cfg(target_arch = "aarch64")]
        3 => &NEON,
        _ => default_kernels(),
    }
}

/// The backend the engine currently dispatches to.
pub fn active_simd_backend() -> SimdBackend {
    kernels().backend
}

/// Runs `f` with kernel dispatch forced to `backend`, restoring the
/// previous state afterwards (also on panic).
///
/// The override is **process-global** — it must be, so worker threads
/// inside parallel regions run the same backend — and concurrent callers
/// are serialized on an internal lock (do not nest calls; a nested call
/// deadlocks). Forwards running concurrently *outside* the closure may
/// observe the override, which is safe because both backends are
/// bit-identical; only performance differs. Intended for parity tests and
/// scalar-vs-SIMD benches.
///
/// # Panics
///
/// Panics if `backend` is [`SimdBackend::Avx2`] / [`SimdBackend::Neon`]
/// on a CPU that cannot run it (callers gate on [`avx2_available`] /
/// [`neon_available`]).
pub fn with_simd_backend<T>(backend: SimdBackend, f: impl FnOnce() -> T) -> T {
    let available = match backend {
        SimdBackend::Scalar => true,
        SimdBackend::Avx2 => avx2_available(),
        SimdBackend::Neon => neon_available(),
    };
    assert!(
        available,
        "{} backend forced but this CPU cannot run it",
        backend.name()
    );
    let _serialize = FORCE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED.store(self.0, Ordering::SeqCst);
        }
    }
    let code = match backend {
        SimdBackend::Scalar => 1,
        SimdBackend::Avx2 => 2,
        SimdBackend::Neon => 3,
    };
    let _restore = Restore(FORCED.swap(code, Ordering::SeqCst));
    f()
}

/// Fused-GEMM override (0 = none, 1 = forced off, 2 = forced on) with its
/// own serialization lock — separate from `FORCE_LOCK` so a fused toggle
/// can nest inside [`with_simd_backend`] (the parity tests and the
/// fused-vs-widen benches do exactly that).
static FUSED_FORCED: AtomicU8 = AtomicU8::new(0);
static FUSED_LOCK: Mutex<()> = Mutex::new(());

fn fused_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        !std::env::var("INSTANTNET_FUSED").is_ok_and(|v| {
            let v = v.trim();
            v.eq_ignore_ascii_case("0")
                || v.eq_ignore_ascii_case("off")
                || v.eq_ignore_ascii_case("false")
        })
    })
}

/// Whether eligible layers (`PackedGemm::fused` + a backend that provides
/// fused kernels) route through the fused ≤ 8-bit GEMM paths. On by
/// default; `INSTANTNET_FUSED=0|off|false` disables it process-wide, and
/// [`with_fused_gemm`] overrides it for a scope. Both routes compute
/// bit-identical results — only speed differs.
pub fn fused_gemm_enabled() -> bool {
    match FUSED_FORCED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => fused_default(),
    }
}

/// Runs `f` with the fused ≤ 8-bit GEMM paths forced on or off, restoring
/// the previous state afterwards (also on panic). Process-global and
/// serialized like [`with_simd_backend`], on an independent lock so the
/// two scopes nest in either order (do not nest `with_fused_gemm` inside
/// itself; that deadlocks).
pub fn with_fused_gemm<T>(enabled: bool, f: impl FnOnce() -> T) -> T {
    let _serialize = FUSED_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            FUSED_FORCED.store(self.0, Ordering::SeqCst);
        }
    }
    let _restore = Restore(FUSED_FORCED.swap(if enabled { 2 } else { 1 }, Ordering::SeqCst));
    f()
}

// ---------------------------------------------------------------------------
// Fused-kernel scalar reference (shared ragged-column tail of the AVX2 and
// NEON fused kernels, and the oracle the kernel-level parity tests check
// them against — call with `start = 0` for the full reduction)
// ---------------------------------------------------------------------------

/// `acc[j] += Σ_q Σ_k byte_k(wquads[q]) · block[(q·ncols + j)·4 + k]` for
/// columns `start..`, over the interleaved fused-nibble layout (weight
/// bytes are unsigned `w + 8` codes).
#[cfg_attr(
    not(any(target_arch = "x86_64", target_arch = "aarch64")),
    allow(dead_code)
)]
fn gemm_nibble_ref(acc: &mut [i32], wquads: &[u32], block: &[i8], ncols: usize, start: usize) {
    for (j, a) in acc.iter_mut().enumerate().skip(start) {
        let mut sum = 0i32;
        for (q, &wq) in wquads.iter().enumerate() {
            let lanes = &block[(q * ncols + j) * 4..(q * ncols + j) * 4 + 4];
            for (k, &v) in lanes.iter().enumerate() {
                sum += (((wq >> (8 * k)) & 0xFF) as i32) * i32::from(v);
            }
        }
        *a += sum;
    }
}

/// The fused-i8 counterpart: signed i16 weight pairs against an
/// interleaved i16 block.
#[cfg_attr(
    not(any(target_arch = "x86_64", target_arch = "aarch64")),
    allow(dead_code)
)]
fn gemm_i8_ref(acc: &mut [i32], wpairs: &[u32], block: &[i16], ncols: usize, start: usize) {
    for (j, a) in acc.iter_mut().enumerate().skip(start) {
        let mut sum = 0i32;
        for (q, &wp) in wpairs.iter().enumerate() {
            let w0 = (wp & 0xFFFF) as u16 as i16;
            let w1 = (wp >> 16) as u16 as i16;
            let base = (q * ncols + j) * 2;
            sum +=
                i32::from(w0) * i32::from(block[base]) + i32::from(w1) * i32::from(block[base + 1]);
        }
        *a += sum;
    }
}

// ---------------------------------------------------------------------------
// AVX2 kernels (x86-64 only; every `unsafe` in the crate lives here and in
// the NEON module below)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    // `loadu`/`storeu` intrinsics have no alignment requirement, so the
    // `*const i32 → *const __m256i` pointer casts below are sound; the
    // lint assumes the target type's alignment matters.
    #![allow(clippy::cast_ptr_alignment)]

    use crate::Storage;
    use core::arch::x86_64::{
        __m128i, __m256, __m256i, _mm256_add_epi32, _mm256_add_epi64, _mm256_add_ps,
        _mm256_cvtepi16_epi32, _mm256_cvtepi32_ps, _mm256_cvtepi8_epi32, _mm256_cvtepu8_epi32,
        _mm256_loadu_ps, _mm256_loadu_si256, _mm256_madd_epi16, _mm256_maddubs_epi16,
        _mm256_mul_epi32, _mm256_mul_ps, _mm256_mullo_epi32, _mm256_permute2x128_si256,
        _mm256_set1_epi16, _mm256_set1_epi32, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_setzero_si256, _mm256_shuffle_epi32, _mm256_slli_epi32, _mm256_srai_epi32,
        _mm256_storeu_ps, _mm256_storeu_si256, _mm256_unpackhi_epi32, _mm256_unpackhi_epi64,
        _mm256_unpacklo_epi32, _mm256_unpacklo_epi64, _mm_loadl_epi64, _mm_loadu_si128,
    };

    /// i32/f32 lanes per 256-bit register.
    const L: usize = 8;

    // --- safe wrappers: the only entry points into this module. Each
    // checks the slice-shape contract, then defers to a
    // `#[target_feature(enable = "avx2")]` kernel. ---

    pub(super) fn accumulate_i32(acc: &mut [i32], wrow: &[i32], acts: &[i32]) {
        debug_assert_eq!(
            acts.len(),
            wrow.len() * acc.len(),
            "acts must be [rows, ncols]"
        );
        // SAFETY: reachable only through the AVX2 dispatch table, which is
        // installed strictly after `is_x86_feature_detected!("avx2")`.
        unsafe { accumulate_i32_kernel(acc, wrow, acts) }
    }

    pub(super) fn accumulate_i64(acc: &mut [i64], wrow: &[i32], acts: &[i32]) {
        debug_assert_eq!(
            acts.len(),
            wrow.len() * acc.len(),
            "acts must be [rows, ncols]"
        );
        // SAFETY: as in `accumulate_i32`.
        unsafe { accumulate_i64_kernel(acc, wrow, acts) }
    }

    pub(super) fn accumulate_f32(acc: &mut [f32], wrow: &[f32], acts: &[f32]) {
        debug_assert_eq!(
            acts.len(),
            wrow.len() * acc.len(),
            "acts must be [rows, ncols]"
        );
        // SAFETY: as in `accumulate_i32`.
        unsafe { accumulate_f32_kernel(acc, wrow, acts) }
    }

    pub(super) fn gemm_nibble(acc: &mut [i32], wquads: &[u32], block: &[i8], ncols: usize) {
        debug_assert_eq!(acc.len(), ncols);
        debug_assert_eq!(
            block.len(),
            wquads.len() * 4 * ncols,
            "block must be the interleaved [quads × 4, ncols] layout"
        );
        // SAFETY: as in `accumulate_i32`.
        unsafe { gemm_nibble_kernel(acc, wquads, block, ncols) }
    }

    pub(super) fn gemm_i8(acc: &mut [i32], wpairs: &[u32], block: &[i16], ncols: usize) {
        debug_assert_eq!(acc.len(), ncols);
        debug_assert_eq!(
            block.len(),
            wpairs.len() * 2 * ncols,
            "block must be the interleaved [pairs × 2, ncols] layout"
        );
        // SAFETY: as in `accumulate_i32`.
        unsafe { gemm_i8_kernel(acc, wpairs, block, ncols) }
    }

    pub(super) fn decode_row_i32(storage: &Storage, row: usize, cols: usize, out: &mut [i32]) {
        let out = &mut out[..cols];
        match storage {
            Storage::Nibble(data) => {
                let stride = cols.div_ceil(2);
                // SAFETY: AVX2 detected (dispatch invariant); the row slice
                // is bounds-checked here.
                unsafe { decode_nibble_i32_kernel(&data[row * stride..(row + 1) * stride], out) }
            }
            // SAFETY (both arms): as above.
            Storage::I8(data) => unsafe {
                decode_i8_i32_kernel(&data[row * cols..(row + 1) * cols], out)
            },
            Storage::I16(data) => unsafe {
                decode_i16_i32_kernel(&data[row * cols..(row + 1) * cols], out)
            },
            Storage::F32(_) => panic!("decode_row on f32 storage"),
        }
    }

    pub(super) fn decode_row_f32(storage: &Storage, row: usize, cols: usize, out: &mut [f32]) {
        let out = &mut out[..cols];
        match storage {
            Storage::Nibble(data) => {
                let stride = cols.div_ceil(2);
                // SAFETY: as in `decode_row_i32`.
                unsafe { decode_nibble_f32_kernel(&data[row * stride..(row + 1) * stride], out) }
            }
            // SAFETY (both arms): as in `decode_row_i32`.
            Storage::I8(data) => unsafe {
                decode_i8_f32_kernel(&data[row * cols..(row + 1) * cols], out)
            },
            Storage::I16(data) => unsafe {
                decode_i16_f32_kernel(&data[row * cols..(row + 1) * cols], out)
            },
            Storage::F32(_) => panic!("decode_row_f32 on f32 storage"),
        }
    }

    // --- bounds-checked load/store helpers: each takes its pointer from a
    // subslice of exactly the lanes it touches, so addressing is proven by
    // the slice check and only the intrinsic call itself is unsafe. ---

    #[target_feature(enable = "avx2")]
    fn load_i32(s: &[i32], at: usize) -> __m256i {
        let lane = &s[at..at + L];
        // SAFETY: 8 readable i32 lanes per the slice above; unaligned load.
        unsafe { _mm256_loadu_si256(lane.as_ptr().cast()) }
    }

    #[target_feature(enable = "avx2")]
    fn store_i32(s: &mut [i32], at: usize, v: __m256i) {
        let lane = &mut s[at..at + L];
        // SAFETY: 8 writable i32 lanes per the slice above; unaligned store.
        unsafe { _mm256_storeu_si256(lane.as_mut_ptr().cast(), v) }
    }

    #[target_feature(enable = "avx2")]
    fn add_store_i32(acc: &mut [i32], at: usize, v: __m256i) {
        let sum = _mm256_add_epi32(load_i32(acc, at), v);
        store_i32(acc, at, sum);
    }

    #[target_feature(enable = "avx2")]
    fn load_i64(s: &[i64], at: usize) -> __m256i {
        let lane = &s[at..at + 4];
        // SAFETY: 4 readable i64 lanes per the slice above; unaligned load.
        unsafe { _mm256_loadu_si256(lane.as_ptr().cast()) }
    }

    #[target_feature(enable = "avx2")]
    fn add_store_i64(acc: &mut [i64], at: usize, v: __m256i) {
        let sum = _mm256_add_epi64(load_i64(acc, at), v);
        let lane = &mut acc[at..at + 4];
        // SAFETY: 4 writable i64 lanes per the slice above; unaligned store.
        unsafe { _mm256_storeu_si256(lane.as_mut_ptr().cast(), sum) }
    }

    #[target_feature(enable = "avx2")]
    fn load_f32(s: &[f32], at: usize) -> __m256 {
        let lane = &s[at..at + L];
        // SAFETY: 8 readable f32 lanes per the slice above; unaligned load.
        unsafe { _mm256_loadu_ps(lane.as_ptr()) }
    }

    #[target_feature(enable = "avx2")]
    fn add_store_f32(acc: &mut [f32], at: usize, v: __m256) {
        let sum = _mm256_add_ps(load_f32(acc, at), v);
        let lane = &mut acc[at..at + L];
        // SAFETY: 8 writable f32 lanes per the slice above; unaligned store.
        unsafe { _mm256_storeu_ps(lane.as_mut_ptr(), sum) }
    }

    /// Loads 8 bytes into the low half of an xmm register.
    #[target_feature(enable = "avx2")]
    fn load_8_bytes(s: &[u8], at: usize) -> __m128i {
        let lane = &s[at..at + 8];
        // SAFETY: 8 readable bytes per the slice above; unaligned load.
        unsafe { _mm_loadl_epi64(lane.as_ptr().cast()) }
    }

    /// Loads 32 i8 lanes (4 interleaved lanes × 8 columns).
    #[target_feature(enable = "avx2")]
    fn load_i8_32(s: &[i8], at: usize) -> __m256i {
        let lane = &s[at..at + 32];
        // SAFETY: 32 readable bytes per the slice above; unaligned load.
        unsafe { _mm256_loadu_si256(lane.as_ptr().cast()) }
    }

    /// Loads 16 i16 lanes (2 interleaved lanes × 8 columns).
    #[target_feature(enable = "avx2")]
    fn load_i16_16(s: &[i16], at: usize) -> __m256i {
        let lane = &s[at..at + 16];
        // SAFETY: 16 readable i16 lanes per the slice above; unaligned load.
        unsafe { _mm256_loadu_si256(lane.as_ptr().cast()) }
    }

    // --- accumulate kernels ---

    /// i32 column reduction, two registers (16 columns) per block so the
    /// integer pipes have independent chains to fill.
    #[target_feature(enable = "avx2")]
    fn accumulate_i32_kernel(acc: &mut [i32], wrow: &[i32], acts: &[i32]) {
        let ncols = acc.len();
        let mut j = 0usize;
        while j + 2 * L <= ncols {
            let mut s0 = _mm256_setzero_si256();
            let mut s1 = _mm256_setzero_si256();
            let mut base = j;
            for &wv in wrow {
                let w = _mm256_set1_epi32(wv);
                s0 = _mm256_add_epi32(s0, _mm256_mullo_epi32(w, load_i32(acts, base)));
                s1 = _mm256_add_epi32(s1, _mm256_mullo_epi32(w, load_i32(acts, base + L)));
                base += ncols;
            }
            add_store_i32(acc, j, s0);
            add_store_i32(acc, j + L, s1);
            j += 2 * L;
        }
        while j + L <= ncols {
            let mut s = _mm256_setzero_si256();
            let mut base = j;
            for &wv in wrow {
                s = _mm256_add_epi32(
                    s,
                    _mm256_mullo_epi32(_mm256_set1_epi32(wv), load_i32(acts, base)),
                );
                base += ncols;
            }
            add_store_i32(acc, j, s);
            j += L;
        }
        crate::exec::accumulate_col_tail(acc, wrow, acts, j, |l, w, a| l + w * a);
    }

    /// i64 column reduction. AVX2 has no 64×64 multiply, but
    /// `_mm256_mul_epi32` sign-extends the low dword of each qword into a
    /// full 64-bit product — exactly the i32×i32→i64 widening MAC the i64
    /// tier needs. Even columns multiply in place; odd columns are
    /// shuffled into the low-dword slots first, and the two qword
    /// accumulators are re-interleaved on write-back. Integer addition is
    /// order-free, so the split cannot change the sums.
    #[target_feature(enable = "avx2")]
    fn accumulate_i64_kernel(acc: &mut [i64], wrow: &[i32], acts: &[i32]) {
        let ncols = acc.len();
        let mut j = 0usize;
        while j + L <= ncols {
            let mut even = _mm256_setzero_si256(); // columns j, j+2, j+4, j+6
            let mut odd = _mm256_setzero_si256(); // columns j+1, j+3, j+5, j+7
            let mut base = j;
            for &wv in wrow {
                let w = _mm256_set1_epi32(wv);
                let a = load_i32(acts, base);
                even = _mm256_add_epi64(even, _mm256_mul_epi32(w, a));
                // 0xF5 copies dwords {1,3} of each 128-bit lane into the
                // qword low-dword slots {0,2}.
                odd = _mm256_add_epi64(odd, _mm256_mul_epi32(w, _mm256_shuffle_epi32::<0xF5>(a)));
                base += ncols;
            }
            let lo = _mm256_unpacklo_epi64(even, odd); // j, j+1 | j+4, j+5
            let hi = _mm256_unpackhi_epi64(even, odd); // j+2, j+3 | j+6, j+7
            add_store_i64(acc, j, _mm256_permute2x128_si256::<0x20>(lo, hi));
            add_store_i64(acc, j + 4, _mm256_permute2x128_si256::<0x31>(lo, hi));
            j += L;
        }
        crate::exec::accumulate_col_tail(acc, wrow, acts, j, |l, w, a| {
            l + i64::from(w) * i64::from(a)
        });
    }

    /// Exact-f32 column reduction (lanes are small integers; every partial
    /// sum stays below 2^24, so mul+add here is lossless and bit-identical
    /// to the scalar order). No FMA on purpose: `avx2` detection does not
    /// imply `fma`, and exactness makes fusion pointless.
    #[target_feature(enable = "avx2")]
    fn accumulate_f32_kernel(acc: &mut [f32], wrow: &[f32], acts: &[f32]) {
        let ncols = acc.len();
        let mut j = 0usize;
        while j + 2 * L <= ncols {
            let mut s0 = _mm256_setzero_ps();
            let mut s1 = _mm256_setzero_ps();
            let mut base = j;
            for &wv in wrow {
                let w = _mm256_set1_ps(wv);
                s0 = _mm256_add_ps(s0, _mm256_mul_ps(w, load_f32(acts, base)));
                s1 = _mm256_add_ps(s1, _mm256_mul_ps(w, load_f32(acts, base + L)));
                base += ncols;
            }
            add_store_f32(acc, j, s0);
            add_store_f32(acc, j + L, s1);
            j += 2 * L;
        }
        while j + L <= ncols {
            let mut s = _mm256_setzero_ps();
            let mut base = j;
            for &wv in wrow {
                s = _mm256_add_ps(s, _mm256_mul_ps(_mm256_set1_ps(wv), load_f32(acts, base)));
                base += ncols;
            }
            add_store_f32(acc, j, s);
            j += L;
        }
        crate::exec::accumulate_col_tail(acc, wrow, acts, j, |l, w, a| l + w * a);
    }

    // --- fused GEMM kernels (multiply on packed codes) ---

    /// Fused nibble GEMM: each `u32` carries four `w + 8 ∈ [0, 15]`
    /// unsigned weight bytes, broadcast to all 8 dwords of a register;
    /// `maddubs` multiplies them against 4-lane-interleaved i8 activations
    /// (one dword per column) into i16 pairs — |pair| ≤ 2·15·15 = 450,
    /// nowhere near the instruction's i16 saturation — and `madd` against
    /// ones widens pair sums to one i32 quad-sum per column. The caller
    /// subtracts `8·colsum` to undo the shift. Two accumulator registers
    /// (16 columns) per block keep independent dependency chains.
    #[target_feature(enable = "avx2")]
    fn gemm_nibble_kernel(acc: &mut [i32], wquads: &[u32], block: &[i8], ncols: usize) {
        let ones = _mm256_set1_epi16(1);
        let mut j = 0usize;
        while j + 2 * L <= ncols {
            let mut s0 = _mm256_setzero_si256();
            let mut s1 = _mm256_setzero_si256();
            for (q, &wq) in wquads.iter().enumerate() {
                let w = _mm256_set1_epi32(wq as i32);
                let base = (q * ncols + j) * 4;
                let a0 = load_i8_32(block, base);
                let a1 = load_i8_32(block, base + 4 * L);
                s0 = _mm256_add_epi32(s0, _mm256_madd_epi16(_mm256_maddubs_epi16(w, a0), ones));
                s1 = _mm256_add_epi32(s1, _mm256_madd_epi16(_mm256_maddubs_epi16(w, a1), ones));
            }
            add_store_i32(acc, j, s0);
            add_store_i32(acc, j + L, s1);
            j += 2 * L;
        }
        while j + L <= ncols {
            let mut s = _mm256_setzero_si256();
            for (q, &wq) in wquads.iter().enumerate() {
                let w = _mm256_set1_epi32(wq as i32);
                let a = load_i8_32(block, (q * ncols + j) * 4);
                s = _mm256_add_epi32(s, _mm256_madd_epi16(_mm256_maddubs_epi16(w, a), ones));
            }
            add_store_i32(acc, j, s);
            j += L;
        }
        super::gemm_nibble_ref(acc, wquads, block, ncols, j);
    }

    /// Fused i8 GEMM: each `u32` carries two signed i16 weight codes,
    /// broadcast to all dwords; `madd` multiplies them against
    /// pair-interleaved i16 activations into exact i32 pair sums (each
    /// product ≤ 128·255, so the pair sum cannot overflow — `madd`'s only
    /// wrap case needs both products at (−2^15)²). No shift, so no
    /// correction.
    #[target_feature(enable = "avx2")]
    fn gemm_i8_kernel(acc: &mut [i32], wpairs: &[u32], block: &[i16], ncols: usize) {
        let mut j = 0usize;
        while j + 2 * L <= ncols {
            let mut s0 = _mm256_setzero_si256();
            let mut s1 = _mm256_setzero_si256();
            for (q, &wp) in wpairs.iter().enumerate() {
                let w = _mm256_set1_epi32(wp as i32);
                let base = (q * ncols + j) * 2;
                s0 = _mm256_add_epi32(s0, _mm256_madd_epi16(w, load_i16_16(block, base)));
                s1 = _mm256_add_epi32(s1, _mm256_madd_epi16(w, load_i16_16(block, base + 2 * L)));
            }
            add_store_i32(acc, j, s0);
            add_store_i32(acc, j + L, s1);
            j += 2 * L;
        }
        while j + L <= ncols {
            let mut s = _mm256_setzero_si256();
            for (q, &wp) in wpairs.iter().enumerate() {
                let w = _mm256_set1_epi32(wp as i32);
                s = _mm256_add_epi32(
                    s,
                    _mm256_madd_epi16(w, load_i16_16(block, (q * ncols + j) * 2)),
                );
            }
            add_store_i32(acc, j, s);
            j += L;
        }
        super::gemm_i8_ref(acc, wpairs, block, ncols, j);
    }

    // --- decode kernels ---

    /// Sign-extends the two nibbles of each of 8 bytes into 16 i32 codes:
    /// widen bytes to dwords, shift-extract both nibbles, interleave
    /// (low nibble first — the pack order in `crate::pack`).
    #[target_feature(enable = "avx2")]
    fn decode_nibble_pair(bytes: __m128i) -> (__m256i, __m256i) {
        let v = _mm256_cvtepu8_epi32(bytes);
        let lo = _mm256_srai_epi32::<28>(_mm256_slli_epi32::<28>(v));
        let hi = _mm256_srai_epi32::<28>(_mm256_slli_epi32::<24>(v));
        let il = _mm256_unpacklo_epi32(lo, hi); // L0 H0 L1 H1 | L4 H4 L5 H5
        let ih = _mm256_unpackhi_epi32(lo, hi); // L2 H2 L3 H3 | L6 H6 L7 H7
        (
            _mm256_permute2x128_si256::<0x20>(il, ih), // codes 0..8
            _mm256_permute2x128_si256::<0x31>(il, ih), // codes 8..16
        )
    }

    #[target_feature(enable = "avx2")]
    fn decode_nibble_i32_kernel(row_bytes: &[u8], out: &mut [i32]) {
        let cols = out.len();
        let (mut j, mut b) = (0usize, 0usize);
        while j + 2 * L <= cols {
            let (first, second) = decode_nibble_pair(load_8_bytes(row_bytes, b));
            store_i32(out, j, first);
            store_i32(out, j + L, second);
            j += 2 * L;
            b += L;
        }
        decode_nibble_tail(row_bytes, b, out, j);
    }

    #[target_feature(enable = "avx2")]
    fn decode_nibble_f32_kernel(row_bytes: &[u8], out: &mut [f32]) {
        let cols = out.len();
        let (mut j, mut b) = (0usize, 0usize);
        while j + 2 * L <= cols {
            let (first, second) = decode_nibble_pair(load_8_bytes(row_bytes, b));
            store_f32_from_i32(out, j, first);
            store_f32_from_i32(out, j + L, second);
            j += 2 * L;
            b += L;
        }
        let mut tail = [0i32; 2 * L];
        let n = cols - j;
        decode_nibble_tail(row_bytes, b, &mut tail[..n], 0);
        for (o, &c) in out[j..].iter_mut().zip(&tail[..n]) {
            *o = c as f32;
        }
    }

    /// Scalar nibble tail, identical to `Storage::decode_row_scalar`'s
    /// per-byte decode (low nibble first, high nibble dropped past `cols`).
    fn decode_nibble_tail(row_bytes: &[u8], mut b: usize, out: &mut [i32], mut j: usize) {
        let cols = out.len();
        while j < cols {
            let byte = row_bytes[b] as i8;
            out[j] = i32::from((byte << 4) >> 4);
            if let Some(o) = out.get_mut(j + 1) {
                *o = i32::from(byte >> 4);
            }
            j += 2;
            b += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    fn store_f32_from_i32(s: &mut [f32], at: usize, v: __m256i) {
        let lane = &mut s[at..at + L];
        // SAFETY: 8 writable f32 lanes per the slice above; unaligned store.
        unsafe { _mm256_storeu_ps(lane.as_mut_ptr(), _mm256_cvtepi32_ps(v)) }
    }

    #[target_feature(enable = "avx2")]
    fn decode_i8_i32_kernel(codes: &[i8], out: &mut [i32]) {
        let cols = out.len();
        let mut j = 0usize;
        while j + L <= cols {
            let lane = &codes[j..j + L];
            // SAFETY: 8 readable bytes per the slice above; unaligned load.
            let bytes = unsafe { _mm_loadl_epi64(lane.as_ptr().cast()) };
            store_i32(out, j, _mm256_cvtepi8_epi32(bytes));
            j += L;
        }
        for (o, &c) in out[j..].iter_mut().zip(&codes[j..]) {
            *o = i32::from(c);
        }
    }

    #[target_feature(enable = "avx2")]
    fn decode_i8_f32_kernel(codes: &[i8], out: &mut [f32]) {
        let cols = out.len();
        let mut j = 0usize;
        while j + L <= cols {
            let lane = &codes[j..j + L];
            // SAFETY: 8 readable bytes per the slice above; unaligned load.
            let bytes = unsafe { _mm_loadl_epi64(lane.as_ptr().cast()) };
            store_f32_from_i32(out, j, _mm256_cvtepi8_epi32(bytes));
            j += L;
        }
        for (o, &c) in out[j..].iter_mut().zip(&codes[j..]) {
            *o = f32::from(c);
        }
    }

    #[target_feature(enable = "avx2")]
    fn decode_i16_i32_kernel(codes: &[i16], out: &mut [i32]) {
        let cols = out.len();
        let mut j = 0usize;
        while j + L <= cols {
            let lane = &codes[j..j + L];
            // SAFETY: 8 readable i16 lanes per the slice above; unaligned load.
            let words = unsafe { _mm_loadu_si128(lane.as_ptr().cast()) };
            store_i32(out, j, _mm256_cvtepi16_epi32(words));
            j += L;
        }
        for (o, &c) in out[j..].iter_mut().zip(&codes[j..]) {
            *o = i32::from(c);
        }
    }

    #[target_feature(enable = "avx2")]
    fn decode_i16_f32_kernel(codes: &[i16], out: &mut [f32]) {
        let cols = out.len();
        let mut j = 0usize;
        while j + L <= cols {
            let lane = &codes[j..j + L];
            // SAFETY: 8 readable i16 lanes per the slice above; unaligned load.
            let words = unsafe { _mm_loadu_si128(lane.as_ptr().cast()) };
            store_f32_from_i32(out, j, _mm256_cvtepi16_epi32(words));
            j += L;
        }
        for (o, &c) in out[j..].iter_mut().zip(&codes[j..]) {
            *o = f32::from(c);
        }
    }
}

// ---------------------------------------------------------------------------
// NEON kernels (aarch64 only; ASIMD is baseline there, so no runtime probe)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    //! AArch64 ports of the AVX2 kernels: 128-bit registers, with the
    //! widening multiplies built on the `smull`/`smlal` instruction family
    //! (`vmull_*`/`vmlal_*` intrinsics) instead of `maddubs`/`madd`. Same
    //! bit-identity contract: the integer kernels are exact, the f32
    //! kernel reassociates exact sub-2^24 sums (`vmulq`+`vaddq`, no FMA —
    //! mirroring the AVX2 choice), and the fused kernels accumulate the
    //! same shifted integers the driver corrects with `-8·colsum`.
    //!
    //! Every `unsafe` block takes its pointers from bounds-checked
    //! subslices, exactly as in the AVX2 module; the value-only intrinsics
    //! are safe to call because NEON is statically enabled on every
    //! aarch64 target (`unused_unsafe` is allowed for toolchains that
    //! still mark them unsafe).
    #![allow(unused_unsafe)]

    use core::arch::aarch64::*;

    /// i32/f32 lanes per 128-bit register.
    const L: usize = 4;

    fn load_i32(s: &[i32], at: usize) -> int32x4_t {
        let lane = &s[at..at + L];
        // SAFETY: 4 readable i32 lanes per the slice above.
        unsafe { vld1q_s32(lane.as_ptr()) }
    }

    fn add_store_i32(acc: &mut [i32], at: usize, v: int32x4_t) {
        let lane = &mut acc[at..at + L];
        // SAFETY: 4 readable+writable i32 lanes per the slice above.
        unsafe { vst1q_s32(lane.as_mut_ptr(), vaddq_s32(vld1q_s32(lane.as_ptr()), v)) }
    }

    fn add_store_i64(acc: &mut [i64], at: usize, v: int64x2_t) {
        let lane = &mut acc[at..at + 2];
        // SAFETY: 2 readable+writable i64 lanes per the slice above.
        unsafe { vst1q_s64(lane.as_mut_ptr(), vaddq_s64(vld1q_s64(lane.as_ptr()), v)) }
    }

    fn load_f32(s: &[f32], at: usize) -> float32x4_t {
        let lane = &s[at..at + L];
        // SAFETY: 4 readable f32 lanes per the slice above.
        unsafe { vld1q_f32(lane.as_ptr()) }
    }

    fn add_store_f32(acc: &mut [f32], at: usize, v: float32x4_t) {
        let lane = &mut acc[at..at + L];
        // SAFETY: 4 readable+writable f32 lanes per the slice above.
        unsafe { vst1q_f32(lane.as_mut_ptr(), vaddq_f32(vld1q_f32(lane.as_ptr()), v)) }
    }

    /// Loads 16 i8 lanes (4 interleaved lanes × 4 columns).
    fn load_i8_16(s: &[i8], at: usize) -> int8x16_t {
        let lane = &s[at..at + 16];
        // SAFETY: 16 readable bytes per the slice above.
        unsafe { vld1q_s8(lane.as_ptr()) }
    }

    /// Loads 8 i16 lanes (2 interleaved lanes × 4 columns).
    fn load_i16_8(s: &[i16], at: usize) -> int16x8_t {
        let lane = &s[at..at + 8];
        // SAFETY: 8 readable i16 lanes per the slice above.
        unsafe { vld1q_s16(lane.as_ptr()) }
    }

    pub(super) fn accumulate_i32(acc: &mut [i32], wrow: &[i32], acts: &[i32]) {
        debug_assert_eq!(
            acts.len(),
            wrow.len() * acc.len(),
            "acts must be [rows, ncols]"
        );
        let ncols = acc.len();
        let mut j = 0usize;
        while j + 2 * L <= ncols {
            // SAFETY: value-only NEON ops; loads/stores bounds-check above.
            unsafe {
                let mut s0 = vdupq_n_s32(0);
                let mut s1 = vdupq_n_s32(0);
                let mut base = j;
                for &wv in wrow {
                    let w = vdupq_n_s32(wv);
                    s0 = vmlaq_s32(s0, w, load_i32(acts, base));
                    s1 = vmlaq_s32(s1, w, load_i32(acts, base + L));
                    base += ncols;
                }
                add_store_i32(acc, j, s0);
                add_store_i32(acc, j + L, s1);
            }
            j += 2 * L;
        }
        while j + L <= ncols {
            // SAFETY: as above.
            unsafe {
                let mut s = vdupq_n_s32(0);
                let mut base = j;
                for &wv in wrow {
                    s = vmlaq_s32(s, vdupq_n_s32(wv), load_i32(acts, base));
                    base += ncols;
                }
                add_store_i32(acc, j, s);
            }
            j += L;
        }
        crate::exec::accumulate_col_tail(acc, wrow, acts, j, |l, w, a| l + w * a);
    }

    pub(super) fn accumulate_i64(acc: &mut [i64], wrow: &[i32], acts: &[i32]) {
        debug_assert_eq!(
            acts.len(),
            wrow.len() * acc.len(),
            "acts must be [rows, ncols]"
        );
        let ncols = acc.len();
        let mut j = 0usize;
        while j + L <= ncols {
            // SAFETY: as in `accumulate_i32`. `smlal`/`smlal2` widen the
            // i32×i32 products to i64 exactly.
            unsafe {
                let mut s0 = vdupq_n_s64(0); // columns j, j+1
                let mut s1 = vdupq_n_s64(0); // columns j+2, j+3
                let mut base = j;
                for &wv in wrow {
                    let w = vdupq_n_s32(wv);
                    let a = load_i32(acts, base);
                    s0 = vmlal_s32(s0, vget_low_s32(w), vget_low_s32(a));
                    s1 = vmlal_high_s32(s1, w, a);
                    base += ncols;
                }
                add_store_i64(acc, j, s0);
                add_store_i64(acc, j + 2, s1);
            }
            j += L;
        }
        crate::exec::accumulate_col_tail(acc, wrow, acts, j, |l, w, a| {
            l + i64::from(w) * i64::from(a)
        });
    }

    pub(super) fn accumulate_f32(acc: &mut [f32], wrow: &[f32], acts: &[f32]) {
        debug_assert_eq!(
            acts.len(),
            wrow.len() * acc.len(),
            "acts must be [rows, ncols]"
        );
        let ncols = acc.len();
        let mut j = 0usize;
        while j + 2 * L <= ncols {
            // SAFETY: as in `accumulate_i32`.
            unsafe {
                let mut s0 = vdupq_n_f32(0.0);
                let mut s1 = vdupq_n_f32(0.0);
                let mut base = j;
                for &wv in wrow {
                    let w = vdupq_n_f32(wv);
                    s0 = vaddq_f32(s0, vmulq_f32(w, load_f32(acts, base)));
                    s1 = vaddq_f32(s1, vmulq_f32(w, load_f32(acts, base + L)));
                    base += ncols;
                }
                add_store_f32(acc, j, s0);
                add_store_f32(acc, j + L, s1);
            }
            j += 2 * L;
        }
        while j + L <= ncols {
            // SAFETY: as above.
            unsafe {
                let mut s = vdupq_n_f32(0.0);
                let mut base = j;
                for &wv in wrow {
                    s = vaddq_f32(s, vmulq_f32(vdupq_n_f32(wv), load_f32(acts, base)));
                    base += ncols;
                }
                add_store_f32(acc, j, s);
            }
            j += L;
        }
        crate::exec::accumulate_col_tail(acc, wrow, acts, j, |l, w, a| l + w * a);
    }

    /// Fused nibble GEMM: the quad of `w + 8 ∈ [0, 15]` bytes fits i8, so
    /// the broadcast word reinterprets as signed lanes value-preservingly;
    /// `smull`/`smull2` widen the i8×i8 products to i16 (each ≤ 15·15),
    /// pairwise add-long lifts them to i32, and one more pairwise add
    /// folds each column's four products into its lane.
    pub(super) fn gemm_nibble(acc: &mut [i32], wquads: &[u32], block: &[i8], ncols: usize) {
        debug_assert_eq!(acc.len(), ncols);
        debug_assert_eq!(
            block.len(),
            wquads.len() * 4 * ncols,
            "block must be the interleaved [quads × 4, ncols] layout"
        );
        let mut j = 0usize;
        while j + L <= ncols {
            // SAFETY: as in `accumulate_i32`.
            unsafe {
                let mut s = vdupq_n_s32(0);
                for (q, &wq) in wquads.iter().enumerate() {
                    let w = vreinterpretq_s8_u32(vdupq_n_u32(wq));
                    let a = load_i8_16(block, (q * ncols + j) * 4);
                    let lo = vpaddlq_s16(vmull_s8(vget_low_s8(a), vget_low_s8(w)));
                    let hi = vpaddlq_s16(vmull_high_s8(a, w));
                    s = vaddq_s32(s, vpaddq_s32(lo, hi));
                }
                add_store_i32(acc, j, s);
            }
            j += L;
        }
        super::gemm_nibble_ref(acc, wquads, block, ncols, j);
    }

    /// Fused i8 GEMM: `smull`/`smull2` widen the i16×i16 products to
    /// exact i32, and a pairwise add folds each column's pair into its
    /// lane — the NEON spelling of `madd`.
    pub(super) fn gemm_i8(acc: &mut [i32], wpairs: &[u32], block: &[i16], ncols: usize) {
        debug_assert_eq!(acc.len(), ncols);
        debug_assert_eq!(
            block.len(),
            wpairs.len() * 2 * ncols,
            "block must be the interleaved [pairs × 2, ncols] layout"
        );
        let mut j = 0usize;
        while j + L <= ncols {
            // SAFETY: as in `accumulate_i32`.
            unsafe {
                let mut s = vdupq_n_s32(0);
                for (q, &wp) in wpairs.iter().enumerate() {
                    let w = vreinterpretq_s16_u32(vdupq_n_u32(wp));
                    let a = load_i16_8(block, (q * ncols + j) * 2);
                    let lo = vmull_s16(vget_low_s16(a), vget_low_s16(w));
                    let hi = vmull_high_s16(a, w);
                    s = vaddq_s32(s, vpaddq_s32(lo, hi));
                }
                add_store_i32(acc, j, s);
            }
            j += L;
        }
        super::gemm_i8_ref(acc, wpairs, block, ncols, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn resolve_knob_semantics() {
        use SimdBackend::{Avx2, Neon, Scalar};
        // scalar always wins, case/space-insensitively.
        assert_eq!(resolve(Some("scalar"), true, false), Scalar);
        assert_eq!(resolve(Some(" SCALAR "), true, true), Scalar);
        assert_eq!(resolve(Some("scalar"), false, false), Scalar);
        // avx2/neon require detection; degrade to detection without it.
        assert_eq!(resolve(Some("avx2"), true, false), Avx2);
        assert_eq!(resolve(Some("AVX2"), false, false), Scalar);
        assert_eq!(resolve(Some("AVX2"), false, true), Neon);
        assert_eq!(resolve(Some("neon"), false, true), Neon);
        assert_eq!(resolve(Some(" NEON "), false, true), Neon);
        assert_eq!(resolve(Some("neon"), true, false), Avx2);
        assert_eq!(resolve(Some("neon"), false, false), Scalar);
        // unset / auto / garbage: detect (avx2 and neon never coexist in
        // practice, but detection prefers avx2 if both flags are set).
        assert_eq!(resolve(None, true, false), Avx2);
        assert_eq!(resolve(None, false, true), Neon);
        assert_eq!(resolve(None, false, false), Scalar);
        assert_eq!(resolve(Some("auto"), true, false), Avx2);
        assert_eq!(resolve(Some("auto"), false, true), Neon);
        assert_eq!(
            resolve(Some("definitely-not-a-backend"), false, false),
            Scalar
        );
    }

    #[test]
    fn backend_names_round_trip_through_resolve() {
        for b in [SimdBackend::Scalar, SimdBackend::Avx2, SimdBackend::Neon] {
            let (avx2, neon) = (b == SimdBackend::Avx2, b == SimdBackend::Neon);
            assert_eq!(resolve(Some(b.name()), avx2, neon), b);
        }
    }

    #[test]
    fn forced_backend_is_scoped_and_restored() {
        let ambient = active_simd_backend();
        let inside = with_simd_backend(SimdBackend::Scalar, active_simd_backend);
        assert_eq!(inside, SimdBackend::Scalar);
        assert_eq!(active_simd_backend(), ambient);
        if avx2_available() {
            let inside = with_simd_backend(SimdBackend::Avx2, active_simd_backend);
            assert_eq!(inside, SimdBackend::Avx2);
            assert_eq!(active_simd_backend(), ambient);
        }
    }

    #[test]
    fn forced_backend_is_restored_on_panic() {
        let ambient = active_simd_backend();
        let result =
            std::panic::catch_unwind(|| with_simd_backend(SimdBackend::Scalar, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(active_simd_backend(), ambient);
    }

    /// Random `[rows, ncols]` problems, including ragged tails around the
    /// 8/16-lane block widths; both backends must agree bit for bit.
    #[test]
    fn avx2_accumulate_kernels_match_scalar_bit_for_bit() {
        if !avx2_available() {
            eprintln!("skipping: no AVX2 on this CPU");
            return;
        }
        let mut rng = StdRng::seed_from_u64(0x51AD);
        for case in 0..200 {
            let rows = rng.gen_range(1usize..20);
            let ncols = rng.gen_range(1usize..70);
            let wrow: Vec<i32> = (0..rows).map(|_| rng.gen_range(-128i32..128)).collect();
            let acts: Vec<i32> = (0..rows * ncols)
                .map(|_| rng.gen_range(-256i32..256))
                .collect();
            let init: Vec<i32> = (0..ncols).map(|_| rng.gen_range(-1000i32..1000)).collect();

            let mut a32 = init.clone();
            let mut b32 = init.clone();
            (SCALAR.accumulate_i32)(&mut a32, &wrow, &acts);
            (AVX2.accumulate_i32)(&mut b32, &wrow, &acts);
            assert_eq!(a32, b32, "i32 case {case}: rows {rows} ncols {ncols}");

            let init64: Vec<i64> = init.iter().map(|&v| i64::from(v)).collect();
            let mut a64 = init64.clone();
            let mut b64 = init64;
            (SCALAR.accumulate_i64)(&mut a64, &wrow, &acts);
            (AVX2.accumulate_i64)(&mut b64, &wrow, &acts);
            assert_eq!(a64, b64, "i64 case {case}: rows {rows} ncols {ncols}");

            let wf: Vec<f32> = wrow.iter().map(|&v| v as f32).collect();
            let af: Vec<f32> = acts.iter().map(|&v| v as f32).collect();
            let initf: Vec<f32> = init.iter().map(|&v| v as f32).collect();
            let mut aff = initf.clone();
            let mut bff = initf;
            (SCALAR.accumulate_f32)(&mut aff, &wf, &af);
            (AVX2.accumulate_f32)(&mut bff, &wf, &af);
            let (ab, bb): (Vec<u32>, Vec<u32>) = (
                aff.iter().map(|v| v.to_bits()).collect(),
                bff.iter().map(|v| v.to_bits()).collect(),
            );
            assert_eq!(ab, bb, "f32 case {case}: rows {rows} ncols {ncols}");
        }
    }

    /// Every storage tier decodes identically under both backends, over
    /// widths that exercise full blocks, ragged tails, and the odd-cols
    /// half-byte of the nibble format.
    #[test]
    fn avx2_decode_kernels_match_scalar_bit_for_bit() {
        if !avx2_available() {
            eprintln!("skipping: no AVX2 on this CPU");
            return;
        }
        let mut rng = StdRng::seed_from_u64(99);
        for cols in [1usize, 2, 5, 7, 8, 15, 16, 17, 31, 32, 33, 64, 67] {
            let rows = 3;
            let stride = cols.div_ceil(2);
            let nib = Storage::Nibble(
                (0..rows * stride)
                    .map(|_| rng.gen_range(0u32..256) as u8)
                    .collect(),
            );
            let i8s = Storage::I8(
                (0..rows * cols)
                    .map(|_| rng.gen_range(-128i32..128) as i8)
                    .collect(),
            );
            let i16s = Storage::I16(
                (0..rows * cols)
                    .map(|_| rng.gen_range(-32768i32..32768) as i16)
                    .collect(),
            );
            for storage in [&nib, &i8s, &i16s] {
                for row in 0..rows {
                    let mut a = vec![0i32; cols];
                    let mut b = vec![7i32; cols];
                    (SCALAR.decode_row_i32)(storage, row, cols, &mut a);
                    (AVX2.decode_row_i32)(storage, row, cols, &mut b);
                    assert_eq!(a, b, "i32 decode: cols {cols} row {row}");

                    let mut af = vec![0f32; cols];
                    let mut bf = vec![7f32; cols];
                    (SCALAR.decode_row_f32)(storage, row, cols, &mut af);
                    (AVX2.decode_row_f32)(storage, row, cols, &mut bf);
                    assert_eq!(af, bf, "f32 decode: cols {cols} row {row}");
                }
            }
        }
    }

    /// Naive fused-nibble model: unsigned-shifted weight bytes times i8
    /// activation lanes, straight i32 arithmetic.
    fn naive_nibble(acc: &mut [i32], wquads: &[u32], block: &[i8], ncols: usize) {
        for j in 0..ncols {
            for (q, &wq) in wquads.iter().enumerate() {
                for k in 0..4 {
                    let w = ((wq >> (8 * k)) & 0xFF) as i32;
                    acc[j] += w * i32::from(block[(q * ncols + j) * 4 + k]);
                }
            }
        }
    }

    /// Naive fused-i8 model: signed i16 weight pairs times i16 lanes.
    fn naive_i8(acc: &mut [i32], wpairs: &[u32], block: &[i16], ncols: usize) {
        for j in 0..ncols {
            for (q, &wp) in wpairs.iter().enumerate() {
                let w = [(wp & 0xFFFF) as u16 as i16, (wp >> 16) as u16 as i16];
                for k in 0..2 {
                    acc[j] += i32::from(w[k]) * i32::from(block[(q * ncols + j) * 2 + k]);
                }
            }
        }
    }

    /// Fused AVX2 GEMM kernels vs the shared scalar reference vs a naive
    /// model, over every ncols in 1..=67 (all tail shapes around the 8/16
    /// column blocks) with both random and saturation-edge inputs: all-max
    /// magnitude nibbles (w + 8 ∈ {0, 15}) against ±max activations probe
    /// the `maddubs` i16 pair bound, max-magnitude i8/i16 pairs probe the
    /// `madd` product bound.
    #[test]
    fn fused_gemm_kernels_match_reference_bit_for_bit() {
        if !avx2_available() {
            eprintln!("skipping: no AVX2 on this CPU");
            return;
        }
        let mut rng = StdRng::seed_from_u64(0xF00D);
        for ncols in 1usize..=67 {
            for edge in [false, true] {
                let quads = rng.gen_range(1usize..8);
                let wquads: Vec<u32> = (0..quads)
                    .map(|_| {
                        let mut word = 0u32;
                        for k in 0..4 {
                            let b: u32 = if edge {
                                if rng.gen_range(0..2) == 0 {
                                    0
                                } else {
                                    15
                                }
                            } else {
                                rng.gen_range(0u32..16)
                            };
                            word |= b << (8 * k);
                        }
                        word
                    })
                    .collect();
                let nib_block: Vec<i8> = (0..quads * 4 * ncols)
                    .map(|_| {
                        if edge {
                            if rng.gen_range(0..2) == 0 {
                                -15
                            } else {
                                15
                            }
                        } else {
                            rng.gen_range(-15i32..=15) as i8
                        }
                    })
                    .collect();
                let init: Vec<i32> = (0..ncols).map(|_| rng.gen_range(-1000i32..1000)).collect();

                let mut want = init.clone();
                naive_nibble(&mut want, &wquads, &nib_block, ncols);
                let mut reference = init.clone();
                super::gemm_nibble_ref(&mut reference, &wquads, &nib_block, ncols, 0);
                assert_eq!(want, reference, "nibble ref: ncols {ncols} edge {edge}");
                let mut fused = init.clone();
                avx2::gemm_nibble(&mut fused, &wquads, &nib_block, ncols);
                assert_eq!(want, fused, "nibble avx2: ncols {ncols} edge {edge}");

                let pairs = rng.gen_range(1usize..8);
                let wpairs: Vec<u32> = (0..pairs)
                    .map(|_| {
                        let pick = |rng: &mut StdRng| -> i16 {
                            if edge {
                                if rng.gen_range(0..2) == 0 {
                                    -128
                                } else {
                                    127
                                }
                            } else {
                                rng.gen_range(-128i32..128) as i16
                            }
                        };
                        let (lo, hi) = (pick(&mut rng), pick(&mut rng));
                        u32::from(lo as u16) | (u32::from(hi as u16) << 16)
                    })
                    .collect();
                let i8_block: Vec<i16> = (0..pairs * 2 * ncols)
                    .map(|_| {
                        if edge {
                            if rng.gen_range(0..2) == 0 {
                                -255
                            } else {
                                255
                            }
                        } else {
                            rng.gen_range(-255i32..=255) as i16
                        }
                    })
                    .collect();

                let mut want = init.clone();
                naive_i8(&mut want, &wpairs, &i8_block, ncols);
                let mut reference = init.clone();
                super::gemm_i8_ref(&mut reference, &wpairs, &i8_block, ncols, 0);
                assert_eq!(want, reference, "i8 ref: ncols {ncols} edge {edge}");
                let mut fused = init;
                avx2::gemm_i8(&mut fused, &wpairs, &i8_block, ncols);
                assert_eq!(want, fused, "i8 avx2: ncols {ncols} edge {edge}");
            }
        }
    }

    #[test]
    fn fused_toggle_is_scoped_and_restored() {
        let ambient = fused_gemm_enabled();
        let inside = with_fused_gemm(false, fused_gemm_enabled);
        assert!(!inside);
        assert_eq!(fused_gemm_enabled(), ambient);
        let inside = with_fused_gemm(true, fused_gemm_enabled);
        assert!(inside);
        assert_eq!(fused_gemm_enabled(), ambient);
        // Nests with backend forcing in either order.
        let inside = with_simd_backend(SimdBackend::Scalar, || {
            with_fused_gemm(false, || (active_simd_backend(), fused_gemm_enabled()))
        });
        assert_eq!(inside, (SimdBackend::Scalar, false));
        assert_eq!(fused_gemm_enabled(), ambient);
    }

    #[test]
    fn fused_toggle_is_restored_on_panic() {
        let ambient = fused_gemm_enabled();
        let result = std::panic::catch_unwind(|| with_fused_gemm(!ambient, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(fused_gemm_enabled(), ambient);
    }
}
