//! Plan-to-packed compilation: weight code generation, BN folding, and
//! storage-tier selection, performed once per bit-width at construction.

use crate::{Accum, InferError, PackedGemm, PackedOp, Storage};
use instantnet_nn::plan::PlanOp;
use instantnet_quant::{BitWidth, Quantizer};
use instantnet_tensor::Tensor;

/// Folded batch-norm affine: `y = scale[k] * conv_out[k] + bias[k]`.
struct BnFold {
    scale: Vec<f32>,
    bias: Vec<f32>,
}

fn fold_bn(
    gamma: &[Tensor],
    beta: &[Tensor],
    mean: &[Tensor],
    var: &[Tensor],
    eps: f32,
    bit_index: usize,
    rows: usize,
) -> Result<BnFold, InferError> {
    if bit_index >= gamma.len() {
        return Err(InferError::Shape(format!(
            "batch norm has {} branches but bit-width index {bit_index} was requested",
            gamma.len()
        )));
    }
    let (g, b, m, v) = (
        gamma[bit_index].data(),
        beta[bit_index].data(),
        mean[bit_index].data(),
        var[bit_index].data(),
    );
    if g.len() != rows {
        return Err(InferError::Shape(format!(
            "batch norm over {} channels follows a conv with {rows} filters",
            g.len()
        )));
    }
    let mut scale = Vec::with_capacity(rows);
    let mut bias = Vec::with_capacity(rows);
    for k in 0..rows {
        let sc = g[k] / (v[k] + eps).sqrt();
        scale.push(sc);
        bias.push(b[k] - sc * m[k]);
    }
    Ok(BnFold { scale, bias })
}

/// Largest |activation code| either quantizer can emit at `bits`
/// (`2^b - 1` for DoReFa's unsigned grid and SBM's signed-magnitude one).
fn act_code_abs_max(bits: BitWidth) -> i64 {
    (1i64 << i64::from(bits.get().min(31))) - 1
}

/// Packs one weight matrix (+ optional folded BN / linear bias) for one
/// bit-width. `quantize_input` mirrors the plan flag: when false the layer
/// consumes raw f32 activations and must stay on the f32 kernel path.
fn pack_gemm(
    weight: &Tensor,
    bn: Option<BnFold>,
    lin_bias: Option<&[f32]>,
    bits: BitWidth,
    quantizer: Quantizer,
    quantize_input: bool,
    pack_passes: &mut usize,
) -> Result<PackedGemm, InferError> {
    let rows = weight.dims()[0];
    if rows == 0 || !weight.len().is_multiple_of(rows) {
        return Err(InferError::Shape(format!(
            "weight of {} elements does not split into {rows} rows",
            weight.len()
        )));
    }
    let cols = weight.len() / rows;
    let bn_scale = bn
        .as_ref()
        .map_or_else(|| vec![1.0; rows], |f| f.scale.clone());
    let bias = bn
        .as_ref()
        .map(|f| f.bias.clone())
        .or_else(|| lin_bias.map(<[f32]>::to_vec))
        .unwrap_or_else(|| vec![0.0; rows]);

    let fp = bits.is_full_precision() || matches!(quantizer, Quantizer::Identity);
    let integer_ok = !fp && quantize_input && bits.get() <= 16;

    if !integer_ok {
        // F32 fallback: raw weights when no grid applies, otherwise the
        // fake-quantized values (still packed once — never per forward).
        *pack_passes += 1;
        let w = if fp {
            weight.data().to_vec()
        } else {
            quantizer
                .quantize_weights_tensor(weight, bits)
                .data()
                .to_vec()
        };
        return Ok(PackedGemm {
            rows,
            cols,
            storage: Storage::F32(w),
            scale: bn_scale,
            colsum_coef: vec![0.0; rows],
            bias,
            has_offset: false,
            accum: Accum::F32,
            fused: false,
        });
    }

    let wc = quantizer
        .weight_codes(weight, bits)
        .expect("non-identity quantizer below full precision yields codes");
    // Re-center codes around the mid-point of the representable range so
    // asymmetric grids (DoReFa: [0, 2^b - 1]) fit signed storage; the shift
    // `cb` joins the decode offset in the column-sum coefficient.
    let cb = (wc.code_min + wc.code_max + 1).div_euclid(2);
    let max_code_abs = (wc.code_min - cb).abs().max((wc.code_max - cb).abs());
    *pack_passes += 1;
    let storage = if bits.get() <= 4 {
        debug_assert!(max_code_abs <= 8, "nibble storage holds [-8, 7]");
        let stride = cols.div_ceil(2);
        let mut data = vec![0u8; rows * stride];
        for (e, &c) in wc.codes.iter().enumerate() {
            let (row, j) = (e / cols, e % cols);
            let nib = ((c - cb) as u8) & 0xF;
            data[row * stride + j / 2] |= if j % 2 == 0 { nib } else { nib << 4 };
        }
        Storage::Nibble(data)
    } else if bits.get() <= 8 {
        Storage::I8(wc.codes.iter().map(|&c| (c - cb) as i8).collect())
    } else {
        Storage::I16(wc.codes.iter().map(|&c| (c - cb) as i16).collect())
    };

    let per_row_scale = |k: usize| wc.scales[k.min(wc.scales.len() - 1)];
    let scale: Vec<f32> = (0..rows).map(|k| per_row_scale(k) * bn_scale[k]).collect();
    // Decode of one product term: sw*(d + cb) + ow per weight, so each
    // output row picks up (sw*cb + ow) * colsum from the shifted codes.
    let colsum_coef: Vec<f32> = (0..rows)
        .map(|k| (per_row_scale(k) * cb as f32 + wc.offset) * bn_scale[k])
        .collect();
    let has_offset = colsum_coef.iter().any(|&v| v != 0.0);
    // Worst-case |partial sum| over the reduction; pick the cheapest exact
    // accumulator it fits in (f32 is lossless below 2^24 and vectorizes
    // everywhere; halve i32::MAX for slack on the native tier). The bound
    // holds at any serving batch size: batching adds GEMM *columns* (more
    // samples × output pixels), never reduction *length* — `cols` is fixed
    // at `cg*r*s` / in-features, and the only cross-sample sums (per-column
    // activation colsums) are i64 regardless of tier. The same bound is
    // what lets the SIMD backend (`crate::simd`) reassociate f32 partial
    // sums into 8 lanes exactly: every partial sum in any association
    // order is an integer below 2^24, so lane-wise accumulation is
    // bit-identical to the scalar left-to-right order.
    let bound = i64::from(max_code_abs) * act_code_abs_max(bits) * cols as i64;
    let accum = if bound < 1 << 24 {
        Accum::F32
    } else if bound <= i64::from(i32::MAX) / 2 {
        Accum::I32
    } else {
        Accum::I64
    };
    // Fused ≤ 8-bit kernels accumulate in i32 on *shifted* codes: nibble
    // weights ride as `w + 8 ∈ [0, 15]` unsigned bytes (so |partial sum| ≤
    // 15 · max|a| · cols regardless of `max_code_abs`), i8 weights ride
    // as-is, and both need the i32 column-sum correction `Σ a` (≤ max|a| ·
    // cols) to stay exact. Mirror the main bound's ×2 slack on each — the
    // same argument that picks the tier above, restated for the shifted
    // arithmetic (DESIGN.md §6g).
    let act_bound = act_code_abs_max(bits) * cols as i64;
    let fused = match &storage {
        Storage::Nibble(_) => 15 * act_bound <= i64::from(i32::MAX) / 2,
        Storage::I8(_) => i64::from(max_code_abs).max(1) * act_bound <= i64::from(i32::MAX) / 2,
        _ => false,
    };

    Ok(PackedGemm {
        rows,
        cols,
        storage,
        scale,
        colsum_coef,
        bias,
        has_offset,
        accum,
        fused,
    })
}

/// Compiles a plan into executable packed ops for one bit-width.
pub(crate) fn pack_plan(
    ops: &[PlanOp],
    bit_index: usize,
    bits: BitWidth,
    quantizer: Quantizer,
    pack_passes: &mut usize,
) -> Result<Vec<PackedOp>, InferError> {
    let mut out = Vec::with_capacity(ops.len());
    let mut it = ops.iter().peekable();
    while let Some(op) = it.next() {
        match op {
            PlanOp::Conv {
                weight,
                stride,
                pad,
                groups,
                quantize_input,
                ..
            } => {
                let dims = weight.dims();
                if dims.len() != 4 {
                    return Err(InferError::Shape(format!(
                        "conv weight must be rank 4, got {dims:?}"
                    )));
                }
                let (k, cg, r, s) = (dims[0], dims[1], dims[2], dims[3]);
                if *groups == 0 || k % groups != 0 {
                    return Err(InferError::Shape(format!(
                        "{k} conv filters do not split into {groups} groups"
                    )));
                }
                // Fold the batch norm that immediately follows (the only
                // supported position: plans emit conv+BN pairs).
                let fold = if let Some(PlanOp::BatchNorm { .. }) = it.peek() {
                    let Some(PlanOp::BatchNorm {
                        gamma,
                        beta,
                        mean,
                        var,
                        eps,
                    }) = it.next()
                    else {
                        unreachable!("peeked BatchNorm");
                    };
                    Some(fold_bn(gamma, beta, mean, var, *eps, bit_index, k)?)
                } else {
                    None
                };
                let gemm = pack_gemm(
                    weight,
                    fold,
                    None,
                    bits,
                    quantizer,
                    *quantize_input,
                    pack_passes,
                )?;
                out.push(PackedOp::Conv {
                    gemm,
                    cg,
                    r,
                    s,
                    stride: *stride,
                    pad: *pad,
                    groups: *groups,
                    quantize_input: *quantize_input,
                });
            }
            PlanOp::BatchNorm { .. } => {
                return Err(InferError::Unsupported(
                    "batch norm without a preceding convolution to fold into".into(),
                ));
            }
            PlanOp::Act(a) => out.push(PackedOp::Act(*a)),
            PlanOp::GlobalAvgPool => out.push(PackedOp::GlobalAvgPool),
            PlanOp::Linear { weight, bias, .. } => {
                if weight.dims().len() != 2 {
                    return Err(InferError::Shape(format!(
                        "linear weight must be rank 2, got {:?}",
                        weight.dims()
                    )));
                }
                let gemm = pack_gemm(
                    weight,
                    None,
                    Some(bias.data()),
                    bits,
                    quantizer,
                    true,
                    pack_passes,
                )?;
                out.push(PackedOp::Linear { gemm });
            }
            PlanOp::Residual {
                body,
                shortcut,
                post_relu,
            } => {
                out.push(PackedOp::Residual {
                    body: pack_plan(body, bit_index, bits, quantizer, pack_passes)?,
                    shortcut: pack_plan(shortcut, bit_index, bits, quantizer, pack_passes)?,
                    post_relu: *post_relu,
                });
            }
        }
    }
    Ok(out)
}
