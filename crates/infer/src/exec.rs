//! Packed-network execution: integer i32/i64-accumulate kernels for packed
//! layers, f32 fallbacks for unpacked ones, activation re-quantization
//! between layers.
//!
//! Determinism contract (mirrors `instantnet-tensor`): integer accumulation
//! is exact, f32 dequantization is elementwise, and every parallel region
//! assigns disjoint output slices by index — results are bit-identical at
//! any thread count.

use crate::{Accum, PackedGemm, PackedOp, Storage};
use instantnet_nn::layers::Activation;
use instantnet_parallel::{par_chunks_mut, parallel_map_indexed, with_threads};
use instantnet_quant::{BitWidth, Quantizer};
use instantnet_tensor::tensor::{im2col, im2col_generic};
use instantnet_tensor::Tensor;

/// Work threshold below which kernels run single-threaded (same policy and
/// value as the tensor crate's, which is crate-private there).
const PAR_FLOP_THRESHOLD: usize = 1 << 18;

/// Runs `ops` in order over `x`.
pub(crate) fn exec_ops(
    ops: &[PackedOp],
    x: &Tensor,
    bits: BitWidth,
    quantizer: Quantizer,
) -> Tensor {
    let mut cur = x.clone();
    for op in ops {
        cur = exec_op(op, &cur, bits, quantizer);
    }
    cur
}

fn exec_op(op: &PackedOp, x: &Tensor, bits: BitWidth, quantizer: Quantizer) -> Tensor {
    match op {
        PackedOp::Conv {
            gemm,
            cg,
            r,
            s,
            stride,
            pad,
            groups,
            quantize_input,
        } => exec_conv(
            gemm,
            *cg,
            *r,
            *s,
            *stride,
            *pad,
            *groups,
            *quantize_input,
            x,
            bits,
            quantizer,
        ),
        PackedOp::Linear { gemm } => exec_linear(gemm, x, bits, quantizer),
        PackedOp::Act(a) => match a {
            Activation::Relu => x.map(|v| v.max(0.0)),
            Activation::Relu6 => x.map(|v| v.clamp(0.0, 6.0)),
            Activation::None => x.clone(),
        },
        PackedOp::GlobalAvgPool => global_avg_pool(x),
        PackedOp::Residual {
            body,
            shortcut,
            post_relu,
        } => {
            let b = exec_ops(body, x, bits, quantizer);
            let s = if shortcut.is_empty() {
                x.clone()
            } else {
                exec_ops(shortcut, x, bits, quantizer)
            };
            assert_eq!(b.dims(), s.dims(), "residual branch shapes must match");
            let mut data: Vec<f32> = b
                .data()
                .iter()
                .zip(s.data())
                .map(|(&u, &v)| u + v)
                .collect();
            if *post_relu {
                for v in &mut data {
                    *v = v.max(0.0);
                }
            }
            Tensor::from_vec(b.dims().to_vec(), data)
        }
    }
}

fn global_avg_pool(x: &Tensor) -> Tensor {
    let dims = x.dims();
    assert_eq!(dims.len(), 4, "global average pool input must be rank 4");
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let hw = h * w;
    let inv = 1.0 / hw as f32;
    let mut out = vec![0.0f32; n * c];
    for i in 0..n {
        for ch in 0..c {
            let base = (i * c + ch) * hw;
            let mut acc = 0.0f32;
            for &v in &x.data()[base..base + hw] {
                acc += v;
            }
            out[i * c + ch] = acc * inv;
        }
    }
    Tensor::from_vec(vec![n, c], out)
}

/// Dispatches per-sample work: serial for batch 1 (keeps row-level
/// parallelism inside the kernel live), serialized under the threshold,
/// sample-parallel otherwise. All three produce identical results.
fn run_samples(n: usize, flops: usize, f: impl Fn(usize) -> Vec<f32> + Sync) -> Vec<Vec<f32>> {
    if n == 1 {
        vec![f(0)]
    } else if flops < PAR_FLOP_THRESHOLD {
        with_threads(1, || parallel_map_indexed(n, &f))
    } else {
        parallel_map_indexed(n, &f)
    }
}

/// Per-column sums of activation codes (i64 guards 16-bit × long-reduction
/// overflow), consumed by the zero-offset correction term.
fn code_colsums(acts: &[i32], rows: usize, ncols: usize) -> Vec<f32> {
    let mut cs = vec![0i64; ncols];
    for p in 0..rows {
        for (o, &v) in cs.iter_mut().zip(&acts[p * ncols..(p + 1) * ncols]) {
            *o += i64::from(v);
        }
    }
    cs.into_iter().map(|v| v as f32).collect()
}

/// [`code_colsums`] over f32-lane codes (exact: the `Accum::F32` tier's
/// bound keeps every partial sum below 2^24).
fn code_colsums_f32(acts: &[f32], rows: usize, ncols: usize) -> Vec<f32> {
    let mut cs = vec![0f32; ncols];
    for p in 0..rows {
        for (o, &v) in cs.iter_mut().zip(&acts[p * ncols..(p + 1) * ncols]) {
            *o += v;
        }
    }
    cs
}

/// `acc[j] += Σ_p wrow[p] · acts[p][j]` in i32 — the narrow-path hot loop.
/// Four weight rows per pass for instruction-level parallelism; slices are
/// pre-split to `ncols` so the inner loops vectorize without bounds checks.
fn accumulate_i32(acc: &mut [i32], wrow: &[i32], acts: &[i32]) {
    let ncols = acc.len();
    let mut quads = wrow.chunks_exact(4);
    let mut base = 0usize;
    for w in quads.by_ref() {
        let (a0, rest) = acts[base..base + 4 * ncols].split_at(ncols);
        let (a1, rest) = rest.split_at(ncols);
        let (a2, a3) = rest.split_at(ncols);
        let (w0, w1, w2, w3) = (w[0], w[1], w[2], w[3]);
        for (j, o) in acc.iter_mut().enumerate() {
            *o += w0 * a0[j] + w1 * a1[j] + w2 * a2[j] + w3 * a3[j];
        }
        base += 4 * ncols;
    }
    for &wv in quads.remainder() {
        let a = &acts[base..base + ncols];
        for (o, &av) in acc.iter_mut().zip(a) {
            *o += wv * av;
        }
        base += ncols;
    }
}

/// i64 variant for 9–16-bit layers whose partial sums can overflow i32.
fn accumulate_i64(acc: &mut [i64], wrow: &[i32], acts: &[i32]) {
    let ncols = acc.len();
    for (p, &wv) in wrow.iter().enumerate() {
        let wv = i64::from(wv);
        let a = &acts[p * ncols..(p + 1) * ncols];
        for (o, &av) in acc.iter_mut().zip(a) {
            *o += wv * i64::from(av);
        }
    }
}

/// Exact-f32 variant of [`accumulate_i32`]: codes are small integers, so
/// every product and partial sum stays below 2^24 and the arithmetic is
/// lossless — same integer result, but f32 lanes vectorize on targets
/// whose baseline ISA has no packed i32 multiply.
fn accumulate_f32(acc: &mut [f32], wrow: &[f32], acts: &[f32]) {
    let ncols = acc.len();
    let mut quads = wrow.chunks_exact(4);
    let mut base = 0usize;
    for w in quads.by_ref() {
        let (a0, rest) = acts[base..base + 4 * ncols].split_at(ncols);
        let (a1, rest) = rest.split_at(ncols);
        let (a2, a3) = rest.split_at(ncols);
        let (w0, w1, w2, w3) = (w[0], w[1], w[2], w[3]);
        for (j, o) in acc.iter_mut().enumerate() {
            *o += w0 * a0[j] + w1 * a1[j] + w2 * a2[j] + w3 * a3[j];
        }
        base += 4 * ncols;
    }
    for &wv in quads.remainder() {
        let a = &acts[base..base + ncols];
        for (o, &av) in acc.iter_mut().zip(a) {
            *o += wv * av;
        }
        base += ncols;
    }
}

/// [`gemm_rows`] for the `Accum::F32` tier: identical affine dequant, but
/// weight/activation codes travel as exact f32 lanes.
#[allow(clippy::too_many_arguments)]
fn gemm_rows_f32(
    g: &PackedGemm,
    row0: usize,
    nrows: usize,
    acts: &[f32],
    ncols: usize,
    colsum: Option<&[f32]>,
    sa: f32,
    out: &mut [f32],
) {
    debug_assert_eq!(acts.len(), g.cols * ncols);
    debug_assert_eq!(out.len(), nrows * ncols);
    let body = |kk: usize, orow: &mut [f32]| {
        let row = row0 + kk;
        let mut wrow = vec![0f32; g.cols];
        g.storage.decode_row_f32(row, g.cols, &mut wrow);
        let (a, bias) = (g.scale[row], g.bias[row]);
        let bco = g.colsum_coef[row];
        let mut acc = vec![0f32; ncols];
        accumulate_f32(&mut acc, &wrow, acts);
        match colsum {
            Some(cs) => {
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = sa * (a * acc[j] + bco * cs[j]) + bias;
                }
            }
            None => {
                for (o, &v) in orow.iter_mut().zip(&acc) {
                    *o = sa * a * v + bias;
                }
            }
        }
    };
    let work = 2 * nrows * g.cols * ncols;
    if work < PAR_FLOP_THRESHOLD {
        with_threads(1, || par_chunks_mut(out, ncols, body));
    } else {
        par_chunks_mut(out, ncols, body);
    }
}

/// Integer GEMM over rows `[row0, row0 + nrows)` of a packed matrix:
/// `out[kk][j] = sa * (A[row] * acc + B[row] * colsum[j]) + bias[row]`
/// with `acc` the exact integer dot product of the decoded weight row and
/// activation-code column `j`. Row-parallel with disjoint output rows.
/// Handles the native `I32`/`I64` tiers; `Accum::F32` layers take
/// [`gemm_rows_f32`].
#[allow(clippy::too_many_arguments)]
fn gemm_rows(
    g: &PackedGemm,
    row0: usize,
    nrows: usize,
    acts: &[i32],
    ncols: usize,
    colsum: Option<&[f32]>,
    sa: f32,
    out: &mut [f32],
) {
    debug_assert_eq!(acts.len(), g.cols * ncols);
    debug_assert_eq!(out.len(), nrows * ncols);
    let body = |kk: usize, orow: &mut [f32]| {
        let row = row0 + kk;
        let mut wrow = vec![0i32; g.cols];
        g.storage.decode_row(row, g.cols, &mut wrow);
        let (a, bias) = (g.scale[row], g.bias[row]);
        let bco = g.colsum_coef[row];
        if g.accum == Accum::I32 {
            let mut acc = vec![0i32; ncols];
            accumulate_i32(&mut acc, &wrow, acts);
            match colsum {
                Some(cs) => {
                    for (j, o) in orow.iter_mut().enumerate() {
                        *o = sa * (a * acc[j] as f32 + bco * cs[j]) + bias;
                    }
                }
                None => {
                    for (o, &v) in orow.iter_mut().zip(&acc) {
                        *o = sa * a * v as f32 + bias;
                    }
                }
            }
        } else {
            let mut acc = vec![0i64; ncols];
            accumulate_i64(&mut acc, &wrow, acts);
            match colsum {
                Some(cs) => {
                    for (j, o) in orow.iter_mut().enumerate() {
                        *o = sa * (a * acc[j] as f32 + bco * cs[j]) + bias;
                    }
                }
                None => {
                    for (o, &v) in orow.iter_mut().zip(&acc) {
                        *o = sa * a * v as f32 + bias;
                    }
                }
            }
        }
    };
    let work = 2 * nrows * g.cols * ncols;
    if work < PAR_FLOP_THRESHOLD {
        with_threads(1, || par_chunks_mut(out, ncols, body));
    } else {
        par_chunks_mut(out, ncols, body);
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_conv(
    gemm: &PackedGemm,
    cg: usize,
    r: usize,
    s: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    quantize_input: bool,
    x: &Tensor,
    bits: BitWidth,
    quantizer: Quantizer,
) -> Tensor {
    let dims = x.dims();
    assert_eq!(dims.len(), 4, "conv input must be rank 4");
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(c, cg * groups, "conv input channel mismatch");
    let k = gemm.rows;
    let kg = k / groups;
    let oh = (h + 2 * pad - r) / stride + 1;
    let ow = (w + 2 * pad - s) / stride + 1;
    let ncols = oh * ow;
    let flops = 2 * n * k * gemm.cols * ncols;

    let outs = if gemm.storage.is_integer() {
        // One per-tensor activation quantization for the whole batch
        // (identical scale policy to the fake-quant reference).
        let ac = quantizer
            .activation_codes(x.data(), bits)
            .expect("integer storage implies quantized activations");
        if gemm.accum == Accum::F32 {
            let actf: Vec<f32> = ac.codes.iter().map(|&v| v as f32).collect();
            let sample = |i: usize| -> Vec<f32> {
                let mut out_i = vec![0.0f32; k * ncols];
                for gi in 0..groups {
                    let base = (i * c + gi * cg) * h * w;
                    let (cols_buf, _, _) =
                        im2col_generic(&actf[base..base + cg * h * w], cg, h, w, r, s, stride, pad);
                    let colsum = gemm
                        .has_offset
                        .then(|| code_colsums_f32(&cols_buf, gemm.cols, ncols));
                    gemm_rows_f32(
                        gemm,
                        gi * kg,
                        kg,
                        &cols_buf,
                        ncols,
                        colsum.as_deref(),
                        ac.scale,
                        &mut out_i[gi * kg * ncols..(gi + 1) * kg * ncols],
                    );
                }
                out_i
            };
            run_samples(n, flops, sample)
        } else {
            let sample = |i: usize| -> Vec<f32> {
                let mut out_i = vec![0.0f32; k * ncols];
                for gi in 0..groups {
                    let base = (i * c + gi * cg) * h * w;
                    let (cols_buf, _, _) = im2col_generic(
                        &ac.codes[base..base + cg * h * w],
                        cg,
                        h,
                        w,
                        r,
                        s,
                        stride,
                        pad,
                    );
                    let colsum = gemm
                        .has_offset
                        .then(|| code_colsums(&cols_buf, gemm.cols, ncols));
                    gemm_rows(
                        gemm,
                        gi * kg,
                        kg,
                        &cols_buf,
                        ncols,
                        colsum.as_deref(),
                        ac.scale,
                        &mut out_i[gi * kg * ncols..(gi + 1) * kg * ncols],
                    );
                }
                out_i
            };
            run_samples(n, flops, sample)
        }
    } else {
        let Storage::F32(wdata) = &gemm.storage else {
            unreachable!("non-integer storage is f32");
        };
        let xq = if quantize_input {
            quantizer.quantize_activations_tensor(x, bits)
        } else {
            x.clone()
        };
        let wgs: Vec<Tensor> = (0..groups)
            .map(|gi| {
                let start = gi * kg * gemm.cols;
                Tensor::from_vec(
                    vec![kg, gemm.cols],
                    wdata[start..start + kg * gemm.cols].to_vec(),
                )
            })
            .collect();
        let sample = |i: usize| -> Vec<f32> {
            let mut out_i = vec![0.0f32; k * ncols];
            for gi in 0..groups {
                let base = (i * c + gi * cg) * h * w;
                let (cols_t, _, _) = im2col(
                    &xq.data()[base..base + cg * h * w],
                    cg,
                    h,
                    w,
                    r,
                    s,
                    stride,
                    pad,
                );
                let mm = wgs[gi].matmul(&cols_t);
                let og = &mut out_i[gi * kg * ncols..(gi + 1) * kg * ncols];
                for kk in 0..kg {
                    let row = gi * kg + kk;
                    let (a, b) = (gemm.scale[row], gemm.bias[row]);
                    for (o, &v) in og[kk * ncols..(kk + 1) * ncols]
                        .iter_mut()
                        .zip(&mm.data()[kk * ncols..(kk + 1) * ncols])
                    {
                        *o = a * v + b;
                    }
                }
            }
            out_i
        };
        run_samples(n, flops, sample)
    };

    let mut data = Vec::with_capacity(n * k * ncols);
    for o in outs {
        data.extend(o);
    }
    Tensor::from_vec(vec![n, k, oh, ow], data)
}

fn exec_linear(g: &PackedGemm, x: &Tensor, bits: BitWidth, quantizer: Quantizer) -> Tensor {
    let dims = x.dims();
    assert_eq!(dims.len(), 2, "linear input must be rank 2");
    let (n, f) = (dims[0], dims[1]);
    assert_eq!(f, g.cols, "linear in-feature mismatch");

    if g.storage.is_integer() {
        let ac = quantizer
            .activation_codes(x.data(), bits)
            .expect("integer storage implies quantized activations");
        // Samples along GEMM columns: transpose codes to `[features, n]`.
        let mut tmp = vec![0.0f32; g.rows * n];
        if g.accum == Accum::F32 {
            let mut tcodes = vec![0f32; f * n];
            for i in 0..n {
                for p in 0..f {
                    tcodes[p * n + i] = ac.codes[i * f + p] as f32;
                }
            }
            let colsum = g.has_offset.then(|| code_colsums_f32(&tcodes, f, n));
            gemm_rows_f32(
                g,
                0,
                g.rows,
                &tcodes,
                n,
                colsum.as_deref(),
                ac.scale,
                &mut tmp,
            );
        } else {
            let mut tcodes = vec![0i32; f * n];
            for i in 0..n {
                for p in 0..f {
                    tcodes[p * n + i] = ac.codes[i * f + p];
                }
            }
            let colsum = g.has_offset.then(|| code_colsums(&tcodes, f, n));
            gemm_rows(
                g,
                0,
                g.rows,
                &tcodes,
                n,
                colsum.as_deref(),
                ac.scale,
                &mut tmp,
            );
        }
        let mut out = vec![0.0f32; n * g.rows];
        for kk in 0..g.rows {
            for i in 0..n {
                out[i * g.rows + kk] = tmp[kk * n + i];
            }
        }
        Tensor::from_vec(vec![n, g.rows], out)
    } else {
        let Storage::F32(wdata) = &g.storage else {
            unreachable!("non-integer storage is f32");
        };
        let fp = bits.is_full_precision() || matches!(quantizer, Quantizer::Identity);
        let xq = if fp {
            x.clone()
        } else {
            quantizer.quantize_activations_tensor(x, bits)
        };
        let mut wt = vec![0.0f32; f * g.rows];
        for kk in 0..g.rows {
            for p in 0..f {
                wt[p * g.rows + kk] = wdata[kk * f + p];
            }
        }
        let mm = xq.matmul(&Tensor::from_vec(vec![f, g.rows], wt));
        let mut out = mm.data().to_vec();
        for i in 0..n {
            for (kk, o) in out[i * g.rows..(i + 1) * g.rows].iter_mut().enumerate() {
                *o = g.scale[kk] * *o + g.bias[kk];
            }
        }
        Tensor::from_vec(vec![n, g.rows], out)
    }
}
