//! Packed-network execution: exact integer/f32-lane GEMM kernels for
//! packed layers, f32 fallbacks for unpacked ones, activation
//! re-quantization between layers.
//!
//! The engine is **batch-aware**: a multi-sample input runs one kernel
//! invocation per layer — weight rows are decoded once for the whole
//! batch, per-column activation sums are computed once per (sample,
//! group) patch matrix, and the parallel split distributes over
//! `samples × output rows` so small layers still saturate threads.
//! Because every accumulator tier computes an *exact* sum (integers, or
//! f32 lanes bounded below 2^24), batching never changes a sample's
//! result: with per-sample activation scales ([`ActQuant::PerSample`])
//! each sample's output is bit-identical to running it alone.
//!
//! Determinism contract (mirrors `instantnet-tensor`): accumulation is
//! exact, dequantization is elementwise, and every parallel region
//! assigns disjoint output slices by index — results are bit-identical at
//! any thread count.

use crate::{Accum, PackedGemm, PackedOp, Storage};
use instantnet_nn::layers::Activation;
use instantnet_parallel::{gate, par_chunks_mut, parallel_map_indexed};
use instantnet_quant::{BitWidth, Quantizer};
use instantnet_tensor::tensor::{im2col, im2col_generic};
use instantnet_tensor::Tensor;

/// Work threshold below which kernels run single-threaded (same policy and
/// value as the tensor crate's, which is crate-private there).
const PAR_FLOP_THRESHOLD: usize = 1 << 18;

/// Granularity of the data-dependent activation scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ActQuant {
    /// One scale over the whole input tensor, batch dimension included —
    /// the fake-quant training semantics ([`crate::PackedModel::forward`]).
    PerBatch,
    /// One scale per dim-0 sample — the serving semantics
    /// ([`crate::PackedModel::forward_batch`]): aggregated requests are
    /// quantized independently, so each sample's output is bit-identical
    /// to a batch-of-one forward of that sample.
    PerSample,
}

/// Runs `ops` in order over `x`.
pub(crate) fn exec_ops(
    ops: &[PackedOp],
    x: &Tensor,
    bits: BitWidth,
    quantizer: Quantizer,
    aq: ActQuant,
) -> Tensor {
    let mut cur = x.clone();
    for op in ops {
        cur = exec_op(op, &cur, bits, quantizer, aq);
    }
    cur
}

fn exec_op(
    op: &PackedOp,
    x: &Tensor,
    bits: BitWidth,
    quantizer: Quantizer,
    aq: ActQuant,
) -> Tensor {
    match op {
        PackedOp::Conv {
            gemm,
            cg,
            r,
            s,
            stride,
            pad,
            groups,
            quantize_input,
        } => exec_conv(
            gemm,
            *cg,
            *r,
            *s,
            *stride,
            *pad,
            *groups,
            *quantize_input,
            x,
            bits,
            quantizer,
            aq,
        ),
        PackedOp::Linear { gemm } => exec_linear(gemm, x, bits, quantizer, aq),
        PackedOp::Act(a) => match a {
            Activation::Relu => x.map(|v| v.max(0.0)),
            Activation::Relu6 => x.map(|v| v.clamp(0.0, 6.0)),
            Activation::None => x.clone(),
        },
        PackedOp::GlobalAvgPool => global_avg_pool(x),
        PackedOp::Residual {
            body,
            shortcut,
            post_relu,
        } => {
            let b = exec_ops(body, x, bits, quantizer, aq);
            let s = if shortcut.is_empty() {
                x.clone()
            } else {
                exec_ops(shortcut, x, bits, quantizer, aq)
            };
            assert_eq!(b.dims(), s.dims(), "residual branch shapes must match");
            let mut data: Vec<f32> = b
                .data()
                .iter()
                .zip(s.data())
                .map(|(&u, &v)| u + v)
                .collect();
            if *post_relu {
                for v in &mut data {
                    *v = v.max(0.0);
                }
            }
            Tensor::from_vec(b.dims().to_vec(), data)
        }
    }
}

fn global_avg_pool(x: &Tensor) -> Tensor {
    let dims = x.dims();
    assert_eq!(dims.len(), 4, "global average pool input must be rank 4");
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let hw = h * w;
    let inv = 1.0 / hw as f32;
    let mut out = vec![0.0f32; n * c];
    for i in 0..n {
        for ch in 0..c {
            let base = (i * c + ch) * hw;
            let mut acc = 0.0f32;
            for &v in &x.data()[base..base + hw] {
                acc += v;
            }
            out[i * c + ch] = acc * inv;
        }
    }
    Tensor::from_vec(vec![n, c], out)
}

// ---------------------------------------------------------------------------
// Accumulator tiers
// ---------------------------------------------------------------------------

/// One exact accumulator tier of the packed GEMM: the lane type codes
/// travel in (`Code`), the type partial sums reduce into (`Acc`), and the
/// type column sums reduce into (`Cs`). Every tier computes the *same
/// exact value* — f32 arithmetic on integers below 2^24 is lossless — so
/// results are independent of the tier's internal order, the batch
/// packing, and the thread count.
trait Tier: Sync {
    type Code: Copy + Default + Send + Sync;
    type Acc: Copy + Default;
    type Cs: Copy + Default;

    fn code(c: i32) -> Self::Code;
    /// Decodes one weight row of `cols` codes into `out`.
    fn decode_row(storage: &Storage, row: usize, cols: usize, out: &mut [Self::Code]);
    /// `acc[j] += Σ_p wrow[p] · acts[p · acc.len() + j]`, exactly.
    fn accumulate(acc: &mut [Self::Acc], wrow: &[Self::Code], acts: &[Self::Code]);
    fn mad(acc: Self::Acc, w: Self::Code, a: Self::Code) -> Self::Acc;
    fn cs_add(cs: Self::Cs, a: Self::Code) -> Self::Cs;
    fn acc_f32(a: Self::Acc) -> f32;
    fn cs_f32(c: Self::Cs) -> f32;

    /// Per-column sums of a `[rows, ncols]` code block (the colsum
    /// correction input, consumed by offset-carrying layers).
    fn colsums(acts: &[Self::Code], rows: usize, ncols: usize) -> Vec<f32> {
        let mut cs = vec![Self::Cs::default(); ncols];
        for p in 0..rows {
            for (o, &v) in cs.iter_mut().zip(&acts[p * ncols..(p + 1) * ncols]) {
                *o = Self::cs_add(*o, v);
            }
        }
        cs.into_iter().map(Self::cs_f32).collect()
    }
}

/// Bound < 2^24: exact f32 lanes (vectorizes on baseline x86-64, which
/// has no packed i32 multiply).
struct TierF32;
/// Bound ≤ i32::MAX / 2: native i32.
struct TierI32;
/// Anything wider (12/16-bit layers with long reductions).
struct TierI64;

impl Tier for TierF32 {
    type Code = f32;
    type Acc = f32;
    type Cs = f32;

    fn code(c: i32) -> f32 {
        c as f32
    }
    fn decode_row(storage: &Storage, row: usize, cols: usize, out: &mut [f32]) {
        storage.decode_row_f32(row, cols, out);
    }
    fn accumulate(acc: &mut [f32], wrow: &[f32], acts: &[f32]) {
        (crate::simd::kernels().accumulate_f32)(acc, wrow, acts);
    }
    fn mad(acc: f32, w: f32, a: f32) -> f32 {
        acc + w * a
    }
    fn cs_add(cs: f32, a: f32) -> f32 {
        cs + a
    }
    fn acc_f32(a: f32) -> f32 {
        a
    }
    fn cs_f32(c: f32) -> f32 {
        c
    }
}

impl Tier for TierI32 {
    type Code = i32;
    type Acc = i32;
    // i64 column sums guard 16-bit × long-reduction overflow (shared with
    // the i64 tier; cheap relative to the multiply loop).
    type Cs = i64;

    fn code(c: i32) -> i32 {
        c
    }
    fn decode_row(storage: &Storage, row: usize, cols: usize, out: &mut [i32]) {
        storage.decode_row(row, cols, out);
    }
    fn accumulate(acc: &mut [i32], wrow: &[i32], acts: &[i32]) {
        (crate::simd::kernels().accumulate_i32)(acc, wrow, acts);
    }
    fn mad(acc: i32, w: i32, a: i32) -> i32 {
        acc + w * a
    }
    fn cs_add(cs: i64, a: i32) -> i64 {
        cs + i64::from(a)
    }
    fn acc_f32(a: i32) -> f32 {
        a as f32
    }
    fn cs_f32(c: i64) -> f32 {
        c as f32
    }
}

impl Tier for TierI64 {
    type Code = i32;
    type Acc = i64;
    type Cs = i64;

    fn code(c: i32) -> i32 {
        c
    }
    fn decode_row(storage: &Storage, row: usize, cols: usize, out: &mut [i32]) {
        storage.decode_row(row, cols, out);
    }
    fn accumulate(acc: &mut [i64], wrow: &[i32], acts: &[i32]) {
        (crate::simd::kernels().accumulate_i64)(acc, wrow, acts);
    }
    fn mad(acc: i64, w: i32, a: i32) -> i64 {
        acc + i64::from(w) * i64::from(a)
    }
    fn cs_add(cs: i64, a: i32) -> i64 {
        cs + i64::from(a)
    }
    fn acc_f32(a: i64) -> f32 {
        a as f32
    }
    fn cs_f32(c: i64) -> f32 {
        c as f32
    }
}

// ---------------------------------------------------------------------------
// Accumulate kernels (scalar backend — the portable baseline every target
// can run; crate::simd selects between these and the AVX2 kernels)
// ---------------------------------------------------------------------------

/// Column-block width of the integer accumulate kernels: 8 independent
/// accumulator lanes live in registers across the whole reduction, so the
/// inner loop has no accumulator load/store traffic and enough
/// instruction-level parallelism to keep integer pipes full (the wide
/// tiers' answer to the f32 tier's SIMD lanes).
const I32_LANES: usize = 8;
/// i64 lanes are twice as wide, so half as many keep register pressure
/// equivalent.
const I64_LANES: usize = 4;

/// `acc[j] += Σ_p wrow[p] · acts[p][j]` in i32 — the native narrow tier.
/// Column-register-blocked: each block of [`I32_LANES`] output columns
/// runs the full reduction with its partial sums held in registers. Row
/// strides are hoisted to a running offset so neither the block loop nor
/// the tail recomputes `p * ncols + j` per element.
pub(crate) fn accumulate_i32_scalar(acc: &mut [i32], wrow: &[i32], acts: &[i32]) {
    let ncols = acc.len();
    let mut j = 0usize;
    while j + I32_LANES <= ncols {
        let mut lanes = [0i32; I32_LANES];
        let mut base = j;
        for &wv in wrow {
            let a = &acts[base..base + I32_LANES];
            for (l, &av) in lanes.iter_mut().zip(a) {
                *l += wv * av;
            }
            base += ncols;
        }
        for (o, l) in acc[j..j + I32_LANES].iter_mut().zip(lanes) {
            *o += l;
        }
        j += I32_LANES;
    }
    while j < ncols {
        let mut lane = 0i32;
        let mut idx = j;
        for &wv in wrow {
            lane += wv * acts[idx];
            idx += ncols;
        }
        acc[j] += lane;
        j += 1;
    }
}

/// i64 variant for 12/16-bit layers whose partial sums can overflow i32,
/// with [`I64_LANES`] register lanes and the same hoisted row strides.
pub(crate) fn accumulate_i64_scalar(acc: &mut [i64], wrow: &[i32], acts: &[i32]) {
    let ncols = acc.len();
    let mut j = 0usize;
    while j + I64_LANES <= ncols {
        let mut lanes = [0i64; I64_LANES];
        let mut base = j;
        for &wv in wrow {
            let wv = i64::from(wv);
            let a = &acts[base..base + I64_LANES];
            for (l, &av) in lanes.iter_mut().zip(a) {
                *l += wv * i64::from(av);
            }
            base += ncols;
        }
        for (o, l) in acc[j..j + I64_LANES].iter_mut().zip(lanes) {
            *o += l;
        }
        j += I64_LANES;
    }
    while j < ncols {
        let mut lane = 0i64;
        let mut idx = j;
        for &wv in wrow {
            lane += i64::from(wv) * i64::from(acts[idx]);
            idx += ncols;
        }
        acc[j] += lane;
        j += 1;
    }
}

/// Exact-f32 variant: codes are small integers, so every product and
/// partial sum stays below 2^24 and the arithmetic is lossless — same
/// integer result, but f32 lanes vectorize on targets whose baseline ISA
/// has no packed i32 multiply. Four weight rows per pass for
/// instruction-level parallelism.
pub(crate) fn accumulate_f32_scalar(acc: &mut [f32], wrow: &[f32], acts: &[f32]) {
    let ncols = acc.len();
    let mut quads = wrow.chunks_exact(4);
    let mut base = 0usize;
    for w in quads.by_ref() {
        let (a0, rest) = acts[base..base + 4 * ncols].split_at(ncols);
        let (a1, rest) = rest.split_at(ncols);
        let (a2, a3) = rest.split_at(ncols);
        let (w0, w1, w2, w3) = (w[0], w[1], w[2], w[3]);
        for (j, o) in acc.iter_mut().enumerate() {
            *o += w0 * a0[j] + w1 * a1[j] + w2 * a2[j] + w3 * a3[j];
        }
        base += 4 * ncols;
    }
    for &wv in quads.remainder() {
        let a = &acts[base..base + ncols];
        for (o, &av) in acc.iter_mut().zip(a) {
            *o += wv * av;
        }
        base += ncols;
    }
}

// ---------------------------------------------------------------------------
// Batched integer execution
// ---------------------------------------------------------------------------

/// Quantizes the batch to codes plus one decode scale per sample
/// (`PerBatch` replicates the single whole-tensor scale).
fn sample_codes<T: Tier>(
    x: &Tensor,
    n: usize,
    sample_len: usize,
    bits: BitWidth,
    quantizer: Quantizer,
    aq: ActQuant,
) -> (Vec<T::Code>, Vec<f32>) {
    match aq {
        ActQuant::PerBatch => {
            let ac = quantizer
                .activation_codes(x.data(), bits)
                .expect("integer storage implies quantized activations");
            (
                ac.codes.iter().map(|&v| T::code(v)).collect(),
                vec![ac.scale; n],
            )
        }
        ActQuant::PerSample => {
            let per = gate(n * sample_len >= PAR_FLOP_THRESHOLD, || {
                parallel_map_indexed(n, |i| {
                    quantizer
                        .activation_codes(&x.data()[i * sample_len..(i + 1) * sample_len], bits)
                        .expect("integer storage implies quantized activations")
                })
            });
            let mut codes = Vec::with_capacity(n * sample_len);
            let mut scales = Vec::with_capacity(n);
            for ac in per {
                codes.extend(ac.codes.iter().map(|&v| T::code(v)));
                scales.push(ac.scale);
            }
            (codes, scales)
        }
    }
}

/// Decodes the whole packed weight matrix once per forward; the decoded
/// rows are shared by every sample of the batch (and by every chunk of
/// the parallel GEMM), so decode cost is independent of the batch size.
fn decode_all<T: Tier>(storage: &Storage, rows: usize, cols: usize) -> Vec<T::Code> {
    let mut out = vec![T::Code::default(); rows * cols];
    for (row, chunk) in out.chunks_mut(cols).enumerate() {
        T::decode_row(storage, row, cols, chunk);
    }
    out
}

/// Batched integer conv: per-sample activation codes, per-(sample, group)
/// `im2col` patch matrices and column sums computed once per forward, and
/// one GEMM parallelized over `samples × output rows` (each chunk is one
/// output row of one sample — disjoint writes, deterministic).
///
/// The pack-time accumulator tier stays safe at any batch size: batching
/// adds GEMM *columns* (more output pixels), never reduction *length*, so
/// the worst-case partial-sum bound `max|w|·max|a|·cols` is unchanged.
#[allow(clippy::too_many_arguments)]
fn conv_int<T: Tier>(
    gemm: &PackedGemm,
    cg: usize,
    r: usize,
    s: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    x: &Tensor,
    bits: BitWidth,
    quantizer: Quantizer,
    aq: ActQuant,
) -> Tensor {
    let dims = x.dims();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let k = gemm.rows;
    let kg = k / groups;
    let oh = (h + 2 * pad - r) / stride + 1;
    let ow = (w + 2 * pad - s) / stride + 1;
    let ncols = oh * ow;
    let chw = c * h * w;

    let (codes, scales) = sample_codes::<T>(x, n, chw, bits, quantizer, aq);

    if groups == c && cg == 1 && kg == 1 {
        return conv_dw_int::<T>(gemm, r, s, stride, pad, &codes, &scales, n, c, h, w, oh, ow);
    }

    // Patch matrices, one `[cols, ncols]` block per (sample, group).
    let blocks: Vec<Vec<T::Code>> =
        gate(n * groups * gemm.cols * ncols >= PAR_FLOP_THRESHOLD, || {
            parallel_map_indexed(n * groups, |e| {
                let (i, gi) = (e / groups, e % groups);
                let base = (i * c + gi * cg) * h * w;
                im2col_generic(&codes[base..base + cg * h * w], cg, h, w, r, s, stride, pad).0
            })
        });
    let colsums: Option<Vec<Vec<f32>>> = gemm.has_offset.then(|| {
        blocks
            .iter()
            .map(|b| T::colsums(b, gemm.cols, ncols))
            .collect()
    });
    let wdec = decode_all::<T>(&gemm.storage, k, gemm.cols);

    let mut out = vec![0.0f32; n * k * ncols];
    let flops = 2 * n * k * gemm.cols * ncols;
    gate(flops >= PAR_FLOP_THRESHOLD, || {
        par_chunks_mut(&mut out, ncols, |ci, orow| {
            let (i, row) = (ci / k, ci % k);
            let gi = row / kg;
            let block = &blocks[i * groups + gi];
            let mut acc = vec![T::Acc::default(); ncols];
            T::accumulate(
                &mut acc,
                &wdec[row * gemm.cols..(row + 1) * gemm.cols],
                block,
            );
            let (a, bias, bco, sa) = (
                gemm.scale[row],
                gemm.bias[row],
                gemm.colsum_coef[row],
                scales[i],
            );
            match &colsums {
                Some(cs) => {
                    let cs = &cs[i * groups + gi];
                    for (j, o) in orow.iter_mut().enumerate() {
                        *o = sa * (a * T::acc_f32(acc[j]) + bco * cs[j]) + bias;
                    }
                }
                None => {
                    for (o, &v) in orow.iter_mut().zip(&acc) {
                        *o = sa * a * T::acc_f32(v) + bias;
                    }
                }
            }
        })
    });
    Tensor::from_vec(vec![n, k, oh, ow], out)
}

/// Depthwise fast path (`groups == channels`): no patch matrix, no
/// 1-column-per-group GEMM — each (sample, channel) chunk convolves its
/// input plane directly, accumulating taps in `im2col` row order so the
/// exact integer result matches the generic path bit for bit.
#[allow(clippy::too_many_arguments)]
fn conv_dw_int<T: Tier>(
    gemm: &PackedGemm,
    r: usize,
    s: usize,
    stride: usize,
    pad: usize,
    codes: &[T::Code],
    scales: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
) -> Tensor {
    let ncols = oh * ow;
    let wdec = decode_all::<T>(&gemm.storage, gemm.rows, gemm.cols);
    let mut out = vec![0.0f32; n * c * ncols];
    let flops = 2 * n * c * r * s * ncols;
    gate(flops >= PAR_FLOP_THRESHOLD, || {
        par_chunks_mut(&mut out, ncols, |ci, orow| {
            let (i, ch) = (ci / c, ci % c);
            let plane = &codes[(i * c + ch) * h * w..(i * c + ch + 1) * h * w];
            let wrow = &wdec[ch * gemm.cols..(ch + 1) * gemm.cols];
            let (a, bias, bco, sa) = (
                gemm.scale[ch],
                gemm.bias[ch],
                gemm.colsum_coef[ch],
                scales[i],
            );
            let mut jp = 0usize;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = T::Acc::default();
                    let mut cs = T::Cs::default();
                    for ki in 0..r {
                        let iy = (oy * stride + ki) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kj in 0..s {
                            let ix = (ox * stride + kj) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let av = plane[iy as usize * w + ix as usize];
                            acc = T::mad(acc, wrow[ki * s + kj], av);
                            cs = T::cs_add(cs, av);
                        }
                    }
                    orow[jp] = if gemm.has_offset {
                        sa * (a * T::acc_f32(acc) + bco * T::cs_f32(cs)) + bias
                    } else {
                        sa * a * T::acc_f32(acc) + bias
                    };
                    jp += 1;
                }
            }
        })
    });
    Tensor::from_vec(vec![n, c, oh, ow], out)
}

/// Batched integer linear: samples travel as GEMM columns (codes
/// transposed to `[features, n]`), so one weight-row decode serves the
/// whole batch and the dequant applies each column's own sample scale.
fn linear_int<T: Tier>(
    g: &PackedGemm,
    x: &Tensor,
    bits: BitWidth,
    quantizer: Quantizer,
    aq: ActQuant,
) -> Tensor {
    let (n, f) = (x.dims()[0], x.dims()[1]);
    let (codes, scales) = sample_codes::<T>(x, n, f, bits, quantizer, aq);
    // Per-sample colsum = the transposed GEMM's per-column sum.
    let colsums: Option<Vec<f32>> = g.has_offset.then(|| {
        (0..n)
            .map(|i| {
                let mut cs = T::Cs::default();
                for &v in &codes[i * f..(i + 1) * f] {
                    cs = T::cs_add(cs, v);
                }
                T::cs_f32(cs)
            })
            .collect()
    });
    let mut tcodes = vec![T::Code::default(); f * n];
    for i in 0..n {
        for p in 0..f {
            tcodes[p * n + i] = codes[i * f + p];
        }
    }
    let mut tmp = vec![0.0f32; g.rows * n];
    let flops = 2 * g.rows * f * n;
    gate(flops >= PAR_FLOP_THRESHOLD, || {
        par_chunks_mut(&mut tmp, n, |row, orow| {
            let mut wrow = vec![T::Code::default(); f];
            T::decode_row(&g.storage, row, f, &mut wrow);
            let mut acc = vec![T::Acc::default(); n];
            T::accumulate(&mut acc, &wrow, &tcodes);
            let (a, bias, bco) = (g.scale[row], g.bias[row], g.colsum_coef[row]);
            match &colsums {
                Some(cs) => {
                    for (i, o) in orow.iter_mut().enumerate() {
                        *o = scales[i] * (a * T::acc_f32(acc[i]) + bco * cs[i]) + bias;
                    }
                }
                None => {
                    for (i, o) in orow.iter_mut().enumerate() {
                        *o = scales[i] * a * T::acc_f32(acc[i]) + bias;
                    }
                }
            }
        })
    });
    let mut out = vec![0.0f32; n * g.rows];
    for kk in 0..g.rows {
        for i in 0..n {
            out[i * g.rows + kk] = tmp[kk * n + i];
        }
    }
    Tensor::from_vec(vec![n, g.rows], out)
}

// ---------------------------------------------------------------------------
// f32 fallback path (full precision, raw-input stems, > 16 bits)
// ---------------------------------------------------------------------------

/// Quantizes activations at the requested granularity on the f32 path.
/// `PerSample` slices keep serving outputs bit-identical to batch-of-one
/// forwards; full-precision bit-widths pass through unchanged either way.
fn quantize_acts_f32(x: &Tensor, bits: BitWidth, quantizer: Quantizer, aq: ActQuant) -> Tensor {
    match aq {
        ActQuant::PerBatch => quantizer.quantize_activations_tensor(x, bits),
        ActQuant::PerSample => {
            let n = x.dims()[0];
            let sample_len = x.len() / n.max(1);
            let mut data = Vec::with_capacity(x.len());
            for i in 0..n {
                let sample = Tensor::from_vec(
                    vec![sample_len],
                    x.data()[i * sample_len..(i + 1) * sample_len].to_vec(),
                );
                data.extend_from_slice(quantizer.quantize_activations_tensor(&sample, bits).data());
            }
            Tensor::from_vec(x.dims().to_vec(), data)
        }
    }
}

/// Dispatches per-sample work on the f32 path: serial for batch 1 (keeps
/// row-level parallelism inside the matmul live), serialized under the
/// threshold, sample-parallel otherwise. All three produce identical
/// results.
fn run_samples(n: usize, flops: usize, f: impl Fn(usize) -> Vec<f32> + Sync) -> Vec<Vec<f32>> {
    if n == 1 {
        vec![f(0)]
    } else {
        gate(flops >= PAR_FLOP_THRESHOLD, || parallel_map_indexed(n, &f))
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_conv(
    gemm: &PackedGemm,
    cg: usize,
    r: usize,
    s: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    quantize_input: bool,
    x: &Tensor,
    bits: BitWidth,
    quantizer: Quantizer,
    aq: ActQuant,
) -> Tensor {
    let dims = x.dims();
    assert_eq!(dims.len(), 4, "conv input must be rank 4");
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(c, cg * groups, "conv input channel mismatch");

    if gemm.storage.is_integer() {
        return match gemm.accum {
            Accum::F32 => {
                conv_int::<TierF32>(gemm, cg, r, s, stride, pad, groups, x, bits, quantizer, aq)
            }
            Accum::I32 => {
                conv_int::<TierI32>(gemm, cg, r, s, stride, pad, groups, x, bits, quantizer, aq)
            }
            Accum::I64 => {
                conv_int::<TierI64>(gemm, cg, r, s, stride, pad, groups, x, bits, quantizer, aq)
            }
        };
    }

    let Storage::F32(wdata) = &gemm.storage else {
        unreachable!("non-integer storage is f32");
    };
    let k = gemm.rows;
    let kg = k / groups;
    let oh = (h + 2 * pad - r) / stride + 1;
    let ow = (w + 2 * pad - s) / stride + 1;
    let ncols = oh * ow;
    let flops = 2 * n * k * gemm.cols * ncols;
    let xq = if quantize_input {
        quantize_acts_f32(x, bits, quantizer, aq)
    } else {
        x.clone()
    };

    if groups == c && cg == 1 && kg == 1 {
        // Depthwise fast path, f32 flavour: direct per-plane taps instead
        // of c one-row GEMMs over 1-channel patch matrices.
        let mut out = vec![0.0f32; n * k * ncols];
        gate(flops >= PAR_FLOP_THRESHOLD, || {
            par_chunks_mut(&mut out, ncols, |ci, orow| {
                let (i, ch) = (ci / c, ci % c);
                let plane = &xq.data()[(i * c + ch) * h * w..(i * c + ch + 1) * h * w];
                let wrow = &wdata[ch * gemm.cols..(ch + 1) * gemm.cols];
                let (a, bias) = (gemm.scale[ch], gemm.bias[ch]);
                let mut jp = 0usize;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ki in 0..r {
                            let iy = (oy * stride + ki) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kj in 0..s {
                                let ix = (ox * stride + kj) as isize - pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += wrow[ki * s + kj] * plane[iy as usize * w + ix as usize];
                            }
                        }
                        orow[jp] = a * acc + bias;
                        jp += 1;
                    }
                }
            })
        });
        return Tensor::from_vec(vec![n, k, oh, ow], out);
    }

    let wgs: Vec<Tensor> = (0..groups)
        .map(|gi| {
            let start = gi * kg * gemm.cols;
            Tensor::from_vec(
                vec![kg, gemm.cols],
                wdata[start..start + kg * gemm.cols].to_vec(),
            )
        })
        .collect();
    let sample = |i: usize| -> Vec<f32> {
        let mut out_i = vec![0.0f32; k * ncols];
        for gi in 0..groups {
            let base = (i * c + gi * cg) * h * w;
            let (cols_t, _, _) = im2col(
                &xq.data()[base..base + cg * h * w],
                cg,
                h,
                w,
                r,
                s,
                stride,
                pad,
            );
            let mm = wgs[gi].matmul(&cols_t);
            let og = &mut out_i[gi * kg * ncols..(gi + 1) * kg * ncols];
            for kk in 0..kg {
                let row = gi * kg + kk;
                let (a, b) = (gemm.scale[row], gemm.bias[row]);
                for (o, &v) in og[kk * ncols..(kk + 1) * ncols]
                    .iter_mut()
                    .zip(&mm.data()[kk * ncols..(kk + 1) * ncols])
                {
                    *o = a * v + b;
                }
            }
        }
        out_i
    };
    let outs = run_samples(n, flops, sample);
    let mut data = Vec::with_capacity(n * k * ncols);
    for o in outs {
        data.extend(o);
    }
    Tensor::from_vec(vec![n, k, oh, ow], data)
}

fn exec_linear(
    g: &PackedGemm,
    x: &Tensor,
    bits: BitWidth,
    quantizer: Quantizer,
    aq: ActQuant,
) -> Tensor {
    let dims = x.dims();
    assert_eq!(dims.len(), 2, "linear input must be rank 2");
    let (n, f) = (dims[0], dims[1]);
    assert_eq!(f, g.cols, "linear in-feature mismatch");

    if g.storage.is_integer() {
        return match g.accum {
            Accum::F32 => linear_int::<TierF32>(g, x, bits, quantizer, aq),
            Accum::I32 => linear_int::<TierI32>(g, x, bits, quantizer, aq),
            Accum::I64 => linear_int::<TierI64>(g, x, bits, quantizer, aq),
        };
    }

    let Storage::F32(wdata) = &g.storage else {
        unreachable!("non-integer storage is f32");
    };
    let fp = bits.is_full_precision() || matches!(quantizer, Quantizer::Identity);
    let xq = if fp {
        x.clone()
    } else {
        quantize_acts_f32(x, bits, quantizer, aq)
    };
    // Each matmul output row reads only its own lhs row (fixed k-block
    // order), so batching samples as rows keeps every row bit-identical
    // to a batch-of-one product — no per-sample split needed here.
    let mut wt = vec![0.0f32; f * g.rows];
    for kk in 0..g.rows {
        for p in 0..f {
            wt[p * g.rows + kk] = wdata[kk * f + p];
        }
    }
    let mm = xq.matmul(&Tensor::from_vec(vec![f, g.rows], wt));
    let mut out = mm.data().to_vec();
    for i in 0..n {
        for (kk, o) in out[i * g.rows..(i + 1) * g.rows].iter_mut().enumerate() {
            *o = g.scale[kk] * *o + g.bias[kk];
        }
    }
    Tensor::from_vec(vec![n, g.rows], out)
}
