//! Packed-network execution: exact integer/f32-lane GEMM kernels for
//! packed layers, f32 fallbacks for unpacked ones, activation
//! re-quantization between layers.
//!
//! The engine is **batch-aware**: a multi-sample input runs one kernel
//! invocation per layer — weight rows are decoded once for the whole
//! batch, per-column activation sums are computed once per (sample,
//! group) patch matrix, and the parallel split distributes over
//! `samples × output rows` so small layers still saturate threads.
//! Because every accumulator tier computes an *exact* sum (integers, or
//! f32 lanes bounded below 2^24), batching never changes a sample's
//! result: with per-sample activation scales ([`ActQuant::PerSample`])
//! each sample's output is bit-identical to running it alone.
//!
//! Determinism contract (mirrors `instantnet-tensor`): accumulation is
//! exact, dequantization is elementwise, and every parallel region
//! assigns disjoint output slices by index — results are bit-identical at
//! any thread count.

use crate::{Accum, PackedGemm, PackedOp, Storage};
use instantnet_nn::layers::Activation;
use instantnet_parallel::{gate, par_chunks_mut, parallel_map_indexed};
use instantnet_quant::{BitWidth, Quantizer};
use instantnet_tensor::tensor::{im2col, im2col_generic};
use instantnet_tensor::Tensor;

/// Work threshold below which kernels run single-threaded (same policy and
/// value as the tensor crate's, which is crate-private there).
const PAR_FLOP_THRESHOLD: usize = 1 << 18;

/// Granularity of the data-dependent activation scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ActQuant {
    /// One scale over the whole input tensor, batch dimension included —
    /// the fake-quant training semantics ([`crate::PackedModel::forward`]).
    PerBatch,
    /// One scale per dim-0 sample — the serving semantics
    /// ([`crate::PackedModel::forward_batch`]): aggregated requests are
    /// quantized independently, so each sample's output is bit-identical
    /// to a batch-of-one forward of that sample.
    PerSample,
}

/// Runs `ops` in order over `x`.
pub(crate) fn exec_ops(
    ops: &[PackedOp],
    x: &Tensor,
    bits: BitWidth,
    quantizer: Quantizer,
    aq: ActQuant,
) -> Tensor {
    let mut cur = x.clone();
    for op in ops {
        cur = exec_op(op, &cur, bits, quantizer, aq);
    }
    cur
}

fn exec_op(
    op: &PackedOp,
    x: &Tensor,
    bits: BitWidth,
    quantizer: Quantizer,
    aq: ActQuant,
) -> Tensor {
    match op {
        PackedOp::Conv {
            gemm,
            cg,
            r,
            s,
            stride,
            pad,
            groups,
            quantize_input,
        } => exec_conv(
            gemm,
            *cg,
            *r,
            *s,
            *stride,
            *pad,
            *groups,
            *quantize_input,
            x,
            bits,
            quantizer,
            aq,
        ),
        PackedOp::Linear { gemm } => exec_linear(gemm, x, bits, quantizer, aq),
        PackedOp::Act(a) => match a {
            Activation::Relu => x.map(|v| v.max(0.0)),
            Activation::Relu6 => x.map(|v| v.clamp(0.0, 6.0)),
            Activation::None => x.clone(),
        },
        PackedOp::GlobalAvgPool => global_avg_pool(x),
        PackedOp::Residual {
            body,
            shortcut,
            post_relu,
        } => {
            let b = exec_ops(body, x, bits, quantizer, aq);
            let s = if shortcut.is_empty() {
                x.clone()
            } else {
                exec_ops(shortcut, x, bits, quantizer, aq)
            };
            assert_eq!(b.dims(), s.dims(), "residual branch shapes must match");
            let mut data: Vec<f32> = b
                .data()
                .iter()
                .zip(s.data())
                .map(|(&u, &v)| u + v)
                .collect();
            if *post_relu {
                for v in &mut data {
                    *v = v.max(0.0);
                }
            }
            Tensor::from_vec(b.dims().to_vec(), data)
        }
    }
}

fn global_avg_pool(x: &Tensor) -> Tensor {
    let dims = x.dims();
    assert_eq!(dims.len(), 4, "global average pool input must be rank 4");
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let hw = h * w;
    let inv = 1.0 / hw as f32;
    let mut out = vec![0.0f32; n * c];
    for i in 0..n {
        for ch in 0..c {
            let base = (i * c + ch) * hw;
            let mut acc = 0.0f32;
            for &v in &x.data()[base..base + hw] {
                acc += v;
            }
            out[i * c + ch] = acc * inv;
        }
    }
    Tensor::from_vec(vec![n, c], out)
}

// ---------------------------------------------------------------------------
// Accumulator tiers
// ---------------------------------------------------------------------------

/// One exact accumulator tier of the packed GEMM: the lane type codes
/// travel in (`Code`), the type partial sums reduce into (`Acc`), and the
/// type column sums reduce into (`Cs`). Every tier computes the *same
/// exact value* — f32 arithmetic on integers below 2^24 is lossless — so
/// results are independent of the tier's internal order, the batch
/// packing, and the thread count.
trait Tier: Sync {
    type Code: Copy + Default + Send + Sync;
    type Acc: Copy + Default;
    type Cs: Copy + Default;

    fn code(c: i32) -> Self::Code;
    /// Decodes one weight row of `cols` codes into `out`.
    fn decode_row(storage: &Storage, row: usize, cols: usize, out: &mut [Self::Code]);
    /// `acc[j] += Σ_p wrow[p] · acts[p · acc.len() + j]`, exactly.
    fn accumulate(acc: &mut [Self::Acc], wrow: &[Self::Code], acts: &[Self::Code]);
    fn mad(acc: Self::Acc, w: Self::Code, a: Self::Code) -> Self::Acc;
    fn cs_add(cs: Self::Cs, a: Self::Code) -> Self::Cs;
    fn acc_f32(a: Self::Acc) -> f32;
    fn cs_f32(c: Self::Cs) -> f32;

    /// Per-column sums of a `[rows, ncols]` code block (the colsum
    /// correction input, consumed by offset-carrying layers).
    fn colsums(acts: &[Self::Code], rows: usize, ncols: usize) -> Vec<f32> {
        let mut cs = vec![Self::Cs::default(); ncols];
        for p in 0..rows {
            for (o, &v) in cs.iter_mut().zip(&acts[p * ncols..(p + 1) * ncols]) {
                *o = Self::cs_add(*o, v);
            }
        }
        cs.into_iter().map(Self::cs_f32).collect()
    }
}

/// Bound < 2^24: exact f32 lanes (vectorizes on baseline x86-64, which
/// has no packed i32 multiply).
struct TierF32;
/// Bound ≤ i32::MAX / 2: native i32.
struct TierI32;
/// Anything wider (12/16-bit layers with long reductions).
struct TierI64;

impl Tier for TierF32 {
    type Code = f32;
    type Acc = f32;
    type Cs = f32;

    fn code(c: i32) -> f32 {
        c as f32
    }
    fn decode_row(storage: &Storage, row: usize, cols: usize, out: &mut [f32]) {
        storage.decode_row_f32(row, cols, out);
    }
    fn accumulate(acc: &mut [f32], wrow: &[f32], acts: &[f32]) {
        (crate::simd::kernels().accumulate_f32)(acc, wrow, acts);
    }
    fn mad(acc: f32, w: f32, a: f32) -> f32 {
        acc + w * a
    }
    fn cs_add(cs: f32, a: f32) -> f32 {
        cs + a
    }
    fn acc_f32(a: f32) -> f32 {
        a
    }
    fn cs_f32(c: f32) -> f32 {
        c
    }
}

impl Tier for TierI32 {
    type Code = i32;
    type Acc = i32;
    // i64 column sums guard 16-bit × long-reduction overflow (shared with
    // the i64 tier; cheap relative to the multiply loop).
    type Cs = i64;

    fn code(c: i32) -> i32 {
        c
    }
    fn decode_row(storage: &Storage, row: usize, cols: usize, out: &mut [i32]) {
        storage.decode_row(row, cols, out);
    }
    fn accumulate(acc: &mut [i32], wrow: &[i32], acts: &[i32]) {
        (crate::simd::kernels().accumulate_i32)(acc, wrow, acts);
    }
    fn mad(acc: i32, w: i32, a: i32) -> i32 {
        acc + w * a
    }
    fn cs_add(cs: i64, a: i32) -> i64 {
        cs + i64::from(a)
    }
    fn acc_f32(a: i32) -> f32 {
        a as f32
    }
    fn cs_f32(c: i64) -> f32 {
        c as f32
    }
}

impl Tier for TierI64 {
    type Code = i32;
    type Acc = i64;
    type Cs = i64;

    fn code(c: i32) -> i32 {
        c
    }
    fn decode_row(storage: &Storage, row: usize, cols: usize, out: &mut [i32]) {
        storage.decode_row(row, cols, out);
    }
    fn accumulate(acc: &mut [i64], wrow: &[i32], acts: &[i32]) {
        (crate::simd::kernels().accumulate_i64)(acc, wrow, acts);
    }
    fn mad(acc: i64, w: i32, a: i32) -> i64 {
        acc + i64::from(w) * i64::from(a)
    }
    fn cs_add(cs: i64, a: i32) -> i64 {
        cs + i64::from(a)
    }
    fn acc_f32(a: i64) -> f32 {
        a as f32
    }
    fn cs_f32(c: i64) -> f32 {
        c as f32
    }
}

// ---------------------------------------------------------------------------
// Accumulate kernels (scalar backend — the portable baseline every target
// can run; crate::simd selects between these and the AVX2 kernels)
// ---------------------------------------------------------------------------

/// Column-block width of the integer accumulate kernels: 8 independent
/// accumulator lanes live in registers across the whole reduction, so the
/// inner loop has no accumulator load/store traffic and enough
/// instruction-level parallelism to keep integer pipes full (the wide
/// tiers' answer to the f32 tier's SIMD lanes).
const I32_LANES: usize = 8;
/// i64 lanes are twice as wide, so half as many keep register pressure
/// equivalent.
const I64_LANES: usize = 4;

/// Shared scalar tail of every blocked accumulate kernel: the columns past
/// the last full lane block each walk the `[rows, ncols]` activation block
/// at a hoisted stride of `ncols`. The scalar reference kernels below and
/// the SIMD kernels' ragged tails (`crate::simd`) all delegate here — PR 6
/// left this loop hand-expanded in three near-identical copies.
///
/// The partial sum starts from the additive identity and is added to
/// `acc[j]` once at the end, exactly like the in-register lane blocks, so
/// tail columns see the same association order as blocked ones (exact for
/// integers by associativity, exact for the f32 tier by the sub-2^24
/// bound).
pub(crate) fn accumulate_col_tail<C: Copy, A: Copy + Default + std::ops::Add<Output = A>>(
    acc: &mut [A],
    wrow: &[C],
    acts: &[C],
    start: usize,
    mad: impl Fn(A, C, C) -> A,
) {
    let ncols = acc.len();
    for (j, a) in acc.iter_mut().enumerate().skip(start) {
        let mut lane = A::default();
        let mut idx = j;
        for &wv in wrow {
            lane = mad(lane, wv, acts[idx]);
            idx += ncols;
        }
        *a = *a + lane;
    }
}

/// Column-register-blocked reduction shared by the integer scalar kernels:
/// each block of `LANES` output columns runs the full reduction with its
/// partial sums held in a local array (the wide tiers' answer to the f32
/// tier's SIMD lanes), row strides hoisted to a running offset, and the
/// ragged tail falling through to [`accumulate_col_tail`].
fn accumulate_blocked_scalar<C, A, const LANES: usize>(
    acc: &mut [A],
    wrow: &[C],
    acts: &[C],
    mad: impl Fn(A, C, C) -> A + Copy,
) where
    C: Copy,
    A: Copy + Default + std::ops::Add<Output = A>,
{
    let ncols = acc.len();
    let mut j = 0usize;
    while j + LANES <= ncols {
        let mut lanes = [A::default(); LANES];
        let mut base = j;
        for &wv in wrow {
            let a = &acts[base..base + LANES];
            for (l, &av) in lanes.iter_mut().zip(a) {
                *l = mad(*l, wv, av);
            }
            base += ncols;
        }
        for (o, l) in acc[j..j + LANES].iter_mut().zip(lanes) {
            *o = *o + l;
        }
        j += LANES;
    }
    accumulate_col_tail(acc, wrow, acts, j, mad);
}

/// `acc[j] += Σ_p wrow[p] · acts[p][j]` in i32 — the native narrow tier.
pub(crate) fn accumulate_i32_scalar(acc: &mut [i32], wrow: &[i32], acts: &[i32]) {
    accumulate_blocked_scalar::<_, _, I32_LANES>(acc, wrow, acts, |l, w, a| l + w * a);
}

/// i64 variant for 12/16-bit layers whose partial sums can overflow i32.
pub(crate) fn accumulate_i64_scalar(acc: &mut [i64], wrow: &[i32], acts: &[i32]) {
    accumulate_blocked_scalar::<_, _, I64_LANES>(acc, wrow, acts, |l, w, a| {
        l + i64::from(w) * i64::from(a)
    });
}

/// Exact-f32 variant: codes are small integers, so every product and
/// partial sum stays below 2^24 and the arithmetic is lossless — same
/// integer result, but f32 lanes vectorize on targets whose baseline ISA
/// has no packed i32 multiply. Four weight rows per pass for
/// instruction-level parallelism.
pub(crate) fn accumulate_f32_scalar(acc: &mut [f32], wrow: &[f32], acts: &[f32]) {
    let ncols = acc.len();
    let mut quads = wrow.chunks_exact(4);
    let mut base = 0usize;
    for w in quads.by_ref() {
        let (a0, rest) = acts[base..base + 4 * ncols].split_at(ncols);
        let (a1, rest) = rest.split_at(ncols);
        let (a2, a3) = rest.split_at(ncols);
        let (w0, w1, w2, w3) = (w[0], w[1], w[2], w[3]);
        for (j, o) in acc.iter_mut().enumerate() {
            *o += w0 * a0[j] + w1 * a1[j] + w2 * a2[j] + w3 * a3[j];
        }
        base += 4 * ncols;
    }
    for &wv in quads.remainder() {
        let a = &acts[base..base + ncols];
        for (o, &av) in acc.iter_mut().zip(a) {
            *o += wv * av;
        }
        base += ncols;
    }
}

// ---------------------------------------------------------------------------
// Batched integer execution
// ---------------------------------------------------------------------------

/// Quantizes the batch to codes (converted by `conv` into whatever lane
/// type the caller's kernel consumes) plus one decode scale per sample
/// (`PerBatch` replicates the single whole-tensor scale). Shared between
/// the tier path ([`sample_codes`]) and the fused path, which narrows
/// codes to `i8`/`i16` lanes instead.
fn sample_codes_as<L: Copy + Send>(
    x: &Tensor,
    n: usize,
    sample_len: usize,
    bits: BitWidth,
    quantizer: Quantizer,
    aq: ActQuant,
    conv: impl Fn(i32) -> L + Sync,
) -> (Vec<L>, Vec<f32>) {
    match aq {
        ActQuant::PerBatch => {
            let ac = quantizer
                .activation_codes(x.data(), bits)
                .expect("integer storage implies quantized activations");
            (
                ac.codes.iter().map(|&v| conv(v)).collect(),
                vec![ac.scale; n],
            )
        }
        ActQuant::PerSample => {
            let per = gate(n * sample_len >= PAR_FLOP_THRESHOLD, || {
                parallel_map_indexed(n, |i| {
                    quantizer
                        .activation_codes(&x.data()[i * sample_len..(i + 1) * sample_len], bits)
                        .expect("integer storage implies quantized activations")
                })
            });
            let mut codes = Vec::with_capacity(n * sample_len);
            let mut scales = Vec::with_capacity(n);
            for ac in per {
                codes.extend(ac.codes.iter().map(|&v| conv(v)));
                scales.push(ac.scale);
            }
            (codes, scales)
        }
    }
}

/// Quantizes the batch to tier codes plus per-sample decode scales.
fn sample_codes<T: Tier>(
    x: &Tensor,
    n: usize,
    sample_len: usize,
    bits: BitWidth,
    quantizer: Quantizer,
    aq: ActQuant,
) -> (Vec<T::Code>, Vec<f32>) {
    sample_codes_as(x, n, sample_len, bits, quantizer, aq, T::code)
}

/// Decodes the whole packed weight matrix once per forward; the decoded
/// rows are shared by every sample of the batch (and by every chunk of
/// the parallel GEMM), so decode cost is independent of the batch size.
fn decode_all<T: Tier>(storage: &Storage, rows: usize, cols: usize) -> Vec<T::Code> {
    let mut out = vec![T::Code::default(); rows * cols];
    for (row, chunk) in out.chunks_mut(cols).enumerate() {
        T::decode_row(storage, row, cols, chunk);
    }
    out
}

/// Batched integer conv: per-sample activation codes, per-(sample, group)
/// `im2col` patch matrices and column sums computed once per forward, and
/// one GEMM parallelized over `samples × output rows` (each chunk is one
/// output row of one sample — disjoint writes, deterministic).
///
/// The pack-time accumulator tier stays safe at any batch size: batching
/// adds GEMM *columns* (more output pixels), never reduction *length*, so
/// the worst-case partial-sum bound `max|w|·max|a|·cols` is unchanged.
#[allow(clippy::too_many_arguments)]
fn conv_int<T: Tier>(
    gemm: &PackedGemm,
    cg: usize,
    r: usize,
    s: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    x: &Tensor,
    bits: BitWidth,
    quantizer: Quantizer,
    aq: ActQuant,
) -> Tensor {
    let dims = x.dims();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let k = gemm.rows;
    let kg = k / groups;
    let oh = (h + 2 * pad - r) / stride + 1;
    let ow = (w + 2 * pad - s) / stride + 1;
    let ncols = oh * ow;
    let chw = c * h * w;

    let (codes, scales) = sample_codes::<T>(x, n, chw, bits, quantizer, aq);

    if groups == c && cg == 1 && kg == 1 {
        return conv_dw_int::<T>(gemm, r, s, stride, pad, &codes, &scales, n, c, h, w, oh, ow);
    }

    // Patch matrices, one `[cols, ncols]` block per (sample, group).
    let blocks: Vec<Vec<T::Code>> =
        gate(n * groups * gemm.cols * ncols >= PAR_FLOP_THRESHOLD, || {
            parallel_map_indexed(n * groups, |e| {
                let (i, gi) = (e / groups, e % groups);
                let base = (i * c + gi * cg) * h * w;
                im2col_generic(&codes[base..base + cg * h * w], cg, h, w, r, s, stride, pad).0
            })
        });
    let colsums: Option<Vec<Vec<f32>>> = gemm.has_offset.then(|| {
        blocks
            .iter()
            .map(|b| T::colsums(b, gemm.cols, ncols))
            .collect()
    });
    let wdec = decode_all::<T>(&gemm.storage, k, gemm.cols);

    let mut out = vec![0.0f32; n * k * ncols];
    let flops = 2 * n * k * gemm.cols * ncols;
    gate(flops >= PAR_FLOP_THRESHOLD, || {
        par_chunks_mut(&mut out, ncols, |ci, orow| {
            let (i, row) = (ci / k, ci % k);
            let gi = row / kg;
            let block = &blocks[i * groups + gi];
            let mut acc = vec![T::Acc::default(); ncols];
            T::accumulate(
                &mut acc,
                &wdec[row * gemm.cols..(row + 1) * gemm.cols],
                block,
            );
            let (a, bias, bco, sa) = (
                gemm.scale[row],
                gemm.bias[row],
                gemm.colsum_coef[row],
                scales[i],
            );
            match &colsums {
                Some(cs) => {
                    let cs = &cs[i * groups + gi];
                    for (j, o) in orow.iter_mut().enumerate() {
                        *o = sa * (a * T::acc_f32(acc[j]) + bco * cs[j]) + bias;
                    }
                }
                None => {
                    for (o, &v) in orow.iter_mut().zip(&acc) {
                        *o = sa * a * T::acc_f32(v) + bias;
                    }
                }
            }
        })
    });
    Tensor::from_vec(vec![n, k, oh, ow], out)
}

/// Depthwise fast path (`groups == channels`): no patch matrix, no
/// 1-column-per-group GEMM — each (sample, channel) chunk convolves its
/// input plane directly, accumulating taps in `im2col` row order so the
/// exact integer result matches the generic path bit for bit.
#[allow(clippy::too_many_arguments)]
fn conv_dw_int<T: Tier>(
    gemm: &PackedGemm,
    r: usize,
    s: usize,
    stride: usize,
    pad: usize,
    codes: &[T::Code],
    scales: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
) -> Tensor {
    let ncols = oh * ow;
    let wdec = decode_all::<T>(&gemm.storage, gemm.rows, gemm.cols);
    let mut out = vec![0.0f32; n * c * ncols];
    let flops = 2 * n * c * r * s * ncols;
    gate(flops >= PAR_FLOP_THRESHOLD, || {
        par_chunks_mut(&mut out, ncols, |ci, orow| {
            let (i, ch) = (ci / c, ci % c);
            let plane = &codes[(i * c + ch) * h * w..(i * c + ch + 1) * h * w];
            let wrow = &wdec[ch * gemm.cols..(ch + 1) * gemm.cols];
            let (a, bias, bco, sa) = (
                gemm.scale[ch],
                gemm.bias[ch],
                gemm.colsum_coef[ch],
                scales[i],
            );
            let mut jp = 0usize;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = T::Acc::default();
                    let mut cs = T::Cs::default();
                    for ki in 0..r {
                        let iy = (oy * stride + ki) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kj in 0..s {
                            let ix = (ox * stride + kj) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let av = plane[iy as usize * w + ix as usize];
                            acc = T::mad(acc, wrow[ki * s + kj], av);
                            cs = T::cs_add(cs, av);
                        }
                    }
                    orow[jp] = if gemm.has_offset {
                        sa * (a * T::acc_f32(acc) + bco * T::cs_f32(cs)) + bias
                    } else {
                        sa * a * T::acc_f32(acc) + bias
                    };
                    jp += 1;
                }
            }
        })
    });
    Tensor::from_vec(vec![n, c, oh, ow], out)
}

/// Batched integer linear: samples travel as GEMM columns (codes
/// transposed to `[features, n]`), so one weight-row decode serves the
/// whole batch and the dequant applies each column's own sample scale.
fn linear_int<T: Tier>(
    g: &PackedGemm,
    x: &Tensor,
    bits: BitWidth,
    quantizer: Quantizer,
    aq: ActQuant,
) -> Tensor {
    let (n, f) = (x.dims()[0], x.dims()[1]);
    let (codes, scales) = sample_codes::<T>(x, n, f, bits, quantizer, aq);
    // Per-sample colsum = the transposed GEMM's per-column sum.
    let colsums: Option<Vec<f32>> = g.has_offset.then(|| {
        (0..n)
            .map(|i| {
                let mut cs = T::Cs::default();
                for &v in &codes[i * f..(i + 1) * f] {
                    cs = T::cs_add(cs, v);
                }
                T::cs_f32(cs)
            })
            .collect()
    });
    let mut tcodes = vec![T::Code::default(); f * n];
    for i in 0..n {
        for p in 0..f {
            tcodes[p * n + i] = codes[i * f + p];
        }
    }
    let mut tmp = vec![0.0f32; g.rows * n];
    let flops = 2 * g.rows * f * n;
    gate(flops >= PAR_FLOP_THRESHOLD, || {
        par_chunks_mut(&mut tmp, n, |row, orow| {
            let mut wrow = vec![T::Code::default(); f];
            T::decode_row(&g.storage, row, f, &mut wrow);
            let mut acc = vec![T::Acc::default(); n];
            T::accumulate(&mut acc, &wrow, &tcodes);
            let (a, bias, bco) = (g.scale[row], g.bias[row], g.colsum_coef[row]);
            match &colsums {
                Some(cs) => {
                    for (i, o) in orow.iter_mut().enumerate() {
                        *o = scales[i] * (a * T::acc_f32(acc[i]) + bco * cs[i]) + bias;
                    }
                }
                None => {
                    for (i, o) in orow.iter_mut().enumerate() {
                        *o = scales[i] * a * T::acc_f32(acc[i]) + bias;
                    }
                }
            }
        })
    });
    let mut out = vec![0.0f32; n * g.rows];
    for kk in 0..g.rows {
        for i in 0..n {
            out[i * g.rows + kk] = tmp[kk * n + i];
        }
    }
    Tensor::from_vec(vec![n, g.rows], out)
}

// ---------------------------------------------------------------------------
// Fused low-bit execution (≤ 8-bit storage: multiply on packed codes)
// ---------------------------------------------------------------------------

/// One fused-kernel flavour: which lane type activations narrow to, how
/// many reduction rows pack into one weight word, and how the word is
/// built. The fused kernels multiply directly on (re-)packed codes —
/// nibble weights ride as `w + 8 ∈ [0, 15]` unsigned bytes so they can sit
/// on `maddubs`' unsigned operand, and the shift is undone by an exact
/// integer `-8·colsum` correction before dequant (DESIGN.md §6g has the
/// overflow-bound argument; `PackedGemm::fused` gates eligibility at pack
/// time).
trait FusedTier {
    /// Narrowed activation lane: `i8` for nibble weights (|a| ≤ 15 at
    /// ≤ 4 bits), `i16` for i8 weights (|a| ≤ 255 at ≤ 8 bits).
    type Lane: Copy + Default + Send + Sync + Into<i32>;
    /// Reduction rows per packed weight word (4 bytes / 2 i16 halves).
    const GROUP: usize;
    /// Shift added to every weight code at word-pack time; the kernel's
    /// accumulator is off by `WEIGHT_BIAS · colsum` per column, which the
    /// driver subtracts exactly in i32.
    const WEIGHT_BIAS: i32;
    fn lane(code: i32) -> Self::Lane;
    /// The active backend's fused kernel, or `None` (scalar backend) —
    /// callers fall back to the decode-then-multiply tier path.
    fn kernel() -> Option<crate::simd::FusedKernel<Self::Lane>>;
    /// Packs one decoded weight row (plus `WEIGHT_BIAS`) into
    /// [`Self::GROUP`]-wide little-endian words; the final partial word
    /// pads with shifted-zero codes, which meet only zero-padded
    /// activation lanes.
    fn pack_wrow(wrow: &[i32], out: &mut Vec<u32>);
}

/// Nibble storage (≤ 4-bit weights): `maddubs`-class kernels.
struct FusedNibble;
/// I8 storage (5–8-bit weights): `madd`-on-i16-pairs kernels.
struct FusedI8;

impl FusedTier for FusedNibble {
    type Lane = i8;
    const GROUP: usize = 4;
    const WEIGHT_BIAS: i32 = 8;
    fn lane(code: i32) -> i8 {
        code as i8
    }
    fn kernel() -> Option<crate::simd::FusedKernel<i8>> {
        crate::simd::kernels().gemm_nibble
    }
    fn pack_wrow(wrow: &[i32], out: &mut Vec<u32>) {
        for quad in wrow.chunks(4) {
            let mut word = 0u32;
            for (k, &c) in quad.iter().enumerate() {
                // Codes sit in [-8, 7], so w + 8 ∈ [0, 15] fits unsigned.
                word |= (((c + 8) as u8) as u32) << (8 * k);
            }
            out.push(word);
        }
    }
}

impl FusedTier for FusedI8 {
    type Lane = i16;
    const GROUP: usize = 2;
    const WEIGHT_BIAS: i32 = 0;
    fn lane(code: i32) -> i16 {
        code as i16
    }
    fn kernel() -> Option<crate::simd::FusedKernel<i16>> {
        crate::simd::kernels().gemm_i8
    }
    fn pack_wrow(wrow: &[i32], out: &mut Vec<u32>) {
        for pair in wrow.chunks(2) {
            let lo = u32::from(pair[0] as i16 as u16);
            let hi = pair.get(1).map_or(0, |&c| u32::from(c as i16 as u16));
            out.push(lo | (hi << 16));
        }
    }
}

/// Repacks a `[rows, ncols]` activation block into the fused layout: rows
/// group `G` at a time and each group's lanes sit adjacent per column
/// (`out[(q·ncols + j)·G + k] = block[(q·G + k)·ncols + j]`), with the
/// final partial group zero-padded. One contiguous load then feeds a whole
/// weight word's worth of multiplies per column block.
fn interleave_block<L: Copy + Default>(block: &[L], rows: usize, ncols: usize, g: usize) -> Vec<L> {
    let groups = rows.div_ceil(g);
    let mut out = vec![L::default(); groups * g * ncols];
    for p in 0..rows {
        let (q, k) = (p / g, p % g);
        let src = &block[p * ncols..(p + 1) * ncols];
        let dst = &mut out[q * g * ncols..(q + 1) * g * ncols];
        for (j, &v) in src.iter().enumerate() {
            dst[j * g + k] = v;
        }
    }
    out
}

/// Exact i32 per-column sums of an interleaved block (zero padding adds
/// nothing). Feeds the `-WEIGHT_BIAS·colsum` re-centering correction and
/// the offset dequant term; `PackedGemm::fused` guarantees the sums fit.
fn colsums_i32<L: Copy + Into<i32>>(inter: &[L], ncols: usize, g: usize) -> Vec<i32> {
    let mut cs = vec![0i32; ncols];
    for gchunk in inter.chunks(g * ncols) {
        for (j, lanes) in gchunk.chunks(g).enumerate() {
            for &v in lanes {
                cs[j] += v.into();
            }
        }
    }
    cs
}

/// Decodes and word-packs the whole weight matrix once per forward
/// (mirrors [`decode_all`]: the words are shared by every sample and every
/// parallel chunk). Each row spans `cols.div_ceil(GROUP)` words.
fn pack_weight_words<F: FusedTier>(storage: &Storage, rows: usize, cols: usize) -> Vec<u32> {
    let mut wrow = vec![0i32; cols];
    let mut out = Vec::with_capacity(rows * cols.div_ceil(F::GROUP));
    for row in 0..rows {
        storage.decode_row(row, cols, &mut wrow);
        F::pack_wrow(&wrow, &mut out);
    }
    out
}

/// Fused ≤ 8-bit conv: same structure as [`conv_int`], but the GEMM
/// multiplies on packed codes — activations narrow to the storage-matched
/// lane type and interleave once per (sample, group), weights word-pack
/// once per forward. Returns `None` when the active backend has no fused
/// kernel or the layer shape is depthwise (no patch matrix to fuse over);
/// the caller falls back to the tier path. Bit-identity with that path:
/// the kernel accumulates the exact integer sum (`PackedGemm::fused`
/// bounds it inside i32), the correction is exact integer arithmetic, and
/// the dequant expressions below match the tier path's term for term with
/// `i32 → f32` casts that round identically to every tier's `acc_f32`.
#[allow(clippy::too_many_arguments)]
fn conv_fused<F: FusedTier>(
    gemm: &PackedGemm,
    cg: usize,
    r: usize,
    s: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    x: &Tensor,
    bits: BitWidth,
    quantizer: Quantizer,
    aq: ActQuant,
) -> Option<Tensor> {
    let kernel = F::kernel()?;
    let dims = x.dims();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let k = gemm.rows;
    let kg = k / groups;
    if groups == c && cg == 1 && kg == 1 {
        return None;
    }
    let oh = (h + 2 * pad - r) / stride + 1;
    let ow = (w + 2 * pad - s) / stride + 1;
    let ncols = oh * ow;
    let chw = c * h * w;

    let (codes, scales) = sample_codes_as(x, n, chw, bits, quantizer, aq, F::lane);

    // The nibble correction needs column sums even for symmetric codes.
    let need_cs = F::WEIGHT_BIAS != 0 || gemm.has_offset;
    let blocks: Vec<(Vec<F::Lane>, Vec<i32>)> =
        gate(n * groups * gemm.cols * ncols >= PAR_FLOP_THRESHOLD, || {
            parallel_map_indexed(n * groups, |e| {
                let (i, gi) = (e / groups, e % groups);
                let base = (i * c + gi * cg) * h * w;
                let (block, _, _) =
                    im2col_generic(&codes[base..base + cg * h * w], cg, h, w, r, s, stride, pad);
                let inter = interleave_block(&block, gemm.cols, ncols, F::GROUP);
                let cs = if need_cs {
                    colsums_i32(&inter, ncols, F::GROUP)
                } else {
                    Vec::new()
                };
                (inter, cs)
            })
        });
    let wwords = pack_weight_words::<F>(&gemm.storage, k, gemm.cols);
    let wstride = gemm.cols.div_ceil(F::GROUP);

    let mut out = vec![0.0f32; n * k * ncols];
    let flops = 2 * n * k * gemm.cols * ncols;
    gate(flops >= PAR_FLOP_THRESHOLD, || {
        par_chunks_mut(&mut out, ncols, |ci, orow| {
            let (i, row) = (ci / k, ci % k);
            let gi = row / kg;
            let (block, cs) = &blocks[i * groups + gi];
            let mut acc = vec![0i32; ncols];
            kernel(
                &mut acc,
                &wwords[row * wstride..(row + 1) * wstride],
                block,
                ncols,
            );
            if F::WEIGHT_BIAS != 0 {
                for (a, &c) in acc.iter_mut().zip(cs.iter()) {
                    *a -= F::WEIGHT_BIAS * c;
                }
            }
            let (a, bias, bco, sa) = (
                gemm.scale[row],
                gemm.bias[row],
                gemm.colsum_coef[row],
                scales[i],
            );
            if gemm.has_offset {
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = sa * (a * acc[j] as f32 + bco * cs[j] as f32) + bias;
                }
            } else {
                for (o, &v) in orow.iter_mut().zip(&acc) {
                    *o = sa * a * v as f32 + bias;
                }
            }
        })
    });
    Some(Tensor::from_vec(vec![n, k, oh, ow], out))
}

/// Fused ≤ 8-bit linear: samples travel as GEMM columns exactly as in
/// [`linear_int`], with the transposed code block built directly in the
/// interleaved layout. Same fallback and bit-identity contract as
/// [`conv_fused`].
fn linear_fused<F: FusedTier>(
    g: &PackedGemm,
    x: &Tensor,
    bits: BitWidth,
    quantizer: Quantizer,
    aq: ActQuant,
) -> Option<Tensor> {
    let kernel = F::kernel()?;
    let (n, f) = (x.dims()[0], x.dims()[1]);
    let (codes, scales) = sample_codes_as(x, n, f, bits, quantizer, aq, F::lane);

    let fgroups = f.div_ceil(F::GROUP);
    let mut inter = vec![F::Lane::default(); fgroups * F::GROUP * n];
    for i in 0..n {
        for (p, &v) in codes[i * f..(i + 1) * f].iter().enumerate() {
            let (q, kk) = (p / F::GROUP, p % F::GROUP);
            inter[(q * n + i) * F::GROUP + kk] = v;
        }
    }
    let cs: Vec<i32> = if F::WEIGHT_BIAS != 0 || g.has_offset {
        (0..n)
            .map(|i| codes[i * f..(i + 1) * f].iter().map(|&v| v.into()).sum())
            .collect()
    } else {
        Vec::new()
    };
    let wwords = pack_weight_words::<F>(&g.storage, g.rows, f);
    let wstride = f.div_ceil(F::GROUP);

    let mut tmp = vec![0.0f32; g.rows * n];
    let flops = 2 * g.rows * f * n;
    gate(flops >= PAR_FLOP_THRESHOLD, || {
        par_chunks_mut(&mut tmp, n, |row, orow| {
            let mut acc = vec![0i32; n];
            kernel(
                &mut acc,
                &wwords[row * wstride..(row + 1) * wstride],
                &inter,
                n,
            );
            if F::WEIGHT_BIAS != 0 {
                for (a, &c) in acc.iter_mut().zip(&cs) {
                    *a -= F::WEIGHT_BIAS * c;
                }
            }
            let (a, bias, bco) = (g.scale[row], g.bias[row], g.colsum_coef[row]);
            if g.has_offset {
                for (i, o) in orow.iter_mut().enumerate() {
                    *o = scales[i] * (a * acc[i] as f32 + bco * cs[i] as f32) + bias;
                }
            } else {
                for (i, o) in orow.iter_mut().enumerate() {
                    *o = scales[i] * a * acc[i] as f32 + bias;
                }
            }
        })
    });
    let mut out = vec![0.0f32; n * g.rows];
    for kk in 0..g.rows {
        for i in 0..n {
            out[i * g.rows + kk] = tmp[kk * n + i];
        }
    }
    Some(Tensor::from_vec(vec![n, g.rows], out))
}

// ---------------------------------------------------------------------------
// f32 fallback path (full precision, raw-input stems, > 16 bits)
// ---------------------------------------------------------------------------

/// Quantizes activations at the requested granularity on the f32 path.
/// `PerSample` slices keep serving outputs bit-identical to batch-of-one
/// forwards; full-precision bit-widths pass through unchanged either way.
fn quantize_acts_f32(x: &Tensor, bits: BitWidth, quantizer: Quantizer, aq: ActQuant) -> Tensor {
    match aq {
        ActQuant::PerBatch => quantizer.quantize_activations_tensor(x, bits),
        ActQuant::PerSample => {
            let n = x.dims()[0];
            let sample_len = x.len() / n.max(1);
            let mut data = Vec::with_capacity(x.len());
            for i in 0..n {
                let sample = Tensor::from_vec(
                    vec![sample_len],
                    x.data()[i * sample_len..(i + 1) * sample_len].to_vec(),
                );
                data.extend_from_slice(quantizer.quantize_activations_tensor(&sample, bits).data());
            }
            Tensor::from_vec(x.dims().to_vec(), data)
        }
    }
}

/// Dispatches per-sample work on the f32 path: serial for batch 1 (keeps
/// row-level parallelism inside the matmul live), serialized under the
/// threshold, sample-parallel otherwise. All three produce identical
/// results.
fn run_samples(n: usize, flops: usize, f: impl Fn(usize) -> Vec<f32> + Sync) -> Vec<Vec<f32>> {
    if n == 1 {
        vec![f(0)]
    } else {
        gate(flops >= PAR_FLOP_THRESHOLD, || parallel_map_indexed(n, &f))
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_conv(
    gemm: &PackedGemm,
    cg: usize,
    r: usize,
    s: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    quantize_input: bool,
    x: &Tensor,
    bits: BitWidth,
    quantizer: Quantizer,
    aq: ActQuant,
) -> Tensor {
    let dims = x.dims();
    assert_eq!(dims.len(), 4, "conv input must be rank 4");
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(c, cg * groups, "conv input channel mismatch");

    if gemm.storage.is_integer() {
        if gemm.fused && crate::simd::fused_gemm_enabled() {
            let fused = match &gemm.storage {
                Storage::Nibble(_) => conv_fused::<FusedNibble>(
                    gemm, cg, r, s, stride, pad, groups, x, bits, quantizer, aq,
                ),
                Storage::I8(_) => conv_fused::<FusedI8>(
                    gemm, cg, r, s, stride, pad, groups, x, bits, quantizer, aq,
                ),
                _ => None,
            };
            if let Some(y) = fused {
                return y;
            }
        }
        return match gemm.accum {
            Accum::F32 => {
                conv_int::<TierF32>(gemm, cg, r, s, stride, pad, groups, x, bits, quantizer, aq)
            }
            Accum::I32 => {
                conv_int::<TierI32>(gemm, cg, r, s, stride, pad, groups, x, bits, quantizer, aq)
            }
            Accum::I64 => {
                conv_int::<TierI64>(gemm, cg, r, s, stride, pad, groups, x, bits, quantizer, aq)
            }
        };
    }

    let Storage::F32(wdata) = &gemm.storage else {
        unreachable!("non-integer storage is f32");
    };
    let k = gemm.rows;
    let kg = k / groups;
    let oh = (h + 2 * pad - r) / stride + 1;
    let ow = (w + 2 * pad - s) / stride + 1;
    let ncols = oh * ow;
    let flops = 2 * n * k * gemm.cols * ncols;
    let xq = if quantize_input {
        quantize_acts_f32(x, bits, quantizer, aq)
    } else {
        x.clone()
    };

    if groups == c && cg == 1 && kg == 1 {
        // Depthwise fast path, f32 flavour: direct per-plane taps instead
        // of c one-row GEMMs over 1-channel patch matrices.
        let mut out = vec![0.0f32; n * k * ncols];
        gate(flops >= PAR_FLOP_THRESHOLD, || {
            par_chunks_mut(&mut out, ncols, |ci, orow| {
                let (i, ch) = (ci / c, ci % c);
                let plane = &xq.data()[(i * c + ch) * h * w..(i * c + ch + 1) * h * w];
                let wrow = &wdata[ch * gemm.cols..(ch + 1) * gemm.cols];
                let (a, bias) = (gemm.scale[ch], gemm.bias[ch]);
                let mut jp = 0usize;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ki in 0..r {
                            let iy = (oy * stride + ki) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kj in 0..s {
                                let ix = (ox * stride + kj) as isize - pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += wrow[ki * s + kj] * plane[iy as usize * w + ix as usize];
                            }
                        }
                        orow[jp] = a * acc + bias;
                        jp += 1;
                    }
                }
            })
        });
        return Tensor::from_vec(vec![n, k, oh, ow], out);
    }

    let wgs: Vec<Tensor> = (0..groups)
        .map(|gi| {
            let start = gi * kg * gemm.cols;
            Tensor::from_vec(
                vec![kg, gemm.cols],
                wdata[start..start + kg * gemm.cols].to_vec(),
            )
        })
        .collect();
    let sample = |i: usize| -> Vec<f32> {
        let mut out_i = vec![0.0f32; k * ncols];
        for gi in 0..groups {
            let base = (i * c + gi * cg) * h * w;
            let (cols_t, _, _) = im2col(
                &xq.data()[base..base + cg * h * w],
                cg,
                h,
                w,
                r,
                s,
                stride,
                pad,
            );
            let mm = wgs[gi].matmul(&cols_t);
            let og = &mut out_i[gi * kg * ncols..(gi + 1) * kg * ncols];
            for kk in 0..kg {
                let row = gi * kg + kk;
                let (a, b) = (gemm.scale[row], gemm.bias[row]);
                for (o, &v) in og[kk * ncols..(kk + 1) * ncols]
                    .iter_mut()
                    .zip(&mm.data()[kk * ncols..(kk + 1) * ncols])
                {
                    *o = a * v + b;
                }
            }
        }
        out_i
    };
    let outs = run_samples(n, flops, sample);
    let mut data = Vec::with_capacity(n * k * ncols);
    for o in outs {
        data.extend(o);
    }
    Tensor::from_vec(vec![n, k, oh, ow], data)
}

fn exec_linear(
    g: &PackedGemm,
    x: &Tensor,
    bits: BitWidth,
    quantizer: Quantizer,
    aq: ActQuant,
) -> Tensor {
    let dims = x.dims();
    assert_eq!(dims.len(), 2, "linear input must be rank 2");
    let (n, f) = (dims[0], dims[1]);
    assert_eq!(f, g.cols, "linear in-feature mismatch");

    if g.storage.is_integer() {
        if g.fused && crate::simd::fused_gemm_enabled() {
            let fused = match &g.storage {
                Storage::Nibble(_) => linear_fused::<FusedNibble>(g, x, bits, quantizer, aq),
                Storage::I8(_) => linear_fused::<FusedI8>(g, x, bits, quantizer, aq),
                _ => None,
            };
            if let Some(y) = fused {
                return y;
            }
        }
        return match g.accum {
            Accum::F32 => linear_int::<TierF32>(g, x, bits, quantizer, aq),
            Accum::I32 => linear_int::<TierI32>(g, x, bits, quantizer, aq),
            Accum::I64 => linear_int::<TierI64>(g, x, bits, quantizer, aq),
        };
    }

    let Storage::F32(wdata) = &g.storage else {
        unreachable!("non-integer storage is f32");
    };
    let fp = bits.is_full_precision() || matches!(quantizer, Quantizer::Identity);
    let xq = if fp {
        x.clone()
    } else {
        quantize_acts_f32(x, bits, quantizer, aq)
    };
    // Each matmul output row reads only its own lhs row (fixed k-block
    // order), so batching samples as rows keeps every row bit-identical
    // to a batch-of-one product — no per-sample split needed here.
    let mut wt = vec![0.0f32; f * g.rows];
    for kk in 0..g.rows {
        for p in 0..f {
            wt[p * g.rows + kk] = wdata[kk * f + p];
        }
    }
    let mm = xq.matmul(&Tensor::from_vec(vec![f, g.rows], wt));
    let mut out = mm.data().to_vec();
    for i in 0..n {
        for (kk, o) in out[i * g.rows..(i + 1) * g.rows].iter_mut().enumerate() {
            *o = g.scale[kk] * *o + g.bias[kk];
        }
    }
    Tensor::from_vec(vec![n, g.rows], out)
}
