//! The paper's comparison dataflows, re-implemented as policies over the
//! generic mapping space so Fig. 5 compares like with like.

use crate::cost::{evaluate_layer, MapError};
use crate::device::Device;
use instantnet_dataflow::{ConvDims, Dim, LoopOrder, Mapping, Tiling};
use rand::rngs::StdRng;
use rand::Rng;

/// Builds a mapping where every loop runs at the DRAM level — legal on any
/// device that can hold one element per tensor; the universal fallback.
pub fn outermost_mapping(dims: &ConvDims, pipelined: bool) -> Mapping {
    let mut dram = Tiling::unit();
    for d in Dim::ALL {
        dram.set(d, dims.bound(d));
    }
    Mapping {
        dram,
        gbuf: Tiling::unit(),
        spatial: Tiling::unit(),
        rf: Tiling::unit(),
        order_dram: LoopOrder::canonical(),
        order_gbuf: LoopOrder::canonical(),
        pipelined,
    }
}

/// Shrinks a mapping's inner tiles until it fits `device`, by migrating
/// factors outward (RF → buffer → DRAM, spatial → buffer). Returns the
/// legalized mapping (falls back to [`outermost_mapping`] after too many
/// repairs).
pub fn legalize(mut m: Mapping, dims: &ConvDims, device: &Device, bits: u8) -> Mapping {
    for _ in 0..256 {
        match evaluate_layer(dims, &m, device, bits) {
            Ok(_) => return m,
            Err(MapError::SpatialOverflow { .. }) => {
                if !shrink_level(&mut m, Shrink::Spatial) {
                    break;
                }
            }
            Err(MapError::RfOverflow { .. }) => {
                if !shrink_level(&mut m, Shrink::Rf) {
                    break;
                }
            }
            Err(MapError::GbufOverflow { .. }) => {
                if !shrink_level(&mut m, Shrink::Gbuf) {
                    break;
                }
            }
        }
    }
    outermost_mapping(dims, m.pipelined)
}

enum Shrink {
    Spatial,
    Rf,
    Gbuf,
}

/// Halves the largest factor at the offending level, pushing it one level
/// out. Returns `false` when nothing is left to shrink.
fn shrink_level(m: &mut Mapping, which: Shrink) -> bool {
    let (tiling, dest_is_gbuf): (&mut Tiling, bool) = match which {
        Shrink::Spatial => (&mut m.spatial, true),
        Shrink::Rf => (&mut m.rf, true),
        Shrink::Gbuf => (&mut m.gbuf, false),
    };
    let mut best: Option<(Dim, usize)> = None;
    for d in Dim::ALL {
        let f = tiling.factor(d);
        if f > 1 && best.is_none_or(|(_, bf)| f > bf) {
            best = Some((d, f));
        }
    }
    let Some((d, f)) = best else {
        return false;
    };
    let keep = f / 2;
    let moved = f.div_ceil(keep.max(1));
    tiling.set(d, keep.max(1));
    if dest_is_gbuf {
        let g = m.gbuf.factor(d);
        m.gbuf.set(d, g * moved);
    } else {
        let g = m.dram.factor(d);
        m.dram.set(d, g * moved);
    }
    true
}

/// Eyeriss-style row-stationary dataflow (Chen et al., ISCA'16): kernel
/// rows `R` and output rows `Y` are unrolled across the PE array, a row of
/// weights and the matching input row live in each PE's register file, and
/// the buffer-level order keeps input reuse high.
pub fn eyeriss_row_stationary(dims: &ConvDims, device: &Device, bits: u8) -> Mapping {
    let mut spatial = Tiling::unit();
    // PE rows hold R, PE columns hold a stripe of Y (Eyeriss maps logical
    // R x Y onto the physical array). Our spatial menu exposes Y directly.
    let y_cols = (device.pe_count as usize / dims.r).clamp(1, dims.y);
    spatial.set(Dim::Y, y_cols);
    let mut rf = Tiling::unit();
    rf.set(Dim::R, dims.r); // a full kernel row per PE (row-stationary)
    rf.set(Dim::S, dims.s);
    rf.set(Dim::X, dims.x.min(8)); // sliding window along the row
    let mut gbuf = Tiling::unit();
    gbuf.set(Dim::C, dims.c.min(8));
    gbuf.set(Dim::K, dims.k.min(16));
    gbuf.set(Dim::Y, dims.y.div_ceil(y_cols));
    gbuf.set(Dim::X, dims.x.div_ceil(dims.x.min(8)));
    let mut dram = Tiling::unit();
    dram.set(Dim::N, dims.n);
    dram.set(Dim::C, dims.c.div_ceil(dims.c.min(8)));
    dram.set(Dim::K, dims.k.div_ceil(dims.k.min(16)));
    let m = Mapping {
        dram,
        gbuf,
        spatial,
        rf,
        // Outer loops iterate channels/filters; inner spatial reuse.
        order_dram: LoopOrder::new([Dim::N, Dim::K, Dim::C, Dim::Y, Dim::X, Dim::R, Dim::S]),
        order_gbuf: LoopOrder::new([Dim::K, Dim::C, Dim::Y, Dim::X, Dim::N, Dim::R, Dim::S]),
        pipelined: false,
    };
    legalize(m, dims, device, bits)
}

/// The MAGNet-style template set (Venkatesan et al., ICCAD'19): a small,
/// fixed menu of loop orders. The paper argues this pre-defined menu limits
/// generality vs AutoMapper's free orders.
pub fn magnet_templates() -> Vec<(LoopOrder, LoopOrder)> {
    let ws = LoopOrder::new([Dim::N, Dim::Y, Dim::X, Dim::K, Dim::C, Dim::R, Dim::S]);
    let os = LoopOrder::new([Dim::C, Dim::R, Dim::S, Dim::N, Dim::K, Dim::Y, Dim::X]);
    let is_ = LoopOrder::new([Dim::K, Dim::R, Dim::S, Dim::N, Dim::C, Dim::Y, Dim::X]);
    let rs = LoopOrder::new([Dim::N, Dim::K, Dim::C, Dim::X, Dim::Y, Dim::R, Dim::S]);
    vec![(ws, ws), (os, os), (is_, is_), (rs, rs)]
}

/// MAGNet-style search: random tilings constrained to the fixed template
/// loop orders, best-of-`iters` by EDP.
pub fn magnet_search(
    dims: &ConvDims,
    device: &Device,
    bits: u8,
    iters: usize,
    rng: &mut StdRng,
) -> Mapping {
    let templates = magnet_templates();
    let mut best: Option<(f64, Mapping)> = None;
    for _ in 0..iters {
        let mut m = Mapping::random(dims, rng);
        let (od, og) = templates[rng.gen_range(0..templates.len())];
        m.order_dram = od;
        m.order_gbuf = og;
        m.pipelined = false; // MAGNet's tiled architecture is multi-cycle
        if let Ok(c) = evaluate_layer(dims, &m, device, bits) {
            let edp = c.edp();
            if best.as_ref().is_none_or(|(b, _)| edp < *b) {
                best = Some((edp, m));
            }
        }
    }
    best.map(|(_, m)| m)
        .unwrap_or_else(|| legalize(outermost_mapping(dims, false), dims, device, bits))
}

/// DNNBuilder-style FPGA dataflow (Zhang et al., ICCAD'18): fully
/// pipelined layer stages, output-channel-parallel MACs, line-buffered
/// inputs.
pub fn dnnbuilder_mapping(dims: &ConvDims, device: &Device, bits: u8) -> Mapping {
    let mut spatial = Tiling::unit();
    spatial.set(Dim::K, dims.k.clamp(1, 32));
    let mut rf = Tiling::unit();
    rf.set(Dim::R, dims.r);
    rf.set(Dim::S, dims.s);
    let mut gbuf = Tiling::unit();
    gbuf.set(Dim::X, dims.x); // line buffer holds full rows
    gbuf.set(Dim::C, dims.c.min(8));
    let mut dram = Tiling::unit();
    dram.set(Dim::N, dims.n);
    dram.set(Dim::Y, dims.y);
    dram.set(Dim::C, dims.c.div_ceil(dims.c.min(8)));
    dram.set(Dim::K, dims.k.div_ceil(dims.k.clamp(1, 32)));
    let m = Mapping {
        dram,
        gbuf,
        spatial,
        rf,
        order_dram: LoopOrder::new([Dim::N, Dim::Y, Dim::K, Dim::C, Dim::X, Dim::R, Dim::S]),
        order_gbuf: LoopOrder::new([Dim::C, Dim::X, Dim::N, Dim::K, Dim::Y, Dim::R, Dim::S]),
        pipelined: true,
    };
    legalize(m, dims, device, bits)
}

/// CHaiDNN-style FPGA dataflow (Xilinx): multi-cycle generic convolution
/// engine with fixed modest tiling — robust but reuse-poor.
pub fn chaidnn_mapping(dims: &ConvDims, device: &Device, bits: u8) -> Mapping {
    let mut spatial = Tiling::unit();
    spatial.set(Dim::K, dims.k.min(16));
    let mut rf = Tiling::unit();
    rf.set(Dim::S, dims.s);
    let mut gbuf = Tiling::unit();
    gbuf.set(Dim::X, dims.x.min(16));
    gbuf.set(Dim::C, dims.c.min(4));
    gbuf.set(Dim::R, dims.r);
    let mut dram = Tiling::unit();
    dram.set(Dim::N, dims.n);
    dram.set(Dim::Y, dims.y);
    dram.set(Dim::X, dims.x.div_ceil(dims.x.min(16)));
    dram.set(Dim::C, dims.c.div_ceil(dims.c.min(4)));
    dram.set(Dim::K, dims.k.div_ceil(dims.k.min(16)));
    let m = Mapping {
        dram,
        gbuf,
        spatial,
        rf,
        order_dram: LoopOrder::new([Dim::N, Dim::Y, Dim::X, Dim::C, Dim::K, Dim::R, Dim::S]),
        order_gbuf: LoopOrder::new([Dim::X, Dim::C, Dim::K, Dim::N, Dim::Y, Dim::R, Dim::S]),
        pipelined: false,
    };
    legalize(m, dims, device, bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn alexnet_conv2() -> ConvDims {
        ConvDims::new(1, 256, 96, 27, 27, 5, 5, 1)
    }

    #[test]
    fn all_baselines_produce_legal_mappings() {
        let d = alexnet_conv2();
        let asic = Device::eyeriss_like();
        let fpga = Device::zc706_like();
        for (m, dev) in [
            (eyeriss_row_stationary(&d, &asic, 16), &asic),
            (dnnbuilder_mapping(&d, &fpga, 16), &fpga),
            (chaidnn_mapping(&d, &fpga, 16), &fpga),
        ] {
            assert!(m.covers(&d));
            evaluate_layer(&d, &m, dev, 16).expect("baseline must be legal");
        }
    }

    #[test]
    fn legalize_repairs_oversized_mapping() {
        let d = alexnet_conv2();
        let dev = Device::tiny_test();
        let mut m = outermost_mapping(&d, false);
        // Deliberately break it.
        for dim in Dim::ALL {
            m.dram.set(dim, 1);
            m.rf.set(dim, d.bound(dim));
        }
        let fixed = legalize(m, &d, &dev, 16);
        assert!(fixed.covers(&d));
        evaluate_layer(&d, &fixed, &dev, 16).expect("legalized mapping must fit");
    }

    #[test]
    fn magnet_search_improves_over_fallback() {
        let d = alexnet_conv2();
        let dev = Device::eyeriss_like();
        let mut rng = StdRng::seed_from_u64(0);
        let m = magnet_search(&d, &dev, 16, 200, &mut rng);
        let edp_m = evaluate_layer(&d, &m, &dev, 16).unwrap().edp();
        let fallback = outermost_mapping(&d, false);
        let edp_f = evaluate_layer(&d, &fallback, &dev, 16).unwrap().edp();
        assert!(edp_m < edp_f, "magnet {edp_m} vs fallback {edp_f}");
    }

    #[test]
    fn eyeriss_mapping_exploits_the_array() {
        let d = alexnet_conv2();
        let dev = Device::eyeriss_like();
        let m = eyeriss_row_stationary(&d, &dev, 16);
        let c = evaluate_layer(&d, &m, &dev, 16).unwrap();
        assert!(c.pes_used > 1, "row-stationary should use multiple PEs");
    }

    #[test]
    fn dnnbuilder_is_pipelined_chaidnn_is_not() {
        let d = alexnet_conv2();
        let fpga = Device::zc706_like();
        assert!(dnnbuilder_mapping(&d, &fpga, 16).pipelined);
        assert!(!chaidnn_mapping(&d, &fpga, 16).pipelined);
    }

    #[test]
    fn templates_are_valid_permutations() {
        // Construction through LoopOrder::new already validates; just count.
        assert_eq!(magnet_templates().len(), 4);
    }
}
