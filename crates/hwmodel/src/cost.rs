//! Energy / latency / EDP evaluation of mappings.

use crate::device::Device;
use crate::Workload;
use instantnet_dataflow::{ConvDims, Mapping, TensorKind};
use std::error::Error;
use std::fmt;

/// Why a mapping cannot run on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// Spatial unrolling exceeds the PE count.
    SpatialOverflow {
        /// PEs the mapping asks for.
        required: u64,
        /// PEs the device has.
        available: u64,
    },
    /// Global-buffer tiles do not fit.
    GbufOverflow {
        /// Bytes the tiles need.
        required: u64,
        /// Buffer capacity.
        available: u64,
    },
    /// Per-PE register-file tiles do not fit.
    RfOverflow {
        /// Bytes the tiles need.
        required: u64,
        /// RF capacity per PE.
        available: u64,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::SpatialOverflow {
                required,
                available,
            } => {
                write!(
                    f,
                    "spatial unrolling needs {required} PEs, device has {available}"
                )
            }
            MapError::GbufOverflow {
                required,
                available,
            } => {
                write!(
                    f,
                    "global buffer needs {required} B, device has {available} B"
                )
            }
            MapError::RfOverflow {
                required,
                available,
            } => {
                write!(
                    f,
                    "register file needs {required} B per PE, device has {available} B"
                )
            }
        }
    }
}

impl Error for MapError {}

/// Evaluated cost of one layer under one mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerCost {
    /// Total energy in pJ.
    pub energy_pj: f64,
    /// Execution cycles (max of compute and memory streams).
    pub cycles: f64,
    /// Wall-clock latency in seconds.
    pub latency_s: f64,
    /// DRAM traffic energy (pJ).
    pub e_dram: f64,
    /// Global-buffer traffic energy (pJ).
    pub e_gbuf: f64,
    /// Register-file traffic energy (pJ).
    pub e_rf: f64,
    /// MAC energy (pJ).
    pub e_mac: f64,
    /// PEs occupied by the spatial unrolling.
    pub pes_used: u64,
}

impl LayerCost {
    /// Energy-delay product (pJ·s).
    pub fn edp(&self) -> f64 {
        self.energy_pj * self.latency_s
    }
}

fn word_scale(bits: u8) -> f64 {
    f64::from(bits) / 16.0
}

fn mac_scale(bits: u8) -> f64 {
    let s = word_scale(bits);
    s * s
}

/// Evaluates one layer (single group) under a mapping.
///
/// # Errors
///
/// Returns a [`MapError`] if the mapping violates the device's PE count or
/// buffer capacities at the given word width.
pub fn evaluate_layer(
    dims: &ConvDims,
    mapping: &Mapping,
    device: &Device,
    bits: u8,
) -> Result<LayerCost, MapError> {
    debug_assert!(mapping.covers(dims), "mapping must cover the loop bounds");
    let pes = mapping.pes_used();
    if pes > device.pe_count {
        return Err(MapError::SpatialOverflow {
            required: pes,
            available: device.pe_count,
        });
    }
    let bytes_per_word = f64::from(bits) / 8.0;
    // Capacity checks: double-buffered tiles of all three tensors.
    let gbuf_words: u64 = TensorKind::ALL
        .iter()
        .map(|&t| mapping.gbuf_tile(t, dims))
        .sum();
    let gbuf_need = (2.0 * gbuf_words as f64 * bytes_per_word).ceil() as u64;
    if gbuf_need > device.gbuf_bytes {
        return Err(MapError::GbufOverflow {
            required: gbuf_need,
            available: device.gbuf_bytes,
        });
    }
    let rf_words: u64 = TensorKind::ALL
        .iter()
        .map(|&t| mapping.rf_tile(t, dims))
        .sum();
    let rf_need = (rf_words as f64 * bytes_per_word).ceil() as u64;
    if rf_need > device.rf_bytes_per_pe {
        return Err(MapError::RfOverflow {
            required: rf_need,
            available: device.rf_bytes_per_pe,
        });
    }
    // --- traffic ---
    let mut dram_words = 0.0f64;
    let mut gbuf_traffic = 0.0f64;
    for t in TensorKind::ALL {
        let fills_gb = mapping.gbuf_fills(t) as f64;
        let gb_tile = mapping.gbuf_tile(t, dims) as f64;
        let mut w = gb_tile * fills_gb;
        // Partial-sum spill: outputs revisited at DRAM level are both read
        // and written back.
        if matches!(t, TensorKind::Output) && fills_gb > 1.0 {
            w *= 2.0;
        }
        dram_words += w;
        let fills_rf = mapping.rf_fills(t) as f64;
        // Aggregate distinct data delivered to the PE array: per-PE tile
        // times the spatial copies that carry *different* data (relevant
        // spatial dims); irrelevant spatial dims multicast for free.
        let spatial_distinct = mapping.spatial.relevant_product(t) as f64;
        let rf_tile = mapping.rf_tile(t, dims) as f64;
        let mut g = rf_tile * spatial_distinct * fills_rf;
        if matches!(t, TensorKind::Output) && fills_rf > 1.0 {
            g *= 2.0;
        }
        gbuf_traffic += g;
    }
    let macs = mapping.padded_macs() as f64;
    let rf_accesses = 3.0 * macs; // weight read, input read, psum update
                                  // --- energy ---
    let ws = word_scale(bits);
    let e_dram = dram_words * device.e_dram_16 * ws;
    let e_gbuf = gbuf_traffic * device.e_gbuf_16 * ws;
    let e_rf = rf_accesses * device.e_rf_16 * ws;
    let e_mac = macs * device.e_mac_16 * mac_scale(bits);
    let energy_pj = e_dram + e_gbuf + e_rf + e_mac;
    // --- latency ---
    let compute_cycles = macs / pes as f64;
    let dram_cycles = dram_words * f64::from(bits) / device.dram_bw_bits;
    let gbuf_cycles = gbuf_traffic * f64::from(bits) / device.gbuf_bw_bits;
    let cycles = compute_cycles.max(dram_cycles).max(gbuf_cycles);
    let latency_s = cycles / (device.freq_mhz * 1e6);
    Ok(LayerCost {
        energy_pj,
        cycles,
        latency_s,
        e_dram,
        e_gbuf,
        e_rf,
        e_mac,
        pes_used: pes,
    })
}

/// Evaluated cost of a whole network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkCost {
    /// Total energy (pJ) over all layers and groups.
    pub energy_pj: f64,
    /// End-to-end latency (s).
    pub latency_s: f64,
    /// Frames per second (`1 / latency`).
    pub fps: f64,
}

impl NetworkCost {
    /// Energy-delay product (pJ·s).
    pub fn edp(&self) -> f64 {
        self.energy_pj * self.latency_s
    }
}

/// The device slice a pipeline stage with compute share `share` owns:
/// PEs and buffer scale proportionally (floored, with minimal floors so a
/// stage is never starved).
pub fn pipeline_stage_device(device: &Device, share: f64) -> Device {
    let share = share.max(1.0 / 64.0);
    let mut d = device.clone();
    d.pe_count = ((device.pe_count as f64 * share).floor() as u64).max(1);
    d.gbuf_bytes = ((device.gbuf_bytes as f64 * share).floor() as u64).max(1024);
    d
}

/// Evaluates a network given one mapping per workload.
///
/// Execution style follows the first mapping's `pipelined` flag:
///
/// * **multi-cycle** — layers run sequentially on the full array; latency
///   is the sum of layer latencies.
/// * **pipeline** — layers stream concurrently with PEs and the global
///   buffer partitioned proportionally to each layer's MAC share; latency
///   is the slowest stage's scaled latency (throughput-optimal when
///   balanced), and per-layer buffer capacity shrinks accordingly
///   (checked).
///
/// # Errors
///
/// Propagates the first [`MapError`]; in pipeline mode, capacity checks use
/// the partitioned buffer sizes.
///
/// # Panics
///
/// Panics if `workloads` and `mappings` lengths differ or are empty.
pub fn evaluate_network(
    workloads: &[Workload],
    mappings: &[Mapping],
    device: &Device,
    bits: u8,
) -> Result<NetworkCost, MapError> {
    assert_eq!(
        workloads.len(),
        mappings.len(),
        "one mapping per workload required"
    );
    assert!(
        !workloads.is_empty(),
        "network must have at least one layer"
    );
    let pipelined = mappings[0].pipelined;
    let total_macs: f64 = workloads.iter().map(|w| w.macs() as f64).sum();
    let mut energy = 0.0f64;
    let mut latency = 0.0f64;
    let mut stage_max = 0.0f64;
    for (w, m) in workloads.iter().zip(mappings) {
        let dev = if pipelined {
            pipeline_stage_device(device, w.macs() as f64 / total_macs)
        } else {
            device.clone()
        };
        let cost = evaluate_layer(&w.dims, m, &dev, bits)?;
        let mult = w.multiplicity as f64;
        energy += cost.energy_pj * mult;
        if pipelined {
            stage_max = stage_max.max(cost.latency_s * mult);
        } else {
            latency += cost.latency_s * mult;
        }
    }
    let latency_s = if pipelined { stage_max } else { latency };
    Ok(NetworkCost {
        energy_pj: energy,
        latency_s,
        fps: 1.0 / latency_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantnet_dataflow::{Dim, LoopOrder, Tiling};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dims() -> ConvDims {
        ConvDims::new(1, 16, 8, 8, 8, 3, 3, 1)
    }

    fn simple_mapping(d: &ConvDims) -> Mapping {
        // Everything at DRAM level except a small RF tile: always legal.
        let mut dram = Tiling::unit();
        for dim in Dim::ALL {
            dram.set(dim, d.bound(dim));
        }
        Mapping {
            dram,
            gbuf: Tiling::unit(),
            spatial: Tiling::unit(),
            rf: Tiling::unit(),
            order_dram: LoopOrder::canonical(),
            order_gbuf: LoopOrder::canonical(),
            pipelined: false,
        }
    }

    #[test]
    fn simple_mapping_evaluates() {
        let d = dims();
        let c = evaluate_layer(&d, &simple_mapping(&d), &Device::eyeriss_like(), 16).unwrap();
        assert!(c.energy_pj > 0.0);
        assert!(c.latency_s > 0.0);
        assert!(c.edp() > 0.0);
        assert_eq!(c.pes_used, 1);
    }

    #[test]
    fn lower_bits_cost_less() {
        let d = dims();
        let m = simple_mapping(&d);
        let dev = Device::eyeriss_like();
        let c16 = evaluate_layer(&d, &m, &dev, 16).unwrap();
        let c4 = evaluate_layer(&d, &m, &dev, 4).unwrap();
        assert!(c4.energy_pj < c16.energy_pj);
        assert!(c4.edp() < c16.edp());
    }

    #[test]
    fn spatial_overflow_detected() {
        let d = dims();
        let mut m = simple_mapping(&d);
        m.spatial.set(Dim::K, 16);
        m.spatial.set(Dim::C, 8);
        m.spatial.set(Dim::Y, 8);
        // 1024 PEs > 168.
        let err = evaluate_layer(&d, &m, &Device::eyeriss_like(), 16).unwrap_err();
        assert!(matches!(err, MapError::SpatialOverflow { .. }));
    }

    #[test]
    fn rf_overflow_detected() {
        let d = dims();
        let mut m = simple_mapping(&d);
        // RF tile of 4x4x3x3 weights = 288 B > 64 B, while the gbuf tile
        // (which includes the RF extents) still fits in 4 KiB.
        m.rf.set(Dim::K, 4);
        m.rf.set(Dim::C, 4);
        m.rf.set(Dim::R, 3);
        m.rf.set(Dim::S, 3);
        m.dram.set(Dim::K, 4);
        m.dram.set(Dim::C, 2);
        m.dram.set(Dim::R, 1);
        m.dram.set(Dim::S, 1);
        let err = evaluate_layer(&d, &m, &Device::tiny_test(), 16).unwrap_err();
        assert!(matches!(err, MapError::RfOverflow { .. }), "{err:?}");
    }

    #[test]
    fn gbuf_overflow_detected() {
        let big = ConvDims::new(1, 256, 256, 32, 32, 3, 3, 1);
        let mut m = simple_mapping(&big);
        // Move everything to the gbuf level, keep RF at 1.
        for dim in Dim::ALL {
            m.dram.set(dim, 1);
            m.gbuf.set(dim, big.bound(dim));
        }
        let err = evaluate_layer(&big, &m, &Device::tiny_test(), 16).unwrap_err();
        assert!(matches!(err, MapError::GbufOverflow { .. }));
    }

    #[test]
    fn more_reuse_means_less_dram_energy() {
        // Keeping the whole working set in the buffer (one DRAM fill) must
        // beat refetching per output tile.
        let d = dims();
        let dev = Device::eyeriss_like();
        let good = {
            let mut m = simple_mapping(&d);
            for dim in Dim::ALL {
                m.dram.set(dim, 1);
                m.gbuf.set(dim, d.bound(dim));
            }
            // Small RF tiles to stay legal.
            m
        };
        let bad = simple_mapping(&d); // everything iterated at DRAM level
        let cg = evaluate_layer(&d, &good, &dev, 16).unwrap();
        let cb = evaluate_layer(&d, &bad, &dev, 16).unwrap();
        assert!(
            cg.e_dram < cb.e_dram,
            "buffered {} vs unbuffered {}",
            cg.e_dram,
            cb.e_dram
        );
    }

    #[test]
    fn spatial_unrolling_cuts_latency() {
        let d = dims();
        let dev = Device::eyeriss_like();
        let serial = simple_mapping(&d);
        let mut parallel = simple_mapping(&d);
        parallel.dram.set(Dim::K, 1);
        parallel.spatial.set(Dim::K, 16);
        let cs = evaluate_layer(&d, &serial, &dev, 16).unwrap();
        let cp = evaluate_layer(&d, &parallel, &dev, 16).unwrap();
        assert!(cp.cycles < cs.cycles);
        assert_eq!(cp.pes_used, 16);
    }

    #[test]
    fn network_multicycle_sums_latencies() {
        let d = dims();
        let w = Workload {
            dims: d,
            multiplicity: 1,
        };
        let m = simple_mapping(&d);
        let dev = Device::eyeriss_like();
        let one = evaluate_network(&[w], std::slice::from_ref(&m), &dev, 16).unwrap();
        let two = evaluate_network(&[w, w], &[m.clone(), m], &dev, 16).unwrap();
        assert!((two.latency_s - 2.0 * one.latency_s).abs() < 1e-12);
        assert!((two.energy_pj - 2.0 * one.energy_pj).abs() < 1e-3);
    }

    #[test]
    fn random_legal_mappings_have_finite_cost() {
        let d = dims();
        let dev = Device::eyeriss_like();
        let mut rng = StdRng::seed_from_u64(0);
        let mut ok = 0;
        for _ in 0..100 {
            let m = Mapping::random(&d, &mut rng);
            if let Ok(c) = evaluate_layer(&d, &m, &dev, 8) {
                assert!(c.energy_pj.is_finite() && c.latency_s.is_finite());
                ok += 1;
            }
        }
        assert!(
            ok > 5,
            "at least some random mappings must be legal, got {ok}"
        );
    }
}
