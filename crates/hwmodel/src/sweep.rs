//! Device design-space sweeps: how EDP responds to PE count, buffer
//! capacity and DRAM bandwidth — the accelerator-sizing questions that
//! accompany dataflow search in an EDA flow.

use crate::baselines;
use crate::cost::evaluate_layer;
use crate::device::Device;
use instantnet_dataflow::ConvDims;

/// Which device parameter a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepAxis {
    /// Number of processing elements.
    PeCount,
    /// Global buffer capacity (bytes).
    GbufBytes,
    /// DRAM bandwidth (bits/cycle).
    DramBandwidth,
}

/// One sweep sample: the axis value and the resulting layer EDP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub value: f64,
    /// Achieved EDP (pJ·s) under the Eyeriss expert dataflow, re-derived
    /// for each device variant.
    pub edp: f64,
    /// Achieved energy (pJ).
    pub energy_pj: f64,
    /// Achieved latency (s).
    pub latency_s: f64,
}

fn with_axis(device: &Device, axis: SweepAxis, scale: f64) -> Device {
    let mut d = device.clone();
    match axis {
        SweepAxis::PeCount => {
            d.pe_count = ((device.pe_count as f64 * scale).round() as u64).max(1);
        }
        SweepAxis::GbufBytes => {
            d.gbuf_bytes = ((device.gbuf_bytes as f64 * scale).round() as u64).max(1024);
        }
        SweepAxis::DramBandwidth => {
            d.dram_bw_bits = (device.dram_bw_bits * scale).max(1.0);
        }
    }
    d
}

fn axis_value(device: &Device, axis: SweepAxis) -> f64 {
    match axis {
        SweepAxis::PeCount => device.pe_count as f64,
        SweepAxis::GbufBytes => device.gbuf_bytes as f64,
        SweepAxis::DramBandwidth => device.dram_bw_bits,
    }
}

/// Sweeps `axis` over multiplicative `scales` of the base device and
/// evaluates `dims` under the re-derived Eyeriss dataflow at each point.
///
/// # Panics
///
/// Panics if `scales` is empty.
pub fn sweep_device(
    dims: &ConvDims,
    device: &Device,
    bits: u8,
    axis: SweepAxis,
    scales: &[f64],
) -> Vec<SweepPoint> {
    assert!(!scales.is_empty(), "sweep needs at least one scale");
    scales
        .iter()
        .map(|&s| {
            let d = with_axis(device, axis, s);
            let mapping = baselines::eyeriss_row_stationary(dims, &d, bits);
            let cost = evaluate_layer(dims, &mapping, &d, bits)
                .expect("expert baseline is legalized per device");
            SweepPoint {
                value: axis_value(&d, axis),
                edp: cost.edp(),
                energy_pj: cost.energy_pj,
                latency_s: cost.latency_s,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> ConvDims {
        ConvDims::new(1, 64, 32, 14, 14, 3, 3, 1)
    }

    #[test]
    fn more_pes_never_hurt_latency() {
        let pts = sweep_device(
            &dims(),
            &Device::eyeriss_like(),
            16,
            SweepAxis::PeCount,
            &[0.25, 0.5, 1.0, 2.0],
        );
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(
                w[1].latency_s <= w[0].latency_s * 1.05,
                "latency should not grow with PEs: {} -> {}",
                w[0].latency_s,
                w[1].latency_s
            );
        }
    }

    #[test]
    fn bigger_buffer_never_increases_dram_energy_side() {
        let pts = sweep_device(
            &dims(),
            &Device::eyeriss_like(),
            16,
            SweepAxis::GbufBytes,
            &[0.25, 1.0, 4.0],
        );
        // Larger buffers enable at-least-as-good tilings for the expert
        // policy; energy should be non-increasing (small slack for the
        // heuristic constructor).
        assert!(pts[2].energy_pj <= pts[0].energy_pj * 1.1);
    }

    #[test]
    fn bandwidth_relieves_memory_bound_layers() {
        let pts = sweep_device(
            &dims(),
            &Device::eyeriss_like(),
            16,
            SweepAxis::DramBandwidth,
            &[0.1, 1.0, 10.0],
        );
        assert!(pts[0].latency_s >= pts[2].latency_s);
        // Energy is bandwidth-independent in this model.
        assert!((pts[0].energy_pj - pts[2].energy_pj).abs() < 1e-6 * pts[0].energy_pj);
    }

    #[test]
    fn axis_values_reflect_scaling() {
        let pts = sweep_device(
            &dims(),
            &Device::eyeriss_like(),
            8,
            SweepAxis::PeCount,
            &[1.0, 2.0],
        );
        assert!((pts[1].value / pts[0].value - 2.0).abs() < 0.05);
    }
}
