//! Area estimation and cost-breakdown reporting.
//!
//! The paper's ASIC flow reports post-place-and-route area; this module
//! provides the analytical counterpart (MAC array + SRAM macros scaling
//! with bit-width) plus pretty-printed energy breakdowns used by the
//! experiment binaries.

use crate::cost::LayerCost;
use crate::device::Device;

/// 65nm-class area constants (mm² per unit at 16-bit).
mod area_constants {
    /// One 16-bit MAC with pipeline registers.
    pub const MAC_MM2: f64 = 0.0008;
    /// One byte of SRAM (global buffer, incl. periphery amortized).
    pub const SRAM_BYTE_MM2: f64 = 0.000012;
    /// One byte of register file (flop-based, denser ports → larger).
    pub const RF_BYTE_MM2: f64 = 0.00004;
    /// Fixed NoC / control overhead fraction.
    pub const OVERHEAD: f64 = 0.15;
}

/// Analytical silicon area of `device` when its MACs are provisioned for
/// `bits`-wide operands (multiplier area scales roughly quadratically in
/// operand width; memories scale linearly in stored bits).
///
/// Only meaningful for ASIC targets — an FPGA's area is fixed; the value
/// then represents the equivalent consumed fabric.
pub fn area_mm2(device: &Device, bits: u8) -> f64 {
    use area_constants::*;
    let ws = f64::from(bits) / 16.0;
    let mac = device.pe_count as f64 * MAC_MM2 * ws * ws;
    let gbuf = device.gbuf_bytes as f64 * SRAM_BYTE_MM2 * ws;
    let rf = (device.pe_count * device.rf_bytes_per_pe) as f64 * RF_BYTE_MM2 * ws;
    (mac + gbuf + rf) * (1.0 + OVERHEAD)
}

/// One row per energy component of a [`LayerCost`], as
/// `(label, energy_pj, share_of_total)`.
pub fn energy_breakdown(cost: &LayerCost) -> Vec<(&'static str, f64, f64)> {
    let total = cost.energy_pj.max(f64::MIN_POSITIVE);
    vec![
        ("DRAM", cost.e_dram, cost.e_dram / total),
        ("global buffer", cost.e_gbuf, cost.e_gbuf / total),
        ("register file", cost.e_rf, cost.e_rf / total),
        ("MAC", cost.e_mac, cost.e_mac / total),
    ]
}

/// Renders the breakdown as an aligned text block.
pub fn format_breakdown(cost: &LayerCost) -> String {
    let mut s = String::new();
    for (label, pj, share) in energy_breakdown(cost) {
        s.push_str(&format!(
            "{label:>14}: {pj:>12.3e} pJ ({:>5.1}%)\n",
            100.0 * share
        ));
    }
    s.push_str(&format!("{:>14}: {:>12.3e} pJ\n", "total", cost.energy_pj));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines;
    use crate::cost::evaluate_layer;
    use instantnet_dataflow::ConvDims;

    fn sample_cost() -> LayerCost {
        let dims = ConvDims::new(1, 32, 16, 14, 14, 3, 3, 1);
        let device = Device::eyeriss_like();
        let m = baselines::eyeriss_row_stationary(&dims, &device, 16);
        evaluate_layer(&dims, &m, &device, 16).expect("legal baseline")
    }

    #[test]
    fn area_scales_with_bits() {
        let d = Device::eyeriss_like();
        let a4 = area_mm2(&d, 4);
        let a8 = area_mm2(&d, 8);
        let a16 = area_mm2(&d, 16);
        assert!(a4 < a8 && a8 < a16);
        // MAC quadratic scaling: 16b MAC array alone is 4x the 8b one.
        assert!(a16 / a8 > 1.5);
    }

    #[test]
    fn eyeriss_like_area_in_plausible_range() {
        // Eyeriss was 12.25 mm² in 65nm; the analytical estimate should be
        // the same order of magnitude.
        let a = area_mm2(&Device::eyeriss_like(), 16);
        assert!(a > 0.5 && a < 50.0, "area {a} mm2");
    }

    #[test]
    fn breakdown_shares_sum_to_one() {
        let cost = sample_cost();
        let total_share: f64 = energy_breakdown(&cost).iter().map(|(_, _, s)| s).sum();
        assert!((total_share - 1.0).abs() < 1e-9);
    }

    #[test]
    fn format_breakdown_mentions_all_levels() {
        let s = format_breakdown(&sample_cost());
        for label in ["DRAM", "global buffer", "register file", "MAC", "total"] {
            assert!(s.contains(label), "missing {label} in:\n{s}");
        }
    }
}
