//! Target device descriptions.

use std::fmt;

/// Hardware platform family — affects dataflow flexibility and defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Application-specific integrated circuit (fully flexible dataflow).
    Asic,
    /// FPGA fabric (DSP-slice MACs, block-RAM buffers).
    Fpga,
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Platform::Asic => write!(f, "ASIC"),
            Platform::Fpga => write!(f, "FPGA"),
        }
    }
}

/// An accelerator target: compute array, memory hierarchy capacities,
/// bandwidths and per-access energies (at 16-bit words, in pJ).
///
/// The two presets correspond to the paper's evaluation platforms:
/// [`Device::eyeriss_like`] (65nm spatial ASIC) and [`Device::zc706_like`]
/// (Xilinx Zynq ZC706, the paper's quoted 900-MAC FPGA board).
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Device name for reports.
    pub name: &'static str,
    /// Platform family.
    pub platform: Platform,
    /// Number of processing elements (parallel MACs at 16-bit).
    pub pe_count: u64,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
    /// Global buffer capacity in bytes.
    pub gbuf_bytes: u64,
    /// Per-PE register file capacity in bytes.
    pub rf_bytes_per_pe: u64,
    /// DRAM bandwidth in bits per cycle.
    pub dram_bw_bits: f64,
    /// Global-buffer bandwidth in bits per cycle.
    pub gbuf_bw_bits: f64,
    /// DRAM access energy per 16-bit word (pJ).
    pub e_dram_16: f64,
    /// Global-buffer access energy per 16-bit word (pJ).
    pub e_gbuf_16: f64,
    /// Register-file access energy per 16-bit word (pJ).
    pub e_rf_16: f64,
    /// 16-bit MAC energy (pJ).
    pub e_mac_16: f64,
}

impl Device {
    /// Eyeriss-like 65nm spatial ASIC: 168 PEs, 108 KiB global buffer,
    /// 0.5 KiB RF per PE, 200 MHz. Energy ratios follow the Eyeriss
    /// ISCA'16 hierarchy study (DRAM ≫ buffer ≫ RF ≈ MAC).
    pub fn eyeriss_like() -> Self {
        Device {
            name: "eyeriss-like-asic",
            platform: Platform::Asic,
            pe_count: 168,
            freq_mhz: 200.0,
            gbuf_bytes: 108 * 1024,
            rf_bytes_per_pe: 512,
            dram_bw_bits: 64.0,
            gbuf_bw_bits: 512.0,
            e_dram_16: 200.0,
            e_gbuf_16: 6.0,
            e_rf_16: 1.0,
            e_mac_16: 1.0,
        }
    }

    /// ZC706-like FPGA: 900 DSP MACs, ~2.4 MB of BRAM, 150 MHz. Per-access
    /// energies are higher than the ASIC (configurable-fabric overhead).
    pub fn zc706_like() -> Self {
        Device {
            name: "zc706-like-fpga",
            platform: Platform::Fpga,
            pe_count: 900,
            freq_mhz: 150.0,
            gbuf_bytes: 2_400 * 1024,
            rf_bytes_per_pe: 256,
            dram_bw_bits: 128.0,
            gbuf_bw_bits: 1024.0,
            e_dram_16: 200.0,
            e_gbuf_16: 10.0,
            e_rf_16: 2.0,
            e_mac_16: 2.5,
        }
    }

    /// A deliberately tiny device for tests (forces capacity pressure).
    pub fn tiny_test() -> Self {
        Device {
            name: "tiny-test",
            platform: Platform::Asic,
            pe_count: 16,
            freq_mhz: 100.0,
            gbuf_bytes: 4 * 1024,
            rf_bytes_per_pe: 64,
            dram_bw_bits: 32.0,
            gbuf_bw_bits: 128.0,
            e_dram_16: 200.0,
            e_gbuf_16: 6.0,
            e_rf_16: 1.0,
            e_mac_16: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_hierarchy() {
        for d in [
            Device::eyeriss_like(),
            Device::zc706_like(),
            Device::tiny_test(),
        ] {
            assert!(d.e_dram_16 > d.e_gbuf_16, "{}", d.name);
            assert!(d.e_gbuf_16 > d.e_rf_16 * 0.99, "{}", d.name);
            assert!(d.pe_count > 0);
            assert!(d.gbuf_bytes > d.rf_bytes_per_pe);
        }
    }

    #[test]
    fn fpga_has_more_macs_than_eyeriss() {
        assert!(Device::zc706_like().pe_count > Device::eyeriss_like().pe_count);
        assert_eq!(Device::zc706_like().platform, Platform::Fpga);
        assert_eq!(format!("{}", Platform::Fpga), "FPGA");
    }
}
