//! Analytical hardware cost model for DNN accelerators.
//!
//! The paper's AutoMapper drives its evolutionary search with an analytical
//! performance predictor (their ref. \[23\], DNN-Chip Predictor); hardware
//! synthesis only validates the final designs. This crate reproduces that
//! predictor: given a layer's [`instantnet_dataflow::ConvDims`], a
//! [`instantnet_dataflow::Mapping`] and a [`Device`], it derives per-level
//! access counts from the mapping's reuse structure and converts them to
//! energy, latency and EDP with bit-width-dependent scaling
//! (memory traffic scales linearly with word width, MAC energy roughly
//! quadratically).
//!
//! It also implements the paper's comparison dataflows as *policies* over
//! the same space — Eyeriss row-stationary and MAGNet templates for ASIC,
//! DNNBuilder and CHaiDNN for FPGA — so Fig. 5's comparisons run under one
//! cost model.
//!
//! # Example
//!
//! ```
//! use instantnet_dataflow::{ConvDims, Mapping};
//! use instantnet_hwmodel::{baselines, evaluate_layer, Device};
//!
//! let device = Device::eyeriss_like();
//! let dims = ConvDims::new(1, 32, 16, 14, 14, 3, 3, 1);
//! let mapping = baselines::eyeriss_row_stationary(&dims, &device, 16);
//! let cost = evaluate_layer(&dims, &mapping, &device, 16)?;
//! assert!(cost.energy_pj > 0.0 && cost.latency_s > 0.0);
//! # Ok::<(), instantnet_hwmodel::MapError>(())
//! ```

pub mod baselines;
pub mod cost;
pub mod device;
pub mod report;
pub mod sweep;

pub use cost::{
    evaluate_layer, evaluate_network, pipeline_stage_device, LayerCost, MapError, NetworkCost,
};
pub use device::{Device, Platform};
pub use report::{area_mm2, energy_breakdown, format_breakdown};
pub use sweep::{sweep_device, SweepAxis, SweepPoint};

use instantnet_dataflow::ConvDims;
use instantnet_nn::ConvSpec;

/// A hardware workload: one conv layer's loop bounds plus how many
/// identical copies run (grouped/depthwise convolutions are modeled as
/// `groups` independent single-group layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Per-group loop bounds.
    pub dims: ConvDims,
    /// Number of identical groups.
    pub multiplicity: usize,
}

impl Workload {
    /// Converts a network layer spec into a hardware workload with the
    /// given batch size.
    pub fn from_spec(spec: &ConvSpec, batch: usize) -> Self {
        let (oh, ow) = spec.out_hw();
        Workload {
            dims: ConvDims::new(
                batch,
                spec.out_c / spec.groups,
                spec.in_c / spec.groups,
                oh,
                ow,
                spec.kernel,
                spec.kernel,
                spec.stride,
            ),
            multiplicity: spec.groups,
        }
    }

    /// Total MACs including all groups.
    pub fn macs(&self) -> u64 {
        self.dims.macs() * self.multiplicity as u64
    }
}

/// Converts a whole network's specs to workloads.
pub fn workloads_from_specs(specs: &[ConvSpec], batch: usize) -> Vec<Workload> {
    specs
        .iter()
        .map(|s| Workload::from_spec(s, batch))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_from_depthwise_spec() {
        let spec = ConvSpec {
            in_c: 16,
            out_c: 16,
            kernel: 3,
            stride: 1,
            pad: 1,
            groups: 16,
            in_h: 8,
            in_w: 8,
        };
        let w = Workload::from_spec(&spec, 1);
        assert_eq!(w.dims.k, 1);
        assert_eq!(w.dims.c, 1);
        assert_eq!(w.multiplicity, 16);
        assert_eq!(w.macs(), spec.macs());
    }

    #[test]
    fn workload_from_dense_spec_matches_macs() {
        let spec = ConvSpec {
            in_c: 8,
            out_c: 32,
            kernel: 3,
            stride: 2,
            pad: 1,
            groups: 1,
            in_h: 16,
            in_w: 16,
        };
        let w = Workload::from_spec(&spec, 4);
        assert_eq!(w.macs(), 4 * spec.macs());
    }
}
