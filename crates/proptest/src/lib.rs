//! Vendored subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace ships
//! the slice of `proptest` its tests actually use: the [`proptest!`] macro,
//! [`Strategy`] for primitive ranges, tuples, [`sample::select`] and
//! [`Strategy::prop_map`], plus the [`prop_assert!`]/[`prop_assert_eq!`]
//! assertion macros.
//!
//! Unlike upstream proptest there is no shrinking: each test runs
//! [`ProptestConfig::cases`] deterministic seeded cases and panics (with
//! the case's inputs reproducible from the fixed seed schedule) on the
//! first failure. For the property suites in this workspace — which assert
//! invariants, not parser round-trips over adversarial inputs — that is
//! the behaviour that matters.
//!
//! # Example
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

use std::ops::Range;

/// The RNG driving case generation (the workspace's seeded `StdRng`).
pub type TestRng = rand::rngs::StdRng;

pub use rand::SeedableRng as __SeedableRng;

/// Per-test configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strat: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strat: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strat.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A 0);
impl_tuple_strategy!(A 0, B 1);
impl_tuple_strategy!(A 0, B 1, C 2);
impl_tuple_strategy!(A 0, B 1, C 2, D 3);
impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4);
impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5);
impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6);
impl_tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);

/// Value-sampling strategies (`prop::sample::select`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy drawing uniformly from a fixed list.
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Uniform choice among `items`.
    ///
    /// # Panics
    ///
    /// Panics at generation time if `items` is empty.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.items.is_empty(), "select over empty list");
            self.items[rand::Rng::gen_range(rng, 0..self.items.len())].clone()
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// expands to a test running [`ProptestConfig::cases`] seeded cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                // Deterministic per-case seed schedule: failures reproduce
                // by re-running the test (no shrinking).
                let mut rng = <$crate::TestRng as $crate::__SeedableRng>::seed_from_u64(
                    0xC0FF_EE00u64 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10, 1usize..10).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(x in 3u64..9, y in -2i32..3) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2..3).contains(&y));
        }

        #[test]
        fn select_draws_from_list(v in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!(v == 2 || v == 4 || v == 8);
        }

        #[test]
        fn prop_map_composes(p in arb_pair()) {
            prop_assert!(p.1 > p.0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..255) {
            prop_assert_eq!(x as u16 * 2, (x as u16) + (x as u16));
        }
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        use crate::Strategy;
        let s = 0u64..1_000_000;
        let mut r1 = <crate::TestRng as rand::SeedableRng>::seed_from_u64(99);
        let mut r2 = <crate::TestRng as rand::SeedableRng>::seed_from_u64(99);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
