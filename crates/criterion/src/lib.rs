//! Vendored subset of the Criterion benchmarking API.
//!
//! The build environment has no crates.io access, so the workspace ships
//! the slice of `criterion` its benches use: [`Criterion::bench_function`]
//! with [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Timing is calibrated wall-clock measurement (iterations per
//! sample are scaled until a sample takes long enough to trust the clock),
//! reported as per-iteration nanoseconds.
//!
//! Instead of Criterion's HTML reports, each group writes a machine-readable
//! `BENCH_<group>.json` snapshot at the workspace root (falling back to the
//! current directory when no workspace manifest is found), so runs can be
//! diffed across commits:
//!
//! ```json
//! {
//!   "group": "kernels",
//!   "sample_size": 20,
//!   "benchmarks": [
//!     {"name": "matmul_64x64", "mean_ns": 1234.5, "median_ns": 1200.0,
//!      "min_ns": 1100.0, "max_ns": 1500.0, "samples": 20, "cores": 8}
//!   ]
//! }
//! ```
//!
//! Every entry carries the runner's available core count (`"cores"`), so
//! downstream comparisons (`bench_check`) can refuse to compare numbers
//! recorded on differently-sized machines like-for-like.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum wall-clock time one sample should cover; below this the
/// per-iteration count is scaled up before real measurement starts.
const MIN_SAMPLE_TIME: Duration = Duration::from_millis(10);

/// Benchmark driver: collects per-function timing statistics and writes a
/// `BENCH_<group>.json` snapshot when the group finishes.
pub struct Criterion {
    sample_size: usize,
    group: String,
    results: Vec<BenchResult>,
}

struct BenchResult {
    name: String,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            group: String::new(),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark (builder-style).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    #[doc(hidden)]
    pub fn __set_group(&mut self, name: &str) {
        self.group = name.to_string();
    }

    /// Runs `f` with a [`Bencher`], records calibrated per-iteration timings
    /// and prints a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            per_iter_ns: Vec::new(),
        };
        f(&mut bencher);
        let mut sorted = bencher.per_iter_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let samples = sorted.len();
        assert!(samples > 0, "Bencher::iter was never called in {name}");
        let median_ns = if samples % 2 == 1 {
            sorted[samples / 2]
        } else {
            (sorted[samples / 2 - 1] + sorted[samples / 2]) / 2.0
        };
        let mean_ns = sorted.iter().sum::<f64>() / samples as f64;
        let result = BenchResult {
            name: name.to_string(),
            mean_ns,
            median_ns,
            min_ns: sorted[0],
            max_ns: sorted[samples - 1],
            samples,
        };
        println!(
            "{:<40} median {:>12.1} ns/iter  (mean {:.1}, n={})",
            result.name, result.median_ns, result.mean_ns, result.samples
        );
        self.results.push(result);
        self
    }

    /// Records a precomputed metric as a single-sample benchmark entry —
    /// all statistics equal `value_ns`. For deterministic quantities a
    /// simulation derives (e.g. drain makespan in simulated time) that
    /// should live in the same snapshot as the wall-clock benches but
    /// must not vary with host load or core count.
    pub fn record_metric(&mut self, name: &str, value_ns: f64) -> &mut Self {
        assert!(
            value_ns.is_finite() && value_ns >= 0.0,
            "metric value must be a finite non-negative ns count"
        );
        println!("{name:<40} metric {value_ns:>12.1} ns (recorded)");
        self.results.push(BenchResult {
            name: name.to_string(),
            mean_ns: value_ns,
            median_ns: value_ns,
            min_ns: value_ns,
            max_ns: value_ns,
            samples: 1,
        });
        self
    }

    #[doc(hidden)]
    pub fn __finish(&mut self) {
        if self.results.is_empty() {
            return;
        }
        let path = snapshot_dir().join(format!("BENCH_{}.json", self.group));
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => println!("snapshot written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }

    fn to_json(&self) -> String {
        // Stamped per entry (not per file) so snapshot consumers that
        // merge or filter entries keep the provenance with the number.
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"group\": \"{}\",\n  \"sample_size\": {},\n  \"benchmarks\": [\n",
            self.group, self.sample_size
        ));
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \
                 \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}, \"cores\": {}}}{}\n",
                r.name,
                r.mean_ns,
                r.median_ns,
                r.min_ns,
                r.max_ns,
                r.samples,
                cores,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Walks up from the current directory to the workspace root (the nearest
/// ancestor whose `Cargo.toml` declares `[workspace]`); cargo runs bench
/// binaries from the package directory, not the workspace root.
fn snapshot_dir() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
    let mut dir = cwd.as_path();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir.to_path_buf();
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return cwd,
        }
    }
}

/// Measures closures passed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f`, storing `sample_size` per-iteration nanosecond samples.
    ///
    /// The number of iterations per sample is doubled until one sample
    /// takes at least 10 ms, so very fast closures still get trustworthy
    /// clock readings.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        black_box(f()); // warm-up: fault in code paths and allocations

        let mut iters_per_sample: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_SAMPLE_TIME || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }

        self.per_iter_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.per_iter_ns.push(ns);
        }
    }
}

/// Declares a benchmark group: a function running each target against a
/// shared [`Criterion`] config, then writing the group's snapshot.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            criterion.__set_group(stringify!($name));
            $($target(&mut criterion);)+
            criterion.__finish();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_target(c: &mut Criterion) {
        c.bench_function("tiny_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
    }

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        tiny_target(&mut c);
        assert_eq!(c.results.len(), 1);
        let r = &c.results[0];
        assert_eq!(r.samples, 3);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.mean_ns > 0.0);
    }

    #[test]
    fn record_metric_stores_an_exact_single_sample_entry() {
        let mut c = Criterion::default().sample_size(2);
        c.__set_group("metrics");
        c.record_metric("drain_steps", 6.0e6);
        assert_eq!(c.results.len(), 1);
        let r = &c.results[0];
        assert_eq!(r.samples, 1);
        assert_eq!(r.mean_ns, 6.0e6);
        assert_eq!(r.median_ns, 6.0e6);
        assert_eq!(r.min_ns, 6.0e6);
        assert_eq!(r.max_ns, 6.0e6);
        let json = c.to_json();
        assert!(json.contains("\"name\": \"drain_steps\""));
        assert!(json.contains("\"median_ns\": 6000000.0"));
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let mut c = Criterion::default().sample_size(2);
        c.__set_group("testgroup");
        c.bench_function("a", |b| b.iter(|| 1 + 1));
        c.bench_function("b", |b| b.iter(|| 2 + 2));
        let json = c.to_json();
        assert!(json.contains("\"group\": \"testgroup\""));
        assert!(json.contains("\"name\": \"a\""));
        assert!(json.contains("\"name\": \"b\""));
        assert!(
            json.contains("\"cores\": "),
            "every entry records the runner's core count"
        );
        // Last entry must not have a trailing comma.
        assert!(json.contains("}\n  ]"));
        assert!(!json.contains("},\n  ]"));
    }

    criterion_group! {
        name = self_check;
        config = Criterion::default().sample_size(2);
        targets = tiny_target
    }

    #[test]
    fn group_macro_expands_and_runs() {
        // Writes BENCH_self_check.json as a side effect; exercised for the
        // macro plumbing, the file itself is the real deliverable.
        self_check();
    }
}
