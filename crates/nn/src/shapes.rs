//! Layer-shape specifications of classic networks used only for hardware
//! evaluation (AlexNet and VGG16 in Fig. 5), plus helpers to turn any
//! network's specs into dataflow workloads.

use crate::ConvSpec;

fn conv(in_c: usize, out_c: usize, k: usize, stride: usize, pad: usize, hw: usize) -> ConvSpec {
    ConvSpec {
        in_c,
        out_c,
        kernel: k,
        stride,
        pad,
        groups: 1,
        in_h: hw,
        in_w: hw,
    }
}

/// AlexNet's five convolutional layers (224x224 input), the Fig. 5 ASIC
/// workload.
pub fn alexnet_convs() -> Vec<ConvSpec> {
    vec![
        conv(3, 96, 11, 4, 2, 224),  // conv1 -> 55x55
        conv(96, 256, 5, 1, 2, 27),  // conv2 (post 3x3/2 pool)
        conv(256, 384, 3, 1, 1, 13), // conv3
        conv(384, 384, 3, 1, 1, 13), // conv4
        conv(384, 256, 3, 1, 1, 13), // conv5
    ]
}

/// VGG16's thirteen convolutional layers (224x224 input), the Fig. 5
/// large-model workload (19.6 GFLOPs per the paper's §III-D example).
pub fn vgg16_convs() -> Vec<ConvSpec> {
    let mut specs = Vec::new();
    let stages: [(usize, usize, usize); 5] = [
        (3, 64, 2),
        (64, 128, 2),
        (128, 256, 3),
        (256, 512, 3),
        (512, 512, 3),
    ];
    let mut hw = 224;
    for (in_c, out_c, reps) in stages {
        let mut c = in_c;
        for _ in 0..reps {
            specs.push(conv(c, out_c, 3, 1, 1, hw));
            c = out_c;
        }
        hw /= 2; // 2x2 max pool between stages
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_has_five_convs_with_known_first_layer() {
        let specs = alexnet_convs();
        assert_eq!(specs.len(), 5);
        assert_eq!(specs[0].out_hw(), (55, 55));
        // conv1 MACs: 96*3*11*11*55*55 ≈ 105M.
        assert_eq!(specs[0].macs(), 96 * 3 * 121 * 55 * 55);
    }

    #[test]
    fn vgg16_total_flops_matches_paper_scale() {
        let specs = vgg16_convs();
        assert_eq!(specs.len(), 13);
        let flops: u64 = specs.iter().map(ConvSpec::flops).sum();
        // Paper quotes 19.6E9 ops for VGG16 (convs dominate).
        assert!(flops > 25_000_000_000, "flops {flops}");
        assert!(flops < 35_000_000_000, "flops {flops}");
    }

    #[test]
    fn vgg16_spatial_sizes_halve_per_stage() {
        let specs = vgg16_convs();
        assert_eq!(specs[0].in_h, 224);
        assert_eq!(specs[2].in_h, 112);
        assert_eq!(specs[12].in_h, 14);
    }
}
