//! Quantization-aware layers and the InstantNet model zoo.
//!
//! Networks built from this crate are *switchable-precision*: one set of
//! shared weights serves every bit-width in a [`instantnet_quant::BitWidthSet`].
//! Quantization happens on the fly in the forward pass according to the
//! active [`ForwardCtx`], and batch-normalization statistics are kept
//! *per bit-width* ([`layers::SwitchableBatchNorm`]), following the
//! switchable-BN design of SP-Nets that the paper adopts.
//!
//! # Example
//!
//! ```
//! use instantnet_nn::{models, ForwardCtx, Module};
//! use instantnet_quant::{BitWidthSet, Quantizer};
//! use instantnet_tensor::{Tensor, Var};
//!
//! let bits = BitWidthSet::narrow_range();
//! let net = models::small_cnn(8, 10, (8, 8), bits.len(), 42);
//! let x = Var::constant(Tensor::zeros(&[2, 3, 8, 8]));
//! let mut ctx = ForwardCtx::eval(&bits, 0, Quantizer::Sbm); // lowest bit-width
//! let logits = net.forward(&x, &mut ctx);
//! assert_eq!(logits.dims(), vec![2, 10]);
//! ```

pub mod blocks;
pub mod checkpoint;
pub mod layers;
pub mod models;
pub mod plan;
pub mod shapes;

use instantnet_quant::{BitWidthSet, Precision, Quantizer};
use instantnet_tensor::{Param, Tensor, Var};

/// Per-forward-pass configuration: which bit-width branch is active, the
/// quantizer, and train/eval mode.
#[derive(Debug, Clone)]
pub struct ForwardCtx {
    /// Training mode (batch statistics + running-stat updates) vs inference.
    pub train: bool,
    /// Index into the network's bit-width set; selects the BN branch.
    pub bit_index: usize,
    /// Active weight/activation precision.
    pub precision: Precision,
    /// Quantization rule.
    pub quantizer: Quantizer,
}

impl ForwardCtx {
    /// Training-mode context at bit-width `index` of `set`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for `set`.
    pub fn train(set: &BitWidthSet, index: usize, quantizer: Quantizer) -> Self {
        ForwardCtx {
            train: true,
            bit_index: index,
            precision: Precision::uniform(set.at(index)),
            quantizer,
        }
    }

    /// Inference-mode context at bit-width `index` of `set`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for `set`.
    pub fn eval(set: &BitWidthSet, index: usize, quantizer: Quantizer) -> Self {
        ForwardCtx {
            train: false,
            ..ForwardCtx::train(set, index, quantizer)
        }
    }

    /// Overrides the weight/activation precision (Table IV mixed settings).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }
}

/// Shape/cost description of one convolutional (or linear, as 1x1 conv)
/// layer — consumed by the FLOPs accounting here and by the dataflow /
/// hardware-model crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvSpec {
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel height/width (square).
    pub kernel: usize,
    /// Square stride.
    pub stride: usize,
    /// Zero padding per side.
    pub pad: usize,
    /// Channel groups (depthwise = `in_c`).
    pub groups: usize,
    /// Input spatial height.
    pub in_h: usize,
    /// Input spatial width.
    pub in_w: usize,
}

impl ConvSpec {
    /// Output spatial extents.
    pub fn out_hw(&self) -> (usize, usize) {
        (
            (self.in_h + 2 * self.pad - self.kernel) / self.stride + 1,
            (self.in_w + 2 * self.pad - self.kernel) / self.stride + 1,
        )
    }

    /// Multiply-accumulate count for one sample.
    pub fn macs(&self) -> u64 {
        let (oh, ow) = self.out_hw();
        (self.out_c * (self.in_c / self.groups) * self.kernel * self.kernel * oh * ow) as u64
    }

    /// FLOPs (2 per MAC) for one sample.
    pub fn flops(&self) -> u64 {
        2 * self.macs()
    }

    /// Weight element count.
    pub fn weight_count(&self) -> u64 {
        (self.out_c * (self.in_c / self.groups) * self.kernel * self.kernel) as u64
    }
}

/// A differentiable network component.
///
/// Modules own [`Param`]s (shared across bit-widths) and build a fresh
/// autograd graph on every [`Module::forward`] call.
pub trait Module {
    /// Runs the module, reading precision/mode from `ctx`.
    fn forward(&self, x: &Var, ctx: &mut ForwardCtx) -> Var;

    /// All trainable parameters (weights shared across bit-widths plus the
    /// per-bit-width BN affine parameters).
    fn params(&self) -> Vec<Param>;

    /// Conv/linear shape specs given the input shape `(c, h, w)`; returns
    /// the specs contributed by this module and its output shape.
    fn conv_specs(&self, in_shape: (usize, usize, usize))
        -> (Vec<ConvSpec>, (usize, usize, usize));

    /// Flattens the module into inference-plan operations for the integer
    /// engine ([`plan::PlanOp`]); `None` when the module (or any child)
    /// has no data-level description.
    fn plan_ops(&self) -> Option<Vec<plan::PlanOp>> {
        None
    }

    /// Non-trainable state tensors (BN running statistics), as
    /// `(name, value)` pairs — checkpointed alongside parameters.
    fn buffers(&self) -> Vec<(String, Tensor)> {
        vec![]
    }

    /// Restores one buffer by name; returns whether the name was accepted.
    /// Uses interior mutability, mirroring how running stats update in
    /// forward passes.
    fn set_buffer(&self, _name: &str, _value: &Tensor) -> bool {
        false
    }
}

/// Runs modules in order.
pub struct Sequential {
    modules: Vec<Box<dyn Module>>,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Sequential {
            modules: Vec::new(),
        }
    }

    /// Appends a module.
    pub fn push(&mut self, m: Box<dyn Module>) {
        self.modules.push(m);
    }

    /// Number of child modules.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.modules.len()
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Sequential::new()
    }
}

impl Module for Sequential {
    fn forward(&self, x: &Var, ctx: &mut ForwardCtx) -> Var {
        let mut cur = x.clone();
        for m in &self.modules {
            cur = m.forward(&cur, ctx);
        }
        cur
    }

    fn params(&self) -> Vec<Param> {
        self.modules.iter().flat_map(|m| m.params()).collect()
    }

    fn conv_specs(
        &self,
        in_shape: (usize, usize, usize),
    ) -> (Vec<ConvSpec>, (usize, usize, usize)) {
        let mut specs = Vec::new();
        let mut shape = in_shape;
        for m in &self.modules {
            let (s, out) = m.conv_specs(shape);
            specs.extend(s);
            shape = out;
        }
        (specs, shape)
    }

    fn plan_ops(&self) -> Option<Vec<plan::PlanOp>> {
        plan::concat_plans(self.modules.iter().map(|m| m.plan_ops()).collect())
    }

    fn buffers(&self) -> Vec<(String, Tensor)> {
        self.modules.iter().flat_map(|m| m.buffers()).collect()
    }

    fn set_buffer(&self, name: &str, value: &Tensor) -> bool {
        self.modules.iter().any(|m| m.set_buffer(name, value))
    }
}

/// Total single-sample FLOPs of a module for a given input shape.
pub fn total_flops(module: &dyn Module, in_shape: (usize, usize, usize)) -> u64 {
    module
        .conv_specs(in_shape)
        .0
        .iter()
        .map(ConvSpec::flops)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_spec_arithmetic() {
        let s = ConvSpec {
            in_c: 3,
            out_c: 16,
            kernel: 3,
            stride: 1,
            pad: 1,
            groups: 1,
            in_h: 8,
            in_w: 8,
        };
        assert_eq!(s.out_hw(), (8, 8));
        assert_eq!(s.macs(), 16 * 3 * 9 * 64);
        assert_eq!(s.flops(), 2 * s.macs());
        assert_eq!(s.weight_count(), 16 * 3 * 9);
    }

    #[test]
    fn depthwise_spec_divides_channels() {
        let s = ConvSpec {
            in_c: 8,
            out_c: 8,
            kernel: 3,
            stride: 2,
            pad: 1,
            groups: 8,
            in_h: 8,
            in_w: 8,
        };
        assert_eq!(s.out_hw(), (4, 4));
        assert_eq!(s.macs(), 8 * 9 * 16);
    }

    #[test]
    fn forward_ctx_constructors() {
        let bits = BitWidthSet::large_range();
        let c = ForwardCtx::train(&bits, 0, Quantizer::Sbm);
        assert!(c.train);
        assert_eq!(c.precision.weight.get(), 4);
        let e = ForwardCtx::eval(&bits, 4, Quantizer::Sbm);
        assert!(!e.train);
        assert!(e.precision.weight.is_full_precision());
    }
}
