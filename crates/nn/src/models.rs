//! The model zoo: MobileNetV2 (CIFAR variant), ResNet-18/38/74, and a
//! small CNN for fast tests.
//!
//! Every constructor takes a `scale` knob so the paper-faithful topology can
//! be width/depth-reduced to laptop-CPU size while keeping the structural
//! properties that matter (depthwise separability, residual topology,
//! per-stage striding). Experiment binaries use the scaled variants; the
//! unscaled configurations remain available for shape/FLOPs accounting.

use crate::blocks::{BasicBlock, ConvBnAct, InvertedResidual};
use crate::layers::{Activation, GlobalAvgPool, QuantLinear};
use crate::plan::PlanOp;
use crate::{ConvSpec, ForwardCtx, Module, Sequential};
use instantnet_tensor::{Param, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A complete classification network with known input geometry.
pub struct Network {
    name: String,
    body: Sequential,
    in_shape: (usize, usize, usize),
}

impl Network {
    /// Wraps a body with its expected input shape `(c, h, w)`.
    pub fn new(name: impl Into<String>, body: Sequential, in_shape: (usize, usize, usize)) -> Self {
        Network {
            name: name.into(),
            body,
            in_shape,
        }
    }

    /// Human-readable model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Expected input shape `(c, h, w)`.
    pub fn in_shape(&self) -> (usize, usize, usize) {
        self.in_shape
    }

    /// Conv/linear specs of the whole network (for FLOPs and hardware
    /// mapping).
    pub fn specs(&self) -> Vec<ConvSpec> {
        self.body.conv_specs(self.in_shape).0
    }

    /// Single-sample FLOPs.
    pub fn flops(&self) -> u64 {
        self.specs().iter().map(ConvSpec::flops).sum()
    }

    /// Total trainable parameter count (all BN branches included).
    pub fn param_count(&self) -> u64 {
        self.params().iter().map(|p| p.len() as u64).sum()
    }

    /// A human-readable model summary: name, input geometry, layer table
    /// with shapes and MACs, and totals.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let (c, h, w) = self.in_shape;
        let _ = writeln!(out, "{} (input {c}x{h}x{w})", self.name);
        let _ = writeln!(
            out,
            "{:>4} {:>22} {:>8} {:>7} {:>12}",
            "#", "conv (inCxoutC kxk/s)", "groups", "out hw", "MACs"
        );
        for (i, spec) in self.specs().iter().enumerate() {
            let (oh, ow) = spec.out_hw();
            let _ = writeln!(
                out,
                "{:>4} {:>22} {:>8} {:>7} {:>12}",
                i,
                format!(
                    "{}x{} {}x{}/{}",
                    spec.in_c, spec.out_c, spec.kernel, spec.kernel, spec.stride
                ),
                spec.groups,
                format!("{oh}x{ow}"),
                spec.macs()
            );
        }
        let _ = writeln!(
            out,
            "total: {} FLOPs, {} parameters",
            self.flops(),
            self.param_count()
        );
        out
    }
}

impl Module for Network {
    fn forward(&self, x: &Var, ctx: &mut ForwardCtx) -> Var {
        self.body.forward(x, ctx)
    }

    fn params(&self) -> Vec<Param> {
        self.body.params()
    }

    fn conv_specs(
        &self,
        in_shape: (usize, usize, usize),
    ) -> (Vec<ConvSpec>, (usize, usize, usize)) {
        self.body.conv_specs(in_shape)
    }

    fn plan_ops(&self) -> Option<Vec<PlanOp>> {
        self.body.plan_ops()
    }

    fn buffers(&self) -> Vec<(String, Tensor)> {
        self.body.buffers()
    }

    fn set_buffer(&self, name: &str, value: &Tensor) -> bool {
        self.body.set_buffer(name, value)
    }
}

fn scaled(c: usize, mult: f32) -> usize {
    ((c as f32 * mult).round() as usize).max(2)
}

/// MobileNetV2 stage configuration: `(expansion, channels, repeats, stride)`.
pub type MbStage = (usize, usize, usize, usize);

/// The CIFAR MobileNetV2 stage table (strides adapted to 32x32-class
/// resolutions, as the paper adapts the FBNet space).
pub fn mobilenet_v2_stages() -> Vec<MbStage> {
    vec![
        (1, 16, 1, 1),
        (6, 24, 2, 1),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ]
}

/// Builds a MobileNetV2 classifier.
///
/// * `width_mult` scales every channel count (1.0 = paper topology).
/// * `depth_div` divides per-stage repeat counts (1 = paper topology).
/// * `in_hw` is the square input resolution; `seed` fixes initialization.
pub fn mobilenet_v2(
    width_mult: f32,
    depth_div: usize,
    num_classes: usize,
    in_hw: (usize, usize),
    n_bits: usize,
    seed: u64,
) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut body = Sequential::new();
    let stem_c = scaled(32, width_mult);
    body.push(Box::new(ConvBnAct::new(
        &mut rng,
        "stem",
        3,
        stem_c,
        3,
        1,
        1,
        n_bits,
        Activation::Relu6,
        false,
    )));
    let mut in_c = stem_c;
    for (si, (t, c, n, s)) in mobilenet_v2_stages().into_iter().enumerate() {
        let out_c = scaled(c, width_mult);
        let reps = (n / depth_div).max(1);
        for r in 0..reps {
            let stride = if r == 0 { s } else { 1 };
            body.push(Box::new(InvertedResidual::new(
                &mut rng,
                &format!("stage{si}.block{r}"),
                in_c,
                out_c,
                t,
                3,
                stride,
                n_bits,
            )));
            in_c = out_c;
        }
    }
    let head_c = scaled(1280, width_mult * 0.25); // keep the head affordable
    body.push(Box::new(ConvBnAct::new(
        &mut rng,
        "head",
        in_c,
        head_c,
        1,
        1,
        1,
        n_bits,
        Activation::Relu6,
        true,
    )));
    body.push(Box::new(GlobalAvgPool));
    body.push(Box::new(QuantLinear::new(
        &mut rng,
        "classifier",
        head_c,
        num_classes,
    )));
    Network::new(
        format!("mobilenet_v2(w={width_mult})"),
        body,
        (3, in_hw.0, in_hw.1),
    )
}

/// Builds a CIFAR-style ResNet with `6n + 2` layers (three stages of `n`
/// basic blocks) — ResNet-38 is `n = 6`, ResNet-74 is `n = 12`.
pub fn resnet_cifar(
    n: usize,
    width_mult: f32,
    num_classes: usize,
    in_hw: (usize, usize),
    n_bits: usize,
    seed: u64,
) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut body = Sequential::new();
    let widths = [
        scaled(16, width_mult),
        scaled(32, width_mult),
        scaled(64, width_mult),
    ];
    body.push(Box::new(ConvBnAct::new(
        &mut rng,
        "stem",
        3,
        widths[0],
        3,
        1,
        1,
        n_bits,
        Activation::Relu,
        false,
    )));
    let mut in_c = widths[0];
    for (stage, &w) in widths.iter().enumerate() {
        for b in 0..n {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            body.push(Box::new(BasicBlock::new(
                &mut rng,
                &format!("stage{stage}.block{b}"),
                in_c,
                w,
                stride,
                n_bits,
            )));
            in_c = w;
        }
    }
    body.push(Box::new(GlobalAvgPool));
    body.push(Box::new(QuantLinear::new(
        &mut rng,
        "classifier",
        in_c,
        num_classes,
    )));
    Network::new(
        format!("resnet{}(w={width_mult})", 6 * n + 2),
        body,
        (3, in_hw.0, in_hw.1),
    )
}

/// ResNet-38 (`n = 6`).
pub fn resnet38(
    width_mult: f32,
    num_classes: usize,
    in_hw: (usize, usize),
    n_bits: usize,
    seed: u64,
) -> Network {
    resnet_cifar(6, width_mult, num_classes, in_hw, n_bits, seed)
}

/// ResNet-74 (`n = 12`).
pub fn resnet74(
    width_mult: f32,
    num_classes: usize,
    in_hw: (usize, usize),
    n_bits: usize,
    seed: u64,
) -> Network {
    resnet_cifar(12, width_mult, num_classes, in_hw, n_bits, seed)
}

/// ImageNet-style ResNet-18: four stages of two basic blocks with channel
/// doubling, adapted to small inputs (3x3 stem, no initial max-pool).
pub fn resnet18(
    width_mult: f32,
    num_classes: usize,
    in_hw: (usize, usize),
    n_bits: usize,
    seed: u64,
) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut body = Sequential::new();
    let widths = [
        scaled(64, width_mult),
        scaled(128, width_mult),
        scaled(256, width_mult),
        scaled(512, width_mult),
    ];
    body.push(Box::new(ConvBnAct::new(
        &mut rng,
        "stem",
        3,
        widths[0],
        3,
        1,
        1,
        n_bits,
        Activation::Relu,
        false,
    )));
    let mut in_c = widths[0];
    for (stage, &w) in widths.iter().enumerate() {
        for b in 0..2 {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            body.push(Box::new(BasicBlock::new(
                &mut rng,
                &format!("stage{stage}.block{b}"),
                in_c,
                w,
                stride,
                n_bits,
            )));
            in_c = w;
        }
    }
    body.push(Box::new(GlobalAvgPool));
    body.push(Box::new(QuantLinear::new(
        &mut rng,
        "classifier",
        in_c,
        num_classes,
    )));
    Network::new(
        format!("resnet18(w={width_mult})"),
        body,
        (3, in_hw.0, in_hw.1),
    )
}

/// A two-conv CNN for fast unit/integration tests.
pub fn small_cnn(
    channels: usize,
    num_classes: usize,
    in_hw: (usize, usize),
    n_bits: usize,
    seed: u64,
) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut body = Sequential::new();
    body.push(Box::new(ConvBnAct::new(
        &mut rng,
        "conv1",
        3,
        channels,
        3,
        1,
        1,
        n_bits,
        Activation::Relu,
        false,
    )));
    body.push(Box::new(ConvBnAct::new(
        &mut rng,
        "conv2",
        channels,
        channels * 2,
        3,
        2,
        1,
        n_bits,
        Activation::Relu,
        true,
    )));
    body.push(Box::new(GlobalAvgPool));
    body.push(Box::new(QuantLinear::new(
        &mut rng,
        "classifier",
        channels * 2,
        num_classes,
    )));
    Network::new("small_cnn", body, (3, in_hw.0, in_hw.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantnet_quant::{BitWidthSet, Quantizer};
    use instantnet_tensor::Tensor;

    fn eval_ctx(bits: &BitWidthSet, i: usize) -> ForwardCtx {
        ForwardCtx::eval(bits, i, Quantizer::Sbm)
    }

    #[test]
    fn mobilenet_forward_all_bitwidths() {
        let bits = BitWidthSet::narrow_range();
        let net = mobilenet_v2(0.1, 4, 10, (8, 8), bits.len(), 0);
        let x = Var::constant(Tensor::zeros(&[1, 3, 8, 8]));
        for i in 0..bits.len() {
            // Train pass first to seed BN running stats for that branch.
            let mut tc = ForwardCtx::train(&bits, i, Quantizer::Sbm);
            net.forward(&x, &mut tc);
            let y = net.forward(&x, &mut eval_ctx(&bits, i));
            assert_eq!(y.dims(), vec![1, 10]);
        }
    }

    #[test]
    fn mobilenet_contains_depthwise_layers() {
        let net = mobilenet_v2(0.1, 4, 10, (8, 8), 1, 0);
        assert!(net
            .specs()
            .iter()
            .any(|s| s.groups > 1 && s.groups == s.in_c));
    }

    #[test]
    fn resnet38_has_expected_conv_count() {
        // Stem + 6 blocks/stage x 3 stages x 2 convs + 2 projections + FC.
        let net = resnet38(0.125, 10, (8, 8), 1, 0);
        let convs = net.specs().len();
        assert_eq!(convs, 1 + 18 * 2 + 2 + 1);
    }

    #[test]
    fn resnet74_deeper_than_resnet38() {
        let a = resnet38(0.125, 10, (8, 8), 1, 0);
        let b = resnet74(0.125, 10, (8, 8), 1, 0);
        assert!(b.specs().len() > a.specs().len());
        assert!(b.flops() > a.flops());
    }

    #[test]
    fn resnet18_downsamples_three_times() {
        let net = resnet18(0.05, 20, (16, 16), 1, 0);
        let strided = net.specs().iter().filter(|s| s.stride == 2).count();
        // One strided conv + one strided shortcut per downsampling stage.
        assert_eq!(strided, 6);
    }

    #[test]
    fn network_flops_scale_with_width() {
        let small = resnet38(0.125, 10, (8, 8), 1, 0);
        let large = resnet38(0.25, 10, (8, 8), 1, 0);
        assert!(large.flops() > 2 * small.flops());
    }

    #[test]
    fn full_width_mobilenet_flops_order_of_magnitude() {
        // Unscaled MobileNetV2 on 32x32 should be in the hundreds of MFLOPs.
        let net = mobilenet_v2(1.0, 1, 100, (32, 32), 1, 0);
        let f = net.flops();
        assert!(f > 20_000_000, "flops {f}");
        assert!(f < 2_000_000_000, "flops {f}");
    }

    #[test]
    fn summary_lists_every_conv_and_totals() {
        let net = small_cnn(4, 5, (8, 8), 2, 0);
        let text = net.summary();
        assert!(text.contains("small_cnn"));
        // One line per conv spec plus header/footer.
        let body_lines = net.specs().len();
        assert!(text.lines().count() >= body_lines + 2);
        assert!(text.contains("total:"));
        assert!(net.param_count() > 0);
    }

    #[test]
    fn param_count_grows_with_bn_branches() {
        let one = small_cnn(4, 5, (8, 8), 1, 0).param_count();
        let five = small_cnn(4, 5, (8, 8), 5, 0).param_count();
        assert!(five > one, "{five} vs {one}");
    }

    #[test]
    fn small_cnn_trains_end_to_end_shape() {
        let bits = BitWidthSet::new(vec![4, 32]).unwrap();
        let net = small_cnn(4, 5, (8, 8), bits.len(), 1);
        let x = Var::constant(Tensor::zeros(&[2, 3, 8, 8]));
        let mut ctx = ForwardCtx::train(&bits, 0, Quantizer::Sbm);
        let y = net.forward(&x, &mut ctx);
        assert_eq!(y.dims(), vec![2, 5]);
        assert!(!net.params().is_empty());
    }
}
