//! Primitive quantization-aware layers.

use crate::plan::PlanOp;
use crate::{ConvSpec, ForwardCtx, Module};
use instantnet_tensor::{init, ops, Param, Tensor, Var};
use rand::rngs::StdRng;
use std::cell::RefCell;

/// Quantized 2-d convolution (no bias; batch norm follows).
///
/// The full-precision weight is shared across all bit-widths; at forward
/// time both the input activations and the weight are quantized to the
/// precision in the [`ForwardCtx`] through straight-through estimators.
pub struct QuantConv2d {
    weight: Param,
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    /// First-layer convention: raw images are not re-quantized.
    quantize_input: bool,
    /// Optional PACT learnable activation clipping (replaces the
    /// quantizer's own activation rule when present).
    pact_alpha: Option<Param>,
}

impl QuantConv2d {
    /// Creates a conv layer with Kaiming-uniform initialization.
    ///
    /// # Panics
    ///
    /// Panics if `in_c`/`out_c` are not divisible by `groups`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rng: &mut StdRng,
        name: &str,
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        groups: usize,
        quantize_input: bool,
    ) -> Self {
        assert_eq!(in_c % groups, 0, "in_c must divide by groups");
        assert_eq!(out_c % groups, 0, "out_c must divide by groups");
        let weight = Param::new(
            format!("{name}.weight"),
            init::kaiming_uniform(rng, &[out_c, in_c / groups, kernel, kernel]),
        );
        QuantConv2d {
            weight,
            in_c,
            out_c,
            kernel,
            stride,
            pad,
            groups,
            quantize_input,
            pact_alpha: None,
        }
    }

    /// Enables PACT activation quantization (Choi et al. 2018): inputs are
    /// clipped to a per-layer *learnable* range `[0, alpha]` before uniform
    /// quantization, instead of the quantizer's static rule.
    pub fn with_pact(mut self, alpha_init: f32) -> Self {
        assert!(alpha_init > 0.0, "PACT alpha must start positive");
        self.pact_alpha = Some(Param::new(
            format!(
                "{}.pact_alpha",
                self.weight.name().trim_end_matches(".weight")
            ),
            Tensor::scalar(alpha_init),
        ));
        self
    }

    /// The layer's shape spec for an input of `in_h x in_w`.
    pub fn spec(&self, in_h: usize, in_w: usize) -> ConvSpec {
        ConvSpec {
            in_c: self.in_c,
            out_c: self.out_c,
            kernel: self.kernel,
            stride: self.stride,
            pad: self.pad,
            groups: self.groups,
            in_h,
            in_w,
        }
    }
}

impl Module for QuantConv2d {
    fn forward(&self, x: &Var, ctx: &mut ForwardCtx) -> Var {
        let xq = if !self.quantize_input {
            x.clone()
        } else if let (Some(alpha), false) = (
            &self.pact_alpha,
            ctx.precision.activation.is_full_precision(),
        ) {
            ops::pact(x, alpha.var(), ctx.precision.activation.get())
        } else {
            ctx.quantizer
                .quantize_activations(x, ctx.precision.activation)
        };
        let wq = ctx
            .quantizer
            .quantize_weights(self.weight.var(), ctx.precision.weight);
        ops::conv2d(&xq, &wq, self.stride, self.pad, self.groups)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = vec![self.weight.clone()];
        if let Some(a) = &self.pact_alpha {
            p.push(a.clone());
        }
        p
    }

    fn conv_specs(
        &self,
        in_shape: (usize, usize, usize),
    ) -> (Vec<ConvSpec>, (usize, usize, usize)) {
        let (c, h, w) = in_shape;
        assert_eq!(
            c, self.in_c,
            "input channels {c} != layer in_c {}",
            self.in_c
        );
        let spec = self.spec(h, w);
        let (oh, ow) = spec.out_hw();
        (vec![spec], (self.out_c, oh, ow))
    }

    fn plan_ops(&self) -> Option<Vec<PlanOp>> {
        if self.pact_alpha.is_some() {
            // PACT's clip range is a learnable parameter the integer
            // engine does not model; fall back to the fake-quant path.
            return None;
        }
        Some(vec![PlanOp::Conv {
            name: self.weight.name().to_string(),
            weight: self.weight.var().value(),
            stride: self.stride,
            pad: self.pad,
            groups: self.groups,
            quantize_input: self.quantize_input,
        }])
    }
}

/// Quantized fully-connected classifier head.
pub struct QuantLinear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
}

impl QuantLinear {
    /// Creates a linear layer with Kaiming-uniform initialization.
    pub fn new(rng: &mut StdRng, name: &str, in_features: usize, out_features: usize) -> Self {
        QuantLinear {
            weight: Param::new(
                format!("{name}.weight"),
                init::kaiming_uniform(rng, &[out_features, in_features]),
            ),
            bias: Param::new(format!("{name}.bias"), Tensor::zeros(&[out_features])),
            in_features,
            out_features,
        }
    }
}

impl Module for QuantLinear {
    fn forward(&self, x: &Var, ctx: &mut ForwardCtx) -> Var {
        let xq = ctx
            .quantizer
            .quantize_activations(x, ctx.precision.activation);
        let wq = ctx
            .quantizer
            .quantize_weights(self.weight.var(), ctx.precision.weight);
        ops::linear(&xq, &wq, Some(self.bias.var()))
    }

    fn params(&self) -> Vec<Param> {
        vec![self.weight.clone(), self.bias.clone()]
    }

    fn conv_specs(
        &self,
        in_shape: (usize, usize, usize),
    ) -> (Vec<ConvSpec>, (usize, usize, usize)) {
        let (c, h, w) = in_shape;
        assert_eq!(c * h * w, self.in_features, "linear input size mismatch");
        // Model the FC layer as a 1x1 conv over a 1x1 feature map.
        (
            vec![ConvSpec {
                in_c: self.in_features,
                out_c: self.out_features,
                kernel: 1,
                stride: 1,
                pad: 0,
                groups: 1,
                in_h: 1,
                in_w: 1,
            }],
            (self.out_features, 1, 1),
        )
    }

    fn plan_ops(&self) -> Option<Vec<PlanOp>> {
        Some(vec![PlanOp::Linear {
            name: self.weight.name().to_string(),
            weight: self.weight.var().value(),
            bias: self.bias.var().value(),
        }])
    }
}

/// Batch normalization with one statistics/affine branch per bit-width.
///
/// Quantization noise shifts activation statistics differently at each
/// precision, so SP-Nets keep independent BN parameters and running
/// statistics per bit-width (SP, Guerra et al. 2020) while convolutional
/// weights stay shared. `ctx.bit_index` selects the branch.
pub struct SwitchableBatchNorm {
    name: String,
    gammas: Vec<Param>,
    betas: Vec<Param>,
    running: RefCell<Vec<RunningStats>>,
    channels: usize,
    eps: f32,
    momentum: f32,
}

#[derive(Debug, Clone)]
struct RunningStats {
    mean: Tensor,
    var: Tensor,
    initialized: bool,
}

impl SwitchableBatchNorm {
    /// Creates `n_bits` independent BN branches over `channels` channels.
    pub fn new(name: &str, channels: usize, n_bits: usize) -> Self {
        let gammas = (0..n_bits)
            .map(|i| Param::new(format!("{name}.gamma[{i}]"), Tensor::ones(&[channels])))
            .collect();
        let betas = (0..n_bits)
            .map(|i| Param::new(format!("{name}.beta[{i}]"), Tensor::zeros(&[channels])))
            .collect();
        let running = (0..n_bits)
            .map(|_| RunningStats {
                mean: Tensor::zeros(&[channels]),
                var: Tensor::ones(&[channels]),
                initialized: false,
            })
            .collect();
        SwitchableBatchNorm {
            name: name.to_string(),
            gammas,
            betas,
            running: RefCell::new(running),
            channels,
            eps: 1e-5,
            momentum: 0.1,
        }
    }

    /// Number of per-bit-width branches.
    pub fn branches(&self) -> usize {
        self.gammas.len()
    }

    /// Running mean/variance of branch `index` (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn running_stats(&self, index: usize) -> (Tensor, Tensor) {
        let r = &self.running.borrow()[index];
        (r.mean.clone(), r.var.clone())
    }
}

impl Module for SwitchableBatchNorm {
    fn forward(&self, x: &Var, ctx: &mut ForwardCtx) -> Var {
        let i = ctx.bit_index;
        assert!(
            i < self.gammas.len(),
            "bit index {i} out of range for {} BN branches",
            self.gammas.len()
        );
        if ctx.train {
            let bn =
                ops::batch_norm2d(x, self.gammas[i].var(), self.betas[i].var(), self.eps, None);
            let mut running = self.running.borrow_mut();
            let slot = &mut running[i];
            if slot.initialized {
                // EMA update: r = (1-m) r + m batch.
                let m = self.momentum;
                slot.mean = slot.mean.scale(1.0 - m).add(&bn.mean.scale(m));
                slot.var = slot.var.scale(1.0 - m).add(&bn.var.scale(m));
            } else {
                slot.mean = bn.mean.clone();
                slot.var = bn.var.clone();
                slot.initialized = true;
            }
            bn.out
        } else {
            let running = self.running.borrow();
            let slot = &running[i];
            ops::batch_norm2d(
                x,
                self.gammas[i].var(),
                self.betas[i].var(),
                self.eps,
                Some((slot.mean.clone(), slot.var.clone())),
            )
            .out
        }
    }

    fn params(&self) -> Vec<Param> {
        self.gammas
            .iter()
            .chain(self.betas.iter())
            .cloned()
            .collect()
    }

    fn conv_specs(
        &self,
        in_shape: (usize, usize, usize),
    ) -> (Vec<ConvSpec>, (usize, usize, usize)) {
        assert_eq!(in_shape.0, self.channels, "BN channel mismatch");
        (vec![], in_shape)
    }

    fn plan_ops(&self) -> Option<Vec<PlanOp>> {
        let running = self.running.borrow();
        Some(vec![PlanOp::BatchNorm {
            gamma: self.gammas.iter().map(|p| p.var().value()).collect(),
            beta: self.betas.iter().map(|p| p.var().value()).collect(),
            mean: running.iter().map(|r| r.mean.clone()).collect(),
            var: running.iter().map(|r| r.var.clone()).collect(),
            eps: self.eps,
        }])
    }

    fn buffers(&self) -> Vec<(String, Tensor)> {
        let running = self.running.borrow();
        let mut out = Vec::with_capacity(2 * running.len());
        for (i, r) in running.iter().enumerate() {
            out.push((format!("{}.running_mean[{i}]", self.name), r.mean.clone()));
            out.push((format!("{}.running_var[{i}]", self.name), r.var.clone()));
        }
        out
    }

    fn set_buffer(&self, name: &str, value: &Tensor) -> bool {
        let Some(rest) = name.strip_prefix(self.name.as_str()) else {
            return false;
        };
        let parse = |rest: &str, kind: &str| -> Option<usize> {
            rest.strip_prefix(kind)?
                .strip_prefix('[')?
                .strip_suffix(']')?
                .parse()
                .ok()
        };
        let mut running = self.running.borrow_mut();
        if let Some(i) = parse(rest, ".running_mean") {
            if i >= running.len() || value.dims() != [self.channels] {
                return false;
            }
            running[i].mean = value.clone();
            running[i].initialized = true;
            return true;
        }
        if let Some(i) = parse(rest, ".running_var") {
            if i >= running.len() || value.dims() != [self.channels] {
                return false;
            }
            running[i].var = value.clone();
            running[i].initialized = true;
            return true;
        }
        false
    }
}

/// Activation functions usable as modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// `max(x, 0)`.
    #[default]
    Relu,
    /// `min(max(x, 0), 6)`.
    Relu6,
    /// Identity (linear bottleneck projections).
    None,
}

impl Module for Activation {
    fn forward(&self, x: &Var, _ctx: &mut ForwardCtx) -> Var {
        match self {
            Activation::Relu => x.relu(),
            Activation::Relu6 => x.relu6(),
            Activation::None => x.clone(),
        }
    }

    fn params(&self) -> Vec<Param> {
        vec![]
    }

    fn conv_specs(
        &self,
        in_shape: (usize, usize, usize),
    ) -> (Vec<ConvSpec>, (usize, usize, usize)) {
        (vec![], in_shape)
    }

    fn plan_ops(&self) -> Option<Vec<PlanOp>> {
        Some(vec![PlanOp::Act(*self)])
    }
}

/// Global average pooling + flatten: `[N,C,H,W] -> [N,C]`.
pub struct GlobalAvgPool;

impl Module for GlobalAvgPool {
    fn forward(&self, x: &Var, _ctx: &mut ForwardCtx) -> Var {
        ops::global_avg_pool(x)
    }

    fn params(&self) -> Vec<Param> {
        vec![]
    }

    fn conv_specs(
        &self,
        in_shape: (usize, usize, usize),
    ) -> (Vec<ConvSpec>, (usize, usize, usize)) {
        (vec![], (in_shape.0, 1, 1))
    }

    fn plan_ops(&self) -> Option<Vec<PlanOp>> {
        Some(vec![PlanOp::GlobalAvgPool])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantnet_quant::{BitWidthSet, Quantizer};
    use rand::SeedableRng;

    fn ctx_train(index: usize) -> ForwardCtx {
        ForwardCtx::train(&BitWidthSet::large_range(), index, Quantizer::Sbm)
    }

    #[test]
    fn conv_forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = QuantConv2d::new(&mut rng, "c", 3, 8, 3, 2, 1, 1, false);
        let x = Var::constant(Tensor::zeros(&[2, 3, 8, 8]));
        let y = conv.forward(&x, &mut ctx_train(0));
        assert_eq!(y.dims(), vec![2, 8, 4, 4]);
        let (specs, out) = conv.conv_specs((3, 8, 8));
        assert_eq!(specs.len(), 1);
        assert_eq!(out, (8, 4, 4));
    }

    #[test]
    fn conv_weight_grad_flows_through_quantization() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = QuantConv2d::new(&mut rng, "c", 2, 4, 3, 1, 1, 1, true);
        let x = Var::constant(init::uniform(&mut rng, &[1, 2, 4, 4], 0.0, 1.0));
        let y = conv.forward(&x, &mut ctx_train(0));
        y.sum().backward();
        let g = conv.params()[0].var().grad().expect("weight grad");
        assert!(g.max_abs() > 0.0);
    }

    #[test]
    fn pact_conv_trains_its_clip_and_bounds_inputs() {
        let mut rng = StdRng::seed_from_u64(6);
        let conv = QuantConv2d::new(&mut rng, "c", 2, 4, 3, 1, 1, 1, true).with_pact(1.0);
        assert_eq!(conv.params().len(), 2, "weight + alpha");
        let x = Var::constant(init::uniform(&mut rng, &[1, 2, 4, 4], -2.0, 4.0));
        let y = conv.forward(&x, &mut ctx_train(0));
        y.sum().backward();
        let alpha = &conv.params()[1];
        assert!(alpha.name().contains("pact_alpha"));
        assert!(alpha.var().grad().is_some(), "alpha must receive gradient");
    }

    #[test]
    fn pact_disabled_at_full_precision() {
        let mut rng = StdRng::seed_from_u64(7);
        let conv = QuantConv2d::new(&mut rng, "c", 2, 2, 3, 1, 1, 1, true).with_pact(0.5);
        let x = Var::constant(init::uniform(&mut rng, &[1, 2, 4, 4], -2.0, 4.0));
        // Full-precision rung: PACT must not clip.
        let bits = BitWidthSet::new(vec![4, 32]).unwrap();
        let mut ctx = ForwardCtx::train(&bits, 1, Quantizer::Sbm);
        let y_fp = conv.forward(&x, &mut ctx).value();
        let mut ctx_q = ForwardCtx::train(&bits, 0, Quantizer::Sbm);
        let y_q = conv.forward(&x, &mut ctx_q).value();
        assert_ne!(y_fp, y_q, "quantized rung must clip, FP rung must not");
    }

    #[test]
    fn switchable_bn_branches_are_independent() {
        let bn = SwitchableBatchNorm::new("bn", 4, 5);
        assert_eq!(bn.branches(), 5);
        let mut rng = StdRng::seed_from_u64(2);
        // Feed different data at different bit indices; running stats differ.
        let x0 = Var::constant(init::uniform(&mut rng, &[4, 4, 2, 2], 0.0, 1.0));
        let x1 = Var::constant(init::uniform(&mut rng, &[4, 4, 2, 2], 5.0, 6.0));
        bn.forward(&x0, &mut ctx_train(0));
        bn.forward(&x1, &mut ctx_train(1));
        let (m0, _) = bn.running_stats(0);
        let (m1, _) = bn.running_stats(1);
        assert!(m1.mean() > m0.mean() + 1.0);
        // Untouched branch keeps its init.
        let (m2, v2) = bn.running_stats(2);
        assert_eq!(m2.mean(), 0.0);
        assert_eq!(v2.mean(), 1.0);
    }

    #[test]
    fn bn_eval_uses_running_stats() {
        let bn = SwitchableBatchNorm::new("bn", 2, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let x = Var::constant(init::uniform(&mut rng, &[8, 2, 3, 3], -1.0, 1.0));
        bn.forward(&x, &mut ctx_train(0)); // seed running stats
        let mut eval = ForwardCtx::eval(&BitWidthSet::large_range(), 0, Quantizer::Sbm);
        let y1 = bn.forward(&x, &mut eval).value();
        let y2 = bn.forward(&x, &mut eval).value();
        assert_eq!(y1, y2, "eval mode must be deterministic");
    }

    #[test]
    fn bn_normalizes_in_train_mode() {
        let bn = SwitchableBatchNorm::new("bn", 1, 1);
        let x = Var::constant(Tensor::from_vec(
            vec![1, 1, 2, 2],
            vec![10.0, 12.0, 14.0, 16.0],
        ));
        let y = bn.forward(&x, &mut ctx_train(0)).value();
        assert!(y.mean().abs() < 1e-5);
    }

    #[test]
    fn linear_output_shape_and_spec() {
        let mut rng = StdRng::seed_from_u64(4);
        let lin = QuantLinear::new(&mut rng, "fc", 16, 10);
        let x = Var::constant(Tensor::zeros(&[3, 16]));
        let y = lin.forward(&x, &mut ctx_train(0));
        assert_eq!(y.dims(), vec![3, 10]);
        let (specs, out) = lin.conv_specs((16, 1, 1));
        assert_eq!(specs[0].macs(), 160);
        assert_eq!(out, (10, 1, 1));
    }

    #[test]
    fn activation_modules_have_no_params() {
        assert!(Activation::Relu6.params().is_empty());
        assert!(GlobalAvgPool.params().is_empty());
    }

    #[test]
    #[should_panic(expected = "bit index")]
    fn bn_rejects_out_of_range_bit_index() {
        let bn = SwitchableBatchNorm::new("bn", 2, 2);
        let x = Var::constant(Tensor::zeros(&[1, 2, 2, 2]));
        bn.forward(&x, &mut ctx_train(4));
    }
}
