//! Composite blocks: conv-BN-act, MobileNetV2 inverted residuals, ResNet
//! basic blocks.

use crate::layers::{Activation, QuantConv2d, SwitchableBatchNorm};
use crate::plan::{concat_plans, PlanOp};
use crate::{ConvSpec, ForwardCtx, Module};
use instantnet_tensor::{Param, Tensor, Var};
use rand::rngs::StdRng;

/// Convolution followed by switchable batch norm and an activation.
pub struct ConvBnAct {
    conv: QuantConv2d,
    bn: SwitchableBatchNorm,
    act: Activation,
}

impl ConvBnAct {
    /// Builds the fused block.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rng: &mut StdRng,
        name: &str,
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        groups: usize,
        n_bits: usize,
        act: Activation,
        quantize_input: bool,
    ) -> Self {
        let pad = kernel / 2;
        ConvBnAct {
            conv: QuantConv2d::new(
                rng,
                name,
                in_c,
                out_c,
                kernel,
                stride,
                pad,
                groups,
                quantize_input,
            ),
            bn: SwitchableBatchNorm::new(&format!("{name}.bn"), out_c, n_bits),
            act,
        }
    }
}

impl Module for ConvBnAct {
    fn forward(&self, x: &Var, ctx: &mut ForwardCtx) -> Var {
        let y = self.conv.forward(x, ctx);
        let y = self.bn.forward(&y, ctx);
        self.act.forward(&y, ctx)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.conv.params();
        p.extend(self.bn.params());
        p
    }

    fn conv_specs(
        &self,
        in_shape: (usize, usize, usize),
    ) -> (Vec<ConvSpec>, (usize, usize, usize)) {
        self.conv.conv_specs(in_shape)
    }

    fn plan_ops(&self) -> Option<Vec<PlanOp>> {
        concat_plans(vec![
            self.conv.plan_ops(),
            self.bn.plan_ops(),
            self.act.plan_ops(),
        ])
    }

    fn buffers(&self) -> Vec<(String, Tensor)> {
        self.bn.buffers()
    }

    fn set_buffer(&self, name: &str, value: &Tensor) -> bool {
        self.bn.set_buffer(name, value)
    }
}

/// MobileNetV2 inverted residual: 1x1 expand → depthwise kxk → 1x1 linear
/// project, with a residual connection when shapes allow.
///
/// The depthwise stage is the documented low-precision accuracy bottleneck
/// (the paper notes SP-Nets "fail to work on lower bit-widths when being
/// applied to MobileNetV2"), which is why this block matters for CDT.
pub struct InvertedResidual {
    expand: Option<ConvBnAct>,
    depthwise: ConvBnAct,
    project: ConvBnAct,
    use_res: bool,
}

impl InvertedResidual {
    /// Builds an MBConv block with expansion factor `expand_ratio` and a
    /// square depthwise kernel.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rng: &mut StdRng,
        name: &str,
        in_c: usize,
        out_c: usize,
        expand_ratio: usize,
        kernel: usize,
        stride: usize,
        n_bits: usize,
    ) -> Self {
        assert!(expand_ratio >= 1, "expansion ratio must be >= 1");
        let hidden = in_c * expand_ratio;
        let expand = if expand_ratio > 1 {
            Some(ConvBnAct::new(
                rng,
                &format!("{name}.expand"),
                in_c,
                hidden,
                1,
                1,
                1,
                n_bits,
                Activation::Relu6,
                true,
            ))
        } else {
            None
        };
        let depthwise = ConvBnAct::new(
            rng,
            &format!("{name}.dw"),
            hidden,
            hidden,
            kernel,
            stride,
            hidden,
            n_bits,
            Activation::Relu6,
            true,
        );
        let project = ConvBnAct::new(
            rng,
            &format!("{name}.project"),
            hidden,
            out_c,
            1,
            1,
            1,
            n_bits,
            Activation::None,
            true,
        );
        InvertedResidual {
            expand,
            depthwise,
            project,
            use_res: stride == 1 && in_c == out_c,
        }
    }

    /// Whether the block adds a residual connection.
    pub fn has_residual(&self) -> bool {
        self.use_res
    }
}

impl Module for InvertedResidual {
    fn forward(&self, x: &Var, ctx: &mut ForwardCtx) -> Var {
        let mut y = x.clone();
        if let Some(e) = &self.expand {
            y = e.forward(&y, ctx);
        }
        y = self.depthwise.forward(&y, ctx);
        y = self.project.forward(&y, ctx);
        if self.use_res {
            y = y.add(x);
        }
        y
    }

    fn params(&self) -> Vec<Param> {
        let mut p = Vec::new();
        if let Some(e) = &self.expand {
            p.extend(e.params());
        }
        p.extend(self.depthwise.params());
        p.extend(self.project.params());
        p
    }

    fn conv_specs(
        &self,
        in_shape: (usize, usize, usize),
    ) -> (Vec<ConvSpec>, (usize, usize, usize)) {
        let mut specs = Vec::new();
        let mut shape = in_shape;
        if let Some(e) = &self.expand {
            let (s, out) = e.conv_specs(shape);
            specs.extend(s);
            shape = out;
        }
        let (s, out) = self.depthwise.conv_specs(shape);
        specs.extend(s);
        shape = out;
        let (s, out) = self.project.conv_specs(shape);
        specs.extend(s);
        (specs, out)
    }

    fn plan_ops(&self) -> Option<Vec<PlanOp>> {
        let mut parts = Vec::new();
        if let Some(e) = &self.expand {
            parts.push(e.plan_ops());
        }
        parts.push(self.depthwise.plan_ops());
        parts.push(self.project.plan_ops());
        let body = concat_plans(parts)?;
        if self.use_res {
            Some(vec![PlanOp::Residual {
                body,
                shortcut: vec![],
                post_relu: false,
            }])
        } else {
            Some(body)
        }
    }

    fn buffers(&self) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        if let Some(e) = &self.expand {
            out.extend(e.buffers());
        }
        out.extend(self.depthwise.buffers());
        out.extend(self.project.buffers());
        out
    }

    fn set_buffer(&self, name: &str, value: &Tensor) -> bool {
        self.expand
            .as_ref()
            .is_some_and(|e| e.set_buffer(name, value))
            || self.depthwise.set_buffer(name, value)
            || self.project.set_buffer(name, value)
    }
}

/// ResNet basic block: two 3x3 convolutions with an identity or projection
/// shortcut.
pub struct BasicBlock {
    conv1: ConvBnAct,
    conv2: ConvBnAct,
    shortcut: Option<ConvBnAct>,
}

impl BasicBlock {
    /// Builds a basic block; a 1x1 projection shortcut is inserted when the
    /// stride or channel count changes.
    pub fn new(
        rng: &mut StdRng,
        name: &str,
        in_c: usize,
        out_c: usize,
        stride: usize,
        n_bits: usize,
    ) -> Self {
        let conv1 = ConvBnAct::new(
            rng,
            &format!("{name}.conv1"),
            in_c,
            out_c,
            3,
            stride,
            1,
            n_bits,
            Activation::Relu,
            true,
        );
        let conv2 = ConvBnAct::new(
            rng,
            &format!("{name}.conv2"),
            out_c,
            out_c,
            3,
            1,
            1,
            n_bits,
            Activation::None,
            true,
        );
        let shortcut = if stride != 1 || in_c != out_c {
            Some(ConvBnAct::new(
                rng,
                &format!("{name}.shortcut"),
                in_c,
                out_c,
                1,
                stride,
                1,
                n_bits,
                Activation::None,
                true,
            ))
        } else {
            None
        };
        BasicBlock {
            conv1,
            conv2,
            shortcut,
        }
    }
}

impl Module for BasicBlock {
    fn forward(&self, x: &Var, ctx: &mut ForwardCtx) -> Var {
        let y = self.conv1.forward(x, ctx);
        let y = self.conv2.forward(&y, ctx);
        let sc = match &self.shortcut {
            Some(p) => p.forward(x, ctx),
            None => x.clone(),
        };
        y.add(&sc).relu()
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.conv1.params();
        p.extend(self.conv2.params());
        if let Some(s) = &self.shortcut {
            p.extend(s.params());
        }
        p
    }

    fn conv_specs(
        &self,
        in_shape: (usize, usize, usize),
    ) -> (Vec<ConvSpec>, (usize, usize, usize)) {
        let (mut specs, mid) = self.conv1.conv_specs(in_shape);
        let (s2, out) = self.conv2.conv_specs(mid);
        specs.extend(s2);
        if let Some(s) = &self.shortcut {
            let (s3, _) = s.conv_specs(in_shape);
            specs.extend(s3);
        }
        (specs, out)
    }

    fn plan_ops(&self) -> Option<Vec<PlanOp>> {
        let body = concat_plans(vec![self.conv1.plan_ops(), self.conv2.plan_ops()])?;
        let shortcut = match &self.shortcut {
            Some(s) => s.plan_ops()?,
            None => vec![],
        };
        Some(vec![PlanOp::Residual {
            body,
            shortcut,
            post_relu: true,
        }])
    }

    fn buffers(&self) -> Vec<(String, Tensor)> {
        let mut out = self.conv1.buffers();
        out.extend(self.conv2.buffers());
        if let Some(s) = &self.shortcut {
            out.extend(s.buffers());
        }
        out
    }

    fn set_buffer(&self, name: &str, value: &Tensor) -> bool {
        self.conv1.set_buffer(name, value)
            || self.conv2.set_buffer(name, value)
            || self
                .shortcut
                .as_ref()
                .is_some_and(|s| s.set_buffer(name, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantnet_quant::{BitWidthSet, Quantizer};
    use instantnet_tensor::{init, Tensor};
    use rand::SeedableRng;

    fn ctx() -> ForwardCtx {
        ForwardCtx::train(&BitWidthSet::narrow_range(), 0, Quantizer::Sbm)
    }

    #[test]
    fn inverted_residual_preserving_shape_uses_residual() {
        let mut rng = StdRng::seed_from_u64(0);
        let b = InvertedResidual::new(&mut rng, "b", 8, 8, 3, 3, 1, 4);
        assert!(b.has_residual());
        let x = Var::constant(init::uniform(&mut rng, &[1, 8, 4, 4], -1.0, 1.0));
        let y = b.forward(&x, &mut ctx());
        assert_eq!(y.dims(), vec![1, 8, 4, 4]);
    }

    #[test]
    fn inverted_residual_strided_drops_residual() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = InvertedResidual::new(&mut rng, "b", 8, 16, 6, 5, 2, 4);
        assert!(!b.has_residual());
        let x = Var::constant(Tensor::zeros(&[1, 8, 8, 8]));
        let y = b.forward(&x, &mut ctx());
        assert_eq!(y.dims(), vec![1, 16, 4, 4]);
        let (specs, out) = b.conv_specs((8, 8, 8));
        assert_eq!(specs.len(), 3); // expand + dw + project
        assert_eq!(out, (16, 4, 4));
        // Depthwise stage has groups == hidden channels.
        assert_eq!(specs[1].groups, 48);
    }

    #[test]
    fn expansion_one_skips_expand_conv() {
        let mut rng = StdRng::seed_from_u64(2);
        let b = InvertedResidual::new(&mut rng, "b", 8, 8, 1, 3, 1, 2);
        let (specs, _) = b.conv_specs((8, 6, 6));
        assert_eq!(specs.len(), 2); // dw + project only
    }

    #[test]
    fn basic_block_shapes_and_projection() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = BasicBlock::new(&mut rng, "b", 8, 16, 2, 3);
        let x = Var::constant(init::uniform(&mut rng, &[2, 8, 8, 8], -1.0, 1.0));
        let y = b.forward(&x, &mut ctx());
        assert_eq!(y.dims(), vec![2, 16, 4, 4]);
        let (specs, out) = b.conv_specs((8, 8, 8));
        assert_eq!(specs.len(), 3); // conv1 + conv2 + projection shortcut
        assert_eq!(out, (16, 4, 4));
    }

    #[test]
    fn basic_block_identity_shortcut_has_two_convs() {
        let mut rng = StdRng::seed_from_u64(4);
        let b = BasicBlock::new(&mut rng, "b", 8, 8, 1, 3);
        let (specs, _) = b.conv_specs((8, 8, 8));
        assert_eq!(specs.len(), 2);
    }

    #[test]
    fn block_gradients_reach_all_params() {
        let mut rng = StdRng::seed_from_u64(5);
        let b = BasicBlock::new(&mut rng, "b", 4, 4, 1, 2);
        let x = Var::constant(init::uniform(&mut rng, &[2, 4, 4, 4], -1.0, 1.0));
        // Forward at every bit index so each BN branch receives gradient.
        let bits = BitWidthSet::new(vec![4, 8]).unwrap();
        for i in 0..2 {
            let mut c = ForwardCtx::train(&bits, i, Quantizer::Sbm);
            b.forward(&x, &mut c).sum().backward();
        }
        for p in b.params() {
            assert!(p.var().grad().is_some(), "missing grad for {}", p.name());
        }
    }
}
