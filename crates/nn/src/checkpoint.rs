//! Weight checkpointing: save/load a module's parameters to a simple
//! self-describing binary format (no external serialization deps).
//!
//! Format (little-endian): magic `b"INET"`, format version `u32`,
//! parameter count `u32`, then per parameter: name length `u32`, UTF-8
//! name bytes, rank `u32`, dims (`u64` each), and `f32` data.

use crate::Module;
use instantnet_tensor::Tensor;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"INET";
const VERSION: u32 = 1;

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Missing or wrong magic/version header.
    BadHeader,
    /// File data was malformed (truncated, bad UTF-8, absurd sizes).
    Corrupt(&'static str),
    /// A parameter in the file has no counterpart in the module, or the
    /// shapes disagree.
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::BadHeader => write!(f, "not an InstantNet checkpoint"),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            CheckpointError::Mismatch(name) => write!(f, "parameter mismatch for '{name}'"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Saves every parameter of `module` to `path`.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failures.
pub fn save(module: &dyn Module, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let params = module.params();
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in &params {
        let name = p.name().as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        let value = p.var().value();
        let dims = value.dims();
        w.write_all(&(dims.len() as u32).to_le_bytes())?;
        for &d in dims {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for v in value.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

fn read_u32(r: &mut impl Read) -> Result<u32, CheckpointError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> Result<u64, CheckpointError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads a checkpoint into a name → tensor map.
///
/// # Errors
///
/// Returns header/corruption errors for malformed files.
pub fn read_tensors(path: impl AsRef<Path>) -> Result<HashMap<String, Tensor>, CheckpointError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC || read_u32(&mut r)? != VERSION {
        return Err(CheckpointError::BadHeader);
    }
    let count = read_u32(&mut r)? as usize;
    let mut out = HashMap::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        if name_len > 4096 {
            return Err(CheckpointError::Corrupt("parameter name too long"));
        }
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| CheckpointError::Corrupt("non-UTF-8 parameter name"))?;
        let rank = read_u32(&mut r)? as usize;
        if rank > 8 {
            return Err(CheckpointError::Corrupt("rank too large"));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u64(&mut r)? as usize);
        }
        let n: usize = dims.iter().product();
        if n > 1 << 28 {
            return Err(CheckpointError::Corrupt("tensor too large"));
        }
        let mut data = vec![0.0f32; n];
        for v in data.iter_mut() {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            *v = f32::from_le_bytes(b);
        }
        out.insert(name, Tensor::from_vec(dims, data));
    }
    Ok(out)
}

/// Loads a checkpoint into `module`, matching parameters by name.
///
/// # Errors
///
/// Returns [`CheckpointError::Mismatch`] if any module parameter is absent
/// from the file or has a different shape; file I/O and format errors
/// propagate.
pub fn load(module: &dyn Module, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let mut tensors = read_tensors(path)?;
    for p in module.params() {
        let Some(t) = tensors.remove(p.name()) else {
            return Err(CheckpointError::Mismatch(p.name().to_string()));
        };
        if t.dims() != p.var().value().dims() {
            return Err(CheckpointError::Mismatch(p.name().to_string()));
        }
        p.var().set_value(t);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use crate::ForwardCtx;
    use instantnet_quant::{BitWidthSet, Quantizer};
    use instantnet_tensor::Var;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("instantnet-ckpt-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_restores_outputs() {
        let bits = BitWidthSet::new(vec![4, 32]).unwrap();
        let a = models::small_cnn(4, 5, (6, 6), bits.len(), 1);
        let path = tmp("roundtrip.bin");
        save(&a, &path).unwrap();
        // A differently initialized clone of the same topology.
        let b = models::small_cnn(4, 5, (6, 6), bits.len(), 2);
        use rand::SeedableRng;
        let x = Var::constant(instantnet_tensor::init::uniform(
            &mut rand::rngs::StdRng::seed_from_u64(3),
            &[1, 3, 6, 6],
            -1.0,
            1.0,
        ));
        let fwd = |net: &models::Network| {
            let mut ctx = ForwardCtx::train(&bits, 0, Quantizer::Sbm);
            net.forward(&x, &mut ctx).value()
        };
        assert_ne!(fwd(&a), fwd(&b), "different seeds differ");
        load(&b, &path).unwrap();
        assert_eq!(fwd(&a), fwd(&b), "loaded weights reproduce outputs");
    }

    #[test]
    fn load_rejects_wrong_topology() {
        let a = models::small_cnn(4, 5, (6, 6), 1, 1);
        let path = tmp("wrong-topo.bin");
        save(&a, &path).unwrap();
        let wider = models::small_cnn(8, 5, (6, 6), 1, 1);
        let err = load(&wider, &path).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    }

    #[test]
    fn load_rejects_garbage_file() {
        let path = tmp("garbage.bin");
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        let net = models::small_cnn(4, 5, (6, 6), 1, 1);
        let err = load(&net, &path).unwrap_err();
        assert!(
            matches!(err, CheckpointError::BadHeader | CheckpointError::Io(_)),
            "{err}"
        );
    }

    #[test]
    fn read_tensors_exposes_names() {
        let net = models::small_cnn(4, 5, (6, 6), 2, 1);
        let path = tmp("names.bin");
        save(&net, &path).unwrap();
        let tensors = read_tensors(&path).unwrap();
        assert_eq!(tensors.len(), net.params().len());
        assert!(tensors.keys().any(|k| k.contains("classifier")));
        assert!(tensors.keys().any(|k| k.contains("gamma")));
    }

    #[test]
    fn missing_file_is_io_error() {
        let net = models::small_cnn(4, 5, (6, 6), 1, 1);
        let err = load(&net, tmp("does-not-exist.bin")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
